#include "gc/frontier.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace stampede::gc {

Kind parse_kind(const std::string& s) {
  if (s == "none") return Kind::kNone;
  if (s == "tgc" || s == "transparent") return Kind::kTransparent;
  if (s == "dgc" || s == "dead-timestamp") return Kind::kDeadTimestamp;
  throw std::invalid_argument("gc::parse_kind: unknown kind '" + s + "'");
}

std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kTransparent: return "tgc";
    case Kind::kDeadTimestamp: return "dgc";
  }
  return "?";
}

int ConsumerFrontiers::add_consumer() {
  guarantees_.push_back(0);
  return static_cast<int>(guarantees_.size()) - 1;
}

void ConsumerFrontiers::raise(int idx, Timestamp g) {
  if (idx < 0 || static_cast<std::size_t>(idx) >= guarantees_.size()) {
    throw std::out_of_range("ConsumerFrontiers: bad consumer index");
  }
  auto& cur = guarantees_[static_cast<std::size_t>(idx)];
  cur = std::max(cur, g);
}

Timestamp ConsumerFrontiers::frontier() const {
  if (guarantees_.empty()) return std::numeric_limits<Timestamp>::max();
  return *std::min_element(guarantees_.begin(), guarantees_.end());
}

Timestamp ConsumerFrontiers::guarantee(int idx) const {
  if (idx < 0 || static_cast<std::size_t>(idx) >= guarantees_.size()) {
    throw std::out_of_range("ConsumerFrontiers: bad consumer index");
  }
  return guarantees_[static_cast<std::size_t>(idx)];
}

}  // namespace stampede::gc
