/// \file frontier.hpp
/// \brief Timestamp-frontier bookkeeping shared by the garbage collectors.
///
/// The runtime supports three reclamation strategies for channel items
/// (paper §2/§4 and the Stampede GC line of work it builds on):
///
///  * **kNone** — items are never reclaimed (unbounded footprint; useful
///    only to demonstrate why GC is required).
///  * **kTransparent (TGC)** — an item is garbage once it is unreachable:
///    every attached consumer has either consumed it or skipped past it.
///    This is the "traditional GC" analogue of the paper's §2 discussion.
///  * **kDeadTimestamp (DGC)** — consumers additionally propagate
///    *timestamp guarantees* ("I will never again request a timestamp
///    below g") transitively through the graph; items below the combined
///    frontier are dead even before any cursor physically passes them, and
///    threads may elide computations whose output timestamp is already
///    dead. This is the paper's Dead Timestamp GC [6], the baseline on
///    which ARU is layered.
///
/// `ConsumerFrontiers` tracks per-consumer guarantees for one channel and
/// exposes their minimum — the channel's frontier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stampede::gc {

/// Virtual-time index (mirrors runtime::Timestamp; kept dependency-free).
using Timestamp = std::int64_t;

/// Reclamation strategy selection.
enum class Kind {
  kNone,
  kTransparent,
  kDeadTimestamp,
};

/// Parses "none" | "tgc" | "dgc"; throws on anything else.
Kind parse_kind(const std::string& s);

/// Human-readable name.
std::string to_string(Kind kind);

/// Per-channel consumer guarantee table.
///
/// A guarantee g means: this consumer will never again request an item
/// with timestamp < g. Guarantees are monotonically non-decreasing.
/// The channel frontier is the minimum guarantee across all consumers
/// (−infinity semantics when a consumer has never reported: represented
/// by the initial guarantee 0 — timestamps in this runtime start at 0).
///
/// Thread-compatibility: this class is deliberately lock-free and
/// externally synchronized — each instance is owned by exactly one
/// Channel and every access happens under that channel's `mu_` (the
/// owning member is declared `GUARDED_BY(mu_)`, so Clang's thread-safety
/// analysis checks the discipline at the call sites).
class ConsumerFrontiers {
 public:
  /// Registers a consumer; returns its index.
  int add_consumer();

  /// Raises consumer `idx`'s guarantee to `g` (ignored if lower than the
  /// current guarantee — guarantees never regress).
  void raise(int idx, Timestamp g);

  /// The channel frontier: min over all consumer guarantees; items with
  /// ts < frontier are dead. A channel with no consumers has an infinite
  /// frontier (everything is dead on arrival).
  Timestamp frontier() const;

  /// Guarantee of one consumer.
  Timestamp guarantee(int idx) const;

  std::size_t consumers() const { return guarantees_.size(); }

 private:
  std::vector<Timestamp> guarantees_;
};

}  // namespace stampede::gc
