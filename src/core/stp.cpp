#include "core/stp.hpp"

#include <stdexcept>

namespace stampede::aru {

void StpMeter::begin_iteration(Nanos now) {
  iter_start_ = now;
  blocked_ = Nanos{0};
  paced_ = Nanos{0};
  in_iteration_ = true;
}

void StpMeter::add_blocked(Nanos d) {
  if (d.count() > 0) blocked_ += d;
}

void StpMeter::add_paced_sleep(Nanos d) {
  if (d.count() > 0) paced_ += d;
}

Nanos StpMeter::end_iteration(Nanos now) {
  if (!in_iteration_) throw std::logic_error("StpMeter: end_iteration without begin");
  in_iteration_ = false;
  last_period_ = now - iter_start_;
  Nanos stp = last_period_ - blocked_ - paced_;
  if (stp.count() < 0) stp = Nanos{0};
  current_ns_.store(stp.count(), std::memory_order_relaxed);
  iterations_.fetch_add(1, std::memory_order_relaxed);
  return stp;
}

}  // namespace stampede::aru
