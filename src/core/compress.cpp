#include "core/compress.hpp"

namespace stampede::aru {

Nanos compress_min(std::span<const Nanos> backward) {
  Nanos best = kUnknownStp;
  for (const Nanos v : backward) {
    if (!known(v)) continue;
    if (!known(best) || v < best) best = v;
  }
  return best;
}

Nanos compress_max(std::span<const Nanos> backward) {
  Nanos best = kUnknownStp;
  for (const Nanos v : backward) {
    if (!known(v)) continue;
    if (v > best) best = v;
  }
  return best;
}

}  // namespace stampede::aru
