/// \file compress.hpp
/// \brief backwardSTP-vector compression operators (paper §3.3.2).
///
/// Each node folds the summary-STP values received from its downstream
/// connections into a single *compressed-backwardSTP* value. Slots with no
/// information yet (no feedback received) are represented by `kUnknownStp`
/// and are skipped by every operator; a vector with no known values
/// compresses to `kUnknownStp`, which downstream logic treats as "no
/// constraint".
#pragma once

#include <functional>
#include <span>

#include "util/time.hpp"

namespace stampede::aru {

/// Sentinel for "no feedback received yet on this connection".
inline constexpr Nanos kUnknownStp{0};

/// True if `v` carries real feedback.
constexpr bool known(Nanos v) { return v.count() > 0; }

/// A compression operator: folds the backwardSTP vector (which may contain
/// kUnknownStp slots) into one value.
using CompressFn = std::function<Nanos(std::span<const Nanos>)>;

/// Conservative default (paper's safe operator): the smallest known
/// summary-STP — sustain the fastest consumer so no consumer is starved.
Nanos compress_min(std::span<const Nanos> backward);

/// Aggressive operator (paper Fig. 4): the largest known summary-STP —
/// match the slowest consumer. Correct only when all consumers' outputs
/// feed a common downstream stage that dictates pipeline throughput.
Nanos compress_max(std::span<const Nanos> backward);

}  // namespace stampede::aru
