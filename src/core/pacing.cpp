#include "core/pacing.hpp"

namespace stampede::aru {

Nanos pacing_sleep(Nanos target, Nanos elapsed, double gain) {
  if (!known(target)) return Nanos{0};
  const Nanos gap = target - elapsed;
  if (gap.count() <= 0) return Nanos{0};
  if (gain >= 1.0) return gap;
  if (gain <= 0.0) return Nanos{0};
  return Nanos{static_cast<std::int64_t>(static_cast<double>(gap.count()) * gain)};
}

bool should_pace(const Config& cfg, bool is_source) {
  if (!cfg.enabled()) return false;
  return is_source || cfg.throttle_non_source;
}

}  // namespace stampede::aru
