/// \file simulator.hpp
/// \brief Deterministic discrete-time model of the ARU feedback loop.
///
/// The threaded runtime exhibits the feedback dynamics the paper measures,
/// but OS scheduling makes them noisy and slow to evaluate. This simulator
/// models the same control loop analytically: stages with intrinsic
/// per-iteration costs connected in a DAG, iterated in *rounds*. Each
/// round every stage completes one iteration and summary-STP values
/// propagate exactly one hop upstream — matching the paper's observation
/// (§3.3.2) that feedback travels one stage backwards per put/get, so the
/// worst-case reaction time equals pipeline latency.
///
/// Used by unit tests to verify convergence/fixed-point properties of the
/// compress operators, pacing gain and feedback filters, and by the
/// stability ablation bench to map the gain × noise design space the
/// paper's §6 leaves open.
#pragma once

#include <string>
#include <vector>

#include "core/compress.hpp"
#include "core/feedback.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stampede::aru {

/// One pipeline stage in the model.
struct SimStage {
  std::string name;
  /// Intrinsic per-iteration cost (the stage's unloaded current-STP).
  Nanos cost{0};
  /// Multiplicative uniform noise on the per-round cost (±noise).
  double noise = 0.0;
  /// Indices of directly downstream stages.
  std::vector<int> consumers;
};

struct SimConfig {
  Mode mode = Mode::kMin;
  /// Pacing gain: paced period moves by gain × (target − period) per round.
  double pace_gain = 1.0;
  /// Pacing deadband: target changes smaller than this fraction of the
  /// current paced period are ignored (hysteresis against noise-driven
  /// dithering — a controller-hardening extension beyond the paper).
  double deadband = 0.0;
  /// Feedback filter applied to every stage's outgoing summary
  /// ("passthrough", "ema:a", "median:w", "mean:w").
  std::string filter = "passthrough";
  /// Custom compress function (mode == kCustom).
  CompressFn custom;
  std::uint64_t seed = 1;
};

class RateSimulator {
 public:
  RateSimulator(std::vector<SimStage> stages, SimConfig config);

  /// Advances one round: samples each stage's noisy cost, recomputes its
  /// summary from the *previous* round's consumer summaries (one-hop
  /// propagation delay), and moves each source's paced period toward its
  /// summary by the pacing gain.
  void step();

  /// Runs `rounds` steps.
  void run(int rounds);

  /// Rounds executed so far.
  int rounds() const { return rounds_; }

  /// Stage's summary-STP after the last step (kUnknownStp before any).
  Nanos summary(int stage) const;

  /// A source stage's current paced production period.
  Nanos source_period(int stage) const;

  /// True if the stage has no upstream producers (a source).
  bool is_source(int stage) const;

  /// History of a source's paced period, one entry per round (ms).
  const std::vector<double>& period_history_ms(int stage) const;

  /// Convergence analysis of a source's paced period.
  struct Convergence {
    bool converged = false;
    int rounds_to_converge = -1;   ///< first round after which the period
                                   ///< stays within tolerance of the final mean
    double final_period_ms = 0.0;  ///< mean period over the settled tail
    double final_std_ms = 0.0;     ///< std over the settled tail
    double overshoot_ms = 0.0;     ///< max period minus final mean
  };

  /// Runs up to `max_rounds` (continuing from the current state) and
  /// characterizes the source's settling behaviour. `tolerance` is
  /// relative (e.g. 0.05 = settle within 5% of the tail mean).
  Convergence analyze(int source, int max_rounds, double tolerance = 0.05);

  /// Steady-state iteration period of a stage given the current paced
  /// periods: a stage cannot iterate faster than its own cost nor faster
  /// than its slowest input arrives — period = max(own, max over parents).
  /// Call after running to convergence.
  Nanos effective_period(int stage) const;

  /// Predicted fraction of `producer`'s items that direct consumer
  /// `consumer` skips in steady state: 1 − period(producer)/period(consumer),
  /// clamped to [0, 1). The analytic counterpart of the measured per-channel
  /// skip rates (stats::Breakdown).
  double predicted_skip(int producer, int consumer) const;

 private:
  struct StageState {
    FeedbackState feedback;
    std::vector<std::pair<int, int>> output_slots;  ///< (consumer stage, slot)
    bool source = true;
    Nanos paced_period{0};
    std::vector<double> history_ms;

    StageState(Mode mode, CompressFn custom, std::unique_ptr<Filter> filter)
        : feedback(mode, /*is_thread=*/true, std::move(custom), std::move(filter)) {}
  };

  void check_stage(int stage) const;

  std::vector<SimStage> stages_;
  SimConfig config_;
  std::vector<StageState> states_;
  Xoshiro256 rng_;
  int rounds_ = 0;
};

}  // namespace stampede::aru
