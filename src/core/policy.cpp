#include "core/policy.hpp"

#include <stdexcept>

namespace stampede::aru {

Mode parse_mode(const std::string& s) {
  if (s == "off" || s == "none" || s == "noaru") return Mode::kOff;
  if (s == "min") return Mode::kMin;
  if (s == "max") return Mode::kMax;
  if (s == "custom") return Mode::kCustom;
  throw std::invalid_argument("aru::parse_mode: unknown mode '" + s + "'");
}

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kMin: return "min";
    case Mode::kMax: return "max";
    case Mode::kCustom: return "custom";
  }
  return "?";
}

}  // namespace stampede::aru
