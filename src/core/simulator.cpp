#include "core/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/filters.hpp"

namespace stampede::aru {

RateSimulator::RateSimulator(std::vector<SimStage> stages, SimConfig config)
    : stages_(std::move(stages)), config_(std::move(config)), rng_(config_.seed) {
  const Mode mode = config_.mode;
  states_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    states_.emplace_back(mode, config_.custom, make_filter(config_.filter));
  }
  // Wire output slots and mark non-sources.
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    for (const int consumer : stages_[i].consumers) {
      if (consumer < 0 || static_cast<std::size_t>(consumer) >= stages_.size()) {
        throw std::invalid_argument("RateSimulator: bad consumer index");
      }
      const int slot = states_[i].feedback.add_output();
      states_[i].output_slots.emplace_back(consumer, slot);
      states_[static_cast<std::size_t>(consumer)].source = false;
    }
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    states_[i].paced_period = stages_[i].cost;
  }
}

void RateSimulator::check_stage(int stage) const {
  if (stage < 0 || static_cast<std::size_t>(stage) >= stages_.size()) {
    throw std::out_of_range("RateSimulator: bad stage index");
  }
}

void RateSimulator::step() {
  // Snapshot last round's summaries: feedback moves one hop per round.
  std::vector<Nanos> prev_summaries(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    prev_summaries[i] = states_[i].feedback.summary();
  }

  for (std::size_t i = 0; i < states_.size(); ++i) {
    StageState& st = states_[i];
    // Receive consumers' previous summaries on this round's "puts".
    for (const auto& [consumer, slot] : st.output_slots) {
      const Nanos s = prev_summaries[static_cast<std::size_t>(consumer)];
      if (config_.mode != Mode::kOff && known(s)) st.feedback.update_backward(slot, s);
    }
    // This round's noisy current-STP.
    Nanos cost = stages_[i].cost;
    if (stages_[i].noise > 0.0) {
      const double factor = 1.0 + stages_[i].noise * (2.0 * rng_.uniform() - 1.0);
      cost = Nanos{static_cast<std::int64_t>(static_cast<double>(cost.count()) * factor)};
    }
    if (config_.mode != Mode::kOff) st.feedback.set_current_stp(cost);

    // Source pacing with gain damping and optional deadband hysteresis.
    if (st.source && config_.mode != Mode::kOff) {
      const Nanos target = st.feedback.summary();
      if (known(target)) {
        const double cur = static_cast<double>(st.paced_period.count());
        const double gap = static_cast<double>(target.count()) - cur;
        if (config_.deadband > 0.0 && std::abs(gap) < config_.deadband * cur) {
          // Inside the deadband: hold the current period.
        } else {
          const double next = cur + config_.pace_gain * gap;
          st.paced_period = Nanos{static_cast<std::int64_t>(std::max(
              next, static_cast<double>(cost.count())))};
        }
      } else {
        st.paced_period = cost;
      }
    } else {
      st.paced_period = cost;
    }
    st.history_ms.push_back(static_cast<double>(st.paced_period.count()) / 1e6);
  }
  ++rounds_;
}

void RateSimulator::run(int rounds) {
  for (int i = 0; i < rounds; ++i) step();
}

Nanos RateSimulator::summary(int stage) const {
  check_stage(stage);
  return states_[static_cast<std::size_t>(stage)].feedback.summary();
}

Nanos RateSimulator::source_period(int stage) const {
  check_stage(stage);
  return states_[static_cast<std::size_t>(stage)].paced_period;
}

bool RateSimulator::is_source(int stage) const {
  check_stage(stage);
  return states_[static_cast<std::size_t>(stage)].source;
}

const std::vector<double>& RateSimulator::period_history_ms(int stage) const {
  check_stage(stage);
  return states_[static_cast<std::size_t>(stage)].history_ms;
}

Nanos RateSimulator::effective_period(int stage) const {
  check_stage(stage);
  // Memoized depth-first resolution over the DAG (stages are few).
  std::vector<Nanos> memo(states_.size(), Nanos{-1});
  std::vector<std::vector<int>> parents(states_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    for (const int c : stages_[i].consumers) {
      parents[static_cast<std::size_t>(c)].push_back(static_cast<int>(i));
    }
  }
  auto resolve = [&](auto&& self, int s) -> Nanos {
    auto& m = memo[static_cast<std::size_t>(s)];
    if (m.count() >= 0) return m;
    Nanos p = states_[static_cast<std::size_t>(s)].paced_period;
    for (const int parent : parents[static_cast<std::size_t>(s)]) {
      p = std::max(p, self(self, parent));
    }
    return m = p;
  };
  return resolve(resolve, stage);
}

double RateSimulator::predicted_skip(int producer, int consumer) const {
  check_stage(producer);
  check_stage(consumer);
  const auto& consumers = stages_[static_cast<std::size_t>(producer)].consumers;
  if (std::find(consumers.begin(), consumers.end(), consumer) == consumers.end()) {
    throw std::invalid_argument("RateSimulator::predicted_skip: not a direct edge");
  }
  const double pp = static_cast<double>(effective_period(producer).count());
  const double pc = static_cast<double>(effective_period(consumer).count());
  if (pp <= 0.0 || pc <= pp) return 0.0;
  return 1.0 - pp / pc;
}

RateSimulator::Convergence RateSimulator::analyze(int source, int max_rounds,
                                                  double tolerance) {
  check_stage(source);
  run(max_rounds);
  const auto& history = states_[static_cast<std::size_t>(source)].history_ms;

  Convergence result;
  if (history.size() < 4) return result;

  // Settled value: mean of the last quarter of the run.
  StreamingStats tail;
  const std::size_t tail_start = history.size() - history.size() / 4;
  for (std::size_t i = tail_start; i < history.size(); ++i) tail.add(history[i]);
  result.final_period_ms = tail.mean();
  result.final_std_ms = tail.stddev();

  const double band = std::max(tolerance * result.final_period_ms, 1e-9);
  // First round after which the period never leaves the tolerance band.
  std::size_t settled_from = history.size();
  for (std::size_t i = history.size(); i-- > 0;) {
    if (std::abs(history[i] - result.final_period_ms) > band) break;
    settled_from = i;
  }
  if (settled_from < history.size()) {
    result.converged = settled_from < tail_start;  // settled before the tail window
    result.rounds_to_converge = static_cast<int>(settled_from);
  }
  double peak = 0.0;
  for (const double p : history) peak = std::max(peak, p);
  result.overshoot_ms = std::max(0.0, peak - result.final_period_ms);
  return result;
}

}  // namespace stampede::aru
