/// \file pacing.hpp
/// \brief Producer pacing: turning the propagated summary-STP into a sleep
///        (paper §3.3.2 — "Source threads ... use the propagated
///        summary-STP information to adjust their rate of data item
///        production").
///
/// Thread-safety: pure functions over value arguments — no shared state,
/// no locks, callable from any thread ("core stays thread-free").
#pragma once

#include "core/compress.hpp"
#include "core/policy.hpp"
#include "util/static_annotations.hpp"
#include "util/time.hpp"

namespace stampede::aru {

/// Computes how long a thread should sleep at the end of an iteration so
/// its total period approaches `target`.
///
/// \param target   the thread's summary-STP (kUnknownStp → no sleep).
/// \param elapsed  wall time already spent in this iteration.
/// \param gain     fraction of the gap to close (Config::pace_gain).
/// \return sleep duration, >= 0.
ARU_HOT_PATH Nanos pacing_sleep(Nanos target, Nanos elapsed, double gain = 1.0);

/// Decides whether a thread should pace itself under `cfg`:
/// sources always pace; non-sources only when throttle_non_source is set.
ARU_HOT_PATH bool should_pace(const Config& cfg, bool is_source);

}  // namespace stampede::aru
