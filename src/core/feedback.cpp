#include "core/feedback.hpp"

#include <stdexcept>

#include "telemetry/registry.hpp"

namespace stampede::aru {

FeedbackState::FeedbackState(Mode mode, bool is_thread, CompressFn custom,
                             std::unique_ptr<Filter> filter)
    : mode_(mode), is_thread_(is_thread), filter_(std::move(filter)) {
  switch (mode) {
    case Mode::kOff:
      compress_ = {};
      break;
    case Mode::kMin:
      compress_ = compress_min;
      break;
    case Mode::kMax:
      compress_ = compress_max;
      break;
    case Mode::kCustom:
      if (!custom) {
        throw std::invalid_argument("FeedbackState: kCustom requires a compress function");
      }
      compress_ = std::move(custom);
      break;
  }
}

void FeedbackState::bind_gauges(telemetry::Gauge* current, telemetry::Gauge* summary) {
  current_gauge_ = current;
  summary_gauge_ = summary;
}

int FeedbackState::add_output() {
  backward_.push_back(kUnknownStp);
  return static_cast<int>(backward_.size()) - 1;
}

void FeedbackState::update_backward(int slot, Nanos summary) {
  if (mode_ == Mode::kOff) return;
  if (slot < 0 || static_cast<std::size_t>(slot) >= backward_.size()) {
    throw std::out_of_range("FeedbackState: bad output slot");
  }
  backward_[static_cast<std::size_t>(slot)] = summary;
  recompute();
}

void FeedbackState::set_current_stp(Nanos stp) {
  if (mode_ == Mode::kOff) return;
  if (!is_thread_) {
    throw std::logic_error("FeedbackState: current-STP on a non-thread node");
  }
  current_ns_.store(stp.count(), std::memory_order_relaxed);
  if (current_gauge_ != nullptr) {
    current_gauge_->set(known(stp) ? stp.count() : 0);
  }
  recompute();
}

void FeedbackState::recompute() {
  const Nanos compressed = compress_ ? compress_(backward_) : kUnknownStp;
  compressed_ns_.store(compressed.count(), std::memory_order_relaxed);
  // Thread nodes insert their own execution period: a thread slower than
  // all of its consumers still reports its own pace upstream (paper:
  // "allows a thread with a larger period than its consumers to insert its
  // execution period into the summary-STP").
  Nanos raw = compressed;
  const Nanos current = current_stp();
  if (is_thread_ && known(current) && (!known(raw) || current > raw)) {
    raw = current;
  }
  if (filter_ && known(raw)) {
    const double filtered = filter_->push(static_cast<double>(raw.count()));
    raw = Nanos{static_cast<std::int64_t>(filtered)};
  }
  summary_ns_.store(raw.count(), std::memory_order_relaxed);
  if (summary_gauge_ != nullptr) {
    summary_gauge_->set(known(raw) ? raw.count() : 0);
  }
}

}  // namespace stampede::aru
