/// \file stp.hpp
/// \brief Sustainable-thread-period measurement (paper §3.3.1, Fig. 2).
///
/// The STP of a thread is the time one loop iteration takes *excluding*
/// time spent blocked waiting for upstream data and time spent sleeping
/// under ARU pacing: it captures "the minimum time required to produce an
/// item given present load conditions". The runtime drives this meter from
/// `periodicity_sync()`.
#pragma once

#include <atomic>

#include "util/static_annotations.hpp"
#include "util/time.hpp"

namespace stampede::aru {

/// Per-thread iteration timer. Owned and driven by the measured thread
/// itself; the in-flight bookkeeping is not thread-safe. The two
/// *results* — `current_stp()` and `iterations()` — are published as
/// relaxed atomics so monitors (tests, diagnostics) may poll them from
/// other threads; each is an independent monotonic-ish value with no
/// cross-field invariant, so relaxed ordering is sufficient.
class StpMeter {
 public:
  /// Marks the start of a loop iteration at instant `now`.
  ARU_HOT_PATH void begin_iteration(Nanos now);

  /// Accumulates time spent blocked on an empty input buffer.
  ARU_HOT_PATH void add_blocked(Nanos d);

  /// Accumulates time spent sleeping under ARU pacing.
  ARU_HOT_PATH void add_paced_sleep(Nanos d);

  /// Ends the iteration at instant `now` and returns the measured
  /// current-STP: (now − iteration start) − blocked − paced sleep,
  /// clamped at zero.
  ARU_HOT_PATH Nanos end_iteration(Nanos now);

  /// Most recent current-STP (0 before the first completed iteration).
  Nanos current_stp() const { return Nanos{current_ns_.load(std::memory_order_relaxed)}; }

  /// Whole-iteration wall period of the last iteration (including blocking
  /// and pacing sleep) — the thread's *observed* production period.
  Nanos last_period() const { return last_period_; }

  /// Blocked time accumulated in the current (not yet ended) iteration.
  Nanos blocked_in_flight() const { return blocked_; }

  /// Iteration start instant (valid between begin/end).
  Nanos iteration_start() const { return iter_start_; }

  /// Completed iterations so far.
  std::int64_t iterations() const { return iterations_.load(std::memory_order_relaxed); }

 private:
  Nanos iter_start_{0};
  Nanos blocked_{0};
  Nanos paced_{0};
  std::atomic<std::int64_t> current_ns_{0};
  Nanos last_period_{0};
  std::atomic<std::int64_t> iterations_{0};
  bool in_iteration_ = false;
};

}  // namespace stampede::aru
