/// \file policy.hpp
/// \brief ARU policy configuration (paper §3.3).
///
/// The Adaptive Resource Utilization mechanism is configured per runtime:
/// which compress operator folds the backwardSTP vector (§3.3.2, Figs. 3-4),
/// whether non-source threads are also paced (the paper paces sources only
/// and lets the slow-down cascade), and which smoothing filter — if any —
/// is applied to outgoing summary-STP values (the paper's named future-work
/// extension).
#pragma once

#include <string>

namespace stampede::aru {

/// Backward-STP compression operator selection.
enum class Mode {
  kOff,     ///< ARU disabled: no feedback, no pacing (paper's "No ARU").
  kMin,     ///< Default conservative operator: sustain the fastest consumer.
  kMax,     ///< Aggressive operator: match the slowest consumer; safe only
            ///< when consumers' results all feed one common sink (Fig. 4).
  kCustom,  ///< User-supplied compress function (paper §3.3.2's
            ///< "user-defined function that captures data-dependencies").
};

/// Parses "off" | "min" | "max" | "custom"; throws on anything else.
Mode parse_mode(const std::string& s);

/// Human-readable mode name.
std::string to_string(Mode mode);

/// Complete ARU configuration for a runtime instance.
struct Config {
  Mode mode = Mode::kOff;

  /// Smoothing filter spec applied to each node's outgoing summary-STP
  /// ("passthrough" reproduces the published system; "ema:a", "median:w",
  /// "mean:w" enable the future-work extension).
  std::string filter = "passthrough";

  /// If true, every thread paces itself to its summary-STP; the paper's
  /// system paces source threads only (§3.3.2: "Source threads ... use the
  /// propagated summary-STP information to adjust their rate").
  bool throttle_non_source = false;

  /// Fraction of the (summary-STP − elapsed) gap that pacing sleeps each
  /// iteration. 1.0 = exact matching (the paper's behaviour); smaller
  /// values damp the controller (ablation knob).
  double pace_gain = 1.0;

  bool enabled() const { return mode != Mode::kOff; }
};

}  // namespace stampede::aru
