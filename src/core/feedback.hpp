/// \file feedback.hpp
/// \brief Per-node ARU feedback state: the backwardSTP vector, the
///        compressed-backwardSTP, and the summary-STP (paper §3.3.2, Fig. 3).
///
/// Every node in the task graph — thread, channel, or queue — owns one
/// `FeedbackState`. Downstream nodes piggy-back their summary-STP on get
/// operations (`update_backward`); thread nodes additionally feed their
/// measured current-STP (`set_current_stp`). The node's own summary-STP:
///
///   summary = is_thread ? max(compress(backwardSTP), current-STP)
///                       : compress(backwardSTP)
///
/// optionally smoothed by a feedback filter before being propagated
/// upstream on the next put.
///
/// Thread-safety: a thread node's FeedbackState is *driven* only by its
/// owning thread; a channel/queue node's FeedbackState is protected by the
/// channel/queue mutex. The mutators are not synchronized. The computed
/// results — `summary()`, `compressed_backward()`, `current_stp()` — are
/// published as relaxed atomics so diagnostics and tests may poll a
/// thread node's view from outside; each is an independent scalar whose
/// readers tolerate staleness, so relaxed ordering is sufficient.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/compress.hpp"
#include "core/policy.hpp"
#include "util/static_annotations.hpp"
#include "util/filters.hpp"
#include "util/time.hpp"

namespace stampede::telemetry {
class Gauge;
}  // namespace stampede::telemetry

namespace stampede::aru {

class FeedbackState {
 public:
  /// \param mode       compress-operator selection (kOff disables everything;
  ///                    summary() then always returns kUnknownStp).
  /// \param is_thread  thread nodes blend in their current-STP.
  /// \param custom     compress function used when mode == kCustom.
  /// \param filter     optional smoothing of the outgoing summary-STP
  ///                    (nullptr == passthrough).
  FeedbackState(Mode mode, bool is_thread, CompressFn custom = {},
                std::unique_ptr<Filter> filter = nullptr);

  // Movable for container storage during single-threaded graph/simulator
  // construction; the atomics make the defaults undeclarable. Must not be
  // moved once feedback is flowing.
  FeedbackState(FeedbackState&& other) noexcept
      : mode_(other.mode_),
        is_thread_(other.is_thread_),
        compress_(std::move(other.compress_)),
        filter_(std::move(other.filter_)),
        backward_(std::move(other.backward_)),
        current_ns_(other.current_ns_.load(std::memory_order_relaxed)),
        compressed_ns_(other.compressed_ns_.load(std::memory_order_relaxed)),
        summary_ns_(other.summary_ns_.load(std::memory_order_relaxed)),
        current_gauge_(other.current_gauge_),
        summary_gauge_(other.summary_gauge_) {}
  FeedbackState& operator=(FeedbackState&& other) noexcept {
    mode_ = other.mode_;
    is_thread_ = other.is_thread_;
    compress_ = std::move(other.compress_);
    filter_ = std::move(other.filter_);
    backward_ = std::move(other.backward_);
    current_ns_.store(other.current_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    compressed_ns_.store(other.compressed_ns_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    summary_ns_.store(other.summary_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    current_gauge_ = other.current_gauge_;
    summary_gauge_ = other.summary_gauge_;
    return *this;
  }

  /// Mirrors the computed STP scalars into live telemetry gauges: every
  /// recompute stores the new summary (and every set_current_stp the new
  /// current-STP) into the bound gauge. Unknown STP is published as 0 —
  /// the exposition plane treats "no signal yet" as zero, not as the
  /// negative kUnknownStp sentinel. Either pointer may be null; call
  /// during graph construction, before feedback flows (same discipline
  /// as add_output).
  void bind_gauges(telemetry::Gauge* current, telemetry::Gauge* summary);

  /// Registers one more output connection; returns its slot index in the
  /// backwardSTP vector. Must be called during graph construction, before
  /// any feedback flows.
  int add_output();

  /// Records a summary-STP received from the downstream node on output
  /// connection `slot`, then recomputes this node's summary.
  ARU_HOT_PATH void update_backward(int slot, Nanos summary);

  /// Thread nodes: records the locally measured current-STP for this
  /// iteration, then recomputes the summary.
  ARU_HOT_PATH void set_current_stp(Nanos stp);

  /// This node's summary-STP to piggy-back upstream (kUnknownStp if no
  /// information yet or ARU is off).
  Nanos summary() const { return Nanos{summary_ns_.load(std::memory_order_relaxed)}; }

  /// The compressed backwardSTP (before blending current-STP); exposed for
  /// tests and for pacing decisions.
  Nanos compressed_backward() const {
    return Nanos{compressed_ns_.load(std::memory_order_relaxed)};
  }

  /// Last current-STP fed in (threads only).
  Nanos current_stp() const { return Nanos{current_ns_.load(std::memory_order_relaxed)}; }

  /// Read-only view of the backward vector. Unlike the scalar results this
  /// is NOT safe to poll from outside: callers must be the driving thread
  /// (or hold the owning channel/queue lock).
  std::span<const Nanos> backward() const { return backward_; }

  Mode mode() const { return mode_; }
  bool is_thread() const { return is_thread_; }
  std::size_t outputs() const { return backward_.size(); }

 private:
  void recompute();

  Mode mode_;
  bool is_thread_;
  CompressFn compress_;
  std::unique_ptr<Filter> filter_;
  std::vector<Nanos> backward_;
  std::atomic<std::int64_t> current_ns_{kUnknownStp.count()};
  std::atomic<std::int64_t> compressed_ns_{kUnknownStp.count()};
  std::atomic<std::int64_t> summary_ns_{kUnknownStp.count()};
  telemetry::Gauge* current_gauge_ = nullptr;
  telemetry::Gauge* summary_gauge_ = nullptr;
};

}  // namespace stampede::aru
