#include "vision/tracker.hpp"

namespace stampede::vision {

PressureModel default_pressure() {
  // Calibrated so the unthrottled (No-ARU) baseline suffers the
  // load-dependent slowdown the paper measured on its real testbed
  // (channel scan/GC work plus allocator pressure), while the ARU modes —
  // whose channels stay nearly empty — are barely affected.
  return PressureModel{
      .per_item_scan = micros(300),
      .per_mb_alloc = micros(100),
      .compute_dilation_per_mb = 0.08,
  };
}

RuntimeConfig runtime_config(const TrackerOptions& opts) {
  RuntimeConfig cfg;
  cfg.aru = aru::Config{.mode = opts.aru,
                        .filter = opts.aru_filter,
                        .throttle_non_source = opts.throttle_non_source,
                        .pace_gain = opts.pace_gain};
  cfg.gc = opts.gc;
  cfg.cost_mode = opts.cost_mode;
  cfg.pressure = opts.pressure;
  cfg.sched_noise = opts.sched_noise;
  cfg.seed = opts.seed;
  if (opts.cluster_config == 2) {
    cfg.topology = cluster::Topology::uniform(5, cluster::Topology::gigabit_link());
  } else {
    cfg.topology = cluster::Topology::single_node();
  }
  return cfg;
}

TrackerHandles build_tracker(Runtime& rt, const TrackerOptions& opts) {
  const bool dist = opts.cluster_config == 2;
  // Paper config 2: the five stages on five nodes (the two detector
  // threads belong to the single target-detection task), channels on
  // their producers' nodes.
  const int n_dig = 0;
  const int n_bg = dist ? 1 : 0;
  const int n_hist = dist ? 2 : 0;
  const int n_det = dist ? 3 : 0;
  const int n_gui = dist ? 4 : 0;

  auto gen = std::make_shared<SceneGenerator>(opts.seed);
  auto stats0 = std::make_shared<DetectionStats>();
  auto stats1 = std::make_shared<DetectionStats>();
  const aru::CompressFn& op = opts.custom_compress;

  Channel& frames = rt.add_channel({.name = "C1:frames",
                                    .cluster_node = n_dig,
                                    .capacity = opts.frame_capacity,
                                    .custom_compress = op});
  Channel& masks =
      rt.add_channel({.name = "C2:masks", .cluster_node = n_bg, .custom_compress = op});
  Channel& hists =
      rt.add_channel({.name = "C3:hists", .cluster_node = n_hist, .custom_compress = op});
  Channel& loc1 =
      rt.add_channel({.name = "C4:loc1", .cluster_node = n_det, .custom_compress = op});
  Channel& loc2 =
      rt.add_channel({.name = "C5:loc2", .cluster_node = n_det, .custom_compress = op});

  TaskContext& dig = rt.add_task(
      {.name = "digitizer",
       .cluster_node = n_dig,
       .body = make_digitizer(gen, opts.costs, opts.max_frames, opts.stride),
       .custom_compress = op});
  TaskContext& bg = rt.add_task({.name = "background",
                                 .cluster_node = n_bg,
                                 .body = make_background(opts.costs, opts.stride),
                                 .custom_compress = op});
  TaskContext& hist = rt.add_task({.name = "histogram",
                                   .cluster_node = n_hist,
                                   .body = make_histogram(opts.costs, opts.stride),
                                   .custom_compress = op});
  TaskContext& det1 = rt.add_task(
      {.name = "detect-m1",
       .cluster_node = n_det,
       .body = make_target_detection(gen, opts.costs, 0, opts.stride, stats0),
       .custom_compress = op});
  TaskContext& det2 = rt.add_task(
      {.name = "detect-m2",
       .cluster_node = n_det,
       .body = make_target_detection(gen, opts.costs, 1, opts.stride, stats1),
       .custom_compress = op});
  TaskContext& gui = rt.add_task({.name = "gui",
                                  .cluster_node = n_gui,
                                  .body = make_gui(opts.costs),
                                  .custom_compress = op});

  // Producer edges.
  rt.connect(dig, frames);
  rt.connect(bg, masks);
  rt.connect(hist, hists);
  rt.connect(det1, loc1);
  rt.connect(det2, loc2);

  // Consumer edges; detector input order is masks, hists, frames
  // (matching make_target_detection's port convention).
  rt.connect(frames, bg);
  rt.connect(frames, hist);
  rt.connect(masks, det1);
  rt.connect(hists, det1);
  rt.connect(frames, det1);
  rt.connect(masks, det2);
  rt.connect(hists, det2);
  rt.connect(frames, det2);
  rt.connect(loc1, gui);
  rt.connect(loc2, gui);

  return TrackerHandles{
      .detect_stats = {std::move(stats0), std::move(stats1)},
      .digitizer = dig.id(),
      .background = bg.id(),
      .histogram = hist.id(),
      .detect1 = det1.id(),
      .detect2 = det2.id(),
      .gui = gui.id(),
      .frames = &frames,
      .masks = &masks,
      .hists = &hists,
      .loc1 = &loc1,
      .loc2 = &loc2,
  };
}

TrackerResult run_tracker(const TrackerOptions& opts) {
  Runtime rt(runtime_config(opts));
  build_tracker(rt, opts);
  rt.start();
  rt.clock().sleep_for(opts.duration);
  rt.stop();

  TrackerResult result;
  result.trace = rt.take_trace();
  const stats::Analyzer analyzer(result.trace,
                                 {.warmup_fraction = opts.warmup_fraction});
  result.analysis = analyzer.run();
  return result;
}

std::string label(const TrackerOptions& opts) {
  std::string name = opts.aru == aru::Mode::kOff ? "No ARU" : ("ARU-" + aru::to_string(opts.aru));
  name += " cfg";
  name += std::to_string(opts.cluster_config);
  return name;
}

}  // namespace stampede::vision
