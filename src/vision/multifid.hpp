/// \file multifid.hpp
/// \brief The paper's Figure-1 application: a multi-fidelity vision
///        pipeline (Digitizer → Low-fi tracker → Decision → High-fi
///        tracker → GUI) with decision records flowing through Queues.
///
/// The low-fidelity tracker scans every frame cheaply (coarse stride);
/// the decision stage inspects the low-fi result and enqueues a *decision
/// record* only when the target looks interesting (confidence above a
/// threshold); the high-fidelity tracker dequeues decisions exactly-once
/// (Queue semantics), re-fetches the referenced frame by timestamp
/// (random-access correspondence) and re-analyzes it at fine stride. The
/// GUI displays every high-fi result.
///
/// This is the second application shape of the paper, exercising Queues,
/// `get_at`, and data-dependent stage rates under ARU.
#pragma once

#include <cstdint>

#include "runtime/runtime.hpp"
#include "vision/frame.hpp"

namespace stampede::vision {

struct MultiFidOptions {
  aru::Mode aru = aru::Mode::kOff;
  std::uint64_t seed = 33;
  /// Per-stage costs (scaled-time model, like the tracker).
  Nanos digitizer_cost = millis(4);
  Nanos lowfi_cost = millis(10);
  Nanos decision_cost = millis(2);
  Nanos highfi_cost = millis(30);
  Nanos gui_cost = millis(3);
  /// Low-fi confidence above which a decision record is issued.
  double interest_threshold = 0.001;
  /// Strides: coarse for low-fi, fine for high-fi.
  /// The digitizer renders frames at highfi_stride; both trackers sample
  /// the rendered grid. lowfi_stride must therefore be a multiple of
  /// highfi_stride — payloads are pooled and not zero-filled, so sampling
  /// off the rendered grid reads recycled bytes, not benign zeros.
  int lowfi_stride = 16;
  int highfi_stride = 4;
};

struct MultiFidHandles {
  NodeId digitizer = kNoNode;
  NodeId lowfi = kNoNode;
  NodeId decision = kNoNode;
  NodeId highfi = kNoNode;
  NodeId gui = kNoNode;
  Channel* frames = nullptr;
  Channel* lowfi_records = nullptr;
  Queue* decisions = nullptr;
  Channel* highfi_records = nullptr;
  /// Live counters (shared with the running tasks).
  struct Counters {
    std::atomic<std::int64_t> lowfi_scans{0};
    std::atomic<std::int64_t> decisions_issued{0};
    std::atomic<std::int64_t> highfi_runs{0};
    std::atomic<std::int64_t> highfi_frame_missing{0};
  };
  std::shared_ptr<Counters> counters;
};

/// Wires the Figure-1 pipeline into `rt`.
MultiFidHandles build_multifid(Runtime& rt, const MultiFidOptions& opts);

}  // namespace stampede::vision
