#include "vision/frame.hpp"

#include <cmath>
#include <stdexcept>

namespace stampede::vision {

namespace {

std::size_t pixel_offset(int x, int y, int width) {
  return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
          static_cast<std::size_t>(x)) *
         3;
}

void check_bounds(int x, int y, int width, int height) {
  if (x < 0 || x >= width || y < 0 || y >= height) {
    throw std::out_of_range("FrameView: pixel out of bounds");
  }
}

void check_row(int y, int height) {
  if (y < 0 || y >= height) {
    throw std::out_of_range("FrameView: row out of bounds");
  }
}

}  // namespace

FrameView::FrameView(std::span<std::byte> data, int width, int height)
    : data_(data), width_(width), height_(height) {
  if (data.size() < static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3) {
    throw std::invalid_argument("FrameView: buffer too small");
  }
}

Rgb FrameView::get(int x, int y) const {
  check_bounds(x, y, width_, height_);
  const std::size_t off = pixel_offset(x, y, width_);
  return Rgb{static_cast<std::uint8_t>(data_[off]), static_cast<std::uint8_t>(data_[off + 1]),
             static_cast<std::uint8_t>(data_[off + 2])};
}

void FrameView::set(int x, int y, Rgb c) {
  check_bounds(x, y, width_, height_);
  const std::size_t off = pixel_offset(x, y, width_);
  data_[off] = std::byte{c.r};
  data_[off + 1] = std::byte{c.g};
  data_[off + 2] = std::byte{c.b};
}

int FrameView::luminance(int x, int y) const {
  const Rgb c = get(x, y);
  return (static_cast<int>(c.r) * 299 + static_cast<int>(c.g) * 587 +
          static_cast<int>(c.b) * 114) /
         1000;
}

std::uint8_t* FrameView::row(int y) {
  check_row(y, height_);
  return reinterpret_cast<std::uint8_t*>(data_.data()) + pixel_offset(0, y, width_);
}

const std::uint8_t* FrameView::row(int y) const {
  check_row(y, height_);
  return reinterpret_cast<const std::uint8_t*>(data_.data()) + pixel_offset(0, y, width_);
}

std::span<std::byte> FrameView::row_span(int y) {
  check_row(y, height_);
  return data_.subspan(pixel_offset(0, y, width_), static_cast<std::size_t>(width_) * 3);
}

ConstFrameView::ConstFrameView(std::span<const std::byte> data, int width, int height)
    : data_(data), width_(width), height_(height) {
  if (data.size() < static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3) {
    throw std::invalid_argument("ConstFrameView: buffer too small");
  }
}

Rgb ConstFrameView::get(int x, int y) const {
  check_bounds(x, y, width_, height_);
  const std::size_t off = pixel_offset(x, y, width_);
  return Rgb{static_cast<std::uint8_t>(data_[off]), static_cast<std::uint8_t>(data_[off + 1]),
             static_cast<std::uint8_t>(data_[off + 2])};
}

int ConstFrameView::luminance(int x, int y) const {
  const Rgb c = get(x, y);
  return (static_cast<int>(c.r) * 299 + static_cast<int>(c.g) * 587 +
          static_cast<int>(c.b) * 114) /
         1000;
}

const std::uint8_t* ConstFrameView::row(int y) const {
  check_row(y, height_);
  return reinterpret_cast<const std::uint8_t*>(data_.data()) + pixel_offset(0, y, width_);
}

std::span<const std::byte> ConstFrameView::row_span(int y) const {
  check_row(y, height_);
  return data_.subspan(pixel_offset(0, y, width_), static_cast<std::size_t>(width_) * 3);
}

SceneGenerator::SceneGenerator(std::uint64_t seed) : seed_(seed) {
  // Two well-separated, saturated colors so the two target-detection
  // models track distinct "people".
  colors_[0] = Rgb{220, 40, 40};   // red shirt
  colors_[1] = Rgb{40, 60, 220};   // blue shirt
}

Rgb SceneGenerator::model_color(int model) const {
  if (model < 0 || model > 1) throw std::out_of_range("SceneGenerator: model index");
  return colors_[model];
}

Scene SceneGenerator::scene_at(std::int64_t index) const {
  // Smooth Lissajous-style paths; phase offsets derived from the seed so
  // different seeds give different (still deterministic) trajectories.
  SplitMix64 sm(seed_);
  const double p0 = static_cast<double>(sm.next() % 1000) / 1000.0 * 6.28318;
  const double p1 = static_cast<double>(sm.next() % 1000) / 1000.0 * 6.28318;
  const double t = static_cast<double>(index) * 0.045;

  Scene s;
  s.blobs[0].color = colors_[0];
  s.blobs[0].cx = kWidth * (0.5 + 0.35 * std::sin(t + p0));
  s.blobs[0].cy = kHeight * (0.5 + 0.30 * std::cos(1.3 * t + p0));
  s.blobs[1].color = colors_[1];
  s.blobs[1].cx = kWidth * (0.5 + 0.35 * std::cos(0.8 * t + p1));
  s.blobs[1].cy = kHeight * (0.5 + 0.30 * std::sin(1.1 * t + p1));
  return s;
}

void SceneGenerator::render(std::int64_t index, std::span<std::byte> data, int stride) const {
  if (stride <= 0) throw std::invalid_argument("SceneGenerator: stride must be positive");
  FrameView frame(data);
  const Scene scene = scene_at(index);
  // Per-frame noise stream: deterministic but different per frame.
  Xoshiro256 rng(seed_ ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(index + 1)));

  for (int y = 0; y < kHeight; y += stride) {
    std::uint8_t* row = frame.row(y);
    for (int x = 0; x < kWidth; x += stride) {
      // Noisy gray background.
      const auto noise = static_cast<std::uint8_t>(96 + (rng.next() & 31));
      Rgb px{noise, noise, noise};
      for (const Blob& b : scene.blobs) {
        const double dx = x - b.cx;
        const double dy = y - b.cy;
        if (dx * dx + dy * dy <= b.radius * b.radius) {
          px = b.color;
        }
      }
      std::uint8_t* out = row + 3 * x;
      out[0] = px.r;
      out[1] = px.g;
      out[2] = px.b;
    }
  }
}

}  // namespace stampede::vision
