/// \file frame.hpp
/// \brief Synthetic video frames and the scene generator — the substitute
///        for the paper's live camera feed (DESIGN.md §2).
///
/// Frames are interpreted views over item payload bytes. Dimensions match
/// the paper's reported item sizes exactly: 640×384 RGB = 737 280 B
/// ("Digitizer 738 kB"), 640×384×1 = 245 760 B ("Background 246 kB").
///
/// The scene is a noisy gray background with two moving colored blobs
/// (the two "people" tracked by the two color models). Generation is
/// fully deterministic given (seed, frame index), so every experiment is
/// reproducible and both pipeline configurations see identical input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace stampede::vision {

inline constexpr int kWidth = 640;
inline constexpr int kHeight = 384;
inline constexpr std::size_t kFrameBytes = static_cast<std::size_t>(kWidth) * kHeight * 3;
inline constexpr std::size_t kMaskBytes = static_cast<std::size_t>(kWidth) * kHeight;

/// Default pixel stride for kernels and generation: only every Nth pixel
/// in every Nth row is touched, keeping real CPU work small relative to
/// the emulated stage costs while still exercising genuine pixel code.
inline constexpr int kDefaultStride = 8;

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// Mutable RGB frame view over a payload buffer (no ownership).
class FrameView {
 public:
  FrameView(std::span<std::byte> data, int width = kWidth, int height = kHeight);

  int width() const { return width_; }
  int height() const { return height_; }

  Rgb get(int x, int y) const;
  void set(int x, int y, Rgb c);

  /// Grayscale intensity of a pixel (0-255).
  int luminance(int x, int y) const;

  /// Pointer to row `y`: 3 interleaved RGB bytes per pixel, `width()`
  /// pixels. Bounds-checked once per row — the hot-loop accessor; kernel
  /// inner loops index the row directly instead of paying `get`'s
  /// per-pixel checks and Rgb construction.
  std::uint8_t* row(int y);
  const std::uint8_t* row(int y) const;

  /// Row `y` as a span of 3·width() bytes.
  std::span<std::byte> row_span(int y);

 private:
  std::span<std::byte> data_;
  int width_;
  int height_;
};

/// Read-only frame view.
class ConstFrameView {
 public:
  ConstFrameView(std::span<const std::byte> data, int width = kWidth, int height = kHeight);

  int width() const { return width_; }
  int height() const { return height_; }
  Rgb get(int x, int y) const;
  int luminance(int x, int y) const;

  /// Pointer to row `y` (see FrameView::row).
  const std::uint8_t* row(int y) const;

  /// Row `y` as a span of 3·width() bytes.
  std::span<const std::byte> row_span(int y) const;

 private:
  std::span<const std::byte> data_;
  int width_;
  int height_;
};

/// One tracked blob ("person") with a distinctive color.
struct Blob {
  Rgb color;
  double radius = 28.0;
  /// Center position for a given frame index (smooth deterministic path).
  double cx = 0.0, cy = 0.0;
};

/// Ground-truth scene state at one frame index.
struct Scene {
  Blob blobs[2];
};

/// Deterministic synthetic scene/frame source.
class SceneGenerator {
 public:
  explicit SceneGenerator(std::uint64_t seed);

  /// Ground truth for frame `index` (used by tests to validate detection).
  Scene scene_at(std::int64_t index) const;

  /// Renders frame `index` into `data` (size >= kFrameBytes). Touches
  /// every `stride`-th pixel of every `stride`-th row; untouched bytes are
  /// left as-is. Item payloads are pooled and NOT zero-filled, so the
  /// untouched bytes are arbitrary — every kernel downstream must sample
  /// the same stride grid (or a coarser multiple of it) and never read
  /// between grid points. Debug builds poison fresh payloads (0xA5) so a
  /// misaligned reader fails loudly instead of quietly seeing zeros.
  void render(std::int64_t index, std::span<std::byte> data, int stride = kDefaultStride) const;

  /// The two color models the target-detection stages search for.
  Rgb model_color(int model) const;

 private:
  std::uint64_t seed_;
  Rgb colors_[2];
};

}  // namespace stampede::vision
