#include "vision/stages.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "vision/kernels.hpp"
#include "vision/records.hpp"

namespace stampede::vision {

StageCosts StageCosts::scaled(double f) const {
  auto mul = [f](Nanos n) {
    return Nanos{static_cast<std::int64_t>(static_cast<double>(n.count()) * f)};
  };
  StageCosts out = *this;
  out.digitizer = mul(digitizer);
  out.background = mul(background);
  out.histogram = mul(histogram);
  out.detect0 = mul(detect0);
  out.detect1 = mul(detect1);
  out.gui = mul(gui);
  return out;
}

Nanos jittered(Nanos base, double jitter, Xoshiro256& rng) {
  if (jitter <= 0.0) return base;
  const double factor = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
  return Nanos{static_cast<std::int64_t>(static_cast<double>(base.count()) * factor)};
}

namespace {

/// Runs `kernel` timing it on the task clock, accounts the real time, and
/// pads with emulated compute up to the jittered `target`.
template <typename Fn>
void timed_stage_work(TaskContext& ctx, Nanos target, double jitter, Fn&& kernel) {
  const Nanos goal = jittered(target, jitter, ctx.rng());
  const Nanos t0 = ctx.now();
  kernel();
  const Nanos real = ctx.now() - t0;
  ctx.account_compute(real);
  if (goal > real) ctx.compute(goal - real);
}

}  // namespace

TaskBody make_digitizer(std::shared_ptr<SceneGenerator> gen, StageCosts costs,
                        std::int64_t max_frames, int stride) {
  struct State {
    std::shared_ptr<SceneGenerator> gen;
    Timestamp next_ts = 0;
  };
  auto state = std::make_shared<State>(State{.gen = std::move(gen)});
  return [state, costs, max_frames, stride](TaskContext& ctx) {
    if (state->next_ts >= max_frames || ctx.stopping()) return TaskStatus::kDone;
    const Timestamp ts = state->next_ts++;

    auto frame = ctx.make_item(ts, kFrameBytes, {});
    timed_stage_work(ctx, costs.digitizer, costs.jitter,
                     [&] { state->gen->render(ts, frame->mutable_data(), stride); });
    ctx.put(0, frame);
    return state->next_ts >= max_frames ? TaskStatus::kDone : TaskStatus::kContinue;
  };
}

TaskBody make_background(StageCosts costs, int stride) {
  struct State {
    std::vector<std::byte> prev = std::vector<std::byte>(kFrameBytes);
    bool has_prev = false;
  };
  auto state = std::make_shared<State>();
  return [state, costs, stride](TaskContext& ctx) {
    auto frame = ctx.get(0);
    if (!frame) return TaskStatus::kDone;

    // DGC computation elimination: skip stage work whose output timestamp
    // is already dead downstream (paper §3.2 — rarely fires because
    // upstream stages run ahead of downstream ones).
    if (!ctx.outputs_want(frame->ts())) {
      ctx.elide(costs.background);
      return TaskStatus::kContinue;
    }

    auto mask = ctx.make_item(frame->ts(), kMaskBytes, {frame->id()});
    timed_stage_work(ctx, costs.background, costs.jitter, [&] {
      const ConstFrameView cur(frame->data());
      if (state->has_prev) {
        const ConstFrameView prev(std::span<const std::byte>(state->prev));
        frame_difference(cur, prev, mask->mutable_data(), /*threshold=*/24, stride);
      } else {
        // No previous frame yet: emit an explicit no-motion mask. Pooled
        // payloads are not zero-filled, so the first mask must be written
        // like any other — frame_difference covers the later ones.
        std::memset(mask->mutable_data().data(), 0, kMaskBytes);
      }
      std::memcpy(state->prev.data(), frame->data().data(), kFrameBytes);
      state->has_prev = true;
    });
    ctx.put(0, mask);
    return TaskStatus::kContinue;
  };
}

TaskBody make_histogram(StageCosts costs, int stride) {
  return [costs, stride](TaskContext& ctx) {
    auto frame = ctx.get(0);
    if (!frame) return TaskStatus::kDone;
    if (!ctx.outputs_want(frame->ts())) {
      ctx.elide(costs.histogram);
      return TaskStatus::kContinue;
    }

    auto hist = ctx.make_item(frame->ts(), kHistogramBytes, {frame->id()});
    timed_stage_work(ctx, costs.histogram, costs.jitter, [&] {
      color_histogram(ConstFrameView(frame->data()), hist->mutable_data(), stride);
    });
    ctx.put(0, hist);
    return TaskStatus::kContinue;
  };
}

TaskBody make_target_detection(std::shared_ptr<SceneGenerator> gen, StageCosts costs,
                               int model, int stride,
                               std::shared_ptr<DetectionStats> stats) {
  const Nanos base = model == 0 ? costs.detect0 : costs.detect1;
  return [gen, costs, base, model, stride, stats](TaskContext& ctx) {
    auto mask = ctx.get(0);
    if (!mask) return TaskStatus::kDone;
    auto hist = ctx.get(1);
    if (!hist) return TaskStatus::kDone;
    auto frame = ctx.get(2);
    if (!frame) return TaskStatus::kDone;

    if (!ctx.outputs_want(frame->ts())) {
      ctx.elide(base);
      return TaskStatus::kContinue;
    }

    auto loc = ctx.make_item(frame->ts(), kLocationBytes,
                             {mask->id(), hist->id(), frame->id()});
    timed_stage_work(ctx, base, costs.jitter, [&] {
      LocationRecord rec =
          detect_target(ConstFrameView(frame->data()), mask->data(),
                        ConstHistogramView(hist->data()), gen->model_color(model), model,
                        stride);
      rec.frame_ts = frame->ts();
      const Scene truth = gen->scene_at(frame->ts());
      rec.truth_x = truth.blobs[model].cx;
      rec.truth_y = truth.blobs[model].cy;
      write_location(loc->mutable_data(), rec);
      if (stats) {
        if (rec.found != 0) {
          const double dx = rec.x - rec.truth_x;
          const double dy = rec.y - rec.truth_y;
          stats->found.fetch_add(1, std::memory_order_relaxed);
          stats->err_millipx.fetch_add(
              static_cast<std::int64_t>(std::sqrt(dx * dx + dy * dy) * 1000.0),
              std::memory_order_relaxed);
        } else {
          stats->missed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    ctx.put(0, loc);
    return TaskStatus::kContinue;
  };
}

TaskBody make_gui(StageCosts costs) {
  return [costs](TaskContext& ctx) {
    auto loc1 = ctx.get(0);
    if (!loc1) return TaskStatus::kDone;
    auto loc2 = ctx.get(1);
    if (!loc2) return TaskStatus::kDone;

    // "Display": touch both records (deserialize) and burn the GUI cost.
    timed_stage_work(ctx, costs.gui, costs.jitter, [&] {
      (void)read_location(loc1->data());
      (void)read_location(loc2->data());
    });
    ctx.emit(*loc1);
    ctx.emit(*loc2);
    ctx.display(std::max(loc1->ts(), loc2->ts()));
    return TaskStatus::kContinue;
  };
}

}  // namespace stampede::vision
