/// \file image_io.hpp
/// \brief PPM/PGM image output for frames, masks and detection overlays.
///
/// Debugging aid for the synthetic vision substrate: dump any frame, a
/// motion mask, or a frame with detection/ground-truth markers to NetPBM
/// files viewable anywhere. Used by the `dump_frames` example and the
/// vision tests' failure diagnostics.
#pragma once

#include <string>
#include <vector>

#include "vision/frame.hpp"
#include "vision/records.hpp"

namespace stampede::vision {

/// Writes an RGB frame as binary PPM (P6). Throws std::runtime_error on
/// I/O failure.
void write_ppm(const std::string& path, ConstFrameView frame);

/// Writes a single-channel mask as binary PGM (P5).
void write_pgm(const std::string& path, std::span<const std::byte> mask,
               int width = kWidth, int height = kHeight);

/// Draws a cross marker (no clipping issues: silently clipped at edges).
void draw_marker(FrameView frame, int cx, int cy, Rgb color, int arm = 9);

/// Draws detection (solid cross) and ground truth (outlined cross) for a
/// location record onto `frame`.
void overlay_detection(FrameView frame, const LocationRecord& rec);

/// Reads back a PPM written by write_ppm (tests); returns false when the
/// file is missing or malformed.
bool read_ppm(const std::string& path, std::vector<std::byte>& data, int& width,
              int& height);

}  // namespace stampede::vision
