/// \file stereo.hpp
/// \brief Stereo-correspondence substrate — the paper's §1 motivating
///        example: "a stereo module in an interactive vision application
///        may require images with corresponding timestamps from multiple
///        cameras to compute its output".
///
/// Two synthetic cameras view the same scene from a horizontal baseline;
/// a block-matching kernel estimates per-blob disparity, from which depth
/// follows. The stereo pipeline (examples/stereo_pipeline.cpp) uses the
/// channel's random-access mode (`get_at`) to fetch the right-camera
/// frame whose timestamp *corresponds* to the left one — exactly the
/// access pattern the timestamped-channel abstraction exists for.
#pragma once

#include <optional>

#include "vision/frame.hpp"

namespace stampede::vision {

/// Synthetic stereo rig over one SceneGenerator scene.
class StereoRig {
 public:
  /// \param seed      scene seed (both cameras share the scene).
  /// \param baseline_px horizontal pixel shift between the two cameras'
  ///        views of the blobs (disparity ground truth for distant
  ///        background is 0; blobs shift by the full baseline).
  StereoRig(std::uint64_t seed, int baseline_px = 24);

  /// Renders the left / right view of frame `index` into `data`.
  void render_left(std::int64_t index, std::span<std::byte> data,
                   int stride = kDefaultStride) const;
  void render_right(std::int64_t index, std::span<std::byte> data,
                    int stride = kDefaultStride) const;

  int baseline_px() const { return baseline_px_; }
  const SceneGenerator& scene() const { return gen_; }

 private:
  void render_shifted(std::int64_t index, std::span<std::byte> data, int stride,
                      int shift) const;

  SceneGenerator gen_;
  int baseline_px_;
};

/// Disparity estimate for one tracked blob.
struct DisparityEstimate {
  bool found = false;
  double disparity_px = 0.0;  ///< horizontal shift left→right
  double left_x = 0.0, left_y = 0.0;
};

/// Estimates blob disparity between corresponding frames by locating the
/// blob of `model_color` in both views (strided color matching) and
/// differencing the centroids. Frames must share a timestamp; mismatched
/// scenes simply yield garbage disparity — which the pipeline test
/// detects, demonstrating why timestamp correspondence matters.
DisparityEstimate estimate_disparity(ConstFrameView left, ConstFrameView right,
                                     Rgb model_color, int stride = kDefaultStride);

}  // namespace stampede::vision
