#include "vision/multifid.hpp"

#include <vector>

#include "vision/kernels.hpp"
#include "vision/records.hpp"

namespace stampede::vision {

namespace {

/// Low-fi record: the 68-byte location record reusing LocationRecord.
TaskBody make_lowfi(std::shared_ptr<SceneGenerator> gen, const MultiFidOptions& opts,
                    std::shared_ptr<MultiFidHandles::Counters> counters) {
  return [gen, opts, counters](TaskContext& ctx) {
    auto frame = ctx.get(0);
    if (!frame) return TaskStatus::kDone;

    const Nanos t0 = ctx.now();
    // Cheap full-frame scan: color centroid at coarse stride, no mask.
    std::vector<std::byte> no_mask;
    std::vector<std::byte> hist_payload(kHistogramBytes);
    color_histogram(ConstFrameView(frame->data()), hist_payload, opts.lowfi_stride);
    LocationRecord rec = detect_target(ConstFrameView(frame->data()), no_mask,
                                       ConstHistogramView(hist_payload),
                                       gen->model_color(0), 0, opts.lowfi_stride);
    rec.frame_ts = frame->ts();
    ctx.account_compute(ctx.now() - t0);
    ctx.compute(opts.lowfi_cost);

    auto out = ctx.make_item(frame->ts(), kLocationBytes, {frame->id()});
    write_location(out->mutable_data(), rec);
    ctx.put(0, out);
    counters->lowfi_scans.fetch_add(1, std::memory_order_relaxed);
    return TaskStatus::kContinue;
  };
}

TaskBody make_decision(const MultiFidOptions& opts,
                       std::shared_ptr<MultiFidHandles::Counters> counters) {
  return [opts, counters](TaskContext& ctx) {
    auto lowfi = ctx.get(0);
    if (!lowfi) return TaskStatus::kDone;
    const LocationRecord rec = read_location(lowfi->data());
    ctx.compute(opts.decision_cost);

    // Issue a decision record only for interesting frames.
    if (rec.found != 0 && rec.confidence > opts.interest_threshold) {
      auto decision = ctx.make_item(lowfi->ts(), kLocationBytes, {lowfi->id()});
      write_location(decision->mutable_data(), rec);
      ctx.put(0, decision);
      counters->decisions_issued.fetch_add(1, std::memory_order_relaxed);
    }
    return TaskStatus::kContinue;
  };
}

TaskBody make_highfi(std::shared_ptr<SceneGenerator> gen, const MultiFidOptions& opts,
                     std::shared_ptr<MultiFidHandles::Counters> counters) {
  return [gen, opts, counters](TaskContext& ctx) {
    auto decision = ctx.get(0);  // queue input: exactly-once
    if (!decision) return TaskStatus::kDone;
    const LocationRecord hint = read_location(decision->data());

    // Re-fetch the referenced frame by timestamp (random access). It may
    // already be collected if the high-fi stage lags far behind — then
    // the decision is stale and skipped.
    auto frame = ctx.get_at(1, hint.frame_ts);
    // Decisions arrive in timestamp order (FIFO queue), so frames below
    // this decision's timestamp will never be requested again.
    ctx.release_until(1, hint.frame_ts);
    if (!frame) {
      counters->highfi_frame_missing.fetch_add(1, std::memory_order_relaxed);
      return TaskStatus::kContinue;
    }

    const Nanos t0 = ctx.now();
    std::vector<std::byte> hist_payload(kHistogramBytes);
    color_histogram(ConstFrameView(frame->data()), hist_payload, opts.highfi_stride);
    std::vector<std::byte> no_mask;
    LocationRecord rec = detect_target(ConstFrameView(frame->data()), no_mask,
                                       ConstHistogramView(hist_payload),
                                       gen->model_color(0), 0, opts.highfi_stride);
    rec.frame_ts = frame->ts();
    const Scene truth = gen->scene_at(frame->ts());
    rec.truth_x = truth.blobs[0].cx;
    rec.truth_y = truth.blobs[0].cy;
    ctx.account_compute(ctx.now() - t0);
    ctx.compute(opts.highfi_cost);

    auto out = ctx.make_item(frame->ts(), kLocationBytes,
                             {decision->id(), frame->id()});
    write_location(out->mutable_data(), rec);
    ctx.put(0, out);
    counters->highfi_runs.fetch_add(1, std::memory_order_relaxed);
    return TaskStatus::kContinue;
  };
}

TaskBody make_fig1_gui(const MultiFidOptions& opts) {
  return [opts](TaskContext& ctx) {
    auto result = ctx.get(0);
    if (!result) return TaskStatus::kDone;
    ctx.compute(opts.gui_cost);
    ctx.emit(*result);
    ctx.display(result->ts());
    return TaskStatus::kContinue;
  };
}

TaskBody make_fig1_digitizer(std::shared_ptr<SceneGenerator> gen,
                             const MultiFidOptions& opts) {
  auto next_ts = std::make_shared<Timestamp>(0);
  return [gen, opts, next_ts](TaskContext& ctx) {
    const Timestamp ts = (*next_ts)++;
    auto frame = ctx.make_item(ts, kFrameBytes, {});
    const Nanos t0 = ctx.now();
    gen->render(ts, frame->mutable_data(), opts.highfi_stride);
    ctx.account_compute(ctx.now() - t0);
    ctx.compute(opts.digitizer_cost);
    ctx.put(0, frame);
    return TaskStatus::kContinue;
  };
}

}  // namespace

MultiFidHandles build_multifid(Runtime& rt, const MultiFidOptions& opts) {
  auto gen = std::make_shared<SceneGenerator>(opts.seed);
  MultiFidHandles handles;
  handles.counters = std::make_shared<MultiFidHandles::Counters>();

  Channel& frames = rt.add_channel({.name = "frames"});
  Channel& lowfi_records = rt.add_channel({.name = "lowfi-records"});
  Queue& decisions = rt.add_queue({.name = "decisions"});
  Channel& highfi_records = rt.add_channel({.name = "highfi-records"});

  TaskContext& dig =
      rt.add_task({.name = "digitizer", .body = make_fig1_digitizer(gen, opts)});
  TaskContext& lowfi =
      rt.add_task({.name = "lowfi-tracker", .body = make_lowfi(gen, opts, handles.counters)});
  TaskContext& decision =
      rt.add_task({.name = "decision", .body = make_decision(opts, handles.counters)});
  TaskContext& highfi =
      rt.add_task({.name = "highfi-tracker", .body = make_highfi(gen, opts, handles.counters)});
  TaskContext& gui = rt.add_task({.name = "gui", .body = make_fig1_gui(opts)});

  rt.connect(dig, frames);
  rt.connect(frames, lowfi);
  rt.connect(lowfi, lowfi_records);
  rt.connect(lowfi_records, decision);
  rt.connect(decision, decisions);
  rt.connect(decisions, highfi);   // input 0: decision queue
  rt.connect(frames, highfi);      // input 1: frame re-fetch via get_at
  rt.connect(highfi, highfi_records);
  rt.connect(highfi_records, gui);

  handles.digitizer = dig.id();
  handles.lowfi = lowfi.id();
  handles.decision = decision.id();
  handles.highfi = highfi.id();
  handles.gui = gui.id();
  handles.frames = &frames;
  handles.lowfi_records = &lowfi_records;
  handles.decisions = &decisions;
  handles.highfi_records = &highfi_records;
  return handles;
}

}  // namespace stampede::vision
