#include "vision/kernels.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stampede::vision {

namespace {

/// Grayscale intensity of an interleaved-RGB pixel (matches
/// FrameView::luminance).
inline int luma(const std::uint8_t* px) {
  return (static_cast<int>(px[0]) * 299 + static_cast<int>(px[1]) * 587 +
          static_cast<int>(px[2]) * 114) /
         1000;
}

/// Histogram bin for an interleaved-RGB pixel (matches hist_bin(Rgb);
/// 16 bins per axis reduces to a shift).
inline int pixel_bin(const std::uint8_t* px) {
  return ((px[0] >> 4) << 8) | ((px[1] >> 4) << 4) | (px[2] >> 4);
}

/// Per-channel Gaussian weight tables for w = exp(-‖c - model‖²/2σ²).
/// exp distributes over the sum of per-channel squared distances, so the
/// product lut.r[c.r]·lut.g[c.g]·lut.b[c.b] is the same weight computed
/// with three loads and two multiplies per pixel instead of a std::exp —
/// building the tables costs 768 exp calls total, versus one per sampled
/// pixel in the direct form.
struct ColorWeightLut {
  double r[256];
  double g[256];
  double b[256];

  void build(Rgb model, double sigma) {
    const double inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
    for (int v = 0; v < 256; ++v) {
      const double dr = static_cast<double>(v - model.r);
      const double dg = static_cast<double>(v - model.g);
      const double db = static_cast<double>(v - model.b);
      r[v] = std::exp(-dr * dr * inv_two_sigma2);
      g[v] = std::exp(-dg * dg * inv_two_sigma2);
      b[v] = std::exp(-db * db * inv_two_sigma2);
    }
  }

  double weight(const std::uint8_t* px) const { return r[px[0]] * g[px[1]] * b[px[2]]; }
};

/// Tables for the two most recent model colors this thread used (σ fixed
/// at 40). A tracker queries the same one or two models every frame, so at
/// coarse strides — where the table build would cost more than the scan —
/// steady state pays nothing.
const ColorWeightLut& weight_lut(Rgb model) {
  struct Slot {
    std::uint32_t key = 0xFF000000;  // unreachable: real keys are 24-bit
    ColorWeightLut lut;
  };
  static thread_local Slot slots[2];
  static thread_local int last = 0;
  const std::uint32_t key = (static_cast<std::uint32_t>(model.r) << 16) |
                            (static_cast<std::uint32_t>(model.g) << 8) | model.b;
  if (slots[last].key == key) return slots[last].lut;
  const int other = 1 - last;
  last = other;
  if (slots[other].key != key) {
    slots[other].key = key;
    slots[other].lut.build(model, 40.0);
  }
  return slots[other].lut;
}

}  // namespace

int frame_difference(ConstFrameView cur, ConstFrameView prev, std::span<std::byte> mask_out,
                     int threshold, int stride) {
  if (mask_out.size() < kMaskBytes) {
    throw std::invalid_argument("frame_difference: mask buffer too small");
  }
  int moving = 0;
  const int height = cur.height();
  const int width = cur.width();
  for (int y = 0; y < height; y += stride) {
    const std::uint8_t* cur_row = cur.row(y);
    const std::uint8_t* prev_row = prev.row(y);
    std::byte* mask_row = mask_out.data() + static_cast<std::size_t>(y) * kWidth;
    for (int x = 0; x < width; x += stride) {
      const int d = std::abs(luma(cur_row + 3 * x) - luma(prev_row + 3 * x));
      const bool on = d > threshold;
      mask_row[x] = std::byte{static_cast<unsigned char>(on ? 255 : 0)};
      moving += on ? 1 : 0;
    }
  }
  return moving;
}

void color_histogram(ConstFrameView frame, std::span<std::byte> histogram_payload,
                     int stride) {
  HistogramView hist(histogram_payload);
  auto bins = hist.bins();
  std::fill(bins.begin(), bins.end(), 0.0f);

  // Single pass over the frame: integer bin counts accumulate while each
  // sampled pixel's bin index is parked in a scratch list (reused across
  // calls), so the backprojection pass below never re-reads frame bytes or
  // redoes the bin arithmetic. Counts stay exact in float (well under
  // 2^24 samples), so deferred normalization matches the old
  // accumulate-then-divide form bit for bit.
  static thread_local std::vector<std::uint16_t> bin_scratch;
  bin_scratch.clear();
  const int height = frame.height();
  const int width = frame.width();
  bin_scratch.reserve(static_cast<std::size_t>((height + stride - 1) / stride) *
                      static_cast<std::size_t>((width + stride - 1) / stride));

  std::array<std::int32_t, kHistBins> counts{};
  int samples = 0;
  for (int y = 0; y < height; y += stride) {
    const std::uint8_t* row = frame.row(y);
    for (int x = 0; x < width; x += stride) {
      const auto bin = static_cast<std::uint16_t>(pixel_bin(row + 3 * x));
      ++counts[bin];
      bin_scratch.push_back(bin);
      ++samples;
    }
  }

  // Normalized frequencies plus a per-bin byte value for the
  // backprojection map, so each output pixel is a single table lookup.
  std::array<std::byte, kHistBins> bp_lut;
  for (std::size_t i = 0; i < static_cast<std::size_t>(kHistBins); ++i) {
    if (samples > 0) bins[i] = static_cast<float>(counts[i]) / static_cast<float>(samples);
    bp_lut[i] = std::byte{static_cast<unsigned char>(std::min(255.0f, bins[i] * 2550.0f))};
  }

  auto bp = hist.backprojection();
  std::size_t k = 0;
  for (int y = 0; y < height; y += stride) {
    std::byte* bp_row = bp.data() + static_cast<std::size_t>(y) * kWidth;
    for (int x = 0; x < width; x += stride) {
      bp_row[x] = bp_lut[bin_scratch[k++]];
    }
  }
}

LocationRecord detect_target(ConstFrameView frame, std::span<const std::byte> mask,
                             ConstHistogramView histogram, Rgb model, int model_index,
                             int stride) {
  const bool use_mask = mask.size() >= kMaskBytes;
  const auto bins = histogram.bins();
  // Gaussian-ish color similarity via per-channel weight tables.
  const ColorWeightLut& lut = weight_lut(model);

  double wsum = 0.0, xsum = 0.0, ysum = 0.0;
  int considered = 0;
  const int height = frame.height();
  const int width = frame.width();
  for (int y = 0; y < height; y += stride) {
    const std::uint8_t* row = frame.row(y);
    const std::byte* mask_row =
        use_mask ? mask.data() + static_cast<std::size_t>(y) * kWidth : nullptr;

    const auto process = [&](int x) {
      ++considered;
      const std::uint8_t* px = row + 3 * x;
      double w = lut.weight(px);
      // Discount colors that are globally common (background): rarity from
      // the frame histogram.
      const float freq = bins[static_cast<std::size_t>(pixel_bin(px))];
      w *= 1.0 / (1.0 + 50.0 * static_cast<double>(freq));
      if (w < 1e-4) return;
      wsum += w;
      xsum += w * x;
      ysum += w * y;
    };

    if (mask_row == nullptr) {
      for (int x = 0; x < width; x += stride) process(x);
    } else if (stride == 1) {
      // Dense scan: one 8-byte load classifies eight mask bytes, and a bit
      // walk visits only the masked-in pixels (in ascending x, so the
      // accumulation order — and thus the result — is unchanged). This
      // avoids a hard-to-predict per-pixel branch on a noisy mask.
      int x = 0;
      const int body_end = width & ~7;
      for (; x < body_end; x += 8) {
        std::uint64_t word;
        std::memcpy(&word, mask_row + x, sizeof(word));
        if (word == 0) continue;
        // High bit of each byte set iff that mask byte is nonzero.
        std::uint64_t on =
            (((word & 0x7F7F7F7F7F7F7F7FULL) + 0x7F7F7F7F7F7F7F7FULL) | word) &
            0x8080808080808080ULL;
        while (on) {
          process(x + (std::countr_zero(on) >> 3));
          on &= on - 1;
        }
      }
      for (; x < width; ++x) {
        if (static_cast<unsigned char>(mask_row[x]) != 0) process(x);
      }
    } else {
      for (int x = 0; x < width; x += stride) {
        if (static_cast<unsigned char>(mask_row[x]) != 0) process(x);
      }
    }
  }

  LocationRecord rec;
  rec.model = model_index;
  if (wsum > 0.05 && considered > 0) {
    rec.found = 1;
    rec.x = xsum / wsum;
    rec.y = ysum / wsum;
    rec.confidence = std::min(1.0, wsum / static_cast<double>(considered));
  }
  return rec;
}

MeanShiftResult mean_shift_track(ConstFrameView frame, Rgb model, double start_x,
                                 double start_y, double window_radius, int max_iters,
                                 int stride) {
  if (window_radius <= 0 || max_iters <= 0 || stride <= 0) {
    throw std::invalid_argument("mean_shift_track: bad parameters");
  }
  MeanShiftResult result;
  result.x = start_x;
  result.y = start_y;
  // The color model is fixed across iterations: one table build serves the
  // whole track.
  const ColorWeightLut& lut = weight_lut(model);
  const double radius2 = window_radius * window_radius;

  for (int iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    const int x_lo = std::max(0, static_cast<int>(result.x - window_radius));
    const int x_hi = std::min(frame.width() - 1, static_cast<int>(result.x + window_radius));
    const int y_lo = std::max(0, static_cast<int>(result.y - window_radius));
    const int y_hi = std::min(frame.height() - 1, static_cast<int>(result.y + window_radius));

    double wsum = 0, xsum = 0, ysum = 0;
    // Scan the window on the stride grid.
    for (int y = (y_lo / stride) * stride; y <= y_hi; y += stride) {
      if (y < y_lo) continue;
      const std::uint8_t* row = frame.row(y);
      const double ddy = y - result.y;
      const double ddy2 = ddy * ddy;
      for (int x = (x_lo / stride) * stride; x <= x_hi; x += stride) {
        if (x < x_lo) continue;
        const double ddx = x - result.x;
        if (ddx * ddx + ddy2 > radius2) continue;
        const double w = lut.weight(row + 3 * x);
        if (w < 1e-4) continue;
        wsum += w;
        xsum += w * x;
        ysum += w * y;
      }
    }
    if (wsum < 1e-6) return result;  // lost: no mass in the window

    const double nx = xsum / wsum;
    const double ny = ysum / wsum;
    const double shift = std::hypot(nx - result.x, ny - result.y);
    result.x = nx;
    result.y = ny;
    result.mass = wsum;
    if (shift < static_cast<double>(stride) / 2.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<Blob8> connected_components(std::span<const std::byte> mask, int stride,
                                        int min_pixels) {
  if (stride <= 0) throw std::invalid_argument("connected_components: bad stride");
  if (mask.size() < kMaskBytes) {
    throw std::invalid_argument("connected_components: mask buffer too small");
  }
  const int gw = (kWidth + stride - 1) / stride;
  const int gh = (kHeight + stride - 1) / stride;

  // Union-find over the stride grid.
  std::vector<int> parent(static_cast<std::size_t>(gw) * gh);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  };
  auto unite = [&](int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); };

  auto set_at = [&](int gx, int gy) {
    const std::size_t off = static_cast<std::size_t>(gy * stride) * kWidth +
                            static_cast<std::size_t>(gx * stride);
    return static_cast<unsigned char>(mask[off]) != 0;
  };

  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      if (!set_at(gx, gy)) continue;
      const int me = gy * gw + gx;
      // 8-connectivity to already-visited neighbours.
      for (const auto& [dx, dy] :
           {std::pair{-1, 0}, std::pair{-1, -1}, std::pair{0, -1}, std::pair{1, -1}}) {
        const int nx = gx + dx;
        const int ny = gy + dy;
        if (nx < 0 || nx >= gw || ny < 0) continue;
        if (set_at(nx, ny)) unite(me, ny * gw + nx);
      }
    }
  }

  // Accumulate per-root statistics.
  struct Acc {
    int pixels = 0;
    double sx = 0, sy = 0;
    int min_x = kWidth, min_y = kHeight, max_x = 0, max_y = 0;
  };
  std::unordered_map<int, Acc> accs;
  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      if (!set_at(gx, gy)) continue;
      Acc& a = accs[find(gy * gw + gx)];
      const int px = gx * stride;
      const int py = gy * stride;
      ++a.pixels;
      a.sx += px;
      a.sy += py;
      a.min_x = std::min(a.min_x, px);
      a.min_y = std::min(a.min_y, py);
      a.max_x = std::max(a.max_x, px);
      a.max_y = std::max(a.max_y, py);
    }
  }

  std::vector<Blob8> blobs;
  for (const auto& [root, a] : accs) {
    if (a.pixels < min_pixels) continue;
    blobs.push_back(Blob8{.pixels = a.pixels,
                          .cx = a.sx / a.pixels,
                          .cy = a.sy / a.pixels,
                          .min_x = a.min_x,
                          .min_y = a.min_y,
                          .max_x = a.max_x,
                          .max_y = a.max_y});
  }
  std::sort(blobs.begin(), blobs.end(),
            [](const Blob8& a, const Blob8& b) { return a.pixels > b.pixels; });
  return blobs;
}

}  // namespace stampede::vision
