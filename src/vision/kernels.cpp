#include "vision/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace stampede::vision {

int frame_difference(ConstFrameView cur, ConstFrameView prev, std::span<std::byte> mask_out,
                     int threshold, int stride) {
  if (mask_out.size() < kMaskBytes) {
    throw std::invalid_argument("frame_difference: mask buffer too small");
  }
  int moving = 0;
  for (int y = 0; y < cur.height(); y += stride) {
    for (int x = 0; x < cur.width(); x += stride) {
      const int d = std::abs(cur.luminance(x, y) - prev.luminance(x, y));
      const bool on = d > threshold;
      mask_out[static_cast<std::size_t>(y) * kWidth + static_cast<std::size_t>(x)] =
          std::byte{static_cast<unsigned char>(on ? 255 : 0)};
      moving += on ? 1 : 0;
    }
  }
  return moving;
}

void color_histogram(ConstFrameView frame, std::span<std::byte> histogram_payload,
                     int stride) {
  HistogramView hist(histogram_payload);
  auto bins = hist.bins();
  std::fill(bins.begin(), bins.end(), 0.0f);

  int samples = 0;
  for (int y = 0; y < frame.height(); y += stride) {
    for (int x = 0; x < frame.width(); x += stride) {
      bins[static_cast<std::size_t>(hist_bin(frame.get(x, y)))] += 1.0f;
      ++samples;
    }
  }
  if (samples > 0) {
    for (float& b : bins) b /= static_cast<float>(samples);
  }

  // Backprojection: per-pixel bin frequency, scaled to a byte.
  auto bp = hist.backprojection();
  for (int y = 0; y < frame.height(); y += stride) {
    for (int x = 0; x < frame.width(); x += stride) {
      const float f = bins[static_cast<std::size_t>(hist_bin(frame.get(x, y)))];
      bp[static_cast<std::size_t>(y) * kWidth + static_cast<std::size_t>(x)] =
          std::byte{static_cast<unsigned char>(std::min(255.0f, f * 2550.0f))};
    }
  }
}

LocationRecord detect_target(ConstFrameView frame, std::span<const std::byte> mask,
                             ConstHistogramView histogram, Rgb model, int model_index,
                             int stride) {
  const bool use_mask = mask.size() >= kMaskBytes;
  const auto bins = histogram.bins();

  double wsum = 0.0, xsum = 0.0, ysum = 0.0;
  int considered = 0;
  for (int y = 0; y < frame.height(); y += stride) {
    for (int x = 0; x < frame.width(); x += stride) {
      if (use_mask) {
        const auto m = static_cast<unsigned char>(
            mask[static_cast<std::size_t>(y) * kWidth + static_cast<std::size_t>(x)]);
        if (m == 0) continue;
      }
      ++considered;
      const Rgb c = frame.get(x, y);
      const double dr = static_cast<double>(c.r) - model.r;
      const double dg = static_cast<double>(c.g) - model.g;
      const double db = static_cast<double>(c.b) - model.b;
      const double dist2 = dr * dr + dg * dg + db * db;
      // Gaussian-ish color similarity.
      double w = std::exp(-dist2 / (2.0 * 40.0 * 40.0));
      // Discount colors that are globally common (background): rarity from
      // the frame histogram.
      const float freq = bins[static_cast<std::size_t>(hist_bin(c))];
      w *= 1.0 / (1.0 + 50.0 * static_cast<double>(freq));
      if (w < 1e-4) continue;
      wsum += w;
      xsum += w * x;
      ysum += w * y;
    }
  }

  LocationRecord rec;
  rec.model = model_index;
  if (wsum > 0.05 && considered > 0) {
    rec.found = 1;
    rec.x = xsum / wsum;
    rec.y = ysum / wsum;
    rec.confidence = std::min(1.0, wsum / static_cast<double>(considered));
  }
  return rec;
}

MeanShiftResult mean_shift_track(ConstFrameView frame, Rgb model, double start_x,
                                 double start_y, double window_radius, int max_iters,
                                 int stride) {
  if (window_radius <= 0 || max_iters <= 0 || stride <= 0) {
    throw std::invalid_argument("mean_shift_track: bad parameters");
  }
  MeanShiftResult result;
  result.x = start_x;
  result.y = start_y;

  for (int iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    const int x_lo = std::max(0, static_cast<int>(result.x - window_radius));
    const int x_hi = std::min(frame.width() - 1, static_cast<int>(result.x + window_radius));
    const int y_lo = std::max(0, static_cast<int>(result.y - window_radius));
    const int y_hi = std::min(frame.height() - 1, static_cast<int>(result.y + window_radius));

    double wsum = 0, xsum = 0, ysum = 0;
    // Scan the window on the stride grid.
    for (int y = (y_lo / stride) * stride; y <= y_hi; y += stride) {
      if (y < y_lo) continue;
      for (int x = (x_lo / stride) * stride; x <= x_hi; x += stride) {
        if (x < x_lo) continue;
        const double ddx = x - result.x;
        const double ddy = y - result.y;
        if (ddx * ddx + ddy * ddy > window_radius * window_radius) continue;
        const Rgb c = frame.get(x, y);
        const double dr = static_cast<double>(c.r) - model.r;
        const double dg = static_cast<double>(c.g) - model.g;
        const double db = static_cast<double>(c.b) - model.b;
        const double w = std::exp(-(dr * dr + dg * dg + db * db) / (2.0 * 40.0 * 40.0));
        if (w < 1e-4) continue;
        wsum += w;
        xsum += w * x;
        ysum += w * y;
      }
    }
    if (wsum < 1e-6) return result;  // lost: no mass in the window

    const double nx = xsum / wsum;
    const double ny = ysum / wsum;
    const double shift = std::hypot(nx - result.x, ny - result.y);
    result.x = nx;
    result.y = ny;
    result.mass = wsum;
    if (shift < static_cast<double>(stride) / 2.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<Blob8> connected_components(std::span<const std::byte> mask, int stride,
                                        int min_pixels) {
  if (stride <= 0) throw std::invalid_argument("connected_components: bad stride");
  if (mask.size() < kMaskBytes) {
    throw std::invalid_argument("connected_components: mask buffer too small");
  }
  const int gw = (kWidth + stride - 1) / stride;
  const int gh = (kHeight + stride - 1) / stride;

  // Union-find over the stride grid.
  std::vector<int> parent(static_cast<std::size_t>(gw) * gh);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  };
  auto unite = [&](int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); };

  auto set_at = [&](int gx, int gy) {
    const std::size_t off = static_cast<std::size_t>(gy * stride) * kWidth +
                            static_cast<std::size_t>(gx * stride);
    return static_cast<unsigned char>(mask[off]) != 0;
  };

  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      if (!set_at(gx, gy)) continue;
      const int me = gy * gw + gx;
      // 8-connectivity to already-visited neighbours.
      for (const auto [dx, dy] :
           {std::pair{-1, 0}, std::pair{-1, -1}, std::pair{0, -1}, std::pair{1, -1}}) {
        const int nx = gx + dx;
        const int ny = gy + dy;
        if (nx < 0 || nx >= gw || ny < 0) continue;
        if (set_at(nx, ny)) unite(me, ny * gw + nx);
      }
    }
  }

  // Accumulate per-root statistics.
  struct Acc {
    int pixels = 0;
    double sx = 0, sy = 0;
    int min_x = kWidth, min_y = kHeight, max_x = 0, max_y = 0;
  };
  std::unordered_map<int, Acc> accs;
  for (int gy = 0; gy < gh; ++gy) {
    for (int gx = 0; gx < gw; ++gx) {
      if (!set_at(gx, gy)) continue;
      Acc& a = accs[find(gy * gw + gx)];
      const int px = gx * stride;
      const int py = gy * stride;
      ++a.pixels;
      a.sx += px;
      a.sy += py;
      a.min_x = std::min(a.min_x, px);
      a.min_y = std::min(a.min_y, py);
      a.max_x = std::max(a.max_x, px);
      a.max_y = std::max(a.max_y, py);
    }
  }

  std::vector<Blob8> blobs;
  for (const auto& [root, a] : accs) {
    if (a.pixels < min_pixels) continue;
    blobs.push_back(Blob8{.pixels = a.pixels,
                          .cx = a.sx / a.pixels,
                          .cy = a.sy / a.pixels,
                          .min_x = a.min_x,
                          .min_y = a.min_y,
                          .max_x = a.max_x,
                          .max_y = a.max_y});
  }
  std::sort(blobs.begin(), blobs.end(),
            [](const Blob8& a, const Blob8& b) { return a.pixels > b.pixels; });
  return blobs;
}

}  // namespace stampede::vision
