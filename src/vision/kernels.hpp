/// \file kernels.hpp
/// \brief Real pixel kernels for the tracker stages (frame differencing,
///        color histogram, histogram-guided target detection).
///
/// These perform genuine image processing — strided to keep real CPU cost
/// small relative to the emulated stage costs (DESIGN.md §2) — so the
/// pipeline carries real data dependencies end to end and detection
/// accuracy can be validated against the generator's ground truth.
#pragma once

#include <span>
#include <vector>

#include "util/static_annotations.hpp"
#include "vision/frame.hpp"
#include "vision/records.hpp"

namespace stampede::vision {

/// Motion mask: |luma(cur) − luma(prev)| > threshold → 255, else 0.
/// Touches every `stride`-th pixel; returns the number of moving pixels.
ARU_HOT_PATH int frame_difference(ConstFrameView cur, ConstFrameView prev,
                                  std::span<std::byte> mask_out, int threshold = 24,
                                  int stride = kDefaultStride);

/// Builds the normalized 16^3-bin RGB histogram of `frame` and a
/// per-pixel backprojection byte map (bin frequency scaled to 0-255) into
/// the histogram payload.
ARU_HOT_PATH void color_histogram(ConstFrameView frame,
                                  std::span<std::byte> histogram_payload,
                                  int stride = kDefaultStride);

/// Locates the target whose color matches `model`: scans `stride`-spaced
/// pixels where the motion mask is set (or all pixels when the mask is
/// empty/absent), weighting each by its color-model similarity, and
/// returns the weighted centroid. The histogram backprojection is used to
/// discount colors common in the whole frame.
ARU_HOT_PATH LocationRecord detect_target(ConstFrameView frame,
                                          std::span<const std::byte> mask,
                                          ConstHistogramView histogram, Rgb model,
                                          int model_index, int stride = kDefaultStride);

/// Mean-shift color tracking (the classic color-histogram tracker family
/// the CRL tracker belongs to): starting from `start_x/start_y`, iterates
/// the color-similarity-weighted centroid of a circular window until the
/// shift falls below half a stride or `max_iters` is reached.
struct MeanShiftResult {
  bool converged = false;
  int iterations = 0;
  double x = 0.0, y = 0.0;
  double mass = 0.0;  ///< total color-similarity mass in the final window
};
ARU_HOT_PATH MeanShiftResult mean_shift_track(ConstFrameView frame, Rgb model,
                                              double start_x, double start_y,
                                              double window_radius = 48.0,
                                              int max_iters = 12,
                                              int stride = kDefaultStride);

/// Connected-component labeling of a motion mask on the `stride` grid
/// (8-connectivity between grid neighbours). Returns components sorted by
/// pixel count, largest first.
struct Blob8 {
  int pixels = 0;          ///< grid pixels in the component
  double cx = 0.0, cy = 0.0;
  int min_x = 0, min_y = 0, max_x = 0, max_y = 0;  ///< bounding box
};
std::vector<Blob8> connected_components(std::span<const std::byte> mask,
                                        int stride = kDefaultStride,
                                        int min_pixels = 2);

}  // namespace stampede::vision
