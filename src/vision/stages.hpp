/// \file stages.hpp
/// \brief Task-body factories for the five tracker stages (paper Fig. 5).
///
/// Each factory returns a `TaskBody` closure holding its stage state
/// (previous frame, scene generator, ...). Stage compute cost is the
/// measured real kernel time plus emulated padding up to a jittered
/// per-iteration target — reproducing the paper's data-dependent,
/// OS-noise-perturbed execution times (§3.1) at a controllable scale.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "runtime/task.hpp"
#include "vision/frame.hpp"

namespace stampede::vision {

/// Per-stage compute-cost targets (before jitter). Defaults give the
/// paper-shaped rate differential: a fast digitizer, medium filter
/// stages, slow target detection.
struct StageCosts {
  Nanos digitizer = millis(5);
  Nanos background = millis(12);
  Nanos histogram = millis(15);
  Nanos detect0 = millis(28);
  Nanos detect1 = millis(33);
  Nanos gui = millis(6);
  /// Multiplicative uniform cost jitter: each iteration's target is
  /// base × (1 ± jitter). This is the summary-STP noise source the paper
  /// discusses in §3.3.2.
  double jitter = 0.12;

  /// Returns a copy with every cost multiplied by `f` (time scaling).
  StageCosts scaled(double f) const;
};

/// Applies the jitter model to a base cost.
Nanos jittered(Nanos base, double jitter, Xoshiro256& rng);

/// Digitizer: renders synthetic frames with consecutive timestamps into
/// output 0 and stops after `max_frames`.
TaskBody make_digitizer(std::shared_ptr<SceneGenerator> gen, StageCosts costs,
                        std::int64_t max_frames, int stride = kDefaultStride);

/// Background / motion mask: input 0 = frames, output 0 = masks.
TaskBody make_background(StageCosts costs, int stride = kDefaultStride);

/// Color histogram: input 0 = frames, output 0 = histogram models.
TaskBody make_histogram(StageCosts costs, int stride = kDefaultStride);

/// Live detection-quality counters shared with the detector stages.
struct DetectionStats {
  std::atomic<std::int64_t> found{0};
  std::atomic<std::int64_t> missed{0};
  /// Σ centroid error in millipixels (divide by found for the mean).
  std::atomic<std::int64_t> err_millipx{0};

  double mean_error_px() const {
    const auto n = found.load();
    return n > 0 ? static_cast<double>(err_millipx.load()) / 1000.0 / static_cast<double>(n)
                 : 0.0;
  }
};

/// Target detection for color model `model` (0 or 1):
/// inputs 0 = masks, 1 = histogram models, 2 = frames; output 0 =
/// location records. `stats` (optional) accumulates accuracy vs ground
/// truth.
TaskBody make_target_detection(std::shared_ptr<SceneGenerator> gen, StageCosts costs,
                               int model, int stride = kDefaultStride,
                               std::shared_ptr<DetectionStats> stats = nullptr);

/// GUI sink: inputs 0 = model-1 locations, 1 = model-2 locations; emits
/// every displayed result.
TaskBody make_gui(StageCosts costs);

}  // namespace stampede::vision
