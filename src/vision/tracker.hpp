/// \file tracker.hpp
/// \brief The color-based people-tracker application (paper Fig. 5) —
///        pipeline wiring, cluster placement, and the experiment runner.
///
/// Pipeline:
///
///   Digitizer ──frames──┬─> Background ──masks──┬─> TargetDetect(model 1) ──loc1──┐
///                       ├─> Histogram ──hists──┬┴─> TargetDetect(model 2) ──loc2──┤
///                       └──────────(frames)────┘                                  └─> GUI
///
/// (The frames channel feeds Background, Histogram, and both detectors;
/// both detectors read masks, hists and frames; the GUI consumes both
/// location channels and emits every displayed result.)
///
/// Configuration 1 places everything on one cluster node (shared memory);
/// configuration 2 distributes the five stages over five nodes connected
/// by a simulated Gigabit link, with channels on their producers' nodes —
/// mirroring the paper's two experimental configurations.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "vision/stages.hpp"

namespace stampede::vision {

/// Calibrated default pressure model: ~120 µs of buffer-management work
/// per stored item on each put/get and ~40 µs of allocator pressure per
/// resident megabyte on each allocation.
PressureModel default_pressure();

/// Everything needed to run one tracker experiment.
struct TrackerOptions {
  aru::Mode aru = aru::Mode::kOff;
  /// Feedback-filter spec for summary-STP smoothing (ARU extension).
  std::string aru_filter = "passthrough";
  /// Fraction of the pacing gap closed per iteration (controller damping).
  double pace_gain = 1.0;
  /// Pace every thread, not just sources (paper paces sources only).
  bool throttle_non_source = false;
  /// User-defined compress operator (used when aru == kCustom), applied to
  /// every node of the pipeline — the paper's §3.3.2 extension point.
  aru::CompressFn custom_compress;
  gc::Kind gc = gc::Kind::kDeadTimestamp;
  /// 1 = single node (paper config 1), 2 = five nodes (paper config 2).
  int cluster_config = 1;
  /// Wall-clock run length.
  Nanos duration = seconds(10);
  /// Digitizer stops after this many frames (default: unbounded).
  std::int64_t max_frames = INT64_MAX;
  std::uint64_t seed = 42;
  StageCosts costs;
  CostMode cost_mode = CostMode::kSleep;
  /// Memory-pressure model (see PressureModel); defaults reproduce the
  /// paper's load-dependent slowdown of the No-ARU baseline.
  PressureModel pressure = default_pressure();
  /// Bounded frames channel (0 = unbounded): the classic backpressure
  /// baseline used by the ablation bench.
  std::size_t frame_capacity = 0;
  /// Kernel/render pixel stride (higher = less real CPU per frame).
  int stride = kDefaultStride;
  /// Preemption-burst injection (off by default; the filters ablation
  /// turns it on to generate the paper's heavy-tailed summary-STP noise).
  SchedulerNoise sched_noise;
  /// Fraction of the run discarded as warm-up for performance metrics.
  double warmup_fraction = 0.1;
};

/// Node ids of the constructed pipeline (for trace queries).
struct TrackerHandles {
  /// Live detection accuracy per model, shared with the detector stages.
  std::shared_ptr<DetectionStats> detect_stats[2];
  NodeId digitizer = kNoNode;
  NodeId background = kNoNode;
  NodeId histogram = kNoNode;
  NodeId detect1 = kNoNode;
  NodeId detect2 = kNoNode;
  NodeId gui = kNoNode;
  Channel* frames = nullptr;
  Channel* masks = nullptr;
  Channel* hists = nullptr;
  Channel* loc1 = nullptr;
  Channel* loc2 = nullptr;
};

/// Builds the RuntimeConfig implied by `opts` (clock defaults to the real
/// steady clock).
RuntimeConfig runtime_config(const TrackerOptions& opts);

/// Wires the tracker pipeline into `rt`. Call before rt.start().
TrackerHandles build_tracker(Runtime& rt, const TrackerOptions& opts);

/// Complete experiment result.
struct TrackerResult {
  stats::Trace trace;
  stats::Analysis analysis;
};

/// Runs one tracker experiment to completion and analyzes the trace.
TrackerResult run_tracker(const TrackerOptions& opts);

/// Display label like "ARU-min cfg1" for report tables.
std::string label(const TrackerOptions& opts);

}  // namespace stampede::vision
