#include "vision/image_io.hpp"

#include <fstream>
#include <stdexcept>

namespace stampede::vision {

void write_ppm(const std::string& path, ConstFrameView frame) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open '" + path + "'");
  out << "P6\n" << frame.width() << ' ' << frame.height() << "\n255\n";
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const Rgb c = frame.get(x, y);
      const char px[3] = {static_cast<char>(c.r), static_cast<char>(c.g),
                          static_cast<char>(c.b)};
      out.write(px, 3);
    }
  }
  if (!out) throw std::runtime_error("write_ppm: write failed for '" + path + "'");
}

void write_pgm(const std::string& path, std::span<const std::byte> mask, int width,
               int height) {
  if (mask.size() < static_cast<std::size_t>(width) * static_cast<std::size_t>(height)) {
    throw std::invalid_argument("write_pgm: mask buffer too small");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open '" + path + "'");
  out << "P5\n" << width << ' ' << height << "\n255\n";
  out.write(reinterpret_cast<const char*>(mask.data()),
            static_cast<std::streamsize>(width) * height);
  if (!out) throw std::runtime_error("write_pgm: write failed for '" + path + "'");
}

void draw_marker(FrameView frame, int cx, int cy, Rgb color, int arm) {
  for (int d = -arm; d <= arm; ++d) {
    const int x = cx + d;
    const int y = cy + d;
    if (x >= 0 && x < frame.width() && cy >= 0 && cy < frame.height()) {
      frame.set(x, cy, color);
    }
    if (cx >= 0 && cx < frame.width() && y >= 0 && y < frame.height()) {
      frame.set(cx, y, color);
    }
  }
}

void overlay_detection(FrameView frame, const LocationRecord& rec) {
  if (rec.found != 0) {
    draw_marker(frame, static_cast<int>(rec.x), static_cast<int>(rec.y),
                Rgb{255, 255, 0});
  }
  draw_marker(frame, static_cast<int>(rec.truth_x), static_cast<int>(rec.truth_y),
              Rgb{0, 255, 0}, 5);
}

bool read_ppm(const std::string& path, std::vector<std::byte>& data, int& width,
              int& height) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string magic;
  int maxval = 0;
  in >> magic >> width >> height >> maxval;
  if (magic != "P6" || width <= 0 || height <= 0 || maxval != 255) return false;
  in.get();  // single whitespace after header
  data.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3);
  in.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(in);
}

}  // namespace stampede::vision
