/// \file records.hpp
/// \brief Payload layouts for histogram-model and target-location items.
///
/// Sizes mirror the paper's reported per-item sizes (§5): the histogram
/// item is 981 kB (1 004 544 B) holding a 16×16×16-bin RGB histogram plus
/// a per-pixel backprojection map; the target-detection record is exactly
/// 68 bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>

#include "vision/frame.hpp"

namespace stampede::vision {

// -- histogram payload ---------------------------------------------------------

inline constexpr int kHistBinsPerAxis = 16;
inline constexpr int kHistBins = kHistBinsPerAxis * kHistBinsPerAxis * kHistBinsPerAxis;
/// Paper: "Histogram 981 kB".
inline constexpr std::size_t kHistogramBytes = 981 * 1024;
static_assert(kHistogramBytes >= kHistBins * sizeof(float) + kWidth * kHeight,
              "histogram payload must fit bins + backprojection map");

/// Bin index for a color.
constexpr int hist_bin(Rgb c) {
  const int r = c.r * kHistBinsPerAxis / 256;
  const int g = c.g * kHistBinsPerAxis / 256;
  const int b = c.b * kHistBinsPerAxis / 256;
  return (r * kHistBinsPerAxis + g) * kHistBinsPerAxis + b;
}

/// View of the histogram payload: `bins()` are normalized frequencies,
/// `backprojection()` is a per-pixel byte map.
class HistogramView {
 public:
  explicit HistogramView(std::span<std::byte> data) : data_(data) {
    if (data.size() < kHistogramBytes) {
      throw std::invalid_argument("HistogramView: buffer too small");
    }
  }

  std::span<float> bins() {
    return {reinterpret_cast<float*>(data_.data()), kHistBins};
  }
  std::span<std::byte> backprojection() {
    return data_.subspan(kHistBins * sizeof(float),
                         static_cast<std::size_t>(kWidth) * kHeight);
  }

 private:
  std::span<std::byte> data_;
};

class ConstHistogramView {
 public:
  explicit ConstHistogramView(std::span<const std::byte> data) : data_(data) {
    if (data.size() < kHistogramBytes) {
      throw std::invalid_argument("ConstHistogramView: buffer too small");
    }
  }

  std::span<const float> bins() const {
    return {reinterpret_cast<const float*>(data_.data()), kHistBins};
  }
  std::span<const std::byte> backprojection() const {
    return data_.subspan(kHistBins * sizeof(float),
                         static_cast<std::size_t>(kWidth) * kHeight);
  }

 private:
  std::span<const std::byte> data_;
};

// -- location record -----------------------------------------------------------

/// Paper: "Target-Detection 68 Bytes".
inline constexpr std::size_t kLocationBytes = 68;

/// Target-detection result for one frame and one color model.
struct LocationRecord {
  std::int64_t frame_ts = -1;
  std::int32_t model = 0;
  std::int32_t found = 0;       ///< 1 if the target was located
  double x = 0.0, y = 0.0;      ///< detected centroid
  double confidence = 0.0;      ///< matched-mass score in [0, 1]
  double truth_x = 0.0, truth_y = 0.0;  ///< ground truth (accuracy tests)
};
static_assert(sizeof(LocationRecord) <= kLocationBytes,
              "LocationRecord must fit the paper's 68-byte item");

/// Serializes `rec` into a location payload.
inline void write_location(std::span<std::byte> data, const LocationRecord& rec) {
  if (data.size() < kLocationBytes) {
    throw std::invalid_argument("write_location: buffer too small");
  }
  std::memcpy(data.data(), &rec, sizeof(rec));
}

/// Deserializes a location payload.
inline LocationRecord read_location(std::span<const std::byte> data) {
  if (data.size() < kLocationBytes) {
    throw std::invalid_argument("read_location: buffer too small");
  }
  LocationRecord rec;
  std::memcpy(&rec, data.data(), sizeof(rec));
  return rec;
}

}  // namespace stampede::vision
