#include "vision/stereo.hpp"

#include <cmath>

namespace stampede::vision {

StereoRig::StereoRig(std::uint64_t seed, int baseline_px)
    : gen_(seed), baseline_px_(baseline_px) {}

void StereoRig::render_left(std::int64_t index, std::span<std::byte> data,
                            int stride) const {
  render_shifted(index, data, stride, 0);
}

void StereoRig::render_right(std::int64_t index, std::span<std::byte> data,
                             int stride) const {
  render_shifted(index, data, stride, baseline_px_);
}

void StereoRig::render_shifted(std::int64_t index, std::span<std::byte> data, int stride,
                               int shift) const {
  // Render the scene, then redraw blobs displaced by the camera baseline.
  // (Background is "at infinity": zero disparity, so the plain render is
  // reused and only foreground blobs move.)
  gen_.render(index, data, stride);
  if (shift == 0) return;

  FrameView frame(data);
  const Scene scene = gen_.scene_at(index);
  for (int y = 0; y < kHeight; y += stride) {
    for (int x = 0; x < kWidth; x += stride) {
      for (const Blob& b : scene.blobs) {
        // Blob visible at x in the right view <=> it covers x + shift in
        // scene coordinates... equivalently the blob center appears moved
        // left by `shift`.
        const double dx = x - (b.cx - shift);
        const double dy = y - b.cy;
        const double dx0 = x - b.cx;
        if (dx * dx + dy * dy <= b.radius * b.radius) {
          frame.set(x, y, b.color);
        } else if (dx0 * dx0 + dy * dy <= b.radius * b.radius) {
          // Erase the blob's original position (revealed background).
          const auto noise = static_cast<std::uint8_t>(100);
          frame.set(x, y, Rgb{noise, noise, noise});
        }
      }
    }
  }
}

namespace {

/// Weighted centroid of pixels matching `model` (same color metric as
/// detect_target, without mask/histogram gating).
bool color_centroid(ConstFrameView frame, Rgb model, int stride, double* out_x,
                    double* out_y) {
  double wsum = 0, xsum = 0, ysum = 0;
  for (int y = 0; y < frame.height(); y += stride) {
    for (int x = 0; x < frame.width(); x += stride) {
      const Rgb c = frame.get(x, y);
      const double dr = static_cast<double>(c.r) - model.r;
      const double dg = static_cast<double>(c.g) - model.g;
      const double db = static_cast<double>(c.b) - model.b;
      const double w = std::exp(-(dr * dr + dg * dg + db * db) / (2.0 * 40.0 * 40.0));
      if (w < 1e-3) continue;
      wsum += w;
      xsum += w * x;
      ysum += w * y;
    }
  }
  if (wsum < 0.5) return false;
  *out_x = xsum / wsum;
  *out_y = ysum / wsum;
  return true;
}

}  // namespace

DisparityEstimate estimate_disparity(ConstFrameView left, ConstFrameView right,
                                     Rgb model_color, int stride) {
  DisparityEstimate est;
  double lx = 0, ly = 0, rx = 0, ry = 0;
  if (!color_centroid(left, model_color, stride, &lx, &ly) ||
      !color_centroid(right, model_color, stride, &rx, &ry)) {
    return est;
  }
  est.found = true;
  est.disparity_px = lx - rx;
  est.left_x = lx;
  est.left_y = ly;
  return est;
}

}  // namespace stampede::vision
