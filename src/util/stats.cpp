#include "util/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace stampede {

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedStats::accumulate_until(std::int64_t t) {
  const double dt = static_cast<double>(t - last_t_);
  if (dt > 0) {
    weighted_sum_ += cur_value_ * dt;
    weighted_sqsum_ += cur_value_ * cur_value_ * dt;
  }
  last_t_ = t;
}

void TimeWeightedStats::sample(std::int64_t t, double value) {
  if (finished_) throw std::logic_error("TimeWeightedStats: sample after finish");
  if (!have_first_) {
    have_first_ = true;
    first_t_ = t;
    last_t_ = t;
  } else {
    if (t < last_t_) throw std::invalid_argument("TimeWeightedStats: time went backwards");
    accumulate_until(t);
  }
  cur_value_ = value;
  peak_ = std::max(peak_, value);
}

void TimeWeightedStats::finish(std::int64_t t_end) {
  if (finished_) return;
  if (have_first_) {
    if (t_end < last_t_) throw std::invalid_argument("TimeWeightedStats: finish before last sample");
    accumulate_until(t_end);
  }
  finished_ = true;
}

double TimeWeightedStats::mean() const {
  const double s = static_cast<double>(span());
  return s > 0 ? weighted_sum_ / s : cur_value_;
}

double TimeWeightedStats::stddev() const {
  const double s = static_cast<double>(span());
  if (s <= 0) return 0.0;
  const double m = weighted_sum_ / s;
  const double var = weighted_sqsum_ / s - m * m;
  return var > 0 ? std::sqrt(var) : 0.0;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace stampede
