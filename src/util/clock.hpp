/// \file clock.hpp
/// \brief Clock abstraction: real steady clock for live runs, manual clock
///        for deterministic unit tests.
///
/// The Stampede runtime measures *sustainable thread periods* (STP) and
/// paces producers by sleeping; both operations go through this interface
/// so the pure feedback logic can be tested without real threads or real
/// time.
#pragma once

#include <atomic>

#include "util/static_annotations.hpp"
#include "util/time.hpp"

namespace stampede {

/// Abstract monotonic clock.
///
/// Implementations must be thread-safe: `now()` and `sleep_for()` may be
/// called concurrently from any number of threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current instant (nanoseconds since an arbitrary fixed epoch).
  virtual Nanos now() const = 0;

  /// Blocks the calling thread for (at least) `d`. Non-positive durations
  /// return immediately.
  ARU_MAY_BLOCK virtual void sleep_for(Nanos d) = 0;

  /// Blocks until `now() >= t`.
  ARU_MAY_BLOCK void sleep_until(Nanos t) {
    const Nanos cur = now();
    if (t > cur) sleep_for(t - cur);
  }
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  Nanos now() const override;
  void sleep_for(Nanos d) override;

  /// Process-wide shared instance (clocks are stateless).
  static RealClock& instance();
};

/// Deterministic, manually advanced clock for tests.
///
/// `sleep_for` simply advances the clock: a single-threaded test can step
/// through feedback-control logic without real delays. When used from
/// multiple threads the advance is atomic, but tests should prefer
/// single-threaded deterministic stepping.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = Nanos{0}) : now_ns_(start.count()) {}

  Nanos now() const override { return Nanos{now_ns_.load(std::memory_order_acquire)}; }

  void sleep_for(Nanos d) override {
    if (d.count() > 0) advance(d);
  }

  /// Moves time forward by `d` (no-op for non-positive durations).
  void advance(Nanos d) {
    if (d.count() > 0) now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  /// Jumps directly to instant `t` (must not move backwards).
  void set(Nanos t);

 private:
  std::atomic<std::int64_t> now_ns_;
};

}  // namespace stampede
