#include "util/filters.hpp"

#include <algorithm>
#include <vector>

namespace stampede {

EmaFilter::EmaFilter(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("EmaFilter: alpha must be in (0, 1]");
  }
}

double EmaFilter::push(double x) {
  if (!primed_) {
    primed_ = true;
    value_ = x;
  } else {
    value_ += alpha_ * (x - value_);
  }
  return value_;
}

std::string EmaFilter::name() const { return "ema:" + std::to_string(alpha_); }

MedianFilter::MedianFilter(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MedianFilter: window must be > 0");
}

double MedianFilter::push(double x) {
  window_vals_.push_back(x);
  if (window_vals_.size() > window_) window_vals_.pop_front();
  std::vector<double> sorted(window_vals_.begin(), window_vals_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  value_ = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  return value_;
}

std::string MedianFilter::name() const { return "median:" + std::to_string(window_); }

SlidingMeanFilter::SlidingMeanFilter(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("SlidingMeanFilter: window must be > 0");
}

double SlidingMeanFilter::push(double x) {
  window_vals_.push_back(x);
  sum_ += x;
  if (window_vals_.size() > window_) {
    sum_ -= window_vals_.front();
    window_vals_.pop_front();
  }
  value_ = sum_ / static_cast<double>(window_vals_.size());
  return value_;
}

std::string SlidingMeanFilter::name() const { return "mean:" + std::to_string(window_); }

std::unique_ptr<Filter> make_filter(const std::string& spec) {
  if (spec.empty() || spec == "passthrough" || spec == "none") {
    return std::make_unique<PassthroughFilter>();
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg = colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "ema") {
    return std::make_unique<EmaFilter>(arg.empty() ? 0.25 : std::stod(arg));
  }
  if (kind == "median") {
    return std::make_unique<MedianFilter>(arg.empty() ? 5 : std::stoul(arg));
  }
  if (kind == "mean") {
    return std::make_unique<SlidingMeanFilter>(arg.empty() ? 5 : std::stoul(arg));
  }
  throw std::invalid_argument("make_filter: unknown filter spec '" + spec + "'");
}

}  // namespace stampede
