#include "util/mutex.hpp"

#ifdef STAMPEDE_LOCK_DEBUG

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

namespace stampede::util {

namespace {

/// One entry per mutex the current thread holds, in acquisition order.
struct HeldLock {
  const Mutex* mu;
  LockRank rank;
  const char* name;
};

std::vector<HeldLock>& held_stack() {
  static thread_local std::vector<HeldLock> stack;
  return stack;
}

[[noreturn]] void die(const char* what, const char* acquiring, int acquiring_rank,
                      const char* holding, int holding_rank) {
  std::fprintf(stderr,
               "[stampede lock-debug] %s: acquiring \"%s\" (rank %d) while holding "
               "\"%s\" (rank %d)\n",
               what, acquiring, acquiring_rank, holding, holding_rank);
  std::abort();
}

}  // namespace

void Mutex::check_order() const {
  const auto& stack = held_stack();
  if (stack.empty()) return;
  const HeldLock& top = stack.back();
  if (top.mu == this) {
    std::fprintf(stderr, "[stampede lock-debug] recursive acquisition of \"%s\"\n", name_);
    std::abort();
  }
  // The hierarchy is strict: same-rank nesting (e.g. one channel's lock
  // inside another's) is as deadlock-prone as inverted ranks.
  if (static_cast<int>(rank_) <= static_cast<int>(top.rank)) {
    die("lock-order violation", name_, static_cast<int>(rank_), top.name,
        static_cast<int>(top.rank));
  }
}

void Mutex::on_acquired() {
  held_stack().push_back(HeldLock{this, rank_, name_});
}

void Mutex::on_released() {
  auto& stack = held_stack();
  // Scoped guards release LIFO, but tolerate out-of-order release (e.g. a
  // future std::unique_lock-style early unlock) by erasing wherever the
  // entry sits.
  const auto it = std::find_if(stack.rbegin(), stack.rend(),
                               [this](const HeldLock& h) { return h.mu == this; });
  if (it == stack.rend()) {
    std::fprintf(stderr, "[stampede lock-debug] releasing \"%s\" which this thread does not hold\n",
                 name_);
    std::abort();
  }
  stack.erase(std::next(it).base());
}

void Mutex::assert_held() const {
  const auto& stack = held_stack();
  const bool held = std::any_of(stack.begin(), stack.end(),
                                [this](const HeldLock& h) { return h.mu == this; });
  if (!held) {
    std::fprintf(stderr, "[stampede lock-debug] assert_held failed for \"%s\"\n", name_);
    std::abort();
  }
}

}  // namespace stampede::util

#else

// The translation unit must not be empty in release builds.
namespace stampede::util {
void lock_debug_disabled_tu_anchor() {}
}  // namespace stampede::util

#endif  // STAMPEDE_LOCK_DEBUG
