/// \file table.hpp
/// \brief ASCII table / CSV rendering for benchmark reports.
///
/// The paper's evaluation artifacts are tables (Figures 6, 7, 10) and
/// footprint-vs-time plots (Figures 8, 9). Bench binaries render both as
/// aligned ASCII tables (stdout) and CSV (optional file) so results are
/// both human-readable and machine-comparable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stampede {

/// Column-aligned text table with a title, a header row, and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; its width must match the header's.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` decimal digits.
  static std::string num(double v, int precision = 2);

  /// Renders the aligned ASCII table.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric content; commas in cells are replaced by ';').
  std::string to_csv() const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders `values` as a fixed-height ASCII sparkline chart (for the
/// Fig. 8/9 footprint-over-time series). `width` columns are produced by
/// bucketing the series; `height` rows of block characters follow.
std::string ascii_chart(const std::vector<double>& values, std::size_t width,
                        std::size_t height, double y_max = 0.0);

}  // namespace stampede
