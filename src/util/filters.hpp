/// \file filters.hpp
/// \brief Feedback-signal smoothing filters.
///
/// The paper (§3.3.2) observes that summary-STP feedback is noisy because
/// OS scheduling perturbs per-iteration execution time, and names filters —
/// as used by the Swift feedback toolbox [Pu et al.] — as the natural
/// extension ("Filters to smooth summary-STP noise have currently not been
/// implemented in ARU and is left for future work"). We implement that
/// extension: a small filter family that can be attached to any node's
/// outgoing summary-STP stream, plus an ablation bench comparing them.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>

namespace stampede {

/// Online scalar filter: push raw samples, read the smoothed value.
class Filter {
 public:
  virtual ~Filter() = default;

  /// Feeds one raw sample, returns the filtered output.
  virtual double push(double x) = 0;

  /// Last filtered output (0 before the first push).
  virtual double value() const = 0;

  /// Resets to the initial (empty) state.
  virtual void reset() = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Identity filter (the paper's published configuration: no smoothing).
class PassthroughFilter final : public Filter {
 public:
  double push(double x) override { return value_ = x; }
  double value() const override { return value_; }
  void reset() override { value_ = 0.0; }
  std::string name() const override { return "passthrough"; }

 private:
  double value_ = 0.0;
};

/// Exponential moving average: y += alpha * (x - y).
class EmaFilter final : public Filter {
 public:
  /// \param alpha smoothing factor in (0, 1]; 1 degenerates to passthrough.
  explicit EmaFilter(double alpha);

  double push(double x) override;
  double value() const override { return value_; }
  void reset() override {
    primed_ = false;
    value_ = 0.0;
  }
  std::string name() const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  bool primed_ = false;
  double value_ = 0.0;
};

/// Sliding-window median — robust to the intermittent large/small spikes
/// the paper describes.
class MedianFilter final : public Filter {
 public:
  explicit MedianFilter(std::size_t window);

  double push(double x) override;
  double value() const override { return value_; }
  void reset() override {
    window_vals_.clear();
    value_ = 0.0;
  }
  std::string name() const override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  std::deque<double> window_vals_;
  double value_ = 0.0;
};

/// Sliding-window arithmetic mean.
class SlidingMeanFilter final : public Filter {
 public:
  explicit SlidingMeanFilter(std::size_t window);

  double push(double x) override;
  double value() const override { return value_; }
  void reset() override {
    window_vals_.clear();
    sum_ = 0.0;
    value_ = 0.0;
  }
  std::string name() const override;

 private:
  std::size_t window_;
  std::deque<double> window_vals_;
  double sum_ = 0.0;
  double value_ = 0.0;
};

/// Factory: "passthrough" | "ema:<alpha>" | "median:<window>" | "mean:<window>".
std::unique_ptr<Filter> make_filter(const std::string& spec);

}  // namespace stampede
