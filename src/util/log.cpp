#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/mutex.hpp"

namespace stampede::log_detail {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("STAMPEDE_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?????";
}

}  // namespace

LogLevel current_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_level(LogLevel level) { level_storage().store(static_cast<int>(level), std::memory_order_relaxed); }

void write(LogLevel level, const std::string& msg) {
  // Leaf rank: logging may happen under any other lock.
  static util::Mutex mu(util::LockRank::kLeaf, "log.sink");
  const util::MutexLock lock(mu);
  std::fprintf(stderr, "[stampede %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace stampede::log_detail
