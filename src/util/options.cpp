#include "util/options.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stampede {

namespace {

[[noreturn]] void malformed(const std::string& origin, std::size_t line_no,
                            const std::string& what) {
  std::string where = origin.empty() ? "" : origin + ":" + std::to_string(line_no) + ": ";
  throw std::invalid_argument("Options: " + where + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses a double-quoted value starting at s[pos] == '"'. Returns the
/// unescaped contents and advances pos past the closing quote.
std::string parse_quoted(const std::string& s, std::size_t& pos,
                         const std::string& origin, std::size_t line_no) {
  std::string out;
  ++pos;  // opening quote
  while (pos < s.size() && s[pos] != '"') {
    char c = s[pos++];
    if (c == '\\') {
      if (pos >= s.size()) malformed(origin, line_no, "dangling escape in quoted value");
      const char esc = s[pos++];
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        default:
          malformed(origin, line_no,
                    std::string("unknown escape '\\") + esc + "' in quoted value");
      }
    }
    out += c;
  }
  if (pos >= s.size()) malformed(origin, line_no, "unterminated quoted value");
  ++pos;  // closing quote
  return out;
}

}  // namespace

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      opts.kv_[arg] = "true";
    } else if (eq == 0) {
      throw std::invalid_argument("Options: malformed argument '" + arg + "'");
    } else {
      opts.kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return opts;
}

Options Options::parse_text(const std::string& text, const std::string& origin) {
  Options opts;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // A comment outside quotes runs to end of line. Quotes only matter in
    // the value position, so scanning for an unquoted '#' is enough.
    std::string meat;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '"') in_quotes = !in_quotes;
      if (c == '\\' && in_quotes && i + 1 < line.size()) {
        meat += c;
        meat += line[++i];
        continue;
      }
      if (c == '#' && !in_quotes) break;
      meat += c;
    }
    const std::string stripped = trim(meat);
    if (stripped.empty()) continue;

    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) {
      opts.kv_[stripped] = "true";
      continue;
    }
    const std::string key = trim(stripped.substr(0, eq));
    if (key.empty()) malformed(origin, line_no, "malformed line '" + trim(line) + "'");
    std::string rest = trim(stripped.substr(eq + 1));
    if (!rest.empty() && rest.front() == '"') {
      std::size_t pos = 0;
      const std::string value = parse_quoted(rest, pos, origin, line_no);
      if (!trim(rest.substr(pos)).empty()) {
        malformed(origin, line_no, "trailing junk after quoted value");
      }
      opts.kv_[key] = value;
    } else {
      opts.kv_[key] = rest;
    }
  }
  return opts;
}

Options Options::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Options: cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_text(text.str(), path);
}

void Options::merge(const Options& over) {
  for (const auto& [k, v] : over.kv_) kv_[k] = v;
}

std::string Options::get_string(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::stoll(it->second);
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: non-boolean value for '" + key + "': " + v);
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, _] : kv_) out.push_back(k);
  return out;
}

}  // namespace stampede
