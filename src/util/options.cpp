#include "util/options.hpp"

#include <stdexcept>

namespace stampede {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      opts.kv_[arg] = "true";
    } else if (eq == 0) {
      throw std::invalid_argument("Options: malformed argument '" + arg + "'");
    } else {
      opts.kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return opts;
}

std::string Options::get_string(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::stoll(it->second);
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: non-boolean value for '" + key + "': " + v);
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, _] : kv_) out.push_back(k);
  return out;
}

}  // namespace stampede
