/// \file time.hpp
/// \brief Common time representation used across the runtime.
///
/// All runtime-facing times are expressed as signed nanosecond counts
/// (`Nanos`). Using a plain integral duration (instead of a clock-specific
/// `time_point`) lets the same code run against the real steady clock and
/// against the deterministic `ManualClock` used in unit tests.
#pragma once

#include <chrono>
#include <cstdint>

namespace stampede {

/// Nanosecond duration / instant since an arbitrary epoch.
using Nanos = std::chrono::nanoseconds;

/// Convenience literals-free constructors.
constexpr Nanos nanos(std::int64_t n) { return Nanos{n}; }
constexpr Nanos micros(std::int64_t us) { return Nanos{us * 1000}; }
constexpr Nanos millis(std::int64_t ms) { return Nanos{ms * 1'000'000}; }
constexpr Nanos seconds(std::int64_t s) { return Nanos{s * 1'000'000'000}; }

/// Conversion helpers for reporting.
constexpr double to_seconds(Nanos d) { return static_cast<double>(d.count()) / 1e9; }
constexpr double to_millis(Nanos d) { return static_cast<double>(d.count()) / 1e6; }
constexpr double to_micros(Nanos d) { return static_cast<double>(d.count()) / 1e3; }

/// Builds a Nanos from a (possibly fractional) millisecond count.
constexpr Nanos from_millis(double ms) {
  return Nanos{static_cast<std::int64_t>(ms * 1e6)};
}

/// Builds a Nanos from a (possibly fractional) second count.
constexpr Nanos from_seconds(double s) {
  return Nanos{static_cast<std::int64_t>(s * 1e9)};
}

}  // namespace stampede
