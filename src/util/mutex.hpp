/// \file mutex.hpp
/// \brief Annotated, rank-checked mutex and RAII guards.
///
/// Every mutex in the runtime is a `util::Mutex` rather than a raw
/// `std::mutex` (enforced by `scripts/lint.sh`) for two reasons:
///
///  1. **Static checking.** `std::mutex` carries no capability attributes
///     under libstdc++, so Clang's `-Wthread-safety` analysis cannot track
///     it. `util::Mutex` is a `CAPABILITY` wrapper, which makes
///     `GUARDED_BY(mu_)` members and `REQUIRES(mu_)` helpers checkable.
///  2. **Dynamic checking.** When built with `ARU_LOCK_DEBUG=ON` (the
///     sanitizer presets do this), every Mutex carries a *rank* and the
///     acquiring thread validates the global lock hierarchy at runtime: a
///     thread may only acquire a mutex whose rank is strictly greater
///     than every mutex it already holds. Violations — including
///     same-rank nesting, e.g. locking one channel inside another —
///     abort with a diagnostic naming both locks. `assert_held()` turns
///     the static ASSERT_CAPABILITY annotation into a real ownership
///     check in this mode.
///
/// The hierarchy (see docs/ARCHITECTURE.md "Concurrency & validation"):
///
///   kLifecycle (Runtime) < kBufferStats (Channel::stats_mu_)
///     < kNetStats (net transport stats flush) < kTelemetry
///     (telemetry::Registry / Exporter) < kNet (net::Transport /
///     server registry) < kControl (control::Supervisor fleet state)
///     < kBuffer (Channel::mu_ / Queue::mu_)
///     < kPool (PayloadPool free lists) < kRecorder (stats::Recorder)
///     < kLeaf (log sink, misc. leaves)
///
/// `kBufferStats` ranking *below* `kBuffer` encodes the out-of-lock flush
/// rule: trace batches must be appended to the shard only after the
/// channel's data-plane lock is released, so acquiring `stats_mu_` while
/// holding `mu_` is a hierarchy violation. `kRecorder` ranks above
/// `kBuffer` because an Item's destructor (which records a free event)
/// may run under a channel lock on the same-timestamp overwrite path.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace stampede::util {

/// Position of a mutex in the global acquisition order. A thread may only
/// acquire strictly increasing ranks. Gaps leave room for new layers.
enum class LockRank : int {
  kLifecycle = 10,    ///< Runtime start/stop/join state.
  kBufferStats = 20,  ///< Channel stats flush — never under kBuffer.
  kNetStats = 22,     ///< Net transport stats flush — never under kNet.
  kTelemetry = 24,    ///< telemetry::Registry / Exporter. Below kBuffer:
                      ///< /status snapshot callbacks read channel
                      ///< occupancy (Channel::mu_) under the registry
                      ///< lock. Never nested with kNet on one thread.
  kNet = 25,          ///< net::Transport connection / server registry.
                      ///< Below kBuffer: the server skeleton performs
                      ///< channel puts/gets while serving a connection.
  kControl = 26,      ///< control::Supervisor fleet state. Above
                      ///< kTelemetry: the aggregated /metrics and fleet
                      ///< /status callbacks read worker state under the
                      ///< registry lock. Probe I/O and fork/exec happen
                      ///< outside it.
  kBuffer = 30,       ///< Channel/Queue data plane. Never nested.
  kPool = 35,         ///< PayloadPool free lists. Above kBuffer: an Item's
                      ///< destructor (which recycles its payload) may run
                      ///< under a channel lock on the same-timestamp
                      ///< overwrite path, exactly like kRecorder.
  kRecorder = 40,     ///< Recorder registry (item frees land here).
  kLeaf = 100,        ///< Leaves: log sink, test-only locks.
};

/// Annotated standard mutex with optional runtime rank/ownership checks.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf, const char* name = "mutex")
#ifdef STAMPEDE_LOCK_DEBUG
      : rank_(rank), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    check_order();
    mu_.lock();
    on_acquired();
  }

  void unlock() RELEASE() {
    on_released();
    mu_.unlock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    // try_lock cannot deadlock, so it is exempt from the rank check.
    const bool ok = mu_.try_lock();
    if (ok) on_acquired();
    return ok;
  }

#ifdef STAMPEDE_LOCK_DEBUG
  /// Asserts (verifies at runtime, aborting on failure) that the calling
  /// thread holds this mutex. Use inside condition-variable predicates
  /// and other callbacks that run under the lock but that the static
  /// analysis cannot see into.
  void assert_held() const ASSERT_CAPABILITY(this);  // defined in mutex.cpp

 private:
  void check_order() const;
  void on_acquired();
  void on_released();

  LockRank rank_;
  const char* name_;
#else
  void assert_held() const ASSERT_CAPABILITY(this) {}

 private:
  void check_order() const {}
  void on_acquired() {}
  void on_released() {}
#endif

  std::mutex mu_;
};

/// `std::lock_guard` replacement the analysis understands.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// `std::unique_lock` replacement for condition-variable waits: satisfies
/// BasicLockable so `std::condition_variable_any` can release/reacquire
/// it around the wait (those internal calls happen in system headers,
/// outside the analysis), while the scoped acquire/release keeps the
/// surrounding function checkable.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() RELEASE() { mu_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  // BasicLockable surface for std::condition_variable_any.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace stampede::util
