/// \file stats.hpp
/// \brief Streaming and time-weighted statistics used by the measurement
///        infrastructure.
///
/// `TimeWeightedStats` implements exactly the paper's §4 memory-footprint
/// formulas:
///   MU_mean  = Σ( MU_{t_{i+1}} · (t_{i+1} − t_i) ) / (t_N − t_0)
///   MU_sigma = sqrt( Σ( (MU_mean − MU_{t_{i+1}})² · (t_{i+1} − t_i) ) / (t_N − t_0) )
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace stampede {

/// Welford online mean/variance plus min/max over a stream of doubles.
class StreamingStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (σ², divides by n), matching the paper's σ usage.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted mean and standard deviation of a right-continuous step
/// function (e.g. bytes-in-use over time).
///
/// Feed `(t_i, value-from-t_i-onwards)` samples in non-decreasing time
/// order, then `finish(t_end)` to close the last interval.
class TimeWeightedStats {
 public:
  /// Records that the tracked quantity equals `value` starting at time `t`
  /// (nanoseconds). `t` must be >= the previous sample's time.
  void sample(std::int64_t t, double value);

  /// Closes the final interval at `t_end` and freezes the accumulator.
  void finish(std::int64_t t_end);

  bool finished() const { return finished_; }
  /// Time-weighted mean over [t_0, t_end].
  double mean() const;
  /// Time-weighted population standard deviation.
  double stddev() const;
  /// Peak value observed.
  double peak() const { return peak_; }
  /// Total observation span in nanoseconds.
  std::int64_t span() const { return have_first_ ? last_t_ - first_t_ : 0; }

 private:
  void accumulate_until(std::int64_t t);

  bool have_first_ = false;
  bool finished_ = false;
  std::int64_t first_t_ = 0;
  std::int64_t last_t_ = 0;
  double cur_value_ = 0.0;
  double peak_ = 0.0;
  double weighted_sum_ = 0.0;    // Σ value·dt
  double weighted_sqsum_ = 0.0;  // Σ value²·dt
};

/// Percentile over a sample vector (nearest-rank). `p` in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace stampede
