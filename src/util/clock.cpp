#include "util/clock.hpp"

#include <stdexcept>
#include <thread>

namespace stampede {

Nanos RealClock::now() const {
  return std::chrono::duration_cast<Nanos>(
      std::chrono::steady_clock::now().time_since_epoch());
}

void RealClock::sleep_for(Nanos d) {
  if (d.count() <= 0) return;
  std::this_thread::sleep_for(d);
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

void ManualClock::set(Nanos t) {
  const std::int64_t cur = now_ns_.load(std::memory_order_acquire);
  if (t.count() < cur) {
    throw std::invalid_argument("ManualClock::set: time must not move backwards");
  }
  now_ns_.store(t.count(), std::memory_order_release);
}

}  // namespace stampede
