/// \file spin.hpp
/// \brief Calibrated busy-work used to emulate data-dependent compute cost.
///
/// The people-tracker stages in the paper burn real CPU; our synthetic
/// reproduction runs genuine pixel kernels and then pads each stage to a
/// configured cost with `busy_spin_for`, which *actively consumes CPU*
/// (unlike sleeping) so the OS-scheduling noise the paper discusses in
/// §3.3.2 is present in our runs too.
#pragma once

#include <cstdint>

#include "util/clock.hpp"
#include "util/time.hpp"

namespace stampede {

/// Burns CPU for approximately `d` measured on `clock`.
///
/// With a `ManualClock` this returns immediately after advancing the clock,
/// keeping deterministic tests fast.
void busy_spin_for(Clock& clock, Nanos d);

/// Pure arithmetic kernel: `iters` rounds of integer mixing. Returns a
/// value that must be consumed (prevents the optimizer from deleting the
/// work). Used by micro-benchmarks that need fixed work independent of a
/// clock.
std::uint64_t mix_work(std::uint64_t seed, std::uint64_t iters);

}  // namespace stampede
