#include "util/spin.hpp"

#include <atomic>

namespace stampede {

namespace {
// Sink so mix_work's result is always observable. Atomic (relaxed): many
// threads busy-spin concurrently, and a plain/volatile global store from
// each of them is a data race (TSan flags it); the stored value itself is
// meaningless.
std::atomic<std::uint64_t> g_sink{0};
}  // namespace

std::uint64_t mix_work(std::uint64_t seed, std::uint64_t iters) {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x += 0x9E3779B97F4A7C15ULL;
  }
  return x;
}

void busy_spin_for(Clock& clock, Nanos d) {
  if (d.count() <= 0) return;
  // ManualClock: sleep_for advances virtual time; real clock: poll-and-mix.
  if (auto* manual = dynamic_cast<ManualClock*>(&clock)) {
    manual->advance(d);
    return;
  }
  const Nanos deadline = clock.now() + d;
  std::uint64_t x = static_cast<std::uint64_t>(d.count());
  while (clock.now() < deadline) {
    x = mix_work(x, 64);  // ~sub-microsecond granule between clock polls
  }
  g_sink.store(x, std::memory_order_relaxed);
}

}  // namespace stampede
