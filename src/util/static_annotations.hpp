/// \file static_annotations.hpp
/// \brief Annotation vocabulary for the aru-analyze call-graph checker.
///
/// `scripts/analyze/aru_analyze.py` builds the project-wide call graph
/// from the compile database and enforces three rules over it (see
/// docs/ARCHITECTURE.md "Static analysis"):
///
///  1. **Hot-path purity.** No function reachable from an `ARU_HOT_PATH`
///     root may transitively call an `ARU_MAY_BLOCK` or `ARU_ALLOCATES`
///     function — including `operator new`, container growth, blocking
///     syscalls, condition-variable waits and sleeps. The paper's
///     feedback loop is only correct if current-STP measures pure
///     execution time (§3.3.1 excludes blocking from the measured
///     section), and the PR 4 zero-copy path is only zero-copy if nothing
///     quietly reintroduces a per-item heap allocation.
///  2. **Lock ranks, statically.** Every `util::Mutex` acquisition site
///     is checked against the `LockRank` partial order by following the
///     call graph from each site while the guard is lexically held. The
///     `ARU_LOCK_DEBUG` runtime validator remains the backstop for paths
///     the static analysis cannot see (function pointers, virtual calls).
///  3. **No throw-paths in wire decode.** Functions reachable from an
///     `ARU_NOTHROW_PATH` root must not `throw` or call a
///     throwing-by-contract function (`at`, `stoi`, `optional::value`,
///     ...), so a malicious peer can never unwind the transport thread.
///
/// The macros expand to nothing for every compiler: they are markers the
/// analyzer reads from the source text, deliberately free of build-time
/// cost or portability risk. Defining `ARU_ANALYZE_ANNOTATE` (no preset
/// does) turns them into Clang `annotate` attributes so a future
/// libclang-based backend can read them from the AST instead.
#pragma once

#if defined(ARU_ANALYZE_ANNOTATE) && defined(__clang__)
#define ARU_ANALYZE_ATTR__(x) __attribute__((annotate(x)))
#else
#define ARU_ANALYZE_ATTR__(x)
#endif

/// Marks a function as a hot-path root: everything transitively callable
/// from it is checked for allocation- and blocking-freedom. Place on the
/// declaration (header), before the return type.
#define ARU_HOT_PATH ARU_ANALYZE_ATTR__("aru_hot_path")

/// Declares that a function may block (socket I/O, sleeps, joins,
/// unbounded waits). Reaching one from a hot-path root is a violation
/// unless the callee also carries ARU_ANALYZE_ESCAPE (a sanctioned,
/// documented blocking leaf such as deadline-bounded socket I/O).
#define ARU_MAY_BLOCK ARU_ANALYZE_ATTR__("aru_may_block")

/// Declares that a function allocates. Reaching one from a hot-path root
/// is a violation unless the callee also carries ARU_ANALYZE_ESCAPE.
#define ARU_ALLOCATES ARU_ANALYZE_ATTR__("aru_allocates")

/// Declares that a function acquires a mutex of the given rank (an
/// integer or a `util::LockRank` enumerator). Used for functions whose
/// acquisition the analyzer cannot see (opaque boundaries, out-of-tree
/// callees); acquisitions through util::MutexLock / util::UniqueLock /
/// Mutex::lock on ranked members are inferred automatically.
#define ARU_ACQUIRES_RANK(n) ARU_ANALYZE_ATTR__("aru_acquires_rank:" #n)

/// Marks a wire-decode root: everything transitively callable from it is
/// checked to be throw-free (rule 3).
#define ARU_NOTHROW_PATH ARU_ANALYZE_ATTR__("aru_nothrow_path")

/// Reviewed escape hatch. On a function that is also ARU_MAY_BLOCK /
/// ARU_ALLOCATES it sanctions calls to it from hot paths (the reason is
/// recorded in the report); on any function it additionally suppresses
/// findings *inside* that function and stops traversal through it. Every
/// use must carry a reason a reviewer can audit. Residual site-level
/// escapes that cannot be expressed as an annotation (e.g. the channel's
/// own condition-variable wait) live in scripts/analyze/baseline.txt.
#define ARU_ANALYZE_ESCAPE(reason) ARU_ANALYZE_ATTR__("aru_escape:" reason)
