/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis attribute macros.
///
/// These expand to Clang's `-Wthread-safety` capability attributes so the
/// locking discipline of the runtime (which mutex guards which member,
/// which helper requires which lock) is machine-checked at compile time.
/// On compilers without the analysis (GCC, MSVC) every macro expands to
/// nothing, so annotated code stays portable.
///
/// The vocabulary follows the Clang documentation and Abseil's
/// `thread_annotations.h`:
///
///  * `CAPABILITY` / `SCOPED_CAPABILITY` — mark a mutex class / RAII
///    guard class as a capability the analysis can track.
///  * `GUARDED_BY(mu)` — a data member may only be read or written while
///    `mu` is held. `PT_GUARDED_BY` is the pointee variant.
///  * `REQUIRES(mu)` — a function may only be called with `mu` held
///    (the `_locked` suffix convention in this codebase).
///  * `ACQUIRE` / `RELEASE` / `TRY_ACQUIRE` — a function takes or drops
///    the capability.
///  * `EXCLUDES(mu)` — a function must NOT be called with `mu` held
///    (used for the out-of-lock stats-flush discipline).
///  * `ASSERT_CAPABILITY(mu)` — a runtime assertion that `mu` is held;
///    tells the analysis the capability is available from that point on
///    (used inside condition-variable predicates, which the analysis
///    cannot otherwise connect to their call site).
///
/// See docs/ARCHITECTURE.md "Concurrency & validation" for the lock
/// hierarchy these annotations encode.
#pragma once

#if defined(__clang__)
#define STAMPEDE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define STAMPEDE_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) STAMPEDE_THREAD_ANNOTATION__(capability(x))

#define SCOPED_CAPABILITY STAMPEDE_THREAD_ANNOTATION__(scoped_lockable)

#define GUARDED_BY(x) STAMPEDE_THREAD_ANNOTATION__(guarded_by(x))

#define PT_GUARDED_BY(x) STAMPEDE_THREAD_ANNOTATION__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) STAMPEDE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) STAMPEDE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) STAMPEDE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  STAMPEDE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) STAMPEDE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) STAMPEDE_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) STAMPEDE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) STAMPEDE_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) STAMPEDE_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) STAMPEDE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  STAMPEDE_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) STAMPEDE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) STAMPEDE_THREAD_ANNOTATION__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) STAMPEDE_THREAD_ANNOTATION__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) STAMPEDE_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS STAMPEDE_THREAD_ANNOTATION__(no_thread_safety_analysis)
