/// \file rng.hpp
/// \brief Small deterministic PRNGs used by workload generators.
///
/// Experiments must be reproducible run-to-run, so every randomized
/// component (scene generation, compute-cost jitter, noise injection)
/// derives its stream from an explicit seed instead of std::random_device.
#pragma once

#include <cstdint>
#include <limits>

namespace stampede {

/// SplitMix64: tiny, fast generator; also used to seed Xoshiro streams.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator for synthetic workloads.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() { return next(); }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0.
  constexpr std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Approximate standard normal via sum of 12 uniforms (Irwin–Hall);
  /// adequate for workload jitter, avoids <cmath> in constexpr contexts.
  constexpr double gaussian() {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return acc - 6.0;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace stampede
