/// \file log.hpp
/// \brief Minimal leveled logger.
///
/// Runtime-internal diagnostics only; experiment output goes through
/// `stats::report` tables instead. Level is controlled programmatically or
/// via the STAMPEDE_LOG environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace stampede {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace log_detail {
LogLevel current_level();
void set_level(LogLevel level);
void write(LogLevel level, const std::string& msg);
}  // namespace log_detail

/// Sets the global log level.
inline void set_log_level(LogLevel level) { log_detail::set_level(level); }

/// True if messages at `level` would be emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_detail::current_level());
}

/// Stream-style logging: LOG(kInfo) << "...";  Messages below the global
/// level are formatted lazily (the macro short-circuits).
#define STAMPEDE_LOG(level)                                      \
  if (!::stampede::log_enabled(::stampede::LogLevel::level)) {   \
  } else                                                         \
    ::stampede::LogLine(::stampede::LogLevel::level)

/// One log statement; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_detail::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace stampede
