/// \file options.hpp
/// \brief Tiny `key=value` option parser for bench/example binaries and
///        option files (no external dependency).
///
/// Usage:   table_fig6 frames=600 seed=7 csv=out.csv
///
/// The same syntax works line-by-line in option files (pipeline
/// manifests, saved bench configs) via parse_file/parse_text, which
/// additionally accept blank lines, `#` comments, and double-quoted
/// values (`motd="paced # not dropped"`) with `\"` / `\\` escapes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stampede {

/// Parsed `key=value` arguments with typed getters and defaults.
class Options {
 public:
  Options() = default;

  /// Parses argv[1..argc); each argument must be `key=value` (a bare token
  /// is treated as `token=true`). Throws std::invalid_argument on
  /// malformed input.
  static Options parse(int argc, const char* const* argv);

  /// Parses option-file text: one `key=value` per line. Blank lines are
  /// skipped; `#` starts a comment (full-line or trailing, unless inside
  /// a quoted value); a value may be double-quoted to carry spaces, `#`,
  /// or escapes (`\"`, `\\`, `\n`, `\t`). Unquoted values end at the
  /// first `#` and are trimmed of surrounding whitespace. Throws
  /// std::invalid_argument on malformed lines (naming `origin` and the
  /// line number when origin is non-empty).
  static Options parse_text(const std::string& text, const std::string& origin = "");

  /// Reads `path` and delegates to parse_text. Throws std::runtime_error
  /// if the file cannot be read.
  static Options parse_file(const std::string& path);

  /// Overlays every entry of `over` onto this set (over wins). Used to
  /// apply command-line overrides on top of a manifest file.
  void merge(const Options& over);

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// All keys, for help/diagnostic output.
  std::vector<std::string> keys() const;

  /// Inserts/overrides a value programmatically.
  void set(const std::string& key, const std::string& value) { kv_[key] = value; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace stampede
