/// \file options.hpp
/// \brief Tiny `key=value` command-line option parser for bench/example
///        binaries (no external dependency).
///
/// Usage:   table_fig6 frames=600 seed=7 csv=out.csv
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stampede {

/// Parsed `key=value` arguments with typed getters and defaults.
class Options {
 public:
  Options() = default;

  /// Parses argv[1..argc); each argument must be `key=value` (a bare token
  /// is treated as `token=true`). Throws std::invalid_argument on
  /// malformed input.
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// All keys, for help/diagnostic output.
  std::vector<std::string> keys() const;

  /// Inserts/overrides a value programmatically.
  void set(const std::string& key, const std::string& value) { kv_[key] = value; }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace stampede
