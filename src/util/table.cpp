#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace stampede {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) throw std::logic_error("Table: set_header after add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '+';
    for (const std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& r : rows_) emit_row(r);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::string cell = row[i];
      std::replace(cell.begin(), cell.end(), ',', ';');
      out << cell;
      if (i + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string ascii_chart(const std::vector<double>& values, std::size_t width,
                        std::size_t height, double y_max) {
  if (values.empty() || width == 0 || height == 0) return "(empty series)\n";

  // Bucket the series into `width` columns (mean per bucket).
  std::vector<double> cols(std::min(width, values.size()), 0.0);
  const double per = static_cast<double>(values.size()) / static_cast<double>(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto lo = static_cast<std::size_t>(per * static_cast<double>(c));
    auto hi = static_cast<std::size_t>(per * static_cast<double>(c + 1));
    hi = std::max(hi, lo + 1);
    hi = std::min(hi, values.size());
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += values[i];
    cols[c] = sum / static_cast<double>(hi - lo);
  }

  double top = y_max;
  if (top <= 0.0) top = *std::max_element(cols.begin(), cols.end());
  if (top <= 0.0) top = 1.0;

  std::ostringstream out;
  for (std::size_t row = height; row > 0; --row) {
    const double threshold = top * (static_cast<double>(row) - 0.5) / static_cast<double>(height);
    out << (row == height ? '^' : '|');
    for (const double v : cols) out << (v >= threshold ? '#' : ' ');
    out << '\n';
  }
  out << '+' << std::string(cols.size(), '-') << "> (max=" << Table::num(top, 2) << ")\n";
  return out.str();
}

}  // namespace stampede
