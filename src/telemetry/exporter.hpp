/// \file exporter.hpp
/// \brief In-process HTTP/1.0 exposition endpoint for telemetry::Registry.
///
/// A deliberately tiny text server on the existing net::TcpListener /
/// net::TcpStream wrappers (nonblocking, deadline-bounded — a wedged
/// scraper cannot hang the exporter thread):
///
///   GET /metrics  -> Prometheus text exposition format 0.0.4
///   GET /status   -> JSON introspection snapshot (channels, pool, links)
///   GET /healthz  -> 200 "ok"
///
/// One `std::jthread` accepts and serves connections sequentially — a
/// scrape every few seconds from one or two collectors, not a web
/// server. Responses are `Connection: close`; each request is one
/// bounded read, one render under the registry mutex (LockRank
/// kTelemetry), one send.
///
/// HTTP parsing lives here and only here: using `parse_http_request` /
/// `HttpRequest` outside src/telemetry/ is banned by aru-analyze's
/// `telemetry-http` lint rule so ad-hoc HTTP handling cannot creep into
/// other subsystems.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "net/socket.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"
#include "util/time.hpp"

namespace stampede::telemetry {

class Registry;

/// A parsed request line. Only the fields the exporter routes on.
struct HttpRequest {
  std::string method;
  std::string path;
};

/// Parses the request head (start line; headers are ignored). Returns
/// false on anything that is not `METHOD SP PATH SP HTTP/x.y`.
bool parse_http_request(std::string_view head, HttpRequest& out);

struct ExporterConfig {
  std::string host = "127.0.0.1";  ///< bind address (dotted quad)
  std::uint16_t port = 0;          ///< 0 = ephemeral, read back via port()
  Nanos io_timeout = millis(500);  ///< per-request read/write deadline
};

/// Serves a Registry over loopback (or a configured interface).
class Exporter {
 public:
  Exporter(Registry& registry, ExporterConfig config);
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Binds the listener and starts the serve thread. Throws
  /// std::runtime_error if the bind fails (port in use, bad host).
  /// Idempotent under the exporter mutex.
  ARU_MAY_BLOCK void start();

  /// Stops the serve thread and closes the listener. Idempotent.
  ARU_MAY_BLOCK void stop();

  /// The bound port (the ephemeral one when config.port was 0). Valid
  /// after start(); 0 before.
  std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

 private:
  void serve(const std::stop_token& st, net::TcpListener listener);
  void handle(net::TcpStream conn);

  Registry& registry_;
  ExporterConfig config_;
  std::atomic<std::uint16_t> port_{0};
  util::Mutex mu_{util::LockRank::kTelemetry, "telemetry::Exporter"};
  std::jthread thread_ GUARDED_BY(mu_);
};

/// Minimal HTTP/1.0 GET for tests and smoke checks: fetches
/// `http://host:port/path` and returns the response body on a 200, or
/// an empty optional on connect/IO failure or any other status.
ARU_MAY_BLOCK ARU_ALLOCATES std::optional<std::string> http_get(
    const std::string& host, std::uint16_t port, const std::string& path,
    Nanos timeout);

}  // namespace stampede::telemetry
