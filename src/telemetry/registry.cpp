#include "telemetry/registry.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace stampede::telemetry {
namespace detail {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return idx;
}

}  // namespace detail

namespace {

/// Formats a polled double: integral values print without a fraction so
/// byte/count gauges read naturally; everything else gets %.10g.
void append_number(std::string& out, double v) {
  char buf[48];
  if (std::nearbyint(v) == v && std::fabs(v) < 9.2e18) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

const char* type_string(bool counter_like) {
  return counter_like ? "counter" : "gauge";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Histogram::Histogram(std::span<const std::int64_t> bounds) {
  n_bounds_ = bounds.size() < kMaxBuckets ? bounds.size() : kMaxBuckets;
  for (std::size_t i = 0; i < n_bounds_; ++i) bounds_[i] = bounds[i];
  for (std::size_t i = 1; i < n_bounds_; ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::logic_error("telemetry: histogram bounds must be strictly increasing");
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  std::int64_t sum = 0;
  std::array<std::uint64_t, kMaxBuckets + 1> per_bucket{};
  for (const Row& row : rows_) {
    for (std::size_t b = 0; b <= n_bounds_; ++b) {
      per_bucket[b] += row.buckets[b].load(std::memory_order_relaxed);
    }
    sum += row.sum.load(std::memory_order_relaxed);
  }
  std::uint64_t running = 0;
  for (std::size_t b = 0; b <= n_bounds_; ++b) {
    running += per_bucket[b];
    snap.cumulative[b] = running;
  }
  snap.sum = sum;
  snap.count = running;
  return snap;
}

Registry::Series& Registry::find_or_insert(Kind kind, std::string_view name,
                                           std::string_view help,
                                           const Labels& labels) {
  std::string body;
  for (const auto& [k, v] : labels) {
    if (!body.empty()) body += ',';
    body += k;
    body += "=\"";
    body += json_escape(v);
    body += '"';
  }
  for (const auto& s : series_) {
    if (s->name == name && s->labels_body == body) {
      if (s->kind != kind) {
        throw std::logic_error("telemetry: series '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return *s;
    }
  }
  auto s = std::make_unique<Series>();
  s->kind = kind;
  s->name = std::string(name);
  s->help = std::string(help);
  s->labels_body = std::move(body);
  series_.push_back(std::move(s));
  return *series_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  util::MutexLock lock(mu_);
  Series& s = find_or_insert(Kind::kCounter, name, help, labels);
  if (!s.counter) s.counter.reset(new Counter());
  return *s.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help, Labels labels) {
  util::MutexLock lock(mu_);
  Series& s = find_or_insert(Kind::kGauge, name, help, labels);
  if (!s.gauge) s.gauge.reset(new Gauge());
  return *s.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::span<const std::int64_t> bounds, Labels labels) {
  util::MutexLock lock(mu_);
  Series& s = find_or_insert(Kind::kHistogram, name, help, labels);
  if (!s.hist) s.hist.reset(new Histogram(bounds));
  return *s.hist;
}

void Registry::polled_counter(std::string_view name, std::string_view help,
                              Labels labels, std::function<double()> fn) {
  util::MutexLock lock(mu_);
  Series& s = find_or_insert(Kind::kPolledCounter, name, help, labels);
  s.poll = std::move(fn);
}

void Registry::polled_gauge(std::string_view name, std::string_view help,
                            Labels labels, std::function<double()> fn) {
  util::MutexLock lock(mu_);
  Series& s = find_or_insert(Kind::kPolledGauge, name, help, labels);
  s.poll = std::move(fn);
}

std::uint64_t Registry::add_status(std::string key, std::function<std::string()> fn) {
  util::MutexLock lock(mu_);
  const std::uint64_t handle = next_handle_++;
  status_.push_back({handle, std::move(key), std::move(fn)});
  return handle;
}

void Registry::remove_status(std::uint64_t handle) {
  util::MutexLock lock(mu_);
  for (auto it = status_.begin(); it != status_.end(); ++it) {
    if (it->handle == handle) {
      status_.erase(it);
      return;
    }
  }
}

std::uint64_t Registry::add_exposition(std::function<std::string()> fn) {
  util::MutexLock lock(mu_);
  const std::uint64_t handle = next_handle_++;
  expositions_.push_back({handle, std::move(fn)});
  return handle;
}

void Registry::remove_exposition(std::uint64_t handle) {
  util::MutexLock lock(mu_);
  for (auto it = expositions_.begin(); it != expositions_.end(); ++it) {
    if (it->handle == handle) {
      expositions_.erase(it);
      return;
    }
  }
}

std::string Registry::render_prometheus() const {
  util::MutexLock lock(mu_);
  std::string out;
  out.reserve(series_.size() * 96);
  // Series with the same name must share one HELP/TYPE header and render
  // contiguously: walk in registration order and, at each first sighting
  // of a name, emit the header plus every series of that name.
  std::vector<const std::string*> emitted;
  emitted.reserve(series_.size());
  for (const auto& first : series_) {
    bool seen = false;
    for (const std::string* e : emitted) seen = seen || *e == first->name;
    if (seen) continue;
    emitted.push_back(&first->name);

    out += "# HELP " + first->name + " " + first->help + "\n";
    out += "# TYPE " + first->name + " ";
    switch (first->kind) {
      case Kind::kCounter:
      case Kind::kPolledCounter: out += type_string(true); break;
      case Kind::kGauge:
      case Kind::kPolledGauge: out += type_string(false); break;
      case Kind::kHistogram: out += "histogram"; break;
    }
    out += '\n';

    for (const auto& s : series_) {
      if (s->name != first->name) continue;
      const std::string braced =
          s->labels_body.empty() ? "" : "{" + s->labels_body + "}";
      switch (s->kind) {
        case Kind::kCounter:
          out += s->name + braced + " ";
          append_u64(out, s->counter->value());
          out += '\n';
          break;
        case Kind::kGauge:
          out += s->name + braced + " ";
          append_i64(out, s->gauge->value());
          out += '\n';
          break;
        case Kind::kPolledCounter:
        case Kind::kPolledGauge:
          out += s->name + braced + " ";
          append_number(out, s->poll ? s->poll() : 0.0);
          out += '\n';
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = s->hist->snapshot();
          const auto bounds = s->hist->bounds();
          const std::string sep = s->labels_body.empty() ? "" : ",";
          for (std::size_t b = 0; b < bounds.size(); ++b) {
            out += s->name + "_bucket{" + s->labels_body + sep + "le=\"";
            append_i64(out, bounds[b]);
            out += "\"} ";
            append_u64(out, snap.cumulative[b]);
            out += '\n';
          }
          out += s->name + "_bucket{" + s->labels_body + sep + "le=\"+Inf\"} ";
          append_u64(out, snap.count);
          out += '\n';
          out += s->name + "_sum" + braced + " ";
          append_i64(out, snap.sum);
          out += '\n';
          out += s->name + "_count" + braced + " ";
          append_u64(out, snap.count);
          out += '\n';
          break;
        }
      }
    }
  }
  for (const ExpositionBlock& block : expositions_) {
    if (!block.fn) continue;
    const std::string text = block.fn();
    out += text;
    if (!text.empty() && text.back() != '\n') out += '\n';
  }
  return out;
}

std::string Registry::render_status() const {
  util::MutexLock lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const StatusSection& sec : status_) {
    if (!first) out += ',';
    first = false;
    // Sequential appends, not `"\"" + key + "\":"`: the temporary-chain
    // form trips GCC 12's bogus -Wrestrict at -O2 (PR105329) under
    // -Werror.
    out += '"';
    out += json_escape(sec.key);
    out += "\":";
    out += sec.fn ? sec.fn() : "null";
  }
  out += "}";
  return out;
}

}  // namespace stampede::telemetry
