/// \file registry.hpp
/// \brief Live metrics registry: striped counters, gauges, histograms.
///
/// The postmortem plane (stats::Recorder -> trace_io -> Analyzer) only
/// answers questions after a run; this registry is the *live* plane the
/// paper's feedback story implies — the signals the controller acts on
/// (current-STP, summary-STP, occupancy, drops) observable while the
/// node serves traffic, exported by telemetry::Exporter.
///
/// Design constraints, in order:
///
///  1. **Hot-path increments are allocation-free and lock-free.** A
///     `Counter::add` is one relaxed `fetch_add` on a per-thread stripe;
///     a `Histogram::observe` is a bounded linear bucket scan plus two
///     relaxed `fetch_add`s. Both are `ARU_HOT_PATH` roots, so
///     aru-analyze proves nothing allocating or blocking is reachable
///     from them.
///  2. **Registration is a startup-time operation.** `counter()` /
///     `gauge()` / `histogram()` allocate and take the registry mutex —
///     they are `ARU_ALLOCATES` and must never appear on a hot path (the
///     analyze fixture `telemetry_register` proves the checker catches
///     this). Returned references stay valid for the registry's
///     lifetime; series storage is address-stable.
///  3. **Stripes trade memory for contention.** Each counter/histogram
///     holds `kStripes` cache-line-aligned cells; a thread picks its
///     stripe once (thread-local id) and never contends with readers.
///     Reads sum the stripes — each stripe is monotone, so a summed
///     counter read is monotone across sequential reads too.
///
/// The registry mutex ranks `kTelemetry` (24): below `kNet`/`kBuffer`
/// so `/status` snapshot callbacks may read channel occupancy
/// (Channel::mu_, rank 30) under it.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::telemetry {

/// Stripe count per counter/histogram. Power of two; a thread maps to a
/// fixed stripe via a thread-local id, so up to kStripes threads
/// increment with zero cache-line sharing.
inline constexpr std::size_t kStripes = 8;

namespace detail {
/// This thread's stripe slot (assigned once per thread, round-robin).
ARU_HOT_PATH std::size_t stripe_index();
}  // namespace detail

/// Monotone event counter. Increment from any thread; read anywhere.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// One relaxed fetch_add on this thread's stripe. Allocation-free.
  ARU_HOT_PATH void add(std::uint64_t n = 1) {
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum of all stripes. Monotone across sequential calls (each stripe
  /// is monotone), though a concurrent add may or may not be included.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class Registry;
  Counter() = default;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Last-writer-wins instantaneous value (occupancy, STP, bytes parked).
/// A single atomic: gauges are set, not incremented, on hot paths.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  ARU_HOT_PATH void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  ARU_HOT_PATH void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;

  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative `le` buckets).
/// Bucket bounds are fixed at registration; observations land in the
/// first bucket whose bound is >= the value, or the implicit +Inf
/// overflow bucket.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 32;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bounded bucket scan + two relaxed fetch_adds. Allocation-free.
  ARU_HOT_PATH void observe(std::int64_t v) {
    std::size_t b = 0;
    while (b < n_bounds_ && v > bounds_[b]) ++b;
    Row& row = rows_[detail::stripe_index()];
    row.buckets[b].fetch_add(1, std::memory_order_relaxed);
    row.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Cumulative view: counts[i] = observations <= bounds()[i];
  /// counts[n_bounds()] = total count (the +Inf bucket).
  struct Snapshot {
    std::array<std::uint64_t, kMaxBuckets + 1> cumulative{};
    std::int64_t sum = 0;
    std::uint64_t count = 0;
  };
  Snapshot snapshot() const;

  std::span<const std::int64_t> bounds() const { return {bounds_.data(), n_bounds_}; }

 private:
  friend class Registry;
  explicit Histogram(std::span<const std::int64_t> bounds);

  struct alignas(64) Row {
    std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> buckets{};
    std::atomic<std::int64_t> sum{0};
  };
  std::array<std::int64_t, kMaxBuckets> bounds_{};
  std::size_t n_bounds_ = 0;
  std::array<Row, kStripes> rows_;
};

/// Owns every metric series and renders the exposition formats. One per
/// Runtime; instrumented layers hold raw pointers to series they
/// registered at construction time (stable for the registry's lifetime).
class Registry {
 public:
  /// Label set attached to a series, e.g. {{"channel", "frames"}}.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration: startup-time only (allocates, takes the registry
  /// mutex). Re-registering the same (name, labels) returns the
  /// existing series — registration is idempotent, so two links to the
  /// same channel share one counter. Throws std::logic_error if the
  /// name+labels already exist with a different metric kind.
  ARU_ALLOCATES Counter& counter(std::string_view name, std::string_view help,
                                 Labels labels = {});
  ARU_ALLOCATES Gauge& gauge(std::string_view name, std::string_view help,
                             Labels labels = {});
  ARU_ALLOCATES Histogram& histogram(std::string_view name, std::string_view help,
                                     std::span<const std::int64_t> bounds,
                                     Labels labels = {});

  /// Polled series: `fn` is evaluated at render time under the registry
  /// mutex (so it must not acquire any rank <= kTelemetry). For values
  /// another subsystem already maintains (pool stats, MemoryTracker) —
  /// zero hot-path cost, no double bookkeeping.
  ARU_ALLOCATES void polled_counter(std::string_view name, std::string_view help,
                                    Labels labels, std::function<double()> fn);
  ARU_ALLOCATES void polled_gauge(std::string_view name, std::string_view help,
                                  Labels labels, std::function<double()> fn);

  /// `/status` JSON sections: `fn` returns a raw JSON value rendered as
  /// `"key": <value>` in the snapshot object, evaluated under the
  /// registry mutex (same rank rule as polled series; unregistration is
  /// therefore race-free against rendering). Returns a handle for
  /// remove_status — used by series whose owner can die before the
  /// registry (e.g. a RemoteChannel link).
  ARU_ALLOCATES std::uint64_t add_status(std::string key,
                                         std::function<std::string()> fn);
  void remove_status(std::uint64_t handle);

  /// Extra exposition blocks: `fn` returns raw Prometheus text appended
  /// verbatim (newline-terminated) after this registry's own series in
  /// render_prometheus(). Evaluated under the registry mutex, so `fn`
  /// must not acquire any rank <= kTelemetry. Used by the control plane
  /// to merge scraped per-worker metrics into one fleet endpoint.
  /// Returns a handle for remove_exposition.
  ARU_ALLOCATES std::uint64_t add_exposition(std::function<std::string()> fn);
  void remove_exposition(std::uint64_t handle);

  /// Prometheus text exposition format 0.0.4.
  ARU_ALLOCATES std::string render_prometheus() const;
  /// JSON object with one member per registered status section.
  ARU_ALLOCATES std::string render_status() const;

 private:
  enum class Kind : std::uint8_t {
    kCounter,
    kGauge,
    kHistogram,
    kPolledCounter,
    kPolledGauge,
  };

  struct Series {
    Kind kind;
    std::string name;
    std::string help;
    std::string labels_body;  ///< rendered `k="v",...` (no braces), "" if none
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
    std::function<double()> poll;
  };

  struct StatusSection {
    std::uint64_t handle;
    std::string key;
    std::function<std::string()> fn;
  };

  struct ExpositionBlock {
    std::uint64_t handle;
    std::function<std::string()> fn;
  };

  Series& find_or_insert(Kind kind, std::string_view name, std::string_view help,
                         const Labels& labels) REQUIRES(mu_);

  mutable util::Mutex mu_{util::LockRank::kTelemetry, "telemetry::Registry"};
  std::vector<std::unique_ptr<Series>> series_ GUARDED_BY(mu_);
  std::vector<StatusSection> status_ GUARDED_BY(mu_);
  std::vector<ExpositionBlock> expositions_ GUARDED_BY(mu_);
  std::uint64_t next_handle_ GUARDED_BY(mu_) = 1;
};

/// Escapes `s` as the contents of a JSON (and Prometheus label) string
/// literal: backslash, double quote, and control characters.
std::string json_escape(std::string_view s);

}  // namespace stampede::telemetry
