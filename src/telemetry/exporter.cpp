#include "telemetry/exporter.hpp"

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "telemetry/registry.hpp"

namespace stampede::telemetry {
namespace {

/// Upper bound on a request head we are willing to buffer. A scrape
/// request line is tens of bytes; anything past this is not a scraper.
constexpr std::size_t kMaxRequestBytes = 4096;

/// Accept-poll slice: how often the serve loop re-checks its stop token.
constexpr Nanos kAcceptSlice = millis(50);

std::string make_response(int status, const char* reason, const char* content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Reads until the blank line ending the request head, a size cap, EOF,
/// or the deadline. Returns the bytes read so far (head + any spillover)
/// or an empty optional on timeout/error before the head completed.
std::optional<std::string> read_request_head(net::TcpStream& conn, Nanos timeout) {
  std::string buf;
  std::byte chunk[1024];
  while (buf.size() < kMaxRequestBytes) {
    if (buf.find("\r\n\r\n") != std::string::npos) return buf;
    std::size_t n = 0;
    const net::IoStatus st = conn.recv_some(chunk, &n, timeout);
    if (st == net::IoStatus::kClosed) return buf;  // head may still parse
    if (st != net::IoStatus::kOk) return std::nullopt;
    buf.append(reinterpret_cast<const char*>(chunk), n);
  }
  return buf;
}

}  // namespace

bool parse_http_request(std::string_view head, HttpRequest& out) {
  const std::size_t eol = head.find("\r\n");
  std::string_view line = eol == std::string_view::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (!version.starts_with("HTTP/")) return false;
  out.method = std::string(line.substr(0, sp1));
  out.path = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  return true;
}

Exporter::Exporter(Registry& registry, ExporterConfig config)
    : registry_(registry), config_(std::move(config)) {}

Exporter::~Exporter() { stop(); }

void Exporter::start() {
  util::MutexLock lock(mu_);
  if (thread_.joinable()) return;
  std::string err;
  std::optional<net::TcpListener> listener =
      net::TcpListener::listen(config_.host, config_.port, &err);
  if (!listener) {
    throw std::runtime_error("telemetry: cannot bind exporter on " + config_.host +
                             ":" + std::to_string(config_.port) + ": " + err);
  }
  port_.store(listener->port(), std::memory_order_release);
  thread_ = std::jthread([this, l = std::move(*listener)](std::stop_token st) mutable {
    serve(st, std::move(l));
  });
}

void Exporter::stop() {
  util::MutexLock lock(mu_);
  if (!thread_.joinable()) return;
  thread_.request_stop();
  thread_.join();
  thread_ = std::jthread();
  port_.store(0, std::memory_order_release);
}

void Exporter::serve(const std::stop_token& st, net::TcpListener listener) {
  while (!st.stop_requested()) {
    std::optional<net::TcpStream> conn = listener.accept(kAcceptSlice);
    if (!conn) continue;
    handle(std::move(*conn));
  }
  listener.close();
}

void Exporter::handle(net::TcpStream conn) {
  const std::optional<std::string> head = read_request_head(conn, config_.io_timeout);
  std::string response;
  HttpRequest req;
  if (!head || !parse_http_request(*head, req)) {
    response = make_response(400, "Bad Request", "text/plain", "bad request\n");
  } else if (req.method != "GET") {
    response = make_response(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  } else if (req.path == "/metrics") {
    response = make_response(200, "OK",
                             "text/plain; version=0.0.4; charset=utf-8",
                             registry_.render_prometheus());
  } else if (req.path == "/status") {
    response = make_response(200, "OK", "application/json",
                             registry_.render_status());
  } else if (req.path == "/healthz") {
    response = make_response(200, "OK", "text/plain", "ok\n");
  } else {
    response = make_response(404, "Not Found", "text/plain",
                             "try /metrics, /status or /healthz\n");
  }
  conn.send_all(std::as_bytes(std::span(response.data(), response.size())),
                config_.io_timeout);
  conn.close();
}

std::optional<std::string> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& path, Nanos timeout) {
  std::optional<net::TcpStream> conn = net::TcpStream::connect(host, port, timeout);
  if (!conn) return std::nullopt;
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (conn->send_all(std::as_bytes(std::span(request.data(), request.size())),
                     timeout) != net::IoStatus::kOk) {
    return std::nullopt;
  }
  std::string response;
  std::byte chunk[4096];
  for (;;) {
    std::size_t n = 0;
    const net::IoStatus st = conn->recv_some(chunk, &n, timeout);
    if (st == net::IoStatus::kClosed) break;
    if (st != net::IoStatus::kOk) return std::nullopt;
    response.append(reinterpret_cast<const char*>(chunk), n);
  }
  // HTTP/1.0 200 <reason>\r\n ... \r\n\r\n <body>
  const std::size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos) return std::nullopt;
  const std::string_view status_line(response.data(), line_end);
  if (status_line.find(" 200 ") == std::string_view::npos) return std::nullopt;
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) return std::nullopt;
  return response.substr(body_at + 4);
}

}  // namespace stampede::telemetry
