#include "stats/recorder.hpp"

#include <algorithm>

namespace stampede::stats {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kAlloc: return "alloc";
    case EventType::kFree: return "free";
    case EventType::kPut: return "put";
    case EventType::kConsume: return "consume";
    case EventType::kSkip: return "skip";
    case EventType::kDrop: return "drop";
    case EventType::kCompute: return "compute";
    case EventType::kElide: return "elide";
    case EventType::kEmit: return "emit";
    case EventType::kDisplay: return "display";
    case EventType::kStp: return "stp";
    case EventType::kSleep: return "sleep";
    case EventType::kBlocked: return "blocked";
    case EventType::kTransfer: return "transfer";
    case EventType::kOverhead: return "overhead";
    case EventType::kGauge: return "gauge";
    case EventType::kReplicate: return "replicate";
    case EventType::kReplicaFree: return "replica-free";
    case EventType::kNetTx: return "net-tx";
    case EventType::kNetRx: return "net-rx";
    case EventType::kReconnect: return "reconnect";
  }
  return "?";
}

Shard* Recorder::new_shard() {
  const util::MutexLock lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  return shards_.back().get();
}

void Recorder::set_node_name(NodeRef node, std::string name) {
  const util::MutexLock lock(mu_);
  if (node < 0) return;
  if (static_cast<std::size_t>(node) >= node_names_.size()) {
    node_names_.resize(static_cast<std::size_t>(node) + 1);
  }
  node_names_[static_cast<std::size_t>(node)] = std::move(name);
}

void Recorder::record_any_thread(const Event& e) {
  const util::MutexLock lock(mu_);
  any_thread_shard_.record(e);
}

Trace Recorder::merge(std::int64_t t_begin, std::int64_t t_end) const {
  const util::MutexLock lock(mu_);
  Trace trace;
  trace.t_begin = t_begin;
  trace.t_end = t_end;
  trace.node_names = node_names_;

  std::size_t total_events = any_thread_shard_.events_.size();
  std::size_t total_items = any_thread_shard_.items_.size();
  for (const auto& s : shards_) {
    total_events += s->events_.size();
    total_items += s->items_.size();
  }
  trace.events.reserve(total_events);
  trace.items.reserve(total_items);

  auto take = [&](const Shard& s) {
    trace.events.insert(trace.events.end(), s.events_.begin(), s.events_.end());
    trace.items.insert(trace.items.end(), s.items_.begin(), s.items_.end());
  };
  for (const auto& s : shards_) take(*s);
  take(any_thread_shard_);

  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
  std::sort(trace.items.begin(), trace.items.end(),
            [](const ItemRecord& a, const ItemRecord& b) { return a.id < b.id; });
  return trace;
}

}  // namespace stampede::stats
