#include "stats/postmortem.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "util/stats.hpp"

namespace stampede::stats {

namespace {
constexpr double kMb = 1024.0 * 1024.0;
}

Analyzer::Analyzer(const Trace& trace, AnalyzerOptions opts) : trace_(trace), opts_(opts) {
  item_index_.reserve(trace_.items.size());
  for (std::size_t i = 0; i < trace_.items.size(); ++i) {
    item_index_.emplace(trace_.items[i].id, i);
  }

  for (const Event& e : trace_.events) {
    switch (e.type) {
      case EventType::kConsume:
      case EventType::kEmit: {
        auto [it, inserted] = last_use_.try_emplace(e.item, e.t);
        if (!inserted) it->second = std::max(it->second, e.t);
        if (e.type == EventType::kEmit) emits_.push_back(e);
        break;
      }
      case EventType::kDisplay: {
        displays_.push_back(e);
        break;
      }
      case EventType::kFree: {
        free_time_[e.item] = std::clamp(e.t, trace_.t_begin, trace_.t_end);
        break;
      }
      default:
        break;
    }
  }

  // Successful = emitted items plus their full ancestor closure.
  std::deque<ItemId> frontier;
  for (const Event& e : emits_) {
    if (successful_.insert(e.item).second) frontier.push_back(e.item);
  }
  while (!frontier.empty()) {
    const ItemId id = frontier.front();
    frontier.pop_front();
    const ItemRecord* rec = find_item(id);
    if (rec == nullptr) continue;
    for (const ItemId parent : rec->lineage) {
      if (successful_.insert(parent).second) frontier.push_back(parent);
    }
  }
}

const ItemRecord* Analyzer::find_item(ItemId id) const {
  const auto it = item_index_.find(id);
  return it == item_index_.end() ? nullptr : &trace_.items[it->second];
}

std::int64_t Analyzer::perf_window_start() const {
  const auto span = static_cast<double>(trace_.t_end - trace_.t_begin);
  return trace_.t_begin + static_cast<std::int64_t>(span * opts_.warmup_fraction);
}

std::vector<double> Analyzer::emit_latencies_ms() const {
  const std::int64_t cutoff = perf_window_start();
  std::vector<double> latencies;
  latencies.reserve(emits_.size());
  for (const Event& e : emits_) {
    if (e.t < cutoff) continue;
    // Walk the lineage back to the source (lineage-free) ancestors. The
    // trip being completed is that of the frame with the emitted
    // timestamp; prefer a source ancestor with that timestamp (a
    // multi-input stage may also reference slightly older auxiliary
    // inputs), falling back to the earliest root.
    std::int64_t origin_matching = -1;
    std::int64_t origin_any = -1;
    std::deque<ItemId> work{e.item};
    std::unordered_set<ItemId> seen;
    while (!work.empty()) {
      const ItemId id = work.front();
      work.pop_front();
      if (!seen.insert(id).second) continue;
      const ItemRecord* rec = find_item(id);
      if (rec == nullptr) continue;
      if (rec->lineage.empty()) {
        if (rec->ts == e.ts) {
          origin_matching =
              origin_matching < 0 ? rec->t_alloc : std::min(origin_matching, rec->t_alloc);
        }
        origin_any = origin_any < 0 ? rec->t_alloc : std::min(origin_any, rec->t_alloc);
      } else {
        for (const ItemId parent : rec->lineage) work.push_back(parent);
      }
    }
    const std::int64_t origin = origin_matching >= 0 ? origin_matching : origin_any;
    if (origin >= 0 && e.t >= origin) {
      latencies.push_back(static_cast<double>(e.t - origin) / 1e6);
    }
  }
  return latencies;
}

std::vector<StpSample> Analyzer::stp_series(NodeRef node) const {
  std::vector<StpSample> out;
  for (const Event& e : trace_.events) {
    if (e.type == EventType::kStp && e.node == node) {
      out.push_back(StpSample{.t = e.t, .current_ns = e.a, .summary_ns = e.b});
    }
  }
  return out;
}

std::vector<Analyzer::GaugeSample> Analyzer::gauge_series(NodeRef node) const {
  std::vector<GaugeSample> out;
  for (const Event& e : trace_.events) {
    if (e.type == EventType::kGauge && e.node == node) {
      out.push_back(GaugeSample{.t = e.t, .value = e.a, .aux = e.b});
    }
  }
  return out;
}

Analysis Analyzer::run() const {
  Analysis a;
  const std::int64_t t0 = trace_.t_begin;
  const std::int64_t t1 = std::max(trace_.t_end, t0 + 1);

  // ---- performance -----------------------------------------------------------
  const std::int64_t cutoff = perf_window_start();

  // Output-frame instants: sink display refreshes when the sink reported
  // them, otherwise distinct emitted timestamps (first emission per ts).
  std::vector<std::int64_t> emit_times;
  if (!displays_.empty()) {
    for (const Event& e : displays_) {
      if (e.t >= cutoff) emit_times.push_back(e.t);
    }
  } else {
    std::unordered_set<Ts> seen;
    for (const Event& e : emits_) {
      if (e.t < cutoff) continue;
      if (seen.insert(e.ts).second) emit_times.push_back(e.t);
    }
  }
  std::sort(emit_times.begin(), emit_times.end());
  a.perf.frames_emitted = static_cast<std::int64_t>(emit_times.size());

  const double perf_span_s = static_cast<double>(t1 - cutoff) / 1e9;
  if (perf_span_s > 0) {
    a.perf.throughput_fps = static_cast<double>(emit_times.size()) / perf_span_s;
  }
  // σ of per-second window rates.
  if (!emit_times.empty()) {
    StreamingStats window_fps;
    const std::int64_t window = 1'000'000'000;
    std::int64_t wstart = cutoff;
    std::size_t i = 0;
    while (wstart + window <= t1) {
      std::int64_t count = 0;
      while (i < emit_times.size() && emit_times[i] < wstart + window) {
        ++count;
        ++i;
      }
      window_fps.add(static_cast<double>(count));
      wstart += window;
    }
    if (window_fps.count() >= 2) a.perf.throughput_fps_std = window_fps.stddev();
  }

  {
    const std::vector<double> latencies = emit_latencies_ms();
    StreamingStats lat;
    for (const double l : latencies) lat.add(l);
    a.perf.latency_ms_mean = lat.mean();
    a.perf.latency_ms_std = lat.stddev();
    a.perf.latency_ms_p50 = percentile(latencies, 50);
    a.perf.latency_ms_p95 = percentile(latencies, 95);
    a.perf.latency_ms_p99 = percentile(latencies, 99);
  }

  if (emit_times.size() >= 3) {
    StreamingStats gaps;
    for (std::size_t i = 1; i < emit_times.size(); ++i) {
      gaps.add(static_cast<double>(emit_times[i] - emit_times[i - 1]) / 1e6);
    }
    a.perf.jitter_ms = gaps.stddev();
  }

  // ---- memory footprint ------------------------------------------------------
  a.footprint = footprint_from_events(trace_.events, t0, t1);
  {
    const TimeWeightedStats w = a.footprint.weighted();
    a.res.footprint_mb_mean = w.mean() / kMb;
    a.res.footprint_mb_std = w.stddev() / kMb;
    a.res.footprint_mb_peak = w.peak() / kMb;
  }

  // ---- payload-pool cache ----------------------------------------------------
  // Sample-and-hold step series from the monitor's pool gauge samples,
  // reusing the footprint time-weighting (zero before the first sample).
  {
    FootprintSeries pool;
    pool.t_begin = t0;
    pool.t_end = t1;
    for (const Event& e : trace_.events) {
      if (e.type == EventType::kGauge && e.node == kPoolGaugeNode) {
        pool.t.push_back(std::clamp(e.t, t0, t1));
        pool.bytes.push_back(static_cast<double>(e.a));
      }
    }
    if (!pool.t.empty()) {
      const TimeWeightedStats w = pool.weighted();
      a.res.pool_cached_mb_mean = w.mean() / kMb;
      a.res.pool_cached_mb_peak = w.peak() / kMb;
    }
  }

  // ---- waste accounting ------------------------------------------------------
  double mem_seconds_total = 0.0;
  double mem_seconds_wasted = 0.0;
  double compute_total_ns = 0.0;
  double compute_wasted_ns = 0.0;

  std::vector<std::int64_t> igc_alloc, igc_free, igc_bytes;
  for (const ItemRecord& rec : trace_.items) {
    ++a.res.items_total;
    const auto itf = free_time_.find(rec.id);
    const std::int64_t t_free = itf == free_time_.end() ? t1 : itf->second;
    const std::int64_t t_alloc = std::clamp(rec.t_alloc, t0, t1);
    const double life = static_cast<double>(std::max<std::int64_t>(0, t_free - t_alloc));
    const double byte_seconds = static_cast<double>(rec.bytes) * life;
    mem_seconds_total += byte_seconds;

    const bool ok = successful(rec.id);
    if (!ok) {
      ++a.res.items_wasted;
      mem_seconds_wasted += byte_seconds;
    } else {
      // IGC keeps successful items only, freeing each at last use.
      const auto itu = last_use_.find(rec.id);
      const std::int64_t t_use = itu == last_use_.end() ? t_alloc : std::clamp(itu->second, t0, t1);
      igc_alloc.push_back(t_alloc);
      igc_free.push_back(std::max(t_alloc, t_use));
      igc_bytes.push_back(rec.bytes);
    }
  }

  for (const Event& e : trace_.events) {
    switch (e.type) {
      case EventType::kCompute: {
        compute_total_ns += static_cast<double>(e.a);
        if (e.item != 0 && !successful(e.item)) {
          compute_wasted_ns += static_cast<double>(e.a);
        }
        break;
      }
      case EventType::kOverhead:
        compute_total_ns += static_cast<double>(e.a);
        break;
      case EventType::kElide:
        a.res.elided_compute_ms += static_cast<double>(e.a) / 1e6;
        break;
      case EventType::kDrop:
        ++a.res.drops;
        break;
      default:
        break;
    }
  }

  a.res.total_compute_ms = compute_total_ns / 1e6;
  a.res.wasted_compute_ms = compute_wasted_ns / 1e6;
  if (mem_seconds_total > 0) {
    a.res.wasted_mem_pct = 100.0 * mem_seconds_wasted / mem_seconds_total;
  }
  if (compute_total_ns > 0) {
    a.res.wasted_comp_pct = 100.0 * compute_wasted_ns / compute_total_ns;
  }

  // ---- Ideal GC bound --------------------------------------------------------
  // Remote replicas of successful items are part of even the ideal cost
  // (the consumer genuinely needs the copy while using it): include their
  // residency intervals. Replicate/replica-free pairs are matched FIFO per
  // (item, cluster node).
  {
    std::map<std::pair<ItemId, std::int64_t>, std::deque<std::int64_t>> open;
    for (const Event& e : trace_.events) {
      if (e.type == EventType::kReplicate) {
        if (!successful(e.item)) continue;
        open[{e.item, e.b}].push_back(std::clamp(e.t, t0, t1));
      } else if (e.type == EventType::kReplicaFree) {
        const auto it = open.find({e.item, e.b});
        if (it == open.end() || it->second.empty()) continue;
        igc_alloc.push_back(it->second.front());
        igc_free.push_back(std::clamp(e.t, t0, t1));
        igc_bytes.push_back(e.a);
        it->second.pop_front();
      }
    }
    for (const auto& [key, starts] : open) {
      for (const std::int64_t start : starts) {
        igc_alloc.push_back(start);
        igc_free.push_back(t1);
        // Bytes unknown here without the matching free; look the item up.
        const ItemRecord* rec = find_item(key.first);
        igc_bytes.push_back(rec != nullptr ? rec->bytes : 0);
      }
    }
  }
  a.igc_footprint = footprint_from_intervals(igc_alloc, igc_free, igc_bytes, t0, t1);
  {
    const TimeWeightedStats w = a.igc_footprint.weighted();
    a.res.igc_mb_mean = w.mean() / kMb;
    a.res.igc_mb_std = w.stddev() / kMb;
  }
  return a;
}

}  // namespace stampede::stats
