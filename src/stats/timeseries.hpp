/// \file timeseries.hpp
/// \brief Memory-footprint step-series reconstruction from trace events
///        (paper Figures 8 and 9: footprint as a function of time).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/events.hpp"
#include "util/stats.hpp"

namespace stampede::stats {

/// Right-continuous step function: value `bytes[i]` holds from `t[i]`
/// until `t[i+1]`.
struct FootprintSeries {
  std::vector<std::int64_t> t;
  std::vector<double> bytes;
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;

  /// Time-weighted mean/σ/peak over [t_begin, t_end] — exactly the
  /// paper's §4 footprint formulas.
  TimeWeightedStats weighted() const;

  /// Resamples into `buckets` equal time bins (time-weighted mean per
  /// bin) for plotting.
  std::vector<double> resample(std::size_t buckets) const;

  /// CSV rendering: "t_ms,bytes" rows.
  std::string to_csv() const;
};

/// Builds the footprint series from kAlloc/kFree events. Frees recorded
/// after `t_end` (items drained at shutdown) are clamped to `t_end`.
FootprintSeries footprint_from_events(std::span<const Event> events, std::int64_t t_begin,
                                      std::int64_t t_end);

/// Builds the footprint series of a hypothetical run in which only the
/// items in `keep` are ever allocated, each freed at its recorded last
/// use (`last_use` parallel to `keep`). This is the Ideal Garbage
/// Collector bound (paper §4/[14]).
FootprintSeries footprint_from_intervals(std::span<const std::int64_t> alloc_t,
                                         std::span<const std::int64_t> free_t,
                                         std::span<const std::int64_t> bytes,
                                         std::int64_t t_begin, std::int64_t t_end);

}  // namespace stampede::stats
