/// \file events.hpp
/// \brief Trace event model for the measurement infrastructure (paper §4).
///
/// "Each interaction of an item with the operating system (allocation,
/// deallocation, etc.) is recorded. Items that do not make it to the end
/// of the pipeline are marked ... A postmortem analysis program uses these
/// statistics to derive the metrics of interest." — we reproduce exactly
/// that pipeline: the runtime emits `Event`s and `ItemRecord`s into a
/// `Recorder`; `Analyzer` (postmortem.hpp) derives every metric the paper
/// reports, including the Ideal-GC bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stampede::stats {

/// Globally unique item identity within one run (0 = none).
using ItemId = std::uint64_t;

/// Graph node identity (matches runtime::NodeId; -1 = none).
using NodeRef = std::int32_t;

/// Pseudo-node for payload-pool kGauge samples (a = pool cached bytes,
/// b = pool in-use bytes). Distinct from -1, the global-memory gauge.
inline constexpr NodeRef kPoolGaugeNode = -2;

/// Virtual-time index (matches runtime::Timestamp; -1 = none).
using Ts = std::int64_t;

enum class EventType : std::uint8_t {
  kAlloc,     ///< item created: a = bytes, b = cluster node
  kFree,      ///< item memory released: a = bytes
  kPut,       ///< item inserted into a channel/queue: node = buffer node
  kConsume,   ///< item consumed by a consumer: node = consumer thread
  kSkip,      ///< item skipped over by a consumer: node = consumer thread
  kDrop,      ///< item reclaimed without ever being consumed by anyone;
              ///< a = 1 when it was dead on arrival (never stored — no
              ///< matching kPut is recorded for such items)
  kCompute,   ///< one unit of task work: a = duration ns, item = output (0 if none)
  kElide,     ///< DGC computation elimination: a = saved duration ns
  kEmit,      ///< a result left the pipeline at a sink: ts = frame index
  kDisplay,   ///< one sink refresh (output frame): ts = newest displayed index
  kStp,       ///< STP sample: a = current-STP ns, b = summary-STP ns
  kSleep,     ///< ARU pacing sleep: a = duration ns
  kBlocked,   ///< time spent blocked on an empty buffer: a = duration ns
  kTransfer,  ///< simulated inter-node transfer: a = duration ns, b = bytes
  kOverhead,  ///< buffer-management / memory-pressure overhead: a = ns
  kGauge,     ///< periodic monitor sample: node = buffer (or -1 = global,
              ///< or kPoolGaugeNode = payload pool), a = items stored (or
              ///< total bytes, or pool cached bytes), b = cluster-node
              ///< bytes (or peak bytes, or pool in-use bytes)
  kReplicate,   ///< remote copy materialized on a consumer's node:
                ///< a = bytes, b = consumer cluster node
  kReplicaFree, ///< remote copy released: a = bytes, b = cluster node
  kNetTx,       ///< wire frame sent: a = bytes, b = message type (net::MsgType)
  kNetRx,       ///< wire frame received: a = bytes, b = message type
  kReconnect,   ///< transport reconnected after link loss:
                ///< a = failed attempts before success, b = last backoff ns
};

/// One trace event. Compact fixed-size POD; semantics of a/b depend on type.
struct Event {
  EventType type{};
  NodeRef node = -1;
  Ts ts = -1;
  ItemId item = 0;
  std::int64_t t = 0;  ///< clock instant, ns
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Immutable per-item metadata captured at allocation time.
struct ItemRecord {
  ItemId id = 0;
  Ts ts = -1;
  std::int64_t bytes = 0;
  NodeRef producer = -1;       ///< producing thread node
  std::int32_t cluster_node = 0;
  std::int64_t t_alloc = 0;    ///< creation instant, ns
  std::int64_t produce_cost = 0;  ///< compute ns spent producing it
  std::vector<ItemId> lineage;    ///< input items it was derived from
};

/// A merged, time-sorted trace plus the item table and node names.
struct Trace {
  std::vector<Event> events;        ///< sorted by t (stable)
  std::vector<ItemRecord> items;    ///< indexed lookups via id map in Analyzer
  std::vector<std::string> node_names;  ///< node id -> display name
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;
};

/// Short display tag for an event type (trace dumps / debugging).
const char* to_string(EventType type);

}  // namespace stampede::stats
