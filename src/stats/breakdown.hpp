/// \file breakdown.hpp
/// \brief Per-node resource-usage breakdown derived from a trace.
///
/// Complements the whole-application metrics of postmortem.hpp with the
/// per-stage view the paper's discussion reasons about informally: which
/// producer's items get wasted, which channel skips/drops the most, and
/// where compute goes. Powers `trace_inspect breakdown` and diagnostics in
/// the benches.
#pragma once

#include <string>
#include <vector>

#include "stats/postmortem.hpp"

namespace stampede::stats {

/// Production/consumption accounting for one producing thread node.
struct ProducerUsage {
  NodeRef node = -1;
  std::string name;
  std::int64_t items = 0;
  std::int64_t items_wasted = 0;
  double bytes_mb = 0.0;          ///< total bytes produced / MB
  double wasted_bytes_mb = 0.0;   ///< bytes of wasted items / MB
  double compute_ms = 0.0;        ///< production compute attributed to items
  double wasted_compute_ms = 0.0;
};

/// Flow accounting for one buffer (channel/queue) node.
struct BufferUsage {
  NodeRef node = -1;
  std::string name;
  std::int64_t puts = 0;
  std::int64_t consumes = 0;  ///< consume events by this buffer's consumers
  std::int64_t skips = 0;
  std::int64_t drops = 0;     ///< reclaimed without any consumption
  /// Time items sat in the buffer before (first) consumption — the §5.2
  /// mechanism behind ARU-max's latency win ("items never spend time in
  /// buffers themselves").
  double wait_ms_mean = 0.0;
  double wait_ms_max = 0.0;
};

struct Breakdown {
  std::vector<ProducerUsage> producers;  ///< sorted by bytes desc
  std::vector<BufferUsage> buffers;      ///< sorted by puts desc
};

/// Computes the breakdown; `analyzer` supplies the successful-item set.
Breakdown compute_breakdown(const Trace& trace, const Analyzer& analyzer);

/// Renders both tables as ASCII.
std::string render_breakdown(const Breakdown& breakdown);

}  // namespace stampede::stats
