#include "stats/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stampede::stats {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("trace_io: truncated input");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto len = read_pod<std::uint32_t>(in);
  if (len > (1u << 20)) throw std::runtime_error("trace_io: implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("trace_io: truncated string");
  return s;
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& out) {
  write_pod(out, kTraceMagic);
  write_pod(out, kTraceVersion);
  write_pod<std::int64_t>(out, trace.t_begin);
  write_pod<std::int64_t>(out, trace.t_end);

  write_pod<std::uint64_t>(out, trace.node_names.size());
  for (const auto& name : trace.node_names) write_string(out, name);

  write_pod<std::uint64_t>(out, trace.events.size());
  for (const Event& e : trace.events) {
    write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(e.type));
    write_pod<std::int32_t>(out, e.node);
    write_pod<std::int64_t>(out, e.ts);
    write_pod<std::uint64_t>(out, e.item);
    write_pod<std::int64_t>(out, e.t);
    write_pod<std::int64_t>(out, e.a);
    write_pod<std::int64_t>(out, e.b);
  }

  write_pod<std::uint64_t>(out, trace.items.size());
  for (const ItemRecord& rec : trace.items) {
    write_pod<std::uint64_t>(out, rec.id);
    write_pod<std::int64_t>(out, rec.ts);
    write_pod<std::int64_t>(out, rec.bytes);
    write_pod<std::int32_t>(out, rec.producer);
    write_pod<std::int32_t>(out, rec.cluster_node);
    write_pod<std::int64_t>(out, rec.t_alloc);
    write_pod<std::int64_t>(out, rec.produce_cost);
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(rec.lineage.size()));
    for (const ItemId parent : rec.lineage) write_pod<std::uint64_t>(out, parent);
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot open '" + path + "' for writing");
  save_trace(trace, out);
}

Trace load_trace(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kTraceMagic) {
    throw std::runtime_error("trace_io: bad magic (not a stampede trace)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kTraceVersion) {
    throw std::runtime_error("trace_io: unsupported version " + std::to_string(version));
  }
  Trace trace;
  trace.t_begin = read_pod<std::int64_t>(in);
  trace.t_end = read_pod<std::int64_t>(in);

  const auto n_names = read_pod<std::uint64_t>(in);
  if (n_names > (1u << 20)) throw std::runtime_error("trace_io: implausible node count");
  trace.node_names.reserve(n_names);
  for (std::uint64_t i = 0; i < n_names; ++i) trace.node_names.push_back(read_string(in));

  const auto n_events = read_pod<std::uint64_t>(in);
  if (n_events > (1ull << 32)) throw std::runtime_error("trace_io: implausible event count");
  trace.events.reserve(n_events);
  for (std::uint64_t i = 0; i < n_events; ++i) {
    Event e;
    e.type = static_cast<EventType>(read_pod<std::uint8_t>(in));
    e.node = read_pod<std::int32_t>(in);
    e.ts = read_pod<std::int64_t>(in);
    e.item = read_pod<std::uint64_t>(in);
    e.t = read_pod<std::int64_t>(in);
    e.a = read_pod<std::int64_t>(in);
    e.b = read_pod<std::int64_t>(in);
    trace.events.push_back(e);
  }

  const auto n_items = read_pod<std::uint64_t>(in);
  if (n_items > (1ull << 32)) throw std::runtime_error("trace_io: implausible item count");
  trace.items.reserve(n_items);
  for (std::uint64_t i = 0; i < n_items; ++i) {
    ItemRecord rec;
    rec.id = read_pod<std::uint64_t>(in);
    rec.ts = read_pod<std::int64_t>(in);
    rec.bytes = read_pod<std::int64_t>(in);
    rec.producer = read_pod<std::int32_t>(in);
    rec.cluster_node = read_pod<std::int32_t>(in);
    rec.t_alloc = read_pod<std::int64_t>(in);
    rec.produce_cost = read_pod<std::int64_t>(in);
    const auto n_lineage = read_pod<std::uint32_t>(in);
    if (n_lineage > (1u << 16)) throw std::runtime_error("trace_io: implausible lineage");
    rec.lineage.reserve(n_lineage);
    for (std::uint32_t j = 0; j < n_lineage; ++j) {
      rec.lineage.push_back(read_pod<std::uint64_t>(in));
    }
    trace.items.push_back(std::move(rec));
  }
  return trace;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open '" + path + "'");
  return load_trace(in);
}

std::string format_event(const Trace& trace, const Event& event) {
  std::ostringstream out;
  out << static_cast<double>(event.t - trace.t_begin) / 1e6 << "ms " << to_string(event.type);
  if (event.node >= 0) {
    out << " node=";
    if (static_cast<std::size_t>(event.node) < trace.node_names.size() &&
        !trace.node_names[static_cast<std::size_t>(event.node)].empty()) {
      out << trace.node_names[static_cast<std::size_t>(event.node)];
    } else {
      out << event.node;
    }
  }
  if (event.ts >= 0) out << " ts=" << event.ts;
  if (event.item != 0) out << " item=" << event.item;
  if (event.a != 0) out << " a=" << event.a;
  if (event.b != 0) out << " b=" << event.b;
  return out.str();
}

}  // namespace stampede::stats
