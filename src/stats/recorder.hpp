/// \file recorder.hpp
/// \brief Low-overhead, sharded trace recorder.
///
/// Writers obtain a `Shard` handle during graph construction; each shard is
/// only ever written under its owner's serialization domain (a task's own
/// thread, or — for channels — a dedicated stats mutex so event appends
/// happen outside the channel's data-plane lock), so appends are lock-free
/// for the shard itself. Item frees can
/// happen on any thread (last shared_ptr release), so they go through a
/// dedicated mutex-protected shard. `merge()` collects and time-sorts
/// everything into a `Trace` after the run.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "stats/events.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::stats {

class Recorder;

/// Append-only event buffer owned by one serialization domain.
class Shard {
 public:
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("trace plane: appends to a run-long shard whose capacity amortizes; runs outside data-plane locks (kBufferStats/kNetStats rank below kBuffer/kNet)")
  void record(const Event& e) { events_.push_back(e); }
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("trace plane: run-long shard append, capacity amortizes")
  void record_item(ItemRecord rec) { items_.push_back(std::move(rec)); }

 private:
  friend class Recorder;
  std::vector<Event> events_;
  std::vector<ItemRecord> items_;
};

/// Owns all shards; hands out handles and merges them postmortem.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Creates a shard for one writer domain. Must be called during
  /// construction (not concurrently with recording).
  Shard* new_shard();

  /// Registers a node's display name (node ids are dense, assigned by the
  /// runtime graph).
  void set_node_name(NodeRef node, std::string name);

  /// Thread-safe recording path for events that can fire on any thread
  /// (item destructors).
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("trace plane: mutex-protected shard append (rank kRecorder, above every data-plane rank)")
  void record_any_thread(const Event& e);

  /// Allocates a fresh globally unique item id (thread-safe).
  ItemId next_item_id() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Thread-safe run-progress counter (used by Runtime::wait_emits).
  void count_emit() { emits_.fetch_add(1, std::memory_order_relaxed); }
  std::int64_t emits() const { return emits_.load(std::memory_order_relaxed); }

  /// Merges all shards into one time-sorted trace. Call only after all
  /// writer threads have stopped. `t_begin`/`t_end` bound the observation
  /// window (clock instants).
  Trace merge(std::int64_t t_begin, std::int64_t t_end) const;

 private:
  /// Rank kRecorder: acquired from Item destructors, which can run under
  /// a channel/queue lock (same-timestamp overwrite path) — so it must
  /// rank above kBuffer.
  mutable util::Mutex mu_{util::LockRank::kRecorder, "recorder.mu"};
  /// Guards the shard *registry*. Shard contents are written lock-free by
  /// their single owner; merge() reads them only after all writers joined
  /// (the happens-before edge is the thread join in Runtime::stop()).
  std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(mu_);
  Shard any_thread_shard_ GUARDED_BY(mu_);
  std::vector<std::string> node_names_ GUARDED_BY(mu_);
  std::atomic<ItemId> next_id_{0};
  std::atomic<std::int64_t> emits_{0};
};

}  // namespace stampede::stats
