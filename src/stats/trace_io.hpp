/// \file trace_io.hpp
/// \brief Trace persistence: save a recorded run to disk and load it back
///        for offline postmortem analysis.
///
/// The paper's methodology separates measurement from analysis: "A
/// postmortem analysis program uses these statistics to derive the
/// metrics of interest." Persisted traces make that split real — a run
/// can be archived, re-analyzed with different options, or inspected with
/// the trace_dump tool.
///
/// Format: a small versioned binary container (little-endian, fixed-width
/// fields). Not interchange-grade — a reproducible local format with
/// integrity checks on load.
#pragma once

#include <iosfwd>
#include <string>

#include "stats/events.hpp"

namespace stampede::stats {

/// Magic + version of the container format.
inline constexpr std::uint32_t kTraceMagic = 0x53544D54;  // "STMT"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Serializes `trace` to `out`. Throws std::runtime_error on I/O failure.
void save_trace(const Trace& trace, std::ostream& out);

/// Serializes to a file path.
void save_trace_file(const Trace& trace, const std::string& path);

/// Deserializes a trace. Throws std::runtime_error on corrupt or
/// version-mismatched input.
Trace load_trace(std::istream& in);

/// Deserializes from a file path.
Trace load_trace_file(const std::string& path);

/// Human-readable one-line rendering of an event (for trace_dump).
std::string format_event(const Trace& trace, const Event& event);

}  // namespace stampede::stats
