#include "stats/timeseries.hpp"

#include <algorithm>
#include <sstream>

namespace stampede::stats {

TimeWeightedStats FootprintSeries::weighted() const {
  TimeWeightedStats w;
  w.sample(t_begin, 0.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    w.sample(std::clamp(t[i], t_begin, t_end), bytes[i]);
  }
  w.finish(t_end);
  return w;
}

std::vector<double> FootprintSeries::resample(std::size_t buckets) const {
  std::vector<double> out(buckets, 0.0);
  if (buckets == 0 || t_end <= t_begin) return out;
  const double span = static_cast<double>(t_end - t_begin);

  // Walk the step function and distribute value*dt into bins.
  std::vector<double> weight(buckets, 0.0);
  double cur = 0.0;
  std::int64_t cur_t = t_begin;
  std::size_t i = 0;
  auto flush_until = [&](std::int64_t until) {
    std::int64_t from = std::clamp(cur_t, t_begin, t_end);
    until = std::clamp(until, t_begin, t_end);
    while (from < until) {
      const double pos = static_cast<double>(from - t_begin) / span;
      auto bin = static_cast<std::size_t>(pos * static_cast<double>(buckets));
      if (bin >= buckets) bin = buckets - 1;
      const std::int64_t bin_end =
          t_begin + static_cast<std::int64_t>(span * static_cast<double>(bin + 1) /
                                              static_cast<double>(buckets));
      const std::int64_t seg_end = std::min(until, std::max(bin_end, from + 1));
      const double dt = static_cast<double>(seg_end - from);
      out[bin] += cur * dt;
      weight[bin] += dt;
      from = seg_end;
    }
  };
  for (; i < t.size(); ++i) {
    flush_until(t[i]);
    cur_t = std::max(t[i], t_begin);
    cur = bytes[i];
  }
  flush_until(t_end);
  for (std::size_t b = 0; b < buckets; ++b) {
    if (weight[b] > 0) out[b] /= weight[b];
  }
  return out;
}

std::string FootprintSeries::to_csv() const {
  std::ostringstream out;
  out << "t_ms,bytes\n";
  for (std::size_t i = 0; i < t.size(); ++i) {
    out << static_cast<double>(t[i] - t_begin) / 1e6 << ',' << bytes[i] << '\n';
  }
  return out.str();
}

FootprintSeries footprint_from_events(std::span<const Event> events, std::int64_t t_begin,
                                      std::int64_t t_end) {
  FootprintSeries s;
  s.t_begin = t_begin;
  s.t_end = t_end;
  double cur = 0.0;
  for (const Event& e : events) {
    if (e.type == EventType::kAlloc || e.type == EventType::kReplicate) {
      cur += static_cast<double>(e.a);
    } else if (e.type == EventType::kFree || e.type == EventType::kReplicaFree) {
      cur -= static_cast<double>(e.a);
    } else {
      continue;
    }
    s.t.push_back(std::clamp(e.t, t_begin, t_end));
    s.bytes.push_back(cur);
  }
  return s;
}

FootprintSeries footprint_from_intervals(std::span<const std::int64_t> alloc_t,
                                         std::span<const std::int64_t> free_t,
                                         std::span<const std::int64_t> bytes,
                                         std::int64_t t_begin, std::int64_t t_end) {
  struct Delta {
    std::int64_t t;
    double d;
  };
  std::vector<Delta> deltas;
  deltas.reserve(alloc_t.size() * 2);
  for (std::size_t i = 0; i < alloc_t.size(); ++i) {
    deltas.push_back({std::clamp(alloc_t[i], t_begin, t_end), static_cast<double>(bytes[i])});
    deltas.push_back({std::clamp(free_t[i], t_begin, t_end), -static_cast<double>(bytes[i])});
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const Delta& a, const Delta& b) { return a.t < b.t; });

  FootprintSeries s;
  s.t_begin = t_begin;
  s.t_end = t_end;
  double cur = 0.0;
  for (const Delta& d : deltas) {
    cur += d.d;
    s.t.push_back(d.t);
    s.bytes.push_back(cur);
  }
  return s;
}

}  // namespace stampede::stats
