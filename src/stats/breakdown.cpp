#include "stats/breakdown.hpp"

#include <algorithm>
#include <map>

#include "util/table.hpp"

namespace stampede::stats {

namespace {
constexpr double kMb = 1024.0 * 1024.0;

std::string node_name(const Trace& trace, NodeRef node) {
  if (node >= 0 && static_cast<std::size_t>(node) < trace.node_names.size() &&
      !trace.node_names[static_cast<std::size_t>(node)].empty()) {
    return trace.node_names[static_cast<std::size_t>(node)];
  }
  return "node" + std::to_string(node);
}
}  // namespace

Breakdown compute_breakdown(const Trace& trace, const Analyzer& analyzer) {
  std::map<NodeRef, ProducerUsage> producers;
  std::map<NodeRef, BufferUsage> buffers;

  for (const ItemRecord& rec : trace.items) {
    ProducerUsage& p = producers[rec.producer];
    p.node = rec.producer;
    ++p.items;
    p.bytes_mb += static_cast<double>(rec.bytes) / kMb;
    p.compute_ms += static_cast<double>(rec.produce_cost) / 1e6;
    if (!analyzer.successful(rec.id)) {
      ++p.items_wasted;
      p.wasted_bytes_mb += static_cast<double>(rec.bytes) / kMb;
      p.wasted_compute_ms += static_cast<double>(rec.produce_cost) / 1e6;
    }
  }

  // Buffer flows: puts/drops carry the buffer node id; consume/skip carry
  // the consumer thread id, so map them back via the item's containing
  // put. Simpler and exact: count consumes/skips against the buffer that
  // stored the item — the last kPut for that item id seen so far.
  std::map<ItemId, NodeRef> item_buffer;
  std::map<ItemId, std::int64_t> item_put_time;
  std::map<NodeRef, StreamingStats> wait_stats;
  for (const Event& e : trace.events) {
    switch (e.type) {
      case EventType::kPut: {
        buffers[e.node].node = e.node;
        ++buffers[e.node].puts;
        item_buffer[e.item] = e.node;
        item_put_time[e.item] = e.t;
        break;
      }
      case EventType::kConsume: {
        const auto it = item_buffer.find(e.item);
        if (it != item_buffer.end()) {
          ++buffers[it->second].consumes;
          // First consumption measures buffer residency; erase so later
          // consumers of the same item don't double-count.
          const auto pt = item_put_time.find(e.item);
          if (pt != item_put_time.end()) {
            wait_stats[it->second].add(static_cast<double>(e.t - pt->second) / 1e6);
            item_put_time.erase(pt);
          }
        }
        break;
      }
      case EventType::kSkip: {
        const auto it = item_buffer.find(e.item);
        if (it != item_buffer.end()) ++buffers[it->second].skips;
        break;
      }
      case EventType::kDrop: {
        const auto it = item_buffer.find(e.item);
        ++buffers[it != item_buffer.end() ? it->second : e.node].drops;
        break;
      }
      default:
        break;
    }
  }

  Breakdown out;
  for (auto& [node, usage] : producers) {
    usage.name = node_name(trace, node);
    out.producers.push_back(std::move(usage));
  }
  for (auto& [node, usage] : buffers) {
    usage.node = node;
    usage.name = node_name(trace, node);
    const auto ws = wait_stats.find(node);
    if (ws != wait_stats.end() && ws->second.count() > 0) {
      usage.wait_ms_mean = ws->second.mean();
      usage.wait_ms_max = ws->second.max();
    }
    out.buffers.push_back(std::move(usage));
  }
  std::sort(out.producers.begin(), out.producers.end(),
            [](const auto& a, const auto& b) { return a.bytes_mb > b.bytes_mb; });
  std::sort(out.buffers.begin(), out.buffers.end(),
            [](const auto& a, const auto& b) { return a.puts > b.puts; });
  return out;
}

std::string render_breakdown(const Breakdown& breakdown) {
  Table producers("Per-producer usage");
  producers.set_header(
      {"producer", "items", "wasted", "MB", "wasted MB", "compute ms", "wasted ms"});
  for (const auto& p : breakdown.producers) {
    producers.add_row({p.name, std::to_string(p.items), std::to_string(p.items_wasted),
                       Table::num(p.bytes_mb), Table::num(p.wasted_bytes_mb),
                       Table::num(p.compute_ms, 1), Table::num(p.wasted_compute_ms, 1)});
  }

  Table buffers("Per-buffer flow");
  buffers.set_header(
      {"buffer", "puts", "consumes", "skips", "drops", "wait ms (mean)", "wait ms (max)"});
  for (const auto& b : breakdown.buffers) {
    buffers.add_row({b.name, std::to_string(b.puts), std::to_string(b.consumes),
                     std::to_string(b.skips), std::to_string(b.drops),
                     Table::num(b.wait_ms_mean, 2), Table::num(b.wait_ms_max, 2)});
  }
  return producers.to_ascii() + buffers.to_ascii();
}

}  // namespace stampede::stats
