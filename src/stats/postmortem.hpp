/// \file postmortem.hpp
/// \brief Postmortem trace analysis — the paper's §4 measurement program.
///
/// Derives every metric the paper reports from a recorded trace:
///
///  * **Performance** (Fig. 10): throughput (successful frames/second,
///    mean and σ over one-second windows), end-to-end latency (frame
///    creation → sink emission, via lineage back-walk), jitter (σ of the
///    time difference between successive output frames).
///  * **Resource usage** (Figs. 6-9): time-weighted mean/σ memory
///    footprint, % wasted memory (byte·seconds of items that never reach
///    the pipeline end), % wasted computation (production cost of such
///    items over total task work), and the **Ideal Garbage Collector**
///    bound (footprint if doomed items were never allocated and successful
///    items were freed at last use).
///
/// An item is *successful* iff it is an emitted item or an ancestor (via
/// recorded lineage) of one — matching the paper's marking of "items that
/// do not make it to the end of the pipeline".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stats/events.hpp"
#include "stats/timeseries.hpp"

namespace stampede::stats {

struct AnalyzerOptions {
  /// Fraction of the run discarded as warm-up for *performance* metrics
  /// (footprint metrics always use the full window, like the paper's
  /// graphs).
  double warmup_fraction = 0.0;
};

/// Fig.-10 metrics.
struct PerfMetrics {
  std::int64_t frames_emitted = 0;  ///< distinct timestamps that reached a sink
  double throughput_fps = 0.0;
  double throughput_fps_std = 0.0;  ///< σ across one-second windows
  double latency_ms_mean = 0.0;
  double latency_ms_std = 0.0;
  double latency_ms_p50 = 0.0;
  double latency_ms_p95 = 0.0;
  double latency_ms_p99 = 0.0;
  double jitter_ms = 0.0;
};

/// Fig.-6/7 metrics.
struct ResourceMetrics {
  double footprint_mb_mean = 0.0;
  double footprint_mb_std = 0.0;
  double footprint_mb_peak = 0.0;
  double igc_mb_mean = 0.0;   ///< Ideal-GC bound
  double igc_mb_std = 0.0;
  double wasted_mem_pct = 0.0;
  double wasted_comp_pct = 0.0;
  double total_compute_ms = 0.0;   ///< all task work incl. mgmt overhead
  double wasted_compute_ms = 0.0;
  double elided_compute_ms = 0.0;  ///< DGC computation elimination savings
  std::int64_t items_total = 0;
  std::int64_t items_wasted = 0;
  std::int64_t drops = 0;  ///< items reclaimed without any consumption
  /// Payload-pool cache residency (MemoryTracker::pool_cached_bytes,
  /// sampled by the monitor thread as kGauge events at kPoolGaugeNode):
  /// slabs parked for reuse, which sit alongside the live footprint above
  /// but are invisible to it. Zero when monitor_period was off.
  double pool_cached_mb_mean = 0.0;
  double pool_cached_mb_peak = 0.0;
};

struct Analysis {
  PerfMetrics perf;
  ResourceMetrics res;
  FootprintSeries footprint;      ///< actual footprint over time (Fig. 8/9)
  FootprintSeries igc_footprint;  ///< IGC bound over time (Fig. 8/9 leftmost)
};

/// One summary-STP feedback sample (for filter/noise ablations).
struct StpSample {
  std::int64_t t = 0;
  std::int64_t current_ns = 0;
  std::int64_t summary_ns = 0;
};

class Analyzer {
 public:
  explicit Analyzer(const Trace& trace, AnalyzerOptions opts = {});

  /// Runs the full analysis.
  Analysis run() const;

  /// The set of successful item ids (emitted or ancestor of emitted).
  const std::unordered_set<ItemId>& successful_items() const { return successful_; }

  /// True if `id` reached the end of the pipeline (directly or via a
  /// descendant).
  bool successful(ItemId id) const { return successful_.count(id) != 0; }

  /// Latency of each emission, in milliseconds (emit time minus the
  /// earliest ancestor source item's allocation time).
  std::vector<double> emit_latencies_ms() const;

  /// summary-STP feedback samples recorded by one node.
  std::vector<StpSample> stp_series(NodeRef node) const;

  /// Monitor gauge samples for one buffer node (node = -1: the global
  /// footprint gauge). Requires RuntimeConfig::monitor_period > 0.
  struct GaugeSample {
    std::int64_t t = 0;
    std::int64_t value = 0;    ///< items stored (or total bytes for global)
    std::int64_t aux = 0;      ///< cluster-node bytes (or peak for global)
  };
  std::vector<GaugeSample> gauge_series(NodeRef node) const;

  const Trace& trace() const { return trace_; }

 private:
  const ItemRecord* find_item(ItemId id) const;
  std::int64_t perf_window_start() const;

  const Trace& trace_;
  AnalyzerOptions opts_;
  std::unordered_map<ItemId, std::size_t> item_index_;
  std::unordered_map<ItemId, std::int64_t> last_use_;   ///< last consume/emit instant
  std::unordered_map<ItemId, std::int64_t> free_time_;  ///< clamped to t_end
  std::unordered_set<ItemId> successful_;
  std::vector<Event> emits_;
  std::vector<Event> displays_;
};

}  // namespace stampede::stats
