/// \file socket.hpp
/// \brief Thin RAII wrappers over POSIX TCP sockets.
///
/// This is the *only* translation unit in the tree allowed to touch raw
/// `::socket` / `::connect` (enforced by scripts/lint.sh); everything else
/// goes through TcpStream / TcpListener. Design points:
///
///  * all sockets are nonblocking; every operation takes an explicit
///    timeout and is realized as a poll() loop, so a wedged peer can never
///    hang a runtime thread indefinitely;
///  * connect is the classic nonblocking three-step (O_NONBLOCK +
///    EINPROGRESS, poll for POLLOUT, read SO_ERROR);
///  * sends use MSG_NOSIGNAL — a dead peer yields kClosed, never SIGPIPE;
///  * EINTR is retried everywhere.
///
/// These wrappers hold no locks and no runtime state; synchronization and
/// reconnect policy live one layer up in net::Transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/static_annotations.hpp"
#include "util/time.hpp"

namespace stampede::net {

/// Outcome of a timed socket operation.
enum class IoStatus : std::uint8_t {
  kOk,       ///< full transfer completed
  kTimeout,  ///< deadline elapsed before completion
  kClosed,   ///< orderly peer shutdown (EOF) or EPIPE/ECONNRESET
  kError,    ///< any other socket error
};

const char* to_string(IoStatus s);

/// Owning file-descriptor handle (close-on-destroy, move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void reset();

 private:
  int fd_ = -1;
};

/// A connected, nonblocking TCP stream.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket sock) : sock_(std::move(sock)) {}

  /// Nonblocking connect to host:port bounded by `timeout`. Returns an
  /// empty optional on failure (refused, unreachable, timed out); `*err`
  /// gets a diagnostic when non-null.
  ARU_MAY_BLOCK ARU_ALLOCATES
  ARU_ANALYZE_ESCAPE("deadline-bounded nonblocking connect: three-step O_NONBLOCK + poll(POLLOUT) + SO_ERROR under one deadline")
  static std::optional<TcpStream> connect(
      const std::string& host, std::uint16_t port, Nanos timeout,
      std::string* err = nullptr);

  bool valid() const { return sock_.valid(); }
  void close() { sock_.reset(); }

  /// Sends the whole buffer or fails. kTimeout applies to overall progress:
  /// the deadline is `timeout` from the call, not per chunk.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded nonblocking socket I/O: poll() with an absolute deadline, never an unbounded wait")
  IoStatus send_all(std::span<const std::byte> data, Nanos timeout);

  /// Scatter-gather variant: sends the concatenation of `bufs` (in order)
  /// under one deadline without copying them into a contiguous staging
  /// buffer. Realized as `sendmsg` with an iovec per buffer — a frame's
  /// header+envelope and its payload go out in a single syscall in the
  /// common case, with partial progress advancing the iovec array across
  /// retries. Same contract as send_all: kOk means every byte of every
  /// buffer was sent; anything else leaves the stream desynchronized
  /// mid-frame and the connection must be dropped. Empty spans are fine.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded nonblocking socket I/O: sendmsg under one poll() deadline")
  IoStatus send_vec(std::span<const std::span<const std::byte>> bufs, Nanos timeout);

  /// Receives exactly `out.size()` bytes or fails. A timeout with zero
  /// bytes read is a clean kTimeout; a timeout mid-message is also
  /// kTimeout but leaves the stream desynchronized — callers must treat
  /// any non-kOk mid-frame result as fatal for the connection.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded nonblocking socket I/O: recv under one poll() deadline")
  IoStatus recv_exact(std::span<std::byte> out, Nanos timeout);

  /// Receives *up to* `out.size()` bytes: waits for readability, then
  /// performs one recv and returns however many bytes arrived in
  /// `*n_read` (possibly fewer than requested). For variable-length
  /// peers — e.g. an HTTP request head whose size is unknown up front —
  /// where recv_exact's fixed-size contract cannot apply. kOk with
  /// `*n_read > 0` on data; kClosed on EOF; kTimeout if nothing arrived
  /// before the deadline.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded nonblocking socket I/O: single recv after poll() under one deadline")
  IoStatus recv_some(std::span<std::byte> out, std::size_t* n_read, Nanos timeout);

  /// Scatter-gather variant of recv_some: waits for readability, performs
  /// one `readv` across `bufs` (filled in order), and reports the total
  /// bytes received in `*n_read`. Lets a payload read also prefetch the
  /// bytes of whatever frames follow it in the kernel buffer — iovec[0]
  /// points at the payload destination, iovec[1] at a decode buffer's
  /// free tail — without an extra syscall. Empty spans are skipped.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded nonblocking socket I/O: single readv after poll() under one deadline")
  IoStatus recv_vec(std::span<const std::span<std::byte>> bufs, std::size_t* n_read,
                    Nanos timeout);

  /// True once the peer has hung up (POLLHUP/POLLERR or pending EOF).
  /// Non-destructive: does not consume buffered data.
  ARU_ANALYZE_ESCAPE("zero-timeout poll() + MSG_PEEK recv on a nonblocking fd: a readiness probe, never a wait")
  bool peer_hup() const;

  /// Waits up to `timeout` for the stream to become readable (data or
  /// EOF). False on timeout.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded readiness poll") bool readable(
      Nanos timeout) const;

 private:
  Socket sock_;
};

/// Fixed-capacity buffered writer over a TcpStream — the batching half of
/// the pipelined wire protocol. Small frames (envelopes, coalesced acks)
/// are copied into one contiguous staging area and go out in a single
/// `sendmsg` flush; large payload tails stay zero-copy by riding the same
/// flush as trailing iovecs (`flush_with`). This class is the only legal
/// caller of `TcpStream::send_vec` (enforced by the send-vec lint rule):
/// routing every send through one buffer is what guarantees frames can
/// never interleave mid-stream.
///
/// Failure contract mirrors send_vec: any non-kOk flush leaves the stream
/// desynchronized mid-frame, the connection must be dropped, and the
/// buffer is cleared either way (retransmission is the transport window's
/// job, from re-encoded frames — never from stale staged bytes).
class SendBuffer {
 public:
  /// Staging capacity. Sized for dozens of max-size envelopes per flush;
  /// allocated once at construction so the append path never allocates.
  static constexpr std::size_t kCapacity = std::size_t{64} * 1024;

  ARU_ALLOCATES SendBuffer() : buf_(kCapacity) {}

  bool empty() const { return len_ == 0; }
  std::size_t size() const { return len_; }
  std::size_t capacity_left() const { return buf_.size() - len_; }

  /// Copies `data` into the staging area. False when it does not fit —
  /// the caller must flush first (never a partial append).
  ARU_HOT_PATH bool append(std::span<const std::byte> data);

  /// Sends everything staged in one scatter/gather call and clears.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded: one send_vec under the caller's timeout")
  IoStatus flush(TcpStream& stream, Nanos timeout);

  /// Sends staged bytes + `frame` + `payload` in ONE sendmsg and clears.
  /// The zero-copy large-payload path: earlier small frames batch with
  /// this frame's header/envelope while the payload goes straight from
  /// the item's slab.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded: one send_vec under the caller's timeout")
  IoStatus flush_with(TcpStream& stream, std::span<const std::byte> frame,
                      std::span<const std::byte> payload, Nanos timeout);

  void clear() { len_ = 0; }

 private:
  std::vector<std::byte> buf_;
  std::size_t len_ = 0;
};

/// Fixed-capacity buffered reader — the burst-decode half of the
/// pipelined protocol. One recv_some refills the buffer with however many
/// frames the kernel has queued; the decode loop then consumes complete
/// header+envelope frames straight out of `view()` without further
/// syscalls. Payload tails larger than what is buffered are read with
/// `TcpStream::recv_vec` (payload destination + this buffer's free tail),
/// so even a payload read prefetches the next frames.
class RecvBuffer {
 public:
  static constexpr std::size_t kCapacity = std::size_t{64} * 1024;

  ARU_ALLOCATES RecvBuffer() : buf_(kCapacity) {}

  std::size_t buffered() const { return len_ - pos_; }

  /// Unconsumed bytes, in arrival order.
  std::span<const std::byte> view() const { return {buf_.data() + pos_, len_ - pos_}; }

  /// Marks the first `n` unconsumed bytes as decoded. `n` ≤ buffered().
  ARU_HOT_PATH void consume(std::size_t n) { pos_ += n; }

  /// Free space after the unconsumed bytes, compacting first when the
  /// consumed prefix is hogging the front of the buffer.
  std::span<std::byte> tail();

  /// Declares `n` bytes (received externally, e.g. via recv_vec) appended
  /// to the space `tail()` returned.
  void commit(std::size_t n) { len_ += n; }

  /// One recv_some into tail(): kOk means buffered() grew. kTimeout with
  /// nothing read is clean; kClosed is peer EOF.
  ARU_MAY_BLOCK ARU_ANALYZE_ESCAPE("deadline-bounded: one recv_some under the caller's timeout")
  IoStatus fill(TcpStream& stream, Nanos timeout);

  void clear() {
    pos_ = 0;
    len_ = 0;
  }

 private:
  void compact();

  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  ///< first unconsumed byte
  std::size_t len_ = 0;  ///< first free byte
};

/// A listening TCP socket. Binds loopback-only (127.0.0.1) by default;
/// pass an explicit local address — "0.0.0.0" for all interfaces — to
/// accept off-host peers.
class TcpListener {
 public:
  /// Binds `host`:`port` and listens; port 0 picks an ephemeral port
  /// (read it back via `port()`). `host` must be a dotted-quad IPv4
  /// address of a local interface. Empty optional on failure.
  static std::optional<TcpListener> listen(const std::string& host, std::uint16_t port,
                                           std::string* err = nullptr);

  /// Loopback-only convenience overload (binds 127.0.0.1).
  static std::optional<TcpListener> listen(std::uint16_t port, std::string* err = nullptr);

  bool valid() const { return sock_.valid(); }
  std::uint16_t port() const { return port_; }
  void close() { sock_.reset(); }

  /// Waits up to `timeout` for one inbound connection. Empty optional on
  /// timeout, listener close, or error.
  ARU_MAY_BLOCK std::optional<TcpStream> accept(Nanos timeout);

 private:
  TcpListener(Socket sock, std::uint16_t port) : sock_(std::move(sock)), port_(port) {}

  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace stampede::net
