#include "net/transport.hpp"

#include <algorithm>
#include <array>
#include <random>
#include <utility>

#include "telemetry/registry.hpp"

namespace stampede::net {
namespace {

/// Sleep slice while waiting out a backoff gate: short enough that stop
/// requests are honored promptly.
constexpr Nanos kRetrySlice = millis(5);

/// RPC latency buckets: 10µs .. 1s, roughly 1-2-5 per decade. An RPC
/// spans at least one network round-trip, so sub-10µs resolution is
/// noise; anything beyond 1s has blown through io_timeout already.
constexpr std::array<std::int64_t, 16> kRpcLatencyBounds = {
    10'000,      20'000,      50'000,       100'000,      200'000,    500'000,
    1'000'000,   2'000'000,   5'000'000,    10'000'000,   20'000'000, 50'000'000,
    100'000'000, 200'000'000, 500'000'000,  1'000'000'000};

/// Per-thread scratch for the rpc event batch: flush() clears it after
/// draining into the shard, so capacity persists across attempts and
/// calls and the steady-state rpc path does not allocate for tracing.
std::vector<stats::Event>& tl_rpc_events() {
  static thread_local std::vector<stats::Event> batch;
  return batch;
}

/// Flush the staged batch once it holds this many bytes: large enough to
/// amortize the sendmsg, small enough to stay well under the send buffer
/// and keep the server's burst decoder busy rather than bursty.
constexpr std::size_t kFlushBytes = std::size_t{32} * 1024;

/// Payload tails larger than this skip the staging copy and ride the
/// flush as a zero-copy trailing iovec instead.
constexpr std::size_t kInlinePayloadMax = std::size_t{8} * 1024;

/// Frames-per-flush histogram buckets (powers of two up to the largest
/// sensible window).
constexpr std::array<std::int64_t, 8> kBatchBounds = {1, 2, 4, 8, 16, 32, 64, 128};

/// Opportunistic ack-drain cadence for a window under no pressure: a
/// pipelined put polls the socket for arrived acks at most this many puts
/// apart (more often once the window is half committed), bounding both
/// summary-STP feedback staleness and the unread heartbeat backlog of a
/// slow producer without paying a poll() syscall on every put.
constexpr std::size_t kDrainEvery = 16;

std::uint64_t random_session_id() {
  std::random_device rd;
  std::uint64_t id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  // A zero session would read as "no session" on the wire; nudge it.
  return id == 0 ? 1 : id;
}

}  // namespace

Transport::Transport(RunContext& ctx, NodeId node, TransportConfig config, HelloMsg hello,
                     stats::Shard* shard)
    : ctx_(ctx),
      node_(node),
      config_(std::move(config)),
      hello_(std::move(hello)),
      session_(random_session_id()),
      shard_(shard) {
  const bool windowed = config_.put_window > 0 && hello_.producer_key >= 0;
  if (windowed) window_.resize(config_.put_window);

  if (ctx_.metrics != nullptr) {
    // One link per transport; puts and gets of the same channel are
    // distinct links (separate sockets), so the label tells them apart.
    telemetry::Registry::Labels labels = {
        {"link", hello_.channel + (hello_.producer_key >= 0 ? "/put" : "/get")}};
    telemetry::Registry& reg = *ctx_.metrics;
    met_tx_ = &reg.counter("aru_net_tx_bytes_total",
                           "Bytes sent on this transport link (frames + payload).",
                           labels);
    met_rx_ = &reg.counter("aru_net_rx_bytes_total",
                           "Bytes received on this transport link.", labels);
    met_reconnects_ = &reg.counter(
        "aru_net_reconnects_total",
        "Successful handshakes after the first (link recoveries).", labels);
    met_rpc_ = &reg.histogram(
        "aru_net_rpc_latency_ns",
        "End-to-end rpc() latency (connect wait + exchange), nanoseconds.",
        kRpcLatencyBounds, labels);
    if (windowed) {
      met_window_ = &reg.gauge("aru_net_put_window",
                               "Unacknowledged pipelined puts in flight.", labels);
      const auto reason_counter = [&](const char* reason) {
        telemetry::Registry::Labels rl = labels;
        rl.push_back({"reason", reason});
        return &reg.counter("aru_net_put_flush_total",
                            "Staged put batches flushed, by trigger.", rl);
      };
      met_flush_window_ = reason_counter("window");
      met_flush_bytes_ = reason_counter("bytes");
      met_flush_age_ = reason_counter("age");
      met_flush_explicit_ = reason_counter("explicit");
      met_batch_ = &reg.histogram("aru_net_put_batch_frames",
                                  "Put frames per scatter/gather flush.",
                                  kBatchBounds, labels);
    }
  }
}

void Transport::add_event(EventBatch& events, stats::EventType type, std::int64_t a,
                          std::int64_t b) const {
  events.push_back(stats::Event{
      .type = type, .node = node_, .t = ctx_.now_ns(), .a = a, .b = b});
  switch (type) {
    case stats::EventType::kNetTx:
      if (met_tx_ != nullptr) met_tx_->add(static_cast<std::uint64_t>(a));
      break;
    case stats::EventType::kNetRx:
      if (met_rx_ != nullptr) met_rx_->add(static_cast<std::uint64_t>(a));
      break;
    case stats::EventType::kReconnect:
      if (met_reconnects_ != nullptr) met_reconnects_->add();
      break;
    default:
      break;
  }
}

void Transport::flush(EventBatch& events) {
  if (events.empty()) return;
  const util::MutexLock lock(stats_mu_);
  for (const stats::Event& e : events) shard_->record(e);
  events.clear();
}

void Transport::disconnect() {
  EventBatch events;
  {
    const util::MutexLock lock(mu_);
    disconnect_locked();
  }
  flush(events);
}

void Transport::disconnect_locked() {
  stream_.close();
  connected_.store(false, std::memory_order_relaxed);
}

bool Transport::ensure_connected_locked(EventBatch& events) {
  if (stream_.valid()) return true;

  const std::int64_t now = ctx_.now_ns();
  if (now < next_attempt_ns_) return false;  // backoff gate not yet open

  auto fail = [&] {
    ++failed_attempts_;
    backoff_ = backoff_.count() == 0
                   ? config_.backoff_initial
                   : std::min(backoff_ * 2, config_.backoff_max);
    next_attempt_ns_ = now + backoff_.count();
    return false;
  };

  auto stream = TcpStream::connect(config_.host, config_.port, config_.connect_timeout);
  if (!stream) return fail();
  stream_ = std::move(*stream);

  // A new socket: whatever was staged for the old one is void. The window
  // (not the staging buffer) is the source of truth for retransmission.
  sendbuf_.clear();
  staged_frames_ = 0;

  // Handshake: Hello → HelloAck(ok). The handshake never carries payload.
  // Each attempt advertises this transport's session id and the sequence
  // it will resume from, so the server can suppress replayed duplicates.
  HelloMsg hello_msg = hello_;
  hello_msg.session = session_;
  hello_msg.start_seq = cum_acked_ + 1;
  const FrameBuf hello = encode(hello_msg);
  if (stream_.send_all(hello.span(), config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return fail();
  }
  add_event(events, stats::EventType::kNetTx, static_cast<std::int64_t>(hello.len),
            static_cast<std::int64_t>(MsgType::kHello));
  FrameHeader header{};
  EnvelopeBody body;
  if (!read_frame_locked(header, body) || header.type != MsgType::kHelloAck ||
      header.payload_len != 0) {
    disconnect_locked();
    return fail();
  }
  add_event(events, stats::EventType::kNetRx,
            static_cast<std::int64_t>(kHeaderBytes + header.body_len),
            static_cast<std::int64_t>(header.type));
  HelloAckMsg ack;
  if (!decode(body.span(), ack, nullptr) || !ack.ok) {
    disconnect_locked();
    return fail();
  }
  credits_ = ack.credits;

  if (had_session_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    add_event(events, stats::EventType::kReconnect, failed_attempts_, backoff_.count());
  }
  had_session_ = true;
  failed_attempts_ = 0;
  backoff_ = Nanos{0};
  next_attempt_ns_ = 0;

  // Pipelined links replay their unacked tail before anything new goes
  // out, so a reconnect preserves send order (the server's dup filter
  // makes the replay at-most-once on the channel).
  if (!window_.empty() && in_flight_locked() > 0 && !resend_window_locked(events)) {
    return fail();
  }
  connected_.store(true, std::memory_order_relaxed);
  return true;
}

std::size_t Transport::effective_window_locked() const {
  const std::size_t by_credit =
      credits_ == 0 ? std::size_t{1} : static_cast<std::size_t>(credits_);
  return std::max<std::size_t>(1, std::min(window_.size(), by_credit));
}

void Transport::apply_put_ack_locked(const PutAckMsg& ack) {
  for (std::uint64_t s = cum_acked_ + 1; s <= ack.cum_seq && s < next_seq_; ++s) {
    WindowSlot& slot = window_[static_cast<std::size_t>((s - 1) % window_.size())];
    in_flight_bytes_ -= slot.payload.size();
    slot.payload = {};
    slot.keepalive.reset();
  }
  if (ack.cum_seq > cum_acked_) cum_acked_ = std::min(ack.cum_seq, next_seq_ - 1);
  credits_ = ack.credits;
  if (aru::known(ack.summary)) last_ack_summary_ = ack.summary;
  if (ack.closed) remote_closed_ = true;
  if (met_window_ != nullptr) {
    met_window_->set(static_cast<std::int64_t>(in_flight_locked()));
  }
}

bool Transport::drain_acks_locked(EventBatch& events) {
  puts_since_drain_ = 0;
  while (stream_.valid() && stream_.readable(Nanos{0})) {
    FrameHeader header{};
    EnvelopeBody body;
    if (!read_frame_locked(header, body)) return false;
    add_event(events, stats::EventType::kNetRx,
              static_cast<std::int64_t>(kHeaderBytes + header.body_len),
              static_cast<std::int64_t>(header.type));
    if (header.type == MsgType::kHeartbeat && header.payload_len == 0) continue;
    if (header.type != MsgType::kPutAck || header.payload_len != 0 ||
        !decode(body.span(), ack_scratch_, nullptr)) {
      disconnect_locked();
      return false;
    }
    apply_put_ack_locked(ack_scratch_);
  }
  return stream_.valid();
}

bool Transport::read_ack_blocking_locked(const std::stop_token& st, EventBatch& events,
                                         bool* stopped) {
  *stopped = false;
  FrameHeader header{};
  EnvelopeBody body;
  if (!read_frame_locked(header, body)) return false;
  add_event(events, stats::EventType::kNetRx,
            static_cast<std::int64_t>(kHeaderBytes + header.body_len),
            static_cast<std::int64_t>(header.type));
  if (header.type == MsgType::kHeartbeat && header.payload_len == 0) {
    if (stop_requested(st)) {
      // Abandoning with puts in flight: the window keeps them for a
      // resend, but this socket's stream position is now ambiguous.
      disconnect_locked();
      *stopped = true;
      return false;
    }
    return true;
  }
  if (header.type != MsgType::kPutAck || header.payload_len != 0 ||
      !decode(body.span(), ack_scratch_, nullptr)) {
    disconnect_locked();
    return false;
  }
  apply_put_ack_locked(ack_scratch_);
  return true;
}

bool Transport::flush_staged_locked(FlushReason reason, EventBatch& events) {
  if (sendbuf_.empty()) return true;
  const std::size_t bytes = sendbuf_.size();
  const std::size_t frames = staged_frames_;
  staged_frames_ = 0;
  if (sendbuf_.flush(stream_, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  add_event(events, stats::EventType::kNetTx, static_cast<std::int64_t>(bytes),
            static_cast<std::int64_t>(MsgType::kPut));
  telemetry::Counter* reason_counter = nullptr;
  switch (reason) {
    case FlushReason::kWindow: reason_counter = met_flush_window_; break;
    case FlushReason::kBytes: reason_counter = met_flush_bytes_; break;
    case FlushReason::kAge: reason_counter = met_flush_age_; break;
    case FlushReason::kExplicit: reason_counter = met_flush_explicit_; break;
  }
  if (reason_counter != nullptr) reason_counter->add();
  if (met_batch_ != nullptr && frames > 0) {
    met_batch_->observe(static_cast<std::int64_t>(frames));
  }
  return true;
}

bool Transport::resend_window_locked(EventBatch& events) {
  for (std::uint64_t s = cum_acked_ + 1; s < next_seq_; ++s) {
    const WindowSlot& slot =
        window_[static_cast<std::size_t>((s - 1) % window_.size())];
    if (sendbuf_.flush_with(stream_, slot.frame.span(), slot.payload,
                            config_.io_timeout) != IoStatus::kOk) {
      disconnect_locked();
      return false;
    }
    add_event(events, stats::EventType::kNetTx,
              static_cast<std::int64_t>(slot.frame.len + slot.payload.size()),
              static_cast<std::int64_t>(MsgType::kPut));
  }
  return true;
}

bool Transport::read_frame_locked(FrameHeader& header, EnvelopeBody& body) {
  std::array<std::byte, kHeaderBytes> raw;
  if (stream_.recv_exact(raw, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  if (!decode_header(raw, header, nullptr)) {
    disconnect_locked();
    return false;
  }
  body.len = header.body_len;  // decode_header capped this at kMaxEnvelopeBytes
  if (header.body_len > 0 &&
      stream_.recv_exact(body.storage(header.body_len), config_.io_timeout) !=
          IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  return true;
}

Transport::RpcStatus Transport::exchange_locked(const FrameBuf& frame,
                                                std::span<const std::byte> payload,
                                                MsgType expect, EnvelopeBody& reply_body,
                                                const PayloadSink& sink,
                                                EventBatch& events,
                                                const std::stop_token& st) {
  // Any staged pipelined puts ride the same sendmsg as this request (the
  // "explicit" flush trigger — a get must observe every put queued before
  // it). The staged bytes are part of this link's in-order stream, so a
  // failure is a single link death either way.
  const std::size_t staged = sendbuf_.size();
  const std::size_t staged_count = staged_frames_;
  staged_frames_ = 0;
  if (sendbuf_.flush_with(stream_, frame.span(), payload, config_.io_timeout) !=
      IoStatus::kOk) {
    disconnect_locked();
    return RpcStatus::kDisconnected;
  }
  if (staged > 0) {
    if (met_flush_explicit_ != nullptr) met_flush_explicit_->add();
    if (met_batch_ != nullptr && staged_count > 0) {
      met_batch_->observe(static_cast<std::int64_t>(staged_count));
    }
  }
  FrameHeader req_header{};
  decode_header(frame.span(), req_header, nullptr);
  add_event(events, stats::EventType::kNetTx,
            static_cast<std::int64_t>(staged + frame.len + payload.size()),
            static_cast<std::int64_t>(req_header.type));

  // Heartbeats count as liveness (they reset the per-frame io_timeout) but
  // are otherwise consumed here; anything else must be the expected reply.
  // A live-but-idle server heartbeats forever, so the stop token must be
  // re-checked between frames or a parked get never observes shutdown.
  for (;;) {
    FrameHeader header{};
    if (!read_frame_locked(header, reply_body)) return RpcStatus::kDisconnected;
    if (header.type == MsgType::kHeartbeat) {
      if (header.payload_len != 0) {
        // Protocol violation — and an unconsumed payload tail would
        // desynchronize every subsequent frame.
        disconnect_locked();
        return RpcStatus::kDisconnected;
      }
      add_event(events, stats::EventType::kNetRx,
                static_cast<std::int64_t>(kHeaderBytes + header.body_len),
                static_cast<std::int64_t>(header.type));
      if (stop_requested(st)) {
        // Abandoning mid-RPC: the real reply may still arrive later and
        // would desynchronize the next exchange, so drop the link.
        disconnect_locked();
        return RpcStatus::kStopped;
      }
      continue;
    }
    if (header.type != expect) {
      disconnect_locked();
      return RpcStatus::kDisconnected;
    }
    if (header.payload_len > 0) {
      const std::span<std::byte> dest =
          sink ? sink(header, reply_body.span()) : std::span<std::byte>{};
      if (dest.size() != header.payload_len) {
        // No destination (or a mis-sized one): the tail cannot be read
        // into place, so the stream is unrecoverable — drop it.
        disconnect_locked();
        return RpcStatus::kDisconnected;
      }
      if (stream_.recv_exact(dest, config_.io_timeout) != IoStatus::kOk) {
        disconnect_locked();
        return RpcStatus::kDisconnected;
      }
    }
    add_event(events, stats::EventType::kNetRx,
              static_cast<std::int64_t>(kHeaderBytes + header.body_len +
                                        header.payload_len),
              static_cast<std::int64_t>(header.type));
    return RpcStatus::kOk;
  }
}

Transport::RpcStatus Transport::rpc(const FrameBuf& frame,
                                    std::span<const std::byte> payload, MsgType expect,
                                    EnvelopeBody& reply_body, const PayloadSink& sink,
                                    bool wait_for_link, std::stop_token st) {
  EventBatch& events = tl_rpc_events();
  const std::int64_t t0 = ctx_.now_ns();
  for (;;) {
    if (stop_requested(st)) return RpcStatus::kStopped;

    bool sent_or_failfast = true;
    RpcStatus status = RpcStatus::kDisconnected;
    {
      const util::MutexLock lock(mu_);
      if (ensure_connected_locked(events)) {
        status = exchange_locked(frame, payload, expect, reply_body, sink, events, st);
      } else if (wait_for_link) {
        sent_or_failfast = false;  // not connected yet — keep waiting
      }
    }
    flush(events);
    if (sent_or_failfast) {
      if (status == RpcStatus::kOk && met_rpc_ != nullptr) {
        met_rpc_->observe(ctx_.now_ns() - t0);
      }
      return status;
    }

    ctx_.clock->sleep_for(kRetrySlice);
  }
}

Transport::PutOutcome Transport::put_pipelined(PutMsg& msg,
                                               std::span<const std::byte> payload,
                                               std::shared_ptr<const void> keepalive,
                                               std::stop_token st) {
  EventBatch& events = tl_rpc_events();
  PutOutcome out;
  if (stop_requested(st)) {
    out.status = RpcStatus::kStopped;
    return out;
  }
  {
    const util::MutexLock lock(mu_);
    out.summary = last_ack_summary_;
    out.closed = remote_closed_;
    if (window_.empty() || !ensure_connected_locked(events)) {
      // No window configured (sync link) or no link: fail fast, the
      // caller drops the item and keeps pacing on the held summary.
      out.status = RpcStatus::kDisconnected;
    } else if ((in_flight_locked() + 1 >= effective_window_locked() ||
                ++puts_since_drain_ >= kDrainEvery) &&
               !drain_acks_locked(events)) {
      // Collect already-arrived acks when the window is about to block —
      // polling the socket on every put costs a syscall the steady state
      // doesn't need (coalesced acks arrive in clumps anyway). The
      // kDrainEvery cadence bounds summary-STP feedback staleness and
      // keeps a slow producer's receive buffer drained of heartbeats even
      // though its window never fills. False = link died; the item was
      // never queued.
      out.status = RpcStatus::kDisconnected;
    } else {
      // Make room: window-full means we owe the server a flush (it cannot
      // ack frames still sitting in our staging buffer) and then a
      // blocking read until a coalesced ack frees a slot.
      bool ok = true;
      while (ok && (in_flight_locked() >= effective_window_locked() ||
                    (in_flight_locked() > 0 &&
                     in_flight_bytes_ + payload.size() > config_.put_window_bytes))) {
        bool stopped = false;
        if (!flush_staged_locked(FlushReason::kWindow, events) ||
            !read_ack_blocking_locked(st, events, &stopped)) {
          out.status = stopped ? RpcStatus::kStopped : RpcStatus::kDisconnected;
          ok = false;
        }
      }
      if (ok) {
        msg.seq = next_seq_++;
        WindowSlot& slot =
            window_[static_cast<std::size_t>((msg.seq - 1) % window_.size())];
        slot.seq = msg.seq;
        encode_into(msg, slot.frame);
        slot.payload = payload;
        slot.keepalive = std::move(keepalive);
        in_flight_bytes_ += payload.size();
        if (met_window_ != nullptr) {
          met_window_->set(static_cast<std::int64_t>(in_flight_locked()));
        }

        if (staged_frames_ == 0) first_staged_ns_ = ctx_.now_ns();
        bool flushed_inline = false;
        if (payload.size() > kInlinePayloadMax) {
          // Zero-copy tail: prior staged frames + this envelope + the slab
          // payload in one sendmsg.
          const std::size_t batch = staged_frames_ + 1;
          staged_frames_ = 0;
          if (sendbuf_.flush_with(stream_, slot.frame.span(), slot.payload,
                                  config_.io_timeout) != IoStatus::kOk) {
            disconnect_locked();  // queued: the window will resend it
          } else {
            add_event(events, stats::EventType::kNetTx,
                      static_cast<std::int64_t>(slot.frame.len + slot.payload.size()),
                      static_cast<std::int64_t>(MsgType::kPut));
            if (met_flush_bytes_ != nullptr) met_flush_bytes_->add();
            if (met_batch_ != nullptr) {
              met_batch_->observe(static_cast<std::int64_t>(batch));
            }
          }
          flushed_inline = true;
        } else {
          const std::size_t need = slot.frame.len + payload.size();
          if (sendbuf_.capacity_left() < need &&
              !flush_staged_locked(FlushReason::kBytes, events)) {
            flushed_inline = true;  // link died; window keeps the put
          } else if (stream_.valid()) {
            sendbuf_.append(slot.frame.span());
            if (!payload.empty()) sendbuf_.append(payload);
            ++staged_frames_;
            if (staged_frames_ == 1) first_staged_ns_ = ctx_.now_ns();
          }
        }

        // Flush triggers beyond the inline ones: the window just filled
        // (next put would block anyway), the batch is big enough to
        // amortize its syscall, or the oldest staged frame aged out.
        if (!flushed_inline && stream_.valid() && !sendbuf_.empty()) {
          if (in_flight_locked() >= effective_window_locked() ||
              in_flight_bytes_ >= config_.put_window_bytes) {
            flush_staged_locked(FlushReason::kWindow, events);
          } else if (sendbuf_.size() >= kFlushBytes) {
            flush_staged_locked(FlushReason::kBytes, events);
          } else if (Nanos{ctx_.now_ns() - first_staged_ns_} >=
                     config_.flush_interval) {
            flush_staged_locked(FlushReason::kAge, events);
          }
        }
        out.status = RpcStatus::kOk;
      }
    }
    out.summary = last_ack_summary_;
    out.closed = remote_closed_;
  }
  flush(events);
  return out;
}

bool Transport::flush_puts(std::stop_token st) {
  EventBatch& events = tl_rpc_events();
  for (;;) {
    if (stop_requested(st)) return false;
    bool drained = false;
    bool wait_for_link = false;
    bool stopped = false;
    {
      const util::MutexLock lock(mu_);
      if (window_.empty() || in_flight_locked() == 0) {
        drained = true;
      } else if (!ensure_connected_locked(events)) {
        wait_for_link = true;  // backoff gate; sleep below and retry
      } else if (flush_staged_locked(FlushReason::kExplicit, events)) {
        read_ack_blocking_locked(st, events, &stopped);
      }
    }
    flush(events);  // outside mu_: the shard lock ranks below kNet
    if (stopped) return false;
    if (drained) return true;
    if (wait_for_link) ctx_.clock->sleep_for(kRetrySlice);
  }
}

std::size_t Transport::puts_in_flight() const {
  const util::MutexLock lock(mu_);
  return window_.empty() ? 0 : in_flight_locked();
}

}  // namespace stampede::net
