#include "net/transport.hpp"

#include <algorithm>
#include <utility>

namespace stampede::net {
namespace {

/// Sleep slice while waiting out a backoff gate: short enough that stop
/// requests are honored promptly.
constexpr Nanos kRetrySlice = millis(5);

}  // namespace

Transport::Transport(RunContext& ctx, NodeId node, TransportConfig config, HelloMsg hello,
                     stats::Shard* shard)
    : ctx_(ctx),
      node_(node),
      config_(std::move(config)),
      hello_(std::move(hello)),
      shard_(shard) {}

void Transport::add_event(EventBatch& events, stats::EventType type, std::int64_t a,
                          std::int64_t b) const {
  events.push_back(stats::Event{
      .type = type, .node = node_, .t = ctx_.now_ns(), .a = a, .b = b});
}

void Transport::flush(EventBatch& events) {
  if (events.empty()) return;
  const util::MutexLock lock(stats_mu_);
  for (const stats::Event& e : events) shard_->record(e);
  events.clear();
}

void Transport::disconnect() {
  EventBatch events;
  {
    const util::MutexLock lock(mu_);
    disconnect_locked();
  }
  flush(events);
}

void Transport::disconnect_locked() {
  stream_.close();
  connected_.store(false, std::memory_order_relaxed);
}

bool Transport::ensure_connected_locked(EventBatch& events) {
  if (stream_.valid()) return true;

  const std::int64_t now = ctx_.now_ns();
  if (now < next_attempt_ns_) return false;  // backoff gate not yet open

  auto fail = [&] {
    ++failed_attempts_;
    backoff_ = backoff_.count() == 0
                   ? config_.backoff_initial
                   : std::min(backoff_ * 2, config_.backoff_max);
    next_attempt_ns_ = now + backoff_.count();
    return false;
  };

  auto stream = TcpStream::connect(config_.host, config_.port, config_.connect_timeout);
  if (!stream) return fail();
  stream_ = std::move(*stream);

  // Handshake: Hello → HelloAck(ok).
  const std::vector<std::byte> hello = encode(hello_);
  if (stream_.send_all(hello, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return fail();
  }
  add_event(events, stats::EventType::kNetTx, static_cast<std::int64_t>(hello.size()),
            static_cast<std::int64_t>(MsgType::kHello));
  FrameHeader header{};
  std::vector<std::byte> body;
  if (!read_frame_locked(header, body, events) || header.type != MsgType::kHelloAck) {
    disconnect_locked();
    return fail();
  }
  HelloAckMsg ack;
  if (!decode(body, ack, nullptr) || !ack.ok) {
    disconnect_locked();
    return fail();
  }

  if (had_session_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    add_event(events, stats::EventType::kReconnect, failed_attempts_, backoff_.count());
  }
  had_session_ = true;
  failed_attempts_ = 0;
  backoff_ = Nanos{0};
  next_attempt_ns_ = 0;
  connected_.store(true, std::memory_order_relaxed);
  return true;
}

bool Transport::read_frame_locked(FrameHeader& header, std::vector<std::byte>& body,
                                  EventBatch& events) {
  std::vector<std::byte> raw(kHeaderBytes);
  if (stream_.recv_exact(raw, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  if (!decode_header(raw, header, nullptr)) {
    disconnect_locked();
    return false;
  }
  body.resize(header.body_len);
  if (header.body_len > 0 &&
      stream_.recv_exact(body, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  add_event(events, stats::EventType::kNetRx,
            static_cast<std::int64_t>(kHeaderBytes + header.body_len),
            static_cast<std::int64_t>(header.type));
  return true;
}

Transport::RpcStatus Transport::exchange_locked(std::span<const std::byte> frame,
                                                MsgType expect,
                                                std::vector<std::byte>& reply_body,
                                                EventBatch& events,
                                                const std::stop_token& st) {
  if (stream_.send_all(frame, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return RpcStatus::kDisconnected;
  }
  FrameHeader req_header{};
  decode_header(frame, req_header, nullptr);
  add_event(events, stats::EventType::kNetTx, static_cast<std::int64_t>(frame.size()),
            static_cast<std::int64_t>(req_header.type));

  // Heartbeats count as liveness (they reset the per-frame io_timeout) but
  // are otherwise consumed here; anything else must be the expected reply.
  // A live-but-idle server heartbeats forever, so the stop token must be
  // re-checked between frames or a parked get never observes shutdown.
  for (;;) {
    FrameHeader header{};
    if (!read_frame_locked(header, reply_body, events)) return RpcStatus::kDisconnected;
    if (header.type == MsgType::kHeartbeat) {
      if (stop_requested(st)) {
        // Abandoning mid-RPC: the real reply may still arrive later and
        // would desynchronize the next exchange, so drop the link.
        disconnect_locked();
        return RpcStatus::kStopped;
      }
      continue;
    }
    if (header.type != expect) {
      disconnect_locked();
      return RpcStatus::kDisconnected;
    }
    return RpcStatus::kOk;
  }
}

Transport::RpcStatus Transport::rpc(std::span<const std::byte> frame, MsgType expect,
                                    std::vector<std::byte>& reply_body, bool wait_for_link,
                                    std::stop_token st) {
  for (;;) {
    if (stop_requested(st)) return RpcStatus::kStopped;

    EventBatch events;
    bool sent_or_failfast = true;
    RpcStatus status = RpcStatus::kDisconnected;
    {
      const util::MutexLock lock(mu_);
      if (ensure_connected_locked(events)) {
        status = exchange_locked(frame, expect, reply_body, events, st);
      } else if (wait_for_link) {
        sent_or_failfast = false;  // not connected yet — keep waiting
      }
    }
    flush(events);
    if (sent_or_failfast) return status;

    ctx_.clock->sleep_for(kRetrySlice);
  }
}

}  // namespace stampede::net
