#include "net/transport.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "telemetry/registry.hpp"

namespace stampede::net {
namespace {

/// Sleep slice while waiting out a backoff gate: short enough that stop
/// requests are honored promptly.
constexpr Nanos kRetrySlice = millis(5);

/// RPC latency buckets: 10µs .. 1s, roughly 1-2-5 per decade. An RPC
/// spans at least one network round-trip, so sub-10µs resolution is
/// noise; anything beyond 1s has blown through io_timeout already.
constexpr std::array<std::int64_t, 16> kRpcLatencyBounds = {
    10'000,      20'000,      50'000,       100'000,      200'000,    500'000,
    1'000'000,   2'000'000,   5'000'000,    10'000'000,   20'000'000, 50'000'000,
    100'000'000, 200'000'000, 500'000'000,  1'000'000'000};

/// Per-thread scratch for the rpc event batch: flush() clears it after
/// draining into the shard, so capacity persists across attempts and
/// calls and the steady-state rpc path does not allocate for tracing.
std::vector<stats::Event>& tl_rpc_events() {
  static thread_local std::vector<stats::Event> batch;
  return batch;
}

}  // namespace

Transport::Transport(RunContext& ctx, NodeId node, TransportConfig config, HelloMsg hello,
                     stats::Shard* shard)
    : ctx_(ctx),
      node_(node),
      config_(std::move(config)),
      hello_(std::move(hello)),
      shard_(shard) {
  if (ctx_.metrics != nullptr) {
    // One link per transport; puts and gets of the same channel are
    // distinct links (separate sockets), so the label tells them apart.
    telemetry::Registry::Labels labels = {
        {"link", hello_.channel + (hello_.producer_key >= 0 ? "/put" : "/get")}};
    telemetry::Registry& reg = *ctx_.metrics;
    met_tx_ = &reg.counter("aru_net_tx_bytes_total",
                           "Bytes sent on this transport link (frames + payload).",
                           labels);
    met_rx_ = &reg.counter("aru_net_rx_bytes_total",
                           "Bytes received on this transport link.", labels);
    met_reconnects_ = &reg.counter(
        "aru_net_reconnects_total",
        "Successful handshakes after the first (link recoveries).", labels);
    met_rpc_ = &reg.histogram(
        "aru_net_rpc_latency_ns",
        "End-to-end rpc() latency (connect wait + exchange), nanoseconds.",
        kRpcLatencyBounds, labels);
  }
}

void Transport::add_event(EventBatch& events, stats::EventType type, std::int64_t a,
                          std::int64_t b) const {
  events.push_back(stats::Event{
      .type = type, .node = node_, .t = ctx_.now_ns(), .a = a, .b = b});
  switch (type) {
    case stats::EventType::kNetTx:
      if (met_tx_ != nullptr) met_tx_->add(static_cast<std::uint64_t>(a));
      break;
    case stats::EventType::kNetRx:
      if (met_rx_ != nullptr) met_rx_->add(static_cast<std::uint64_t>(a));
      break;
    case stats::EventType::kReconnect:
      if (met_reconnects_ != nullptr) met_reconnects_->add();
      break;
    default:
      break;
  }
}

void Transport::flush(EventBatch& events) {
  if (events.empty()) return;
  const util::MutexLock lock(stats_mu_);
  for (const stats::Event& e : events) shard_->record(e);
  events.clear();
}

void Transport::disconnect() {
  EventBatch events;
  {
    const util::MutexLock lock(mu_);
    disconnect_locked();
  }
  flush(events);
}

void Transport::disconnect_locked() {
  stream_.close();
  connected_.store(false, std::memory_order_relaxed);
}

bool Transport::ensure_connected_locked(EventBatch& events) {
  if (stream_.valid()) return true;

  const std::int64_t now = ctx_.now_ns();
  if (now < next_attempt_ns_) return false;  // backoff gate not yet open

  auto fail = [&] {
    ++failed_attempts_;
    backoff_ = backoff_.count() == 0
                   ? config_.backoff_initial
                   : std::min(backoff_ * 2, config_.backoff_max);
    next_attempt_ns_ = now + backoff_.count();
    return false;
  };

  auto stream = TcpStream::connect(config_.host, config_.port, config_.connect_timeout);
  if (!stream) return fail();
  stream_ = std::move(*stream);

  // Handshake: Hello → HelloAck(ok). The handshake never carries payload.
  const FrameBuf hello = encode(hello_);
  if (stream_.send_all(hello.span(), config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return fail();
  }
  add_event(events, stats::EventType::kNetTx, static_cast<std::int64_t>(hello.len),
            static_cast<std::int64_t>(MsgType::kHello));
  FrameHeader header{};
  EnvelopeBody body;
  if (!read_frame_locked(header, body) || header.type != MsgType::kHelloAck ||
      header.payload_len != 0) {
    disconnect_locked();
    return fail();
  }
  add_event(events, stats::EventType::kNetRx,
            static_cast<std::int64_t>(kHeaderBytes + header.body_len),
            static_cast<std::int64_t>(header.type));
  HelloAckMsg ack;
  if (!decode(body.span(), ack, nullptr) || !ack.ok) {
    disconnect_locked();
    return fail();
  }

  if (had_session_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    add_event(events, stats::EventType::kReconnect, failed_attempts_, backoff_.count());
  }
  had_session_ = true;
  failed_attempts_ = 0;
  backoff_ = Nanos{0};
  next_attempt_ns_ = 0;
  connected_.store(true, std::memory_order_relaxed);
  return true;
}

bool Transport::read_frame_locked(FrameHeader& header, EnvelopeBody& body) {
  std::array<std::byte, kHeaderBytes> raw;
  if (stream_.recv_exact(raw, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  if (!decode_header(raw, header, nullptr)) {
    disconnect_locked();
    return false;
  }
  body.len = header.body_len;  // decode_header capped this at kMaxEnvelopeBytes
  if (header.body_len > 0 &&
      stream_.recv_exact(body.storage(header.body_len), config_.io_timeout) !=
          IoStatus::kOk) {
    disconnect_locked();
    return false;
  }
  return true;
}

Transport::RpcStatus Transport::exchange_locked(const FrameBuf& frame,
                                                std::span<const std::byte> payload,
                                                MsgType expect, EnvelopeBody& reply_body,
                                                const PayloadSink& sink,
                                                EventBatch& events,
                                                const std::stop_token& st) {
  const std::array<std::span<const std::byte>, 2> bufs = {frame.span(), payload};
  if (stream_.send_vec(bufs, config_.io_timeout) != IoStatus::kOk) {
    disconnect_locked();
    return RpcStatus::kDisconnected;
  }
  FrameHeader req_header{};
  decode_header(frame.span(), req_header, nullptr);
  add_event(events, stats::EventType::kNetTx,
            static_cast<std::int64_t>(frame.len + payload.size()),
            static_cast<std::int64_t>(req_header.type));

  // Heartbeats count as liveness (they reset the per-frame io_timeout) but
  // are otherwise consumed here; anything else must be the expected reply.
  // A live-but-idle server heartbeats forever, so the stop token must be
  // re-checked between frames or a parked get never observes shutdown.
  for (;;) {
    FrameHeader header{};
    if (!read_frame_locked(header, reply_body)) return RpcStatus::kDisconnected;
    if (header.type == MsgType::kHeartbeat) {
      if (header.payload_len != 0) {
        // Protocol violation — and an unconsumed payload tail would
        // desynchronize every subsequent frame.
        disconnect_locked();
        return RpcStatus::kDisconnected;
      }
      add_event(events, stats::EventType::kNetRx,
                static_cast<std::int64_t>(kHeaderBytes + header.body_len),
                static_cast<std::int64_t>(header.type));
      if (stop_requested(st)) {
        // Abandoning mid-RPC: the real reply may still arrive later and
        // would desynchronize the next exchange, so drop the link.
        disconnect_locked();
        return RpcStatus::kStopped;
      }
      continue;
    }
    if (header.type != expect) {
      disconnect_locked();
      return RpcStatus::kDisconnected;
    }
    if (header.payload_len > 0) {
      const std::span<std::byte> dest =
          sink ? sink(header, reply_body.span()) : std::span<std::byte>{};
      if (dest.size() != header.payload_len) {
        // No destination (or a mis-sized one): the tail cannot be read
        // into place, so the stream is unrecoverable — drop it.
        disconnect_locked();
        return RpcStatus::kDisconnected;
      }
      if (stream_.recv_exact(dest, config_.io_timeout) != IoStatus::kOk) {
        disconnect_locked();
        return RpcStatus::kDisconnected;
      }
    }
    add_event(events, stats::EventType::kNetRx,
              static_cast<std::int64_t>(kHeaderBytes + header.body_len +
                                        header.payload_len),
              static_cast<std::int64_t>(header.type));
    return RpcStatus::kOk;
  }
}

Transport::RpcStatus Transport::rpc(const FrameBuf& frame,
                                    std::span<const std::byte> payload, MsgType expect,
                                    EnvelopeBody& reply_body, const PayloadSink& sink,
                                    bool wait_for_link, std::stop_token st) {
  EventBatch& events = tl_rpc_events();
  const std::int64_t t0 = ctx_.now_ns();
  for (;;) {
    if (stop_requested(st)) return RpcStatus::kStopped;

    bool sent_or_failfast = true;
    RpcStatus status = RpcStatus::kDisconnected;
    {
      const util::MutexLock lock(mu_);
      if (ensure_connected_locked(events)) {
        status = exchange_locked(frame, payload, expect, reply_body, sink, events, st);
      } else if (wait_for_link) {
        sent_or_failfast = false;  // not connected yet — keep waiting
      }
    }
    flush(events);
    if (sent_or_failfast) {
      if (status == RpcStatus::kOk && met_rpc_ != nullptr) {
        met_rpc_->observe(ctx_.now_ns() - t0);
      }
      return status;
    }

    ctx_.clock->sleep_for(kRetrySlice);
  }
}

}  // namespace stampede::net
