#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace stampede::net {
namespace {

/// Remaining poll budget in whole milliseconds, rounded up so a positive
/// remainder never degenerates into a busy 0 ms poll loop.
int poll_millis(Nanos remaining) {
  if (remaining.count() <= 0) return 0;
  const std::int64_t ms = (remaining.count() + 999'999) / 1'000'000;
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

Nanos steady_now() {
  return std::chrono::duration_cast<Nanos>(
      std::chrono::steady_clock::now().time_since_epoch());
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void fill_err(std::string* err, const char* what) {
  if (err != nullptr) *err = std::string(what) + ": " + std::strerror(errno);
}

/// Stream socket options applied to every connected/accepted stream.
/// TCP_NODELAY: frames are already batched by the callers' send buffers,
/// so Nagle only adds latency. The kernel's default (auto-tuned) socket
/// buffer sizes are deliberately left alone — forcing window-sized
/// SO_SNDBUF/SO_RCVBUF measured *slower* on loopback (bufferbloat: the
/// producer dumps its whole put window into the kernel and then stalls
/// in lockstep with the consumer's drain).
void set_stream_options(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

void Socket::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpStream> TcpStream::connect(const std::string& host, std::uint16_t port,
                                            Nanos timeout, std::string* err) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    fill_err(err, "socket");
    return std::nullopt;
  }
  if (!set_nonblocking(sock.fd())) {
    fill_err(err, "fcntl");
    return std::nullopt;
  }
  set_stream_options(sock.fd());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "inet_pton: invalid address '" + host + "'";
    return std::nullopt;
  }

  int rc = 0;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);

  if (rc < 0) {
    if (errno != EINPROGRESS) {
      fill_err(err, "connect");
      return std::nullopt;
    }
    // Nonblocking connect in flight: wait for writability, then read the
    // final outcome out of SO_ERROR.
    const Nanos deadline = steady_now() + timeout;
    for (;;) {
      pollfd pfd{sock.fd(), POLLOUT, 0};
      const int n = ::poll(&pfd, 1, poll_millis(deadline - steady_now()));
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        fill_err(err, "poll");
        return std::nullopt;
      }
      if (n == 0) {
        if (steady_now() >= deadline) {
          if (err != nullptr) *err = "connect: timed out";
          return std::nullopt;
        }
        continue;
      }
      break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      fill_err(err, "getsockopt");
      return std::nullopt;
    }
    if (so_error != 0) {
      if (err != nullptr) *err = std::string("connect: ") + std::strerror(so_error);
      return std::nullopt;
    }
  }
  return TcpStream(std::move(sock));
}

IoStatus TcpStream::send_all(std::span<const std::byte> data, Nanos timeout) {
  if (!sock_.valid()) return IoStatus::kError;
  const Nanos deadline = steady_now() + timeout;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(sock_.fd(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const Nanos remaining = deadline - steady_now();
      if (remaining.count() <= 0) return IoStatus::kTimeout;
      pollfd pfd{sock_.fd(), POLLOUT, 0};
      const int p = ::poll(&pfd, 1, poll_millis(remaining));
      if (p < 0 && errno != EINTR) return IoStatus::kError;
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus TcpStream::send_vec(std::span<const std::span<const std::byte>> bufs,
                             Nanos timeout) {
  if (!sock_.valid()) return IoStatus::kError;
  const Nanos deadline = steady_now() + timeout;

  // Cursor over the logical concatenation: first buffer not fully sent,
  // and how far into it we are. Rebuilding the iovec array per attempt is
  // cheap (2-3 entries in practice) and keeps partial-progress handling
  // trivially correct.
  std::size_t first = 0;
  std::size_t offset = 0;
  constexpr std::size_t kMaxIov = 8;
  for (;;) {
    while (first < bufs.size() && offset == bufs[first].size()) {
      ++first;
      offset = 0;
    }
    if (first == bufs.size()) return IoStatus::kOk;

    iovec iov[kMaxIov];
    std::size_t niov = 0;
    for (std::size_t i = first; i < bufs.size() && niov < kMaxIov; ++i) {
      const std::size_t skip = i == first ? offset : 0;
      if (bufs[i].size() == skip) continue;  // empty (or fully-sent head)
      // sendmsg never writes through iov_base; const_cast is the POSIX API
      // shape, not a mutation.
      iov[niov].iov_base =
          const_cast<std::byte*>(bufs[i].data() + skip);  // NOLINT
      iov[niov].iov_len = bufs[i].size() - skip;
      ++niov;
    }
    if (niov == 0) return IoStatus::kOk;

    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(sock_.fd(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      // Advance the cursor across however many buffers `n` covered.
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        const std::size_t room = bufs[first].size() - offset;
        if (left < room) {
          offset += left;
          left = 0;
        } else {
          left -= room;
          ++first;
          offset = 0;
        }
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const Nanos remaining = deadline - steady_now();
      if (remaining.count() <= 0) return IoStatus::kTimeout;
      pollfd pfd{sock_.fd(), POLLOUT, 0};
      const int p = ::poll(&pfd, 1, poll_millis(remaining));
      if (p < 0 && errno != EINTR) return IoStatus::kError;
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus TcpStream::recv_exact(std::span<std::byte> out, Nanos timeout) {
  if (!sock_.valid()) return IoStatus::kError;
  const Nanos deadline = steady_now() + timeout;
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(sock_.fd(), out.data() + got, out.size() - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const Nanos remaining = deadline - steady_now();
      if (remaining.count() <= 0) return IoStatus::kTimeout;
      pollfd pfd{sock_.fd(), POLLIN, 0};
      const int p = ::poll(&pfd, 1, poll_millis(remaining));
      if (p < 0 && errno != EINTR) return IoStatus::kError;
      continue;
    }
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus TcpStream::recv_some(std::span<std::byte> out, std::size_t* n_read,
                              Nanos timeout) {
  *n_read = 0;
  if (!sock_.valid() || out.empty()) return IoStatus::kError;
  const Nanos deadline = steady_now() + timeout;
  for (;;) {
    const ssize_t n = ::recv(sock_.fd(), out.data(), out.size(), 0);
    if (n > 0) {
      *n_read = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const Nanos remaining = deadline - steady_now();
      if (remaining.count() <= 0) return IoStatus::kTimeout;
      pollfd pfd{sock_.fd(), POLLIN, 0};
      const int p = ::poll(&pfd, 1, poll_millis(remaining));
      if (p < 0 && errno != EINTR) return IoStatus::kError;
      continue;
    }
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus TcpStream::recv_vec(std::span<const std::span<std::byte>> bufs,
                             std::size_t* n_read, Nanos timeout) {
  *n_read = 0;
  if (!sock_.valid()) return IoStatus::kError;
  constexpr std::size_t kMaxIov = 8;
  iovec iov[kMaxIov];
  std::size_t niov = 0;
  for (const auto& b : bufs) {
    if (b.empty()) continue;
    if (niov == kMaxIov) break;
    iov[niov].iov_base = b.data();
    iov[niov].iov_len = b.size();
    ++niov;
  }
  if (niov == 0) return IoStatus::kError;
  const Nanos deadline = steady_now() + timeout;
  for (;;) {
    const ssize_t n = ::readv(sock_.fd(), iov, static_cast<int>(niov));
    if (n > 0) {
      *n_read = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const Nanos remaining = deadline - steady_now();
      if (remaining.count() <= 0) return IoStatus::kTimeout;
      pollfd pfd{sock_.fd(), POLLIN, 0};
      const int p = ::poll(&pfd, 1, poll_millis(remaining));
      if (p < 0 && errno != EINTR) return IoStatus::kError;
      continue;
    }
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

bool SendBuffer::append(std::span<const std::byte> data) {
  if (buf_.size() - len_ < data.size()) return false;
  std::memcpy(buf_.data() + len_, data.data(), data.size());
  len_ += data.size();
  return true;
}

IoStatus SendBuffer::flush(TcpStream& stream, Nanos timeout) {
  if (len_ == 0) return IoStatus::kOk;
  const std::array<std::span<const std::byte>, 1> bufs = {
      std::span<const std::byte>{buf_.data(), len_}};
  const IoStatus st = stream.send_vec(bufs, timeout);
  len_ = 0;
  return st;
}

IoStatus SendBuffer::flush_with(TcpStream& stream, std::span<const std::byte> frame,
                                std::span<const std::byte> payload, Nanos timeout) {
  const std::array<std::span<const std::byte>, 3> bufs = {
      std::span<const std::byte>{buf_.data(), len_}, frame, payload};
  const IoStatus st = stream.send_vec(bufs, timeout);
  len_ = 0;
  return st;
}

void RecvBuffer::compact() {
  if (pos_ == 0) return;
  const std::size_t n = len_ - pos_;
  if (n > 0) std::memmove(buf_.data(), buf_.data() + pos_, n);
  pos_ = 0;
  len_ = n;
}

std::span<std::byte> RecvBuffer::tail() {
  if (buf_.size() - len_ < buf_.size() / 2) compact();
  return {buf_.data() + len_, buf_.size() - len_};
}

IoStatus RecvBuffer::fill(TcpStream& stream, Nanos timeout) {
  const std::span<std::byte> space = tail();
  if (space.empty()) return IoStatus::kError;  // caller decodes too little
  std::size_t n = 0;
  const IoStatus st = stream.recv_some(space, &n, timeout);
  if (st == IoStatus::kOk) len_ += n;
  return st;
}

bool TcpStream::peer_hup() const {
  if (!sock_.valid()) return true;
  pollfd pfd{sock_.fd(), POLLIN, 0};
  int n = 0;
  do {
    n = ::poll(&pfd, 1, 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return false;
  if ((pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    // Readable could be data or EOF: peek one byte to distinguish without
    // consuming anything.
    char probe = 0;
    const ssize_t r = ::recv(sock_.fd(), &probe, 1, MSG_PEEK);
    return r == 0;
  }
  return false;
}

bool TcpStream::readable(Nanos timeout) const {
  if (!sock_.valid()) return false;
  pollfd pfd{sock_.fd(), POLLIN, 0};
  int n = 0;
  do {
    n = ::poll(&pfd, 1, poll_millis(timeout));
  } while (n < 0 && errno == EINTR);
  return n > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

std::optional<TcpListener> TcpListener::listen(std::uint16_t port, std::string* err) {
  return listen("127.0.0.1", port, err);
}

std::optional<TcpListener> TcpListener::listen(const std::string& host,
                                               std::uint16_t port, std::string* err) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    fill_err(err, "socket");
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!set_nonblocking(sock.fd())) {
    fill_err(err, "fcntl");
    return std::nullopt;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "inet_pton: invalid bind address '" + host + "'";
    return std::nullopt;
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    fill_err(err, "bind");
    return std::nullopt;
  }
  if (::listen(sock.fd(), SOMAXCONN) < 0) {
    fill_err(err, "listen");
    return std::nullopt;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    fill_err(err, "getsockname");
    return std::nullopt;
  }
  return TcpListener(std::move(sock), ntohs(bound.sin_port));
}

std::optional<TcpStream> TcpListener::accept(Nanos timeout) {
  if (!sock_.valid()) return std::nullopt;
  const Nanos deadline = steady_now() + timeout;
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      if (!set_nonblocking(conn.fd())) return std::nullopt;
      set_stream_options(conn.fd());
      return TcpStream(std::move(conn));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const Nanos remaining = deadline - steady_now();
      if (remaining.count() <= 0) return std::nullopt;
      pollfd pfd{sock_.fd(), POLLIN, 0};
      const int p = ::poll(&pfd, 1, poll_millis(remaining));
      if (p < 0 && errno != EINTR) return std::nullopt;
      continue;
    }
    return std::nullopt;
  }
}

}  // namespace stampede::net
