/// \file wire.hpp
/// \brief Length-prefixed wire protocol for remote channels.
///
/// Every message travels as one *frame*: a fixed header, a small
/// *envelope* body (per-type layout below), and — for item-bearing
/// messages — the raw payload bytes appended verbatim after the
/// envelope. Splitting payload out of the envelope is what makes the
/// zero-copy path work: the sender emits header+envelope from a stack
/// buffer and the payload straight from the item's pooled slab
/// (scatter-gather `sendmsg`), and the receiver decodes the envelope
/// first, then reads the payload tail directly into a freshly acquired
/// pooled buffer. No intermediate frame-sized vector exists on either
/// side.
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  magic 0x5350444E ("SPDN", big-endian constant)
///        4     4  envelope length in bytes (little-endian u32)
///        8     1  protocol version (kWireVersion)
///        9     1  message type (MsgType)
///       10     2  reserved (zero)
///       12     4  payload length in bytes (little-endian u32)
///       16     n  envelope (per-type layout below)
///     16+n     p  payload bytes (exactly `payload length` of them)
///
/// All multi-byte integers are little-endian. Strings are a u16 length
/// followed by raw bytes; the summary-STP vector a u16 slot count
/// followed by one i64 nanosecond value per slot (`aru::kUnknownStp` = 0
/// marks empty slots). An item's envelope carries its payload size as a
/// u32 — the bytes themselves ride in the frame's payload tail, and the
/// two lengths must agree (receivers reject frames where they differ).
///
/// The backward summary-STP vector is piggy-backed on the feedback-bearing
/// messages, making paper §3.3.2 Fig. 3 literal on the wire:
///
///  * `kGet` (consumer → channel) carries the consumer's summary-STP,
///    folded into the served channel's backwardSTP vector;
///  * `kGetReply` and `kPutAck` (channel → peer) carry the channel's full
///    backwardSTP vector plus its compressed summary, which the producing
///    process feeds to its source pacing;
///  * `kPut` (producer → channel) carries the producer's own backward
///    vector for diagnostics/tracing on the serving side.
///
/// Version 3 adds the pipelined put machinery. Every `kPut` carries a
/// per-link sequence number; `kPutAck` acknowledges *cumulatively*
/// (`cum_seq` = highest contiguously stored sequence) and advertises
/// `credits` — the receiver's current buffer slack — so a source may keep
/// up to that many puts in flight without waiting. `kHello` carries a
/// random per-transport `session` id plus the `start_seq` the sender will
/// resume from, letting the server suppress duplicates after a reconnect
/// replay (at-most-once channel semantics survive resends). A sync peer
/// simply keeps one put in flight and reads one ack per put; the frame
/// layouts are shared.
///
/// Decoding is defensive: every length is bounds-checked against both the
/// buffer and a hard cap (kMaxStpSlots, kMaxAttrs, kMaxPayloadBytes,
/// kMaxNameBytes, kMaxEnvelopeBytes), and a truncated or corrupt buffer
/// yields `false` plus a diagnostic — never undefined behaviour. The
/// fuzz-style round-trip and truncation tests live in tests/test_wire.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/types.hpp"
#include "util/static_annotations.hpp"
#include "util/time.hpp"

namespace stampede::net {

inline constexpr std::uint32_t kWireMagic = 0x5350444E;  // "SPDN"
inline constexpr std::uint8_t kWireVersion = 3;
inline constexpr std::size_t kHeaderBytes = 16;

/// Hard caps a decoder enforces before trusting any on-the-wire length.
inline constexpr std::size_t kMaxStpSlots = 64;  ///< matches Channel::kMaxConsumers
inline constexpr std::size_t kMaxAttrs = 64;
inline constexpr std::size_t kMaxNameBytes = 256;
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 26;  // 64 MiB
/// Upper bound on an envelope. Every message's fixed fields plus maxed-out
/// variable fields (name, attrs, STP slots) total well under 2 KiB, which
/// is what lets the whole envelope path live in stack buffers.
inline constexpr std::size_t kMaxEnvelopeBytes = 2048;

enum class MsgType : std::uint8_t {
  kHello = 1,    ///< connection attach: channel name + endpoint keys
  kHelloAck,     ///< attach outcome
  kPut,          ///< item + producer backward-STP vector
  kPutAck,       ///< stored/closed + channel summary + backward-STP vector
  kGet,          ///< latest-item request + consumer summary-STP + guarantee
  kGetReply,     ///< item (or closed) + channel summary + backward-STP vector
  kHeartbeat,    ///< liveness while a blocking get waits server-side
  kClose,        ///< orderly goodbye
};

/// True for a value the header decoder should accept.
constexpr bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kHello) &&
         t <= static_cast<std::uint8_t>(MsgType::kClose);
}

const char* to_string(MsgType type);

/// Well-known item attribute keys. Attributes are free-form (key, value)
/// tags preserved end-to-end; unknown keys must be carried through.
inline constexpr std::uint32_t kTagProducerNode = 1;  ///< origin-process producer NodeId
inline constexpr std::uint32_t kTagClusterNode = 2;   ///< origin-process cluster node

/// A timestamped item in transit: everything a peer needs to materialize
/// a local `Item` replica plus the attribute tags riding along. The
/// payload bytes are NOT part of the envelope — `payload_bytes` records
/// their size and the frame's payload tail carries them.
struct WireItem {
  Timestamp ts = kNoTimestamp;
  std::uint64_t origin_id = 0;  ///< item id in the *sending* process's id space
  std::int64_t produce_cost_ns = 0;
  std::vector<std::pair<std::uint32_t, std::int64_t>> attrs;
  std::uint32_t payload_bytes = 0;  ///< size of the frame's payload tail

  bool operator==(const WireItem&) const = default;
};

struct HelloMsg {
  std::string channel;
  std::int32_t producer_key = -1;  ///< pre-registered producer slot (-1 = none)
  std::int32_t consumer_key = -1;  ///< pre-registered consumer slot (-1 = none)
  std::uint64_t session = 0;       ///< random per-transport id for dup suppression
  std::uint64_t start_seq = 0;     ///< first put sequence this attach will send

  bool operator==(const HelloMsg&) const = default;
};

struct HelloAckMsg {
  bool ok = false;
  std::string message;
  std::uint32_t credits = 0;  ///< receiver buffer slack at attach time

  bool operator==(const HelloAckMsg&) const = default;
};

struct PutMsg {
  std::uint64_t seq = 0;  ///< per-link sequence number (monotonic from start_seq)
  WireItem item;
  std::vector<Nanos> stp;  ///< producer's backwardSTP vector (diagnostic)

  bool operator==(const PutMsg&) const = default;
};

struct PutAckMsg {
  bool stored = false;
  bool closed = false;        ///< channel is closed; producers should stop
  Nanos summary{0};           ///< channel summary-STP (paper §3.3.2 put return)
  std::uint64_t cum_seq = 0;  ///< cumulative ack: all seq ≤ this are settled
  std::uint32_t credits = 0;  ///< receiver buffer slack after this ack
  std::vector<Nanos> stp;     ///< channel's full backwardSTP vector

  bool operator==(const PutAckMsg&) const = default;
};

struct GetMsg {
  Nanos consumer_summary{0};            ///< piggy-backed consumer summary-STP
  Timestamp guarantee = kNoTimestamp;   ///< DGC extra guarantee (kNoTimestamp = none)

  bool operator==(const GetMsg&) const = default;
};

struct GetReplyMsg {
  bool has_item = false;
  bool closed = false;  ///< channel closed and drained: consumer should stop
  WireItem item;        ///< valid only when has_item
  std::int32_t skipped = 0;
  Nanos summary{0};          ///< channel summary-STP
  std::vector<Nanos> stp;    ///< channel's full backwardSTP vector

  bool operator==(const GetReplyMsg&) const = default;
};

struct HeartbeatMsg {
  std::int64_t t_ns = 0;  ///< sender clock at emission (diagnostics)

  bool operator==(const HeartbeatMsg&) const = default;
};

/// Decoded frame header.
struct FrameHeader {
  MsgType type{};
  std::uint32_t body_len = 0;     ///< envelope length (≤ kMaxEnvelopeBytes)
  std::uint32_t payload_len = 0;  ///< payload tail length (≤ kMaxPayloadBytes)
};

/// An encoded header + envelope, ready to send. Lives entirely on the
/// stack (the envelope cap makes that cheap); the payload tail — when the
/// message has one — is sent separately from the item's own buffer.
struct FrameBuf {
  std::array<std::byte, kHeaderBytes + kMaxEnvelopeBytes> data;
  std::size_t len = 0;

  std::span<const std::byte> span() const { return {data.data(), len}; }
};

/// A received envelope body (header already consumed). Sized for the
/// worst-case envelope so the receive path never heap-allocates.
struct EnvelopeBody {
  std::array<std::byte, kMaxEnvelopeBytes> data;
  std::size_t len = 0;

  std::span<const std::byte> span() const { return {data.data(), len}; }
  std::span<std::byte> storage(std::size_t n) { return {data.data(), n}; }
};

// -- encoding ---------------------------------------------------------------
// Each returns the frame's header + envelope; for item-bearing messages
// the header's payload_len field is item.payload_bytes and the caller is
// responsible for sending exactly that many payload bytes after the
// envelope. Encoders enforce the same hard caps as the decoders: a
// variable-length field over its cap (name, STP slots, attrs) throws
// std::length_error at the sender instead of emitting a frame every peer
// would reject.

ARU_HOT_PATH FrameBuf encode(const HelloMsg& m);
ARU_HOT_PATH FrameBuf encode(const HelloAckMsg& m);
ARU_HOT_PATH FrameBuf encode(const PutMsg& m);
/// In-place variant for the pipelined window: encodes into the slot's own
/// FrameBuf, skipping the ~2 KiB struct copy a by-value return costs on
/// every enqueued put.
ARU_HOT_PATH void encode_into(const PutMsg& m, FrameBuf& out);
ARU_HOT_PATH FrameBuf encode(const PutAckMsg& m);
ARU_HOT_PATH FrameBuf encode(const GetMsg& m);
ARU_HOT_PATH FrameBuf encode(const GetReplyMsg& m);
ARU_HOT_PATH FrameBuf encode(const HeartbeatMsg& m);
ARU_HOT_PATH FrameBuf encode_close();

// -- decoding ---------------------------------------------------------------
// All decoders return false (and set *err when non-null) on truncated,
// oversized, or malformed input. They never throw and never read out of
// bounds.

/// Decodes the 16-byte header; `buf` must hold at least kHeaderBytes.
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode_header(std::span<const std::byte> buf,
                                                 FrameHeader& out, std::string* err);

ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body, HelloMsg& out,
                                          std::string* err);
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body,
                                          HelloAckMsg& out, std::string* err);
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body, PutMsg& out,
                                          std::string* err);
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body, PutAckMsg& out,
                                          std::string* err);
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body, GetMsg& out,
                                          std::string* err);
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body,
                                          GetReplyMsg& out, std::string* err);
ARU_HOT_PATH ARU_NOTHROW_PATH bool decode(std::span<const std::byte> body,
                                          HeartbeatMsg& out, std::string* err);

}  // namespace stampede::net
