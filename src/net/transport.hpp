/// \file transport.hpp
/// \brief Client-side connection manager: one logical link to a channel
///        server, with handshake, heartbeat-aware RPC, and bounded
///        exponential-backoff reconnect.
///
/// A Transport is *caller-driven*: it owns no background thread. Every
/// RPC — connect (with Hello/HelloAck handshake) if needed, send the
/// request frame, read frames until the expected reply type (heartbeats
/// are consumed as liveness) — runs on the calling task thread under one
/// `util::Mutex` of rank `kNet`. That keeps the whole net client inside
/// the lock-order validator and the -Wthread-safety analysis, and means a
/// stopped runtime has no orphan I/O threads to chase.
///
/// The RPC surface is zero-copy on both directions. A request is a stack
/// FrameBuf (header + envelope) plus an optional payload span sent
/// straight from the item's pooled slab via scatter-gather `send_vec` —
/// no staging vector. A reply's envelope lands in a stack EnvelopeBody;
/// when the reply carries a payload tail, the caller's PayloadSink is
/// handed the decoded-envelope bytes and must return the destination
/// span (typically a freshly acquired pooled buffer's mutable_data()),
/// into which the payload is received directly.
///
/// Reconnect policy: after a failed connect attempt the next attempt is
/// gated by an exponential backoff doubling from `backoff_initial` to at
/// most `backoff_max`. `wait_for_link` RPCs (gets) sleep through the gate
/// and retry; fail-fast RPCs (puts) return kDisconnected immediately so
/// the producer can drop the item and keep pacing. A successful handshake
/// after a previous session records a `kReconnect` trace event carrying
/// the failed-attempt count and the final backoff.
///
/// Trace events (kNetTx/kNetRx/kReconnect) are composed under `mu_` and
/// appended to the stats shard only after it is released, under a
/// dedicated mutex of rank `kNetStats` — ranked *below* kNet so flushing
/// while holding the transport lock is a runtime hierarchy violation,
/// exactly mirroring the Channel kBufferStats/kBuffer discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <stop_token>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/context.hpp"
#include "stats/recorder.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::telemetry {
class Counter;
class Histogram;
}  // namespace stampede::telemetry

namespace stampede::net {

struct TransportConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Budget for one TCP connect + handshake attempt.
  Nanos connect_timeout = millis(250);
  /// Per-frame send/receive budget. Must comfortably exceed the server's
  /// heartbeat interval: a live server emits *something* at least that
  /// often, so a full io_timeout of silence means the link is dead.
  Nanos io_timeout = seconds(1);
  /// Reconnect backoff bounds (attempt n waits min(initial·2ⁿ⁻¹, max)).
  Nanos backoff_initial = millis(10);
  Nanos backoff_max = millis(500);
};

/// Supplies the destination buffer for an expected reply's payload tail.
/// Invoked (under the transport lock) after the reply envelope has been
/// received, with the decoded frame header and the raw envelope bytes;
/// must return a span of *exactly* `header.payload_len` bytes for the
/// payload to be received into, or an empty span to reject the frame
/// (which drops the connection — mid-frame there is no other recovery).
using PayloadSink = std::function<std::span<std::byte>(
    const FrameHeader& header, std::span<const std::byte> body)>;

class Transport {
 public:
  enum class RpcStatus : std::uint8_t {
    kOk,            ///< reply of the expected type received
    kDisconnected,  ///< no link (fail-fast mode) or link died mid-RPC
    kStopped,       ///< stop token fired / runtime stopping
  };

  /// \param ctx    run services (clock for timestamps and backoff sleeps).
  /// \param node   graph node the trace events are attributed to.
  /// \param hello  handshake sent on every (re)connect.
  /// \param shard  recorder shard owned by this transport.
  Transport(RunContext& ctx, NodeId node, TransportConfig config, HelloMsg hello,
            stats::Shard* shard);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Executes one request/reply exchange. `frame` is the encoded header +
  /// envelope; `payload` (possibly empty) is the request's payload tail,
  /// sent scatter-gather with the frame in one syscall — its length must
  /// equal the payload_len encoded in `frame`'s header. On kOk,
  /// `reply_body` holds the envelope of the first non-heartbeat reply
  /// frame, whose type matched `expect`; if that reply announced a
  /// payload tail, it has been received into the span `sink` returned
  /// (`sink` may be null for replies that never carry payload — a
  /// payload-bearing reply then drops the link).
  ///
  /// \param wait_for_link  true: block (through backoff/reconnect cycles)
  ///        until a link exists before sending — used by gets. false:
  ///        return kDisconnected at the first hurdle — used by puts.
  ///        Either way, once the request is sent the outcome is final:
  ///        a link death mid-RPC returns kDisconnected and the caller
  ///        decides whether to re-issue the (lost) request.
  ARU_HOT_PATH RpcStatus rpc(const FrameBuf& frame, std::span<const std::byte> payload,
                             MsgType expect, EnvelopeBody& reply_body,
                             const PayloadSink& sink, bool wait_for_link,
                             std::stop_token st) EXCLUDES(mu_, stats_mu_);

  /// Drops the link (next rpc reconnects). Safe to call concurrently.
  void disconnect() EXCLUDES(mu_, stats_mu_);

  bool connected() const { return connected_.load(std::memory_order_relaxed); }

  /// Successful handshakes after the first (i.e. recoveries).
  std::int64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }

  const TransportConfig& config() const { return config_; }

 private:
  using EventBatch = std::vector<stats::Event>;

  /// Establishes the link if absent and due. Returns true when connected.
  bool ensure_connected_locked(EventBatch& events) REQUIRES(mu_);

  /// Sends frame+payload, then reads frames (skipping heartbeats) until
  /// one of type `expect` arrives; its payload tail (if any) is received
  /// via `sink`. Disconnects on any failure. The stop token is re-checked
  /// after every consumed heartbeat so a reply wait against a
  /// live-but-idle server (which heartbeats indefinitely) still honors
  /// shutdown; stop mid-RPC drops the link and returns kStopped.
  RpcStatus exchange_locked(const FrameBuf& frame, std::span<const std::byte> payload,
                            MsgType expect, EnvelopeBody& reply_body,
                            const PayloadSink& sink, EventBatch& events,
                            const std::stop_token& st) REQUIRES(mu_);

  /// Reads one frame's header + envelope (NOT its payload tail — that is
  /// the caller's job, via the header's payload_len). False (and
  /// disconnect) on any failure.
  bool read_frame_locked(FrameHeader& header, EnvelopeBody& body) REQUIRES(mu_);

  void disconnect_locked() REQUIRES(mu_);

  /// Composes one trace event into the rpc path's reused per-thread
  /// batch (flush() clears it after draining, so capacity persists).
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("amortized: appends into the reused thread-local rpc event batch; flush() clears it after draining, so capacity persists")
  void add_event(EventBatch& events, stats::EventType type, std::int64_t a,
                 std::int64_t b) const;

  /// Appends a composed batch to the shard. Must be called WITHOUT mu_
  /// held (rank kNetStats < kNet makes the inverse order a validator
  /// abort in ARU_LOCK_DEBUG builds).
  void flush(EventBatch& events) EXCLUDES(mu_, stats_mu_);

  bool stop_requested(const std::stop_token& st) const {
    return st.stop_requested() || ctx_.stopping.load(std::memory_order_relaxed);
  }

  RunContext& ctx_;
  const NodeId node_;
  const TransportConfig config_;
  const HelloMsg hello_;

  mutable util::Mutex mu_{util::LockRank::kNet, "net.transport"};
  TcpStream stream_ GUARDED_BY(mu_);
  /// Backoff state: consecutive failed attempts since the link was lost,
  /// the current backoff, and the earliest instant of the next attempt.
  std::int64_t failed_attempts_ GUARDED_BY(mu_) = 0;
  Nanos backoff_ GUARDED_BY(mu_){0};
  std::int64_t next_attempt_ns_ GUARDED_BY(mu_) = 0;
  bool had_session_ GUARDED_BY(mu_) = false;

  mutable util::Mutex stats_mu_{util::LockRank::kNetStats, "net.transport.stats"};
  stats::Shard* const shard_ PT_GUARDED_BY(stats_mu_);

  std::atomic<bool> connected_{false};
  std::atomic<std::int64_t> reconnects_{0};

  /// Live telemetry series (telemetry/registry.hpp), registered once in
  /// the constructor when the run carries a registry. Raw pointers into
  /// registry-owned storage; null when telemetry is absent (bare test
  /// fixtures). Increments are striped relaxed atomics — legal on the
  /// ARU_HOT_PATH rpc root.
  telemetry::Counter* met_tx_ = nullptr;          ///< aru_net_tx_bytes_total
  telemetry::Counter* met_rx_ = nullptr;          ///< aru_net_rx_bytes_total
  telemetry::Counter* met_reconnects_ = nullptr;  ///< aru_net_reconnects_total
  telemetry::Histogram* met_rpc_ = nullptr;       ///< aru_net_rpc_latency_ns
};

}  // namespace stampede::net
