/// \file transport.hpp
/// \brief Client-side connection manager: one logical link to a channel
///        server, with handshake, heartbeat-aware RPC, and bounded
///        exponential-backoff reconnect.
///
/// A Transport is *caller-driven*: it owns no background thread. Every
/// RPC — connect (with Hello/HelloAck handshake) if needed, send the
/// request frame, read frames until the expected reply type (heartbeats
/// are consumed as liveness) — runs on the calling task thread under one
/// `util::Mutex` of rank `kNet`. That keeps the whole net client inside
/// the lock-order validator and the -Wthread-safety analysis, and means a
/// stopped runtime has no orphan I/O threads to chase.
///
/// The RPC surface is zero-copy on both directions. A request is a stack
/// FrameBuf (header + envelope) plus an optional payload span sent
/// straight from the item's pooled slab via scatter-gather `send_vec` —
/// no staging vector. A reply's envelope lands in a stack EnvelopeBody;
/// when the reply carries a payload tail, the caller's PayloadSink is
/// handed the decoded-envelope bytes and must return the destination
/// span (typically a freshly acquired pooled buffer's mutable_data()),
/// into which the payload is received directly.
///
/// Reconnect policy: after a failed connect attempt the next attempt is
/// gated by an exponential backoff doubling from `backoff_initial` to at
/// most `backoff_max`. `wait_for_link` RPCs (gets) sleep through the gate
/// and retry; fail-fast RPCs (puts) return kDisconnected immediately so
/// the producer can drop the item and keep pacing. A successful handshake
/// after a previous session records a `kReconnect` trace event carrying
/// the failed-attempt count and the final backoff.
///
/// Pipelined puts (put_window > 0): `put_pipelined` assigns the put a
/// sequence number, parks the encoded frame + payload in a bounded
/// in-flight window, stages it in a SendBuffer (flushed on window-full,
/// buffer-full, or a small age bound — many envelopes and small payload
/// tails per sendmsg), and returns once queued. Coalesced `PutAckMsg`
/// frames (cumulative seq + credits + summary-STP) release window slots
/// and refresh the pacing feedback; the producer still paces against
/// summary-STP, it just learns it from the latest coalesced ack instead
/// of a per-item round trip. On reconnect the handshake advertises the
/// transport's random session id and resume seq, then the unacked window
/// tail is resent — the server suppresses duplicates by (session, seq),
/// preserving the channel's at-most-once semantics.
///
/// Trace events (kNetTx/kNetRx/kReconnect) are composed under `mu_` and
/// appended to the stats shard only after it is released, under a
/// dedicated mutex of rank `kNetStats` — ranked *below* kNet so flushing
/// while holding the transport lock is a runtime hierarchy violation,
/// exactly mirroring the Channel kBufferStats/kBuffer discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stop_token>
#include <string>
#include <vector>

#include "core/compress.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/context.hpp"
#include "stats/recorder.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::telemetry {
class Counter;
class Gauge;
class Histogram;
}  // namespace stampede::telemetry

namespace stampede::net {

struct TransportConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Budget for one TCP connect + handshake attempt.
  Nanos connect_timeout = millis(250);
  /// Per-frame send/receive budget. Must comfortably exceed the server's
  /// heartbeat interval: a live server emits *something* at least that
  /// often, so a full io_timeout of silence means the link is dead.
  Nanos io_timeout = seconds(1);
  /// Reconnect backoff bounds (attempt n waits min(initial·2ⁿ⁻¹, max)).
  Nanos backoff_initial = millis(10);
  Nanos backoff_max = millis(500);
  /// Pipelined put window: the maximum number of unacknowledged puts in
  /// flight on this link (further bounded by the credits the server
  /// advertises on coalesced acks). 0 selects the legacy synchronous
  /// one-RPC-per-put path. Only meaningful on producer links.
  std::size_t put_window = 64;
  /// Companion byte bound on the same window: unacknowledged payload
  /// bytes in flight. Small items fill all `put_window` slots; at
  /// frame-scale payloads this caps the working set of retained pooled
  /// slabs (sender, socket buffers, receiver materialize) to something
  /// cache-sized — an uncapped 64-slot window of 1 MiB frames holds
  /// 64 MiB of cold slabs and measures *slower* than the synchronous
  /// ping-pong that reuses one hot slab. A single put larger than the
  /// cap still goes out alone (the bound never starves the window below
  /// one in-flight put).
  std::size_t put_window_bytes = 4u << 20;
  /// How long a staged (encoded but unflushed) put frame may age in the
  /// send buffer before the next put forces a flush. Small enough that a
  /// steadily producing source never delays feedback noticeably; a tight
  /// producer loop amortizes many frames into one sendmsg within it.
  Nanos flush_interval = micros(200);
};

/// Supplies the destination buffer for an expected reply's payload tail.
/// Invoked (under the transport lock) after the reply envelope has been
/// received, with the decoded frame header and the raw envelope bytes;
/// must return a span of *exactly* `header.payload_len` bytes for the
/// payload to be received into, or an empty span to reject the frame
/// (which drops the connection — mid-frame there is no other recovery).
using PayloadSink = std::function<std::span<std::byte>(
    const FrameHeader& header, std::span<const std::byte> body)>;

class Transport {
 public:
  enum class RpcStatus : std::uint8_t {
    kOk,            ///< reply of the expected type received
    kDisconnected,  ///< no link (fail-fast mode) or link died mid-RPC
    kStopped,       ///< stop token fired / runtime stopping
  };

  /// \param ctx    run services (clock for timestamps and backoff sleeps).
  /// \param node   graph node the trace events are attributed to.
  /// \param hello  handshake sent on every (re)connect.
  /// \param shard  recorder shard owned by this transport.
  Transport(RunContext& ctx, NodeId node, TransportConfig config, HelloMsg hello,
            stats::Shard* shard);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Executes one request/reply exchange. `frame` is the encoded header +
  /// envelope; `payload` (possibly empty) is the request's payload tail,
  /// sent scatter-gather with the frame in one syscall — its length must
  /// equal the payload_len encoded in `frame`'s header. On kOk,
  /// `reply_body` holds the envelope of the first non-heartbeat reply
  /// frame, whose type matched `expect`; if that reply announced a
  /// payload tail, it has been received into the span `sink` returned
  /// (`sink` may be null for replies that never carry payload — a
  /// payload-bearing reply then drops the link).
  ///
  /// \param wait_for_link  true: block (through backoff/reconnect cycles)
  ///        until a link exists before sending — used by gets. false:
  ///        return kDisconnected at the first hurdle — used by puts.
  ///        Either way, once the request is sent the outcome is final:
  ///        a link death mid-RPC returns kDisconnected and the caller
  ///        decides whether to re-issue the (lost) request.
  ARU_HOT_PATH RpcStatus rpc(const FrameBuf& frame, std::span<const std::byte> payload,
                             MsgType expect, EnvelopeBody& reply_body,
                             const PayloadSink& sink, bool wait_for_link,
                             std::stop_token st) EXCLUDES(mu_, stats_mu_);

  /// Outcome of a pipelined (windowed) put.
  struct PutOutcome {
    RpcStatus status = RpcStatus::kDisconnected;
    bool closed = false;       ///< remote channel reported closed on an ack
    Nanos summary{0};          ///< latest coalesced-ack summary-STP (kUnknownStp before any)
  };

  /// Queues one put into the in-flight window and returns without waiting
  /// for its ack (config().put_window must be > 0). Assigns `msg.seq`,
  /// encodes the frame into a window slot, and stages it for a batched
  /// scatter/gather flush; `payload` must stay valid until acked, which
  /// `keepalive` guarantees (the item's shared_ptr). Blocks only when the
  /// window (or the server's advertised credits) is exhausted — then it
  /// flushes and reads coalesced acks until a slot frees, consuming
  /// heartbeats as liveness exactly like rpc(). kOk means queued (the
  /// window resends the unacked tail across reconnects); kDisconnected
  /// means the item was NOT queued (no link, fail-fast — caller drops it).
  ARU_HOT_PATH PutOutcome put_pipelined(PutMsg& msg, std::span<const std::byte> payload,
                                        std::shared_ptr<const void> keepalive,
                                        std::stop_token st) EXCLUDES(mu_, stats_mu_);

  /// Flushes staged put frames and blocks until every in-flight put is
  /// acked (or the link dies / stop fires). True when the window fully
  /// drained. For tests, benches, and orderly teardown.
  bool flush_puts(std::stop_token st) EXCLUDES(mu_, stats_mu_);

  /// Unacked pipelined puts currently in flight (diagnostics/tests).
  std::size_t puts_in_flight() const EXCLUDES(mu_);

  /// Drops the link (next rpc reconnects). Safe to call concurrently.
  void disconnect() EXCLUDES(mu_, stats_mu_);

  bool connected() const { return connected_.load(std::memory_order_relaxed); }

  /// Successful handshakes after the first (i.e. recoveries).
  std::int64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }

  const TransportConfig& config() const { return config_; }

 private:
  using EventBatch = std::vector<stats::Event>;

  /// Why a staged put batch left the send buffer (flush-reason counters).
  enum class FlushReason : std::uint8_t { kWindow, kBytes, kAge, kExplicit };

  /// One in-flight pipelined put: the encoded frame, the payload span it
  /// announces, and the shared_ptr that keeps the payload's slab alive
  /// until the cumulative ack passes its sequence number.
  struct WindowSlot {
    std::uint64_t seq = 0;
    FrameBuf frame;
    std::span<const std::byte> payload;
    std::shared_ptr<const void> keepalive;
  };

  /// Establishes the link if absent and due. Returns true when connected.
  bool ensure_connected_locked(EventBatch& events) REQUIRES(mu_);

  /// Sends frame+payload, then reads frames (skipping heartbeats) until
  /// one of type `expect` arrives; its payload tail (if any) is received
  /// via `sink`. Disconnects on any failure. The stop token is re-checked
  /// after every consumed heartbeat so a reply wait against a
  /// live-but-idle server (which heartbeats indefinitely) still honors
  /// shutdown; stop mid-RPC drops the link and returns kStopped.
  RpcStatus exchange_locked(const FrameBuf& frame, std::span<const std::byte> payload,
                            MsgType expect, EnvelopeBody& reply_body,
                            const PayloadSink& sink, EventBatch& events,
                            const std::stop_token& st) REQUIRES(mu_);

  /// Reads one frame's header + envelope (NOT its payload tail — that is
  /// the caller's job, via the header's payload_len). False (and
  /// disconnect) on any failure.
  bool read_frame_locked(FrameHeader& header, EnvelopeBody& body) REQUIRES(mu_);

  void disconnect_locked() REQUIRES(mu_);

  // -- pipelined-put window helpers -------------------------------------------

  std::size_t in_flight_locked() const REQUIRES(mu_) {
    return static_cast<std::size_t>(next_seq_ - 1 - cum_acked_);
  }

  /// Window bound for this instant: the configured window further limited
  /// by the server's advertised credits, but never below 1 — the server's
  /// backpressure wait (heartbeat-pumped try_put poll) guarantees progress
  /// for a single in-flight put even against a full bounded channel.
  std::size_t effective_window_locked() const REQUIRES(mu_);

  /// Applies one decoded coalesced ack: releases window slots up to
  /// cum_seq, refreshes credits / summary / closed.
  void apply_put_ack_locked(const PutAckMsg& ack) REQUIRES(mu_);

  /// Reads already-arrived frames without waiting (readable(0)-gated) and
  /// applies acks; heartbeats are consumed. False = link died.
  bool drain_acks_locked(EventBatch& events) REQUIRES(mu_);

  /// Blocks for one frame (ack or heartbeat). Sets *stopped when a stop
  /// request interrupted the wait; false = link died or stopped.
  bool read_ack_blocking_locked(const std::stop_token& st, EventBatch& events,
                                bool* stopped) REQUIRES(mu_);

  /// Sends the staged batch in one scatter/gather flush, recording the
  /// reason counter and the batch-size histogram. False = link died.
  bool flush_staged_locked(FlushReason reason, EventBatch& events) REQUIRES(mu_);

  /// Retransmits the unacked window tail after a fresh handshake (dup
  /// suppression on the server keeps this at-most-once). False = link died.
  bool resend_window_locked(EventBatch& events) REQUIRES(mu_);

  /// Composes one trace event into the rpc path's reused per-thread
  /// batch (flush() clears it after draining, so capacity persists).
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("amortized: appends into the reused thread-local rpc event batch; flush() clears it after draining, so capacity persists")
  void add_event(EventBatch& events, stats::EventType type, std::int64_t a,
                 std::int64_t b) const;

  /// Appends a composed batch to the shard. Must be called WITHOUT mu_
  /// held (rank kNetStats < kNet makes the inverse order a validator
  /// abort in ARU_LOCK_DEBUG builds).
  void flush(EventBatch& events) EXCLUDES(mu_, stats_mu_);

  bool stop_requested(const std::stop_token& st) const {
    return st.stop_requested() || ctx_.stopping.load(std::memory_order_relaxed);
  }

  RunContext& ctx_;
  const NodeId node_;
  const TransportConfig config_;
  const HelloMsg hello_;
  /// Random per-transport session id, advertised on every Hello so the
  /// server can tell a reconnect replay (same session, resent seqs) from
  /// a brand-new producer reusing the slot.
  const std::uint64_t session_;

  mutable util::Mutex mu_{util::LockRank::kNet, "net.transport"};
  TcpStream stream_ GUARDED_BY(mu_);
  /// Backoff state: consecutive failed attempts since the link was lost,
  /// the current backoff, and the earliest instant of the next attempt.
  std::int64_t failed_attempts_ GUARDED_BY(mu_) = 0;
  Nanos backoff_ GUARDED_BY(mu_){0};
  std::int64_t next_attempt_ns_ GUARDED_BY(mu_) = 0;
  bool had_session_ GUARDED_BY(mu_) = false;

  /// Pipelined-put window ring (empty when put_window == 0 or this is a
  /// consumer link). Slot for seq s lives at (s-1) % size; sequence
  /// numbers start at 1 (0 marks an unsequenced legacy/sync put on the
  /// wire). All preallocated in the constructor — the enqueue path only
  /// copies into slots.
  std::vector<WindowSlot> window_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::uint64_t cum_acked_ GUARDED_BY(mu_) = 0;
  /// Sum of payload bytes across unacked window slots (put_window_bytes
  /// enforcement): grows on enqueue, shrinks as coalesced acks release
  /// slots.
  std::size_t in_flight_bytes_ GUARDED_BY(mu_) = 0;
  /// Puts since the last opportunistic ack drain (kDrainEvery cadence).
  std::size_t puts_since_drain_ GUARDED_BY(mu_) = 0;
  std::uint32_t credits_ GUARDED_BY(mu_) = 0;
  bool remote_closed_ GUARDED_BY(mu_) = false;
  Nanos last_ack_summary_ GUARDED_BY(mu_) = aru::kUnknownStp;
  /// Reused coalesced-ack decode scratch (stp capacity persists).
  PutAckMsg ack_scratch_ GUARDED_BY(mu_);
  /// Staging buffer for batched put flushes; count + age of what is staged.
  SendBuffer sendbuf_ GUARDED_BY(mu_);
  std::size_t staged_frames_ GUARDED_BY(mu_) = 0;
  std::int64_t first_staged_ns_ GUARDED_BY(mu_) = 0;

  mutable util::Mutex stats_mu_{util::LockRank::kNetStats, "net.transport.stats"};
  stats::Shard* const shard_ PT_GUARDED_BY(stats_mu_);

  std::atomic<bool> connected_{false};
  std::atomic<std::int64_t> reconnects_{0};

  /// Live telemetry series (telemetry/registry.hpp), registered once in
  /// the constructor when the run carries a registry. Raw pointers into
  /// registry-owned storage; null when telemetry is absent (bare test
  /// fixtures). Increments are striped relaxed atomics — legal on the
  /// ARU_HOT_PATH rpc root.
  telemetry::Counter* met_tx_ = nullptr;          ///< aru_net_tx_bytes_total
  telemetry::Counter* met_rx_ = nullptr;          ///< aru_net_rx_bytes_total
  telemetry::Counter* met_reconnects_ = nullptr;  ///< aru_net_reconnects_total
  telemetry::Histogram* met_rpc_ = nullptr;       ///< aru_net_rpc_latency_ns
  /// Pipelined-put series (registered only when the window is enabled):
  /// window occupancy, one flush counter per reason, and frames-per-flush.
  telemetry::Gauge* met_window_ = nullptr;          ///< aru_net_put_window
  telemetry::Counter* met_flush_window_ = nullptr;  ///< aru_net_put_flush_total{reason=window}
  telemetry::Counter* met_flush_bytes_ = nullptr;   ///< …{reason=bytes}
  telemetry::Counter* met_flush_age_ = nullptr;     ///< …{reason=age}
  telemetry::Counter* met_flush_explicit_ = nullptr;  ///< …{reason=explicit}
  telemetry::Histogram* met_batch_ = nullptr;       ///< aru_net_put_batch_frames
};

}  // namespace stampede::net
