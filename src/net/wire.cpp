#include "net/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace stampede::net {
namespace {

/// Bounded little-endian writer over a FrameBuf. Variable-length fields
/// are validated against the same hard caps the decoders enforce: a
/// message that would be rejected by every peer (or whose length prefix
/// would truncate and desynchronize the frame) throws std::length_error
/// at the sender, where the bug is, instead of causing a silent connect
/// loop. The caps also guarantee a conforming envelope fits the buffer,
/// so the capacity check is a backstop, not a working limit.
class Writer {
 public:
  explicit Writer(FrameBuf& out) : out_(out) {}

  void u8(std::uint8_t v) {
    check(out_.len < out_.data.size(), "envelope exceeds kMaxEnvelopeBytes");
    out_.data[out_.len++] = std::byte{v};
  }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    check(s.size() <= kMaxNameBytes, "string exceeds kMaxNameBytes");
    check(out_.data.size() - out_.len >= 2 + s.size(),
          "envelope exceeds kMaxEnvelopeBytes");
    u16(static_cast<std::uint16_t>(s.size()));
    std::memcpy(out_.data.data() + out_.len, s.data(), s.size());
    out_.len += s.size();
  }

  void stp_vector(const std::vector<Nanos>& v) {
    check(v.size() <= kMaxStpSlots, "STP vector exceeds kMaxStpSlots");
    u16(static_cast<std::uint16_t>(v.size()));
    for (Nanos n : v) i64(n.count());
  }

  void item(const WireItem& it) {
    check(it.attrs.size() <= kMaxAttrs, "attr count exceeds kMaxAttrs");
    check(it.payload_bytes <= kMaxPayloadBytes, "payload exceeds kMaxPayloadBytes");
    i64(it.ts);
    u64(it.origin_id);
    i64(it.produce_cost_ns);
    u16(static_cast<std::uint16_t>(it.attrs.size()));
    for (const auto& [key, value] : it.attrs) {
      u32(key);
      i64(value);
    }
    u32(it.payload_bytes);
  }

 private:
  static void check(bool ok, const char* what) {
    if (!ok) throw std::length_error(std::string("net encode: ") + what);
  }

  FrameBuf& out_;
};

/// Bounds-checked little-endian reader. Every accessor returns false once
/// the cursor would pass the end; `fail()` latches so a single check after
/// a run of reads suffices.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> buf) : buf_(buf) {}

  bool u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }

  bool u16(std::uint16_t& v) {
    std::uint8_t lo = 0, hi = 0;
    if (!u8(lo) || !u8(hi)) return false;
    v = static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(hi) << 8));
    return true;
  }

  bool u32(std::uint32_t& v) {
    std::uint16_t lo = 0, hi = 0;
    if (!u16(lo) || !u16(hi)) return false;
    v = static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }

  bool u64(std::uint64_t& v) {
    std::uint32_t lo = 0, hi = 0;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }

  bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }

  bool boolean(bool& v) {
    std::uint8_t b = 0;
    if (!u8(b)) return false;
    if (b > 1) return set_err("bad bool encoding");
    v = b != 0;
    return true;
  }

  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("attach-time name field, capped at kMaxNameBytes; put/get envelopes carry no strings")
  bool str(std::string& s) {
    std::uint16_t len = 0;
    if (!u16(len)) return false;
    if (len > kMaxNameBytes) return set_err("string exceeds kMaxNameBytes");
    if (!need(len)) return false;
    s.assign(reinterpret_cast<const char*>(buf_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("decodes into the caller's reused vector, capped at kMaxStpSlots; capacity amortizes to zero allocations")
  bool stp_vector(std::vector<Nanos>& v) {
    std::uint16_t count = 0;
    if (!u16(count)) return false;
    if (count > kMaxStpSlots) return set_err("STP vector exceeds kMaxStpSlots");
    v.clear();
    v.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      std::int64_t ns = 0;
      if (!i64(ns)) return false;
      v.push_back(Nanos{ns});
    }
    return true;
  }

  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("decodes into the caller's reused WireItem, attrs capped at kMaxAttrs; capacity amortizes to zero allocations")
  bool item(WireItem& it) {
    std::uint16_t attr_count = 0;
    if (!i64(it.ts) || !u64(it.origin_id) || !i64(it.produce_cost_ns) ||
        !u16(attr_count)) {
      return false;
    }
    if (attr_count > kMaxAttrs) return set_err("attr count exceeds kMaxAttrs");
    it.attrs.clear();
    it.attrs.reserve(attr_count);
    for (std::uint16_t i = 0; i < attr_count; ++i) {
      std::uint32_t key = 0;
      std::int64_t value = 0;
      if (!u32(key) || !i64(value)) return false;
      it.attrs.emplace_back(key, value);
    }
    if (!u32(it.payload_bytes)) return false;
    if (it.payload_bytes > kMaxPayloadBytes) {
      return set_err("payload exceeds kMaxPayloadBytes");
    }
    return true;
  }

  /// Everything consumed and nothing failed: a complete, exact decode.
  bool done() const { return !failed_ && pos_ == buf_.size(); }

  const char* error() const {
    if (err_ != nullptr) return err_;
    if (failed_) return "truncated buffer";
    if (pos_ != buf_.size()) return "trailing bytes after message";
    return "ok";
  }

 private:
  bool need(std::size_t n) {
    if (failed_ || buf_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  bool set_err(const char* what) {
    failed_ = true;
    if (err_ == nullptr) err_ = what;
    return false;
  }

  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  const char* err_ = nullptr;
};

void make_frame_into(FrameBuf& frame, MsgType type, std::uint32_t payload_len,
                     const auto& write_body) {
  frame.len = 0;
  Writer header(frame);
  header.u32(kWireMagic);
  header.u32(0);  // envelope length patched below
  header.u8(kWireVersion);
  header.u8(static_cast<std::uint8_t>(type));
  header.u16(0);  // reserved
  header.u32(payload_len);
  Writer body(frame);
  write_body(body);
  const auto body_len = static_cast<std::uint32_t>(frame.len - kHeaderBytes);
  frame.data[4] = std::byte{static_cast<std::uint8_t>(body_len)};
  frame.data[5] = std::byte{static_cast<std::uint8_t>(body_len >> 8)};
  frame.data[6] = std::byte{static_cast<std::uint8_t>(body_len >> 16)};
  frame.data[7] = std::byte{static_cast<std::uint8_t>(body_len >> 24)};
}

FrameBuf make_frame(MsgType type, std::uint32_t payload_len, const auto& write_body) {
  FrameBuf frame;
  make_frame_into(frame, type, payload_len, write_body);
  return frame;
}

bool finish(const Reader& r, std::string* err) {
  if (r.done()) return true;
  if (err != nullptr) *err = r.error();
  return false;
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kPut: return "put";
    case MsgType::kPutAck: return "put_ack";
    case MsgType::kGet: return "get";
    case MsgType::kGetReply: return "get_reply";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kClose: return "close";
  }
  return "unknown";
}

FrameBuf encode(const HelloMsg& m) {
  return make_frame(MsgType::kHello, 0, [&](Writer& w) {
    w.str(m.channel);
    w.u32(static_cast<std::uint32_t>(m.producer_key));
    w.u32(static_cast<std::uint32_t>(m.consumer_key));
    w.u64(m.session);
    w.u64(m.start_seq);
  });
}

FrameBuf encode(const HelloAckMsg& m) {
  return make_frame(MsgType::kHelloAck, 0, [&](Writer& w) {
    w.u8(m.ok ? 1 : 0);
    w.str(m.message);
    w.u32(m.credits);
  });
}

FrameBuf encode(const PutMsg& m) {
  FrameBuf frame;
  encode_into(m, frame);
  return frame;
}

void encode_into(const PutMsg& m, FrameBuf& out) {
  make_frame_into(out, MsgType::kPut, m.item.payload_bytes, [&](Writer& w) {
    w.u64(m.seq);
    w.item(m.item);
    w.stp_vector(m.stp);
  });
}

FrameBuf encode(const PutAckMsg& m) {
  return make_frame(MsgType::kPutAck, 0, [&](Writer& w) {
    w.u8(m.stored ? 1 : 0);
    w.u8(m.closed ? 1 : 0);
    w.i64(m.summary.count());
    w.u64(m.cum_seq);
    w.u32(m.credits);
    w.stp_vector(m.stp);
  });
}

FrameBuf encode(const GetMsg& m) {
  return make_frame(MsgType::kGet, 0, [&](Writer& w) {
    w.i64(m.consumer_summary.count());
    w.i64(m.guarantee);
  });
}

FrameBuf encode(const GetReplyMsg& m) {
  const std::uint32_t payload_len = m.has_item ? m.item.payload_bytes : 0;
  return make_frame(MsgType::kGetReply, payload_len, [&](Writer& w) {
    w.u8(m.has_item ? 1 : 0);
    w.u8(m.closed ? 1 : 0);
    w.item(m.item);
    w.u32(static_cast<std::uint32_t>(m.skipped));
    w.i64(m.summary.count());
    w.stp_vector(m.stp);
  });
}

FrameBuf encode(const HeartbeatMsg& m) {
  return make_frame(MsgType::kHeartbeat, 0, [&](Writer& w) { w.i64(m.t_ns); });
}

FrameBuf encode_close() {
  return make_frame(MsgType::kClose, 0, [](Writer&) {});
}

bool decode_header(std::span<const std::byte> buf, FrameHeader& out, std::string* err) {
  Reader r(buf.first(buf.size() < kHeaderBytes ? buf.size() : kHeaderBytes));
  std::uint32_t magic = 0, body_len = 0, payload_len = 0;
  std::uint8_t version = 0, type = 0;
  std::uint16_t reserved = 0;
  if (!r.u32(magic) || !r.u32(body_len) || !r.u8(version) || !r.u8(type) ||
      !r.u16(reserved) || !r.u32(payload_len)) {
    if (err != nullptr) *err = "header truncated";
    return false;
  }
  if (magic != kWireMagic) {
    if (err != nullptr) *err = "bad magic";
    return false;
  }
  if (version != kWireVersion) {
    if (err != nullptr) *err = "unsupported wire version";
    return false;
  }
  if (!valid_type(type)) {
    if (err != nullptr) *err = "unknown message type";
    return false;
  }
  if (body_len > kMaxEnvelopeBytes) {
    if (err != nullptr) *err = "envelope exceeds kMaxEnvelopeBytes";
    return false;
  }
  if (payload_len > kMaxPayloadBytes) {
    if (err != nullptr) *err = "payload exceeds kMaxPayloadBytes";
    return false;
  }
  out.type = static_cast<MsgType>(type);
  out.body_len = body_len;
  out.payload_len = payload_len;
  return true;
}

bool decode(std::span<const std::byte> body, HelloMsg& out, std::string* err) {
  Reader r(body);
  std::uint32_t producer = 0, consumer = 0;
  if (r.str(out.channel) && r.u32(producer) && r.u32(consumer) &&
      r.u64(out.session) && r.u64(out.start_seq)) {
    out.producer_key = static_cast<std::int32_t>(producer);
    out.consumer_key = static_cast<std::int32_t>(consumer);
  }
  return finish(r, err);
}

bool decode(std::span<const std::byte> body, HelloAckMsg& out, std::string* err) {
  Reader r(body);
  if (r.boolean(out.ok) && r.str(out.message)) r.u32(out.credits);
  return finish(r, err);
}

bool decode(std::span<const std::byte> body, PutMsg& out, std::string* err) {
  Reader r(body);
  if (r.u64(out.seq) && r.item(out.item)) r.stp_vector(out.stp);
  return finish(r, err);
}

bool decode(std::span<const std::byte> body, PutAckMsg& out, std::string* err) {
  Reader r(body);
  std::int64_t summary_ns = 0;
  if (r.boolean(out.stored) && r.boolean(out.closed) && r.i64(summary_ns) &&
      r.u64(out.cum_seq) && r.u32(out.credits)) {
    out.summary = Nanos{summary_ns};
    r.stp_vector(out.stp);
  }
  return finish(r, err);
}

bool decode(std::span<const std::byte> body, GetMsg& out, std::string* err) {
  Reader r(body);
  std::int64_t summary_ns = 0;
  if (r.i64(summary_ns) && r.i64(out.guarantee)) {
    out.consumer_summary = Nanos{summary_ns};
  }
  return finish(r, err);
}

bool decode(std::span<const std::byte> body, GetReplyMsg& out, std::string* err) {
  Reader r(body);
  std::uint32_t skipped = 0;
  std::int64_t summary_ns = 0;
  if (r.boolean(out.has_item) && r.boolean(out.closed) && r.item(out.item) &&
      r.u32(skipped) && r.i64(summary_ns)) {
    out.skipped = static_cast<std::int32_t>(skipped);
    out.summary = Nanos{summary_ns};
    r.stp_vector(out.stp);
  }
  return finish(r, err);
}

bool decode(std::span<const std::byte> body, HeartbeatMsg& out, std::string* err) {
  Reader r(body);
  r.i64(out.t_ns);
  return finish(r, err);
}

}  // namespace stampede::net
