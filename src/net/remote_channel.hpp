/// \file remote_channel.hpp
/// \brief The two halves of a cross-process channel: the client-side
///        `RemoteChannel` proxy and the server-side `ChannelServer`
///        skeleton.
///
/// A pipeline spans processes by placing the real `Channel` in one process
/// and exporting it through a `ChannelServer`; peers in other processes
/// wire a `RemoteChannel` into their own `Runtime` via the same
/// `connect()` calls used for local buffers, so task bodies are oblivious
/// to the process boundary.
///
///   front process                         back process
///   ─────────────                         ────────────
///   digitizer ──put──▶ RemoteChannel ══TCP══▶ ChannelServer ──▶ Channel
///                        ◀── PutAck{summary-STP, backwardSTP} ──┘
///
/// Endpoint slots are agreed out of band: the server pre-registers
/// `remote_producers`/`remote_consumers` pseudo-nodes on the channel at
/// construction (graph wiring must finish before `Runtime::start`), and a
/// client claims slot k by sending `producer_key=k` / `consumer_key=k` in
/// its Hello. Reconnecting with the same key resumes the same consumer
/// cursor and feedback slot.
///
/// Failure semantics: see RemoteEndpoint (runtime/remote.hpp). The proxy
/// holds the last summary-STP received over the wire in an atomic, so a
/// producer paced by ARU keeps its period through an outage instead of
/// free-running into a doomed-to-drop frenzy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "runtime/remote.hpp"
#include "runtime/runtime.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::net {

// ---------------------------------------------------------------------------
// Client proxy
// ---------------------------------------------------------------------------

struct RemoteChannelConfig {
  /// Channel name as served by the remote ChannelServer.
  std::string name;
  /// Server address + connection tuning.
  TransportConfig transport;
  /// Producer slot claimed on the remote channel (-1 = this proxy never
  /// puts). Slots are 0..remote_producers-1 on the serving side.
  std::int32_t producer_key = -1;
  /// Consumer slot claimed on the remote channel (-1 = never gets).
  std::int32_t consumer_key = -1;
  /// Local virtual cluster node that received item copies are charged to.
  int cluster_node = 0;
};

class RemoteChannel final : public RemoteEndpoint {
 public:
  /// Registers the proxy as a graph node in `rt` (call before rt.start()).
  /// Connection establishment is lazy — construction never touches the
  /// network, so wiring order and server startup order are independent.
  RemoteChannel(Runtime& rt, RemoteChannelConfig config);

  /// Unregisters the live-telemetry /status section (the registry may
  /// outlive this proxy).
  ~RemoteChannel() override;

  // -- RemoteEndpoint ---------------------------------------------------------

  ARU_HOT_PATH PutResult put(std::shared_ptr<Item> item, std::stop_token st) override;
  ARU_HOT_PATH GetResult get_latest(Nanos consumer_summary, Timestamp guarantee,
                                    std::stop_token st) override;
  NodeId id() const override { return node_; }
  const std::string& name() const override { return config_.name; }

  /// Flushes staged pipelined puts and blocks until every in-flight put
  /// is acked (no-op on sync links). True when fully drained. Call before
  /// asserting on remote channel contents in tests, or at orderly
  /// producer teardown.
  bool drain_puts(std::stop_token st = {});

  // -- introspection (tests / diagnostics) ------------------------------------

  /// Last summary-STP received over the wire (kUnknownStp before any).
  /// This is the value producers pace against while the link is down.
  Nanos summary() const { return Nanos{summary_ns_.load(std::memory_order_relaxed)}; }

  /// Items dropped locally because the link was down.
  std::int64_t drops() const { return drops_.load(std::memory_order_relaxed); }

  /// Put-link recoveries (see Transport::reconnects).
  std::int64_t reconnects() const;

  bool connected() const;

 private:
  void hold_summary(Nanos summary);

  RunContext& ctx_;
  RemoteChannelConfig config_;
  NodeId node_ = kNoNode;

  /// Separate links (and trace shards) for the two directions, so a
  /// blocking get parked on the server never head-of-line-blocks puts.
  /// Each transport is driven by exactly one task thread (its shard's
  /// single writer): the producer owns put_link_, the consumer get_link_.
  std::unique_ptr<Transport> put_link_;
  std::unique_ptr<Transport> get_link_;
  stats::Shard* put_shard_ = nullptr;  ///< written only by the putting thread
  stats::Shard* get_shard_ = nullptr;  ///< written only by the getting thread

  std::atomic<std::int64_t> summary_ns_{aru::kUnknownStp.count()};
  std::atomic<std::int64_t> drops_{0};

  /// Handle of the "link:<name>" /status section (0 = none registered).
  std::uint64_t status_handle_ = 0;
};

// ---------------------------------------------------------------------------
// Server skeleton
// ---------------------------------------------------------------------------

/// One channel exported by a ChannelServer.
struct ServedChannel {
  Channel* channel = nullptr;
  /// Producer slots reserved for remote peers (Hello producer_key range).
  int remote_producers = 0;
  /// Consumer slots reserved for remote peers (Hello consumer_key range).
  int remote_consumers = 0;
};

struct ServerConfig {
  /// Local address to bind. Loopback-only by default; set to a concrete
  /// interface address (or "0.0.0.0" for all interfaces) to let off-host
  /// peers attach.
  std::string host = "127.0.0.1";
  /// TCP port to listen on; 0 picks an ephemeral port (read via port()).
  std::uint16_t port = 0;
  /// Idle/heartbeat cadence: while a connection has nothing to send, a
  /// heartbeat goes out at least this often so clients can tell a slow
  /// channel from a dead server.
  Nanos heartbeat_interval = millis(100);
  /// Poll period while a get waits for the channel to become ready.
  Nanos poll_interval = millis(1);
  /// Per-frame send/receive budget (mirror of TransportConfig::io_timeout).
  Nanos io_timeout = seconds(1);
};

/// Serves local channels to remote RemoteChannel proxies. One accept
/// thread plus one thread per live connection; connection threads drive
/// the channel with the peer's identity, so the channel-side feedback
/// fold, GC guarantees, and trace events all happen exactly as they would
/// for a local peer.
class ChannelServer {
 public:
  /// Registers remote producer/consumer pseudo-nodes on every served
  /// channel (must run during graph construction, before rt.start()).
  ChannelServer(Runtime& rt, std::vector<ServedChannel> channels,
                ServerConfig config = {});
  ~ChannelServer();

  ChannelServer(const ChannelServer&) = delete;
  ChannelServer& operator=(const ChannelServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Throws std::runtime_error
  /// if the port cannot be bound.
  void start() EXCLUDES(mu_);

  /// Closes the listener and all connections, joins all threads.
  /// Idempotent.
  void stop() EXCLUDES(mu_);

  /// Bound port (valid after start(); resolves port 0 to the ephemeral
  /// port actually bound).
  std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Connections accepted so far (diagnostics/tests).
  std::int64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }

 private:
  /// Per-producer-slot duplicate-suppression state (wire v3). A producer
  /// transport replays its unacked window tail after every reconnect; the
  /// server keeps the highest settled sequence per (slot, session) and
  /// skips anything at or below it, so replays are at-most-once on the
  /// channel. A new session (new transport instance reusing the slot)
  /// resets the watermark to its advertised start_seq - 1. Atomics because
  /// a dying connection's thread may still be draining while its
  /// replacement attaches.
  struct ProducerSeq {
    std::atomic<std::uint64_t> session{0};
    std::atomic<std::uint64_t> last_seq{0};
  };

  struct Served {
    Channel* channel = nullptr;
    /// producer_key → pseudo-node registered for that remote producer.
    std::vector<NodeId> producer_nodes;
    /// producer_key → dup-suppression watermark (size producer_nodes).
    std::unique_ptr<ProducerSeq[]> producer_seq;
    /// consumer_key → channel consumer index.
    std::vector<int> consumer_idx;
    /// Successful attaches per endpoint slot (producer keys first, then
    /// consumer keys). A second attach to a slot means the peer
    /// re-dialed — the server-side view of a link recovery.
    std::unique_ptr<std::atomic<std::int64_t>[]> slot_attaches;
    /// producer_key → live summary-STP gauge for that remote producer
    /// thread (the value piggy-backed on its put acks). Null entries when
    /// the runtime has no registry.
    std::vector<telemetry::Gauge*> producer_stp;
  };

  /// State shared between a connection thread and the accept loop's
  /// reaper. `done` is the thread's last store; once it reads true the
  /// thread writes nothing further, so joining is instant and the shard
  /// (if one was ever attached) is safe to hand to a new connection.
  struct ConnState {
    std::atomic<bool> done{false};
    stats::Shard* shard = nullptr;  ///< set once by the connection thread
  };

  /// One connection thread plus the state the reaper inspects.
  struct Conn {
    std::jthread thread;
    std::shared_ptr<ConnState> state;
  };

  void accept_loop(TcpListener listener, std::stop_token st);
  void serve_connection(TcpStream stream, ConnState& state, std::stop_token st);

  /// Handles one attached connection after a successful Hello. `shard` is
  /// owned by this connection's thread. Hot-path root: this loop serves
  /// every put ack and get reply, so the STP piggyback must not allocate.
  ARU_HOT_PATH void serve_attached(TcpStream& stream, const Served& served,
                                   const HelloMsg& hello, stats::Shard* shard,
                                   std::stop_token st);

  /// Joins and erases finished connection threads, returning their shards
  /// to the free pool. Runs on every accept-loop tick so reconnect churn
  /// (clients dying and re-dialing for hours) cannot accumulate exited
  /// threads or per-connection shards without bound.
  void reap_finished_locked() REQUIRES(mu_);

  /// Pops a recycled shard or allocates a fresh one.
  stats::Shard* acquire_shard() EXCLUDES(mu_);

  const Served* find(const std::string& name) const;

  Runtime& rt_;
  RunContext& ctx_;
  const ServerConfig config_;
  std::vector<Served> served_;

  /// Guards the lifecycle flags + connection-thread registry across
  /// start/stop and the accept loop (the listener itself is owned by the
  /// accept thread). Rank kNet: connection threads acquire channel locks
  /// (kBuffer) while serving, never the reverse.
  mutable util::Mutex mu_{util::LockRank::kNet, "net.server"};
  std::jthread accept_thread_ GUARDED_BY(mu_);
  std::vector<Conn> conns_ GUARDED_BY(mu_);
  /// Shards of reaped connections, reused by later connections (the old
  /// owner thread has exited, so single-writer discipline is preserved).
  std::vector<stats::Shard*> free_shards_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;

  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::int64_t> accepted_{0};

  /// Server-side connection series (null when the runtime has no live
  /// registry). Registered at construction, incremented on the cold
  /// attach path only.
  telemetry::Counter* met_connections_ = nullptr;
  telemetry::Counter* met_reconnects_ = nullptr;
  /// Puts settled per coalesced ack (1 = sync client / idle link).
  telemetry::Histogram* met_ack_coalesced_ = nullptr;
};

}  // namespace stampede::net
