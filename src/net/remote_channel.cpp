#include "net/remote_channel.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "runtime/item.hpp"
#include "util/log.hpp"

namespace stampede::net {
namespace {

/// Slice for the server's "anything to read?" poll; short enough that
/// stop requests and heartbeat deadlines are honored promptly.
constexpr Nanos kServeSlice = millis(20);
/// Accept-loop poll slice.
constexpr Nanos kAcceptSlice = millis(50);

/// Credits advertised for an unbounded channel: effectively "send at
/// will" (the client clamps to its own window size anyway).
constexpr std::uint32_t kUnboundedCredits = 1u << 16;

/// Ack-coalescing cap: even mid-burst, a cumulative ack goes out at
/// least every this many puts so the producer's window and credit view
/// keep advancing.
constexpr std::int64_t kMaxCoalescedPuts = 32;

/// Byte companion to kMaxCoalescedPuts: settle the pending ack once this
/// much payload has been consumed since the last one, even mid-burst. At
/// frame-scale payloads the count bound alone acks far too lazily — the
/// producer's byte-capped window fills and drains in lockstep with a
/// ~window-sized ack cycle instead of streaming; acking every ~1 MiB lets
/// the client top the window up while earlier frames are still in flight.
constexpr std::int64_t kAckCoalescedBytes = 1 << 20;

/// Fills the on-the-wire envelope of an item in place (callers reuse
/// their WireItem, so the attrs vector's capacity persists across
/// messages). The payload bytes are not copied anywhere: the frame
/// announces their size and the caller sends them scatter-gather
/// straight from the item's pooled slab.
ARU_ALLOCATES ARU_ANALYZE_ESCAPE("fills the caller's reused WireItem — attrs capacity persists across messages")
void to_wire(const Item& item, WireItem& wi) {
  wi.ts = item.ts();
  wi.origin_id = item.id();
  wi.produce_cost_ns = item.produce_cost().count();
  wi.attrs.clear();
  wi.attrs.push_back({kTagProducerNode, item.producer()});
  wi.attrs.push_back({kTagClusterNode, item.cluster_node()});
  wi.payload_bytes = static_cast<std::uint32_t>(item.bytes());
}

/// Resets a reused WireItem to the encoded-when-absent shape without
/// giving back the attrs vector's capacity.
void clear_wire_item(WireItem& wi) {
  wi.ts = kNoTimestamp;
  wi.origin_id = 0;
  wi.produce_cost_ns = 0;
  wi.attrs.clear();
  wi.payload_bytes = 0;
}

/// Appends into a reused message vector: after the first message on each
/// thread the capacity persists, so the append is allocation-free.
ARU_ALLOCATES ARU_ANALYZE_ESCAPE("amortized append into a reused message vector whose capacity persists across calls")
void append_nanos(std::vector<Nanos>& v, Nanos n) { v.push_back(n); }

/// Materializes a local Item replica for a received WireItem, accounting
/// the allocation in the trace exactly like TaskContext::make_item (the
/// Item constructor itself handles the memory tracker). The payload is
/// NOT filled in here: the caller receives the wire bytes directly into
/// item->mutable_data() — and if that receive fails, dropping the item
/// records a matching kFree, so the trace stays balanced either way.
ARU_ALLOCATES ARU_ANALYZE_ESCAPE("constructs the consumer-side Item replica (one shared_ptr control block per received item — the ownership handoff itself); its payload slab comes from the pool")
std::shared_ptr<Item> materialize(RunContext& ctx, const WireItem& wi, NodeId producer,
                                  int cluster_node, stats::Shard* shard) {
  auto item = std::make_shared<Item>(ctx, wi.ts, wi.payload_bytes, producer,
                                     cluster_node, std::vector<ItemId>{},
                                     Nanos{wi.produce_cost_ns});
  shard->record(stats::Event{.type = stats::EventType::kAlloc,
                             .node = producer,
                             .ts = wi.ts,
                             .item = item->id(),
                             .t = ctx.now_ns(),
                             .a = static_cast<std::int64_t>(wi.payload_bytes),
                             .b = cluster_node});
  shard->record_item(stats::ItemRecord{
      .id = item->id(),
      .ts = wi.ts,
      .bytes = static_cast<std::int64_t>(wi.payload_bytes),
      .producer = producer,
      .cluster_node = cluster_node,
      .t_alloc = item->t_alloc(),
      .produce_cost = wi.produce_cost_ns,
  });
  return item;
}

/// Reads one frame's header + envelope (server side; the payload tail, if
/// the header announces one, is the caller's to consume). False on any
/// failure; a non-kOk mid-frame leaves the stream desynchronized, so the
/// caller must drop the connection.
bool read_frame(TcpStream& stream, Nanos timeout, FrameHeader& header,
                EnvelopeBody& body) {
  std::array<std::byte, kHeaderBytes> raw;
  if (stream.recv_exact(raw, timeout) != IoStatus::kOk) return false;
  if (!decode_header(raw, header, nullptr)) return false;
  body.len = header.body_len;  // decode_header capped this at kMaxEnvelopeBytes
  return header.body_len == 0 ||
         stream.recv_exact(body.storage(header.body_len), timeout) == IoStatus::kOk;
}

}  // namespace

// ---------------------------------------------------------------------------
// RemoteChannel (client proxy)
// ---------------------------------------------------------------------------

RemoteChannel::RemoteChannel(Runtime& rt, RemoteChannelConfig config)
    : ctx_(rt.context()), config_(std::move(config)) {
  if (config_.name.size() > kMaxNameBytes) {
    throw std::invalid_argument("RemoteChannel: channel name exceeds kMaxNameBytes (" +
                                std::to_string(kMaxNameBytes) + "): '" + config_.name +
                                "'");
  }
  node_ = rt.add_remote_node(config_.name, NodeKind::kChannel);
  if (config_.producer_key >= 0) {
    put_shard_ = rt.recorder().new_shard();
    put_link_ = std::make_unique<Transport>(
        ctx_, node_, config_.transport,
        HelloMsg{.channel = config_.name, .producer_key = config_.producer_key},
        put_shard_);
  }
  if (config_.consumer_key >= 0) {
    get_shard_ = rt.recorder().new_shard();
    get_link_ = std::make_unique<Transport>(
        ctx_, node_, config_.transport,
        HelloMsg{.channel = config_.name, .consumer_key = config_.consumer_key},
        get_shard_);
  }
  if (ctx_.metrics != nullptr) {
    // Everything the callback reads is an atomic (transport flags, the
    // held summary, the drop counter), so evaluating it under the
    // registry mutex acquires nothing.
    status_handle_ = ctx_.metrics->add_status(
        "link:" + config_.name, [this]() -> std::string {
          const Nanos held = summary();
          std::string out = "{\"connected_put\":";
          out += put_link_ && put_link_->connected() ? "true" : "false";
          out += ",\"connected_get\":";
          out += get_link_ && get_link_->connected() ? "true" : "false";
          out += ",\"reconnects\":" + std::to_string(reconnects());
          out += ",\"summary_stp_ns\":" +
                 std::to_string(aru::known(held) ? held.count() : 0);
          out += ",\"drops\":" + std::to_string(drops()) + "}";
          return out;
        });
  }
}

RemoteChannel::~RemoteChannel() {
  if (status_handle_ != 0 && ctx_.metrics != nullptr) {
    ctx_.metrics->remove_status(status_handle_);
  }
}

void RemoteChannel::hold_summary(Nanos summary) {
  summary_ns_.store(summary.count(), std::memory_order_relaxed);
}

std::int64_t RemoteChannel::reconnects() const {
  std::int64_t n = 0;
  if (put_link_) n += put_link_->reconnects();
  if (get_link_) n += get_link_->reconnects();
  return n;
}

bool RemoteChannel::connected() const {
  return (put_link_ && put_link_->connected()) || (get_link_ && get_link_->connected());
}

RemoteEndpoint::PutResult RemoteChannel::put(std::shared_ptr<Item> item,
                                             std::stop_token st) {
  if (!put_link_) {
    throw std::logic_error("RemoteChannel::put: no producer_key configured");
  }
  if (!item) throw std::invalid_argument("RemoteChannel::put: null item");

  // Reused per-thread message scratch: encode() consumes it synchronously,
  // so it is free again before the next put on this thread. Keeps the
  // steady-state put path allocation-free (aru-analyze hot rule).
  static thread_local PutMsg msg;
  msg.seq = 0;  // the transport assigns it on the pipelined path
  msg.stp.clear();
  to_wire(*item, msg.item);
  const Nanos held = summary();
  if (aru::known(held)) append_nanos(msg.stp, held);

  if (config_.transport.put_window > 0) {
    // Pipelined path: queue into the transport's in-flight window and
    // return. "Stored" means queued — the window resends across
    // reconnects and the server dup-filters, so a queued item reaches the
    // channel at most once. Pacing feedback comes from the latest
    // coalesced ack instead of a per-item round trip.
    const auto out = put_link_->put_pipelined(msg, item->data(), item, st);
    if (out.status == Transport::RpcStatus::kOk) {
      if (aru::known(out.summary)) hold_summary(out.summary);
      return PutResult{.summary = aru::known(out.summary) ? out.summary : held,
                       .stored = true,
                       .closed = out.closed};
    }
    if (out.status == Transport::RpcStatus::kStopped) {
      return PutResult{.summary = held};
    }
    drops_.fetch_add(1, std::memory_order_relaxed);
    put_shard_->record(stats::Event{.type = stats::EventType::kDrop,
                                    .node = node_,
                                    .ts = item->ts(),
                                    .item = item->id(),
                                    .t = ctx_.now_ns(),
                                    .a = 1});
    return PutResult{.summary = held, .dropped = true, .closed = out.closed};
  }

  // Synchronous path (put_window == 0): one RPC per put. The payload goes
  // out scatter-gather with the envelope, straight from the item's pooled
  // slab (the shared_ptr keeps it alive for the send). A PutAck never
  // carries payload, so no sink.
  const FrameBuf frame = encode(msg);
  EnvelopeBody body;
  const auto status = put_link_->rpc(frame, item->data(), MsgType::kPutAck, body,
                                     /*sink=*/nullptr, /*wait_for_link=*/false, st);

  if (status == Transport::RpcStatus::kOk) {
    static thread_local PutAckMsg ack;  // decode() overwrites every field
    if (decode(body.span(), ack, nullptr)) {
      if (aru::known(ack.summary)) hold_summary(ack.summary);
      return PutResult{.summary = aru::known(ack.summary) ? ack.summary : held,
                       .stored = ack.stored,
                       .closed = ack.closed};
    }
    put_link_->disconnect();  // garbled ack: treat the link as dead
  }
  if (status == Transport::RpcStatus::kStopped) {
    return PutResult{.summary = held};
  }

  // Link down: account the item as a drop (dead on arrival — no put event
  // exists for it anywhere) and report the held summary-STP so the source
  // keeps pacing at the last known downstream rate instead of either
  // stalling or free-running.
  drops_.fetch_add(1, std::memory_order_relaxed);
  put_shard_->record(stats::Event{.type = stats::EventType::kDrop,
                                  .node = node_,
                                  .ts = item->ts(),
                                  .item = item->id(),
                                  .t = ctx_.now_ns(),
                                  .a = 1});
  return PutResult{.summary = held, .dropped = true};
}

bool RemoteChannel::drain_puts(std::stop_token st) {
  if (!put_link_ || config_.transport.put_window == 0) return true;
  return put_link_->flush_puts(std::move(st));
}

RemoteEndpoint::GetResult RemoteChannel::get_latest(Nanos consumer_summary,
                                                    Timestamp guarantee,
                                                    std::stop_token st) {
  if (!get_link_) {
    throw std::logic_error("RemoteChannel::get_latest: no consumer_key configured");
  }
  const Nanos t0 = ctx_.clock->now();
  const FrameBuf frame =
      encode(GetMsg{.consumer_summary = consumer_summary, .guarantee = guarantee});
  EnvelopeBody body;

  // Reused across retries and calls: decode() overwrites every field and
  // the stp vector's capacity persists, so the steady-state get path is
  // allocation-free apart from the materialized item itself.
  static thread_local GetReplyMsg reply;
  for (;;) {
    std::shared_ptr<Item> item;
    bool decoded = false;
    // Payload-bearing replies decode inside the sink so the wire bytes
    // land directly in a freshly acquired pooled buffer — the transport
    // receives into the span we return, no intermediate copy.
    const PayloadSink sink = [&](const FrameHeader& header,
                                 std::span<const std::byte> env) -> std::span<std::byte> {
      if (!decode(env, reply, nullptr)) return {};
      decoded = true;
      if (!reply.has_item || reply.item.payload_bytes != header.payload_len) return {};
      item = materialize(ctx_, reply.item, node_, config_.cluster_node, get_shard_);
      return item->mutable_data();
    };
    const auto status = get_link_->rpc(frame, {}, MsgType::kGetReply, body, sink,
                                       /*wait_for_link=*/true, st);
    if (status == Transport::RpcStatus::kStopped) break;
    if (status == Transport::RpcStatus::kDisconnected) continue;  // re-issue

    if (!decoded) {
      // No payload tail announced, so the sink never ran: decode the
      // envelope here. An item envelope claiming payload bytes the frame
      // did not carry is a protocol violation.
      if (!decode(body.span(), reply, nullptr) ||
          (reply.has_item && reply.item.payload_bytes != 0)) {
        get_link_->disconnect();
        continue;
      }
      if (reply.has_item) {
        item = materialize(ctx_, reply.item, node_, config_.cluster_node, get_shard_);
      }
    }
    if (aru::known(reply.summary)) hold_summary(reply.summary);
    if (!reply.has_item) {
      if (reply.closed) break;  // remote channel closed and drained
      continue;
    }
    return GetResult{.item = std::move(item),
                     .blocked = ctx_.clock->now() - t0,
                     .skipped = reply.skipped};
  }
  return GetResult{.item = nullptr, .blocked = ctx_.clock->now() - t0};
}

// ---------------------------------------------------------------------------
// ChannelServer (skeleton)
// ---------------------------------------------------------------------------

ChannelServer::ChannelServer(Runtime& rt, std::vector<ServedChannel> channels,
                             ServerConfig config)
    : rt_(rt), ctx_(rt.context()), config_(std::move(config)) {
  for (const ServedChannel& sc : channels) {
    if (sc.channel == nullptr) {
      throw std::invalid_argument("ChannelServer: null channel");
    }
    if (sc.channel->name().size() > kMaxNameBytes) {
      throw std::invalid_argument(
          "ChannelServer: channel name exceeds kMaxNameBytes (" +
          std::to_string(kMaxNameBytes) + "): '" + sc.channel->name() + "'");
    }
    Served s{.channel = sc.channel};
    s.slot_attaches = std::make_unique<std::atomic<std::int64_t>[]>(
        static_cast<std::size_t>(sc.remote_producers + sc.remote_consumers));
    s.producer_seq = std::make_unique<ProducerSeq[]>(
        static_cast<std::size_t>(sc.remote_producers));
    for (int p = 0; p < sc.remote_producers; ++p) {
      const NodeId n = rt_.add_remote_node(
          sc.channel->name() + ":remote_producer" + std::to_string(p),
          NodeKind::kThread);
      rt_.add_remote_edge(n, sc.channel->id());
      sc.channel->register_producer(n);
      s.producer_nodes.push_back(n);
    }
    for (int c = 0; c < sc.remote_consumers; ++c) {
      const NodeId n = rt_.add_remote_node(
          sc.channel->name() + ":remote_consumer" + std::to_string(c),
          NodeKind::kThread);
      rt_.add_remote_edge(sc.channel->id(), n);
      // Consumer placed on the channel's own cluster node: the simulated
      // transfer model stays out of the way — the real network is the
      // transfer now.
      s.consumer_idx.push_back(
          sc.channel->register_consumer(n, sc.channel->cluster_node()));
    }
    served_.push_back(std::move(s));
  }

  if (ctx_.metrics != nullptr) {
    // One label per server (joined channel names) so two servers in one
    // runtime stay distinct series; the client side of the same family
    // is labelled per link (Transport's {"link", ...}).
    std::string names;
    for (const Served& s : served_) {
      if (!names.empty()) names += ',';
      names += s.channel->name();
    }
    const telemetry::Registry::Labels labels = {{"server", names}};
    met_connections_ = &ctx_.metrics->counter(
        "aru_net_server_connections_total",
        "Connections that attached successfully (Hello acknowledged ok).",
        labels);
    met_reconnects_ = &ctx_.metrics->counter(
        "aru_net_reconnects_total",
        "Successful re-attaches to an endpoint slot already bound once "
        "(server-side link recoveries).",
        labels);
    static constexpr std::array<std::int64_t, 7> kCoalesceBounds = {1, 2, 4,  8,
                                                                    16, 32, 64};
    met_ack_coalesced_ = &ctx_.metrics->histogram(
        "aru_net_ack_coalesced_puts",
        "Puts settled by one coalesced put ack (1 = per-put acking).",
        kCoalesceBounds, labels);
    // Per-remote-producer summary-STP: the same series task threads
    // publish locally, labelled with the producer pseudo-node's name, so
    // a headless spd_node still exposes per-thread feedback values.
    for (Served& s : served_) {
      s.producer_stp.reserve(s.producer_nodes.size());
      for (std::size_t k = 0; k < s.producer_nodes.size(); ++k) {
        std::string task = s.channel->name();
        task += ":remote_producer";
        task += std::to_string(k);
        s.producer_stp.push_back(&ctx_.metrics->gauge(
            "aru_task_summary_stp_ns",
            "Summary-STP this thread node propagates upstream (0 = unknown)",
            {{"task", std::move(task)}}));
      }
    }
  }
}

ChannelServer::~ChannelServer() { stop(); }

const ChannelServer::Served* ChannelServer::find(const std::string& name) const {
  for (const Served& s : served_) {
    if (s.channel->name() == name) return &s;
  }
  return nullptr;
}

void ChannelServer::start() {
  std::string err;
  auto listener = TcpListener::listen(config_.host, config_.port, &err);
  if (!listener) throw std::runtime_error("ChannelServer: listen failed: " + err);

  const util::MutexLock lock(mu_);
  if (started_) throw std::logic_error("ChannelServer: start() called twice");
  started_ = true;
  port_.store(listener->port(), std::memory_order_release);
  accept_thread_ = std::jthread(
      [this, l = std::make_shared<TcpListener>(std::move(*listener))](
          std::stop_token st) { accept_loop(std::move(*l), st); });
}

void ChannelServer::stop() {
  std::jthread accept;
  std::vector<Conn> conns;
  {
    const util::MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    accept = std::move(accept_thread_);
    conns = std::move(conns_);
  }
  accept.request_stop();
  for (auto& c : conns) c.thread.request_stop();
  if (accept.joinable()) accept.join();
  for (auto& c : conns) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void ChannelServer::reap_finished_locked() {
  std::erase_if(conns_, [&](Conn& c) {
    if (!c.state->done.load(std::memory_order_acquire)) return false;
    if (c.thread.joinable()) c.thread.join();  // finished: joins immediately
    if (c.state->shard != nullptr) free_shards_.push_back(c.state->shard);
    return true;
  });
}

stats::Shard* ChannelServer::acquire_shard() {
  {
    const util::MutexLock lock(mu_);
    if (!free_shards_.empty()) {
      stats::Shard* shard = free_shards_.back();
      free_shards_.pop_back();
      return shard;
    }
  }
  return rt_.recorder().new_shard();
}

void ChannelServer::accept_loop(TcpListener listener, std::stop_token st) {
  while (!st.stop_requested()) {
    auto stream = listener.accept(kAcceptSlice);
    const util::MutexLock lock(mu_);
    if (stopped_) break;  // any pending connection dropped by Socket destructor
    reap_finished_locked();
    if (!stream) continue;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<ConnState>();
    conns_.push_back(Conn{
        .thread = std::jthread(
            [this, state, s = std::make_shared<TcpStream>(std::move(*stream))](
                std::stop_token cst) {
              serve_connection(std::move(*s), *state, cst);
              state->done.store(true, std::memory_order_release);
            }),
        .state = state});
  }
}

void ChannelServer::serve_connection(TcpStream stream, ConnState& state,
                                     std::stop_token st) {
  // Attach: first frame must be a Hello naming a served channel and
  // claiming valid endpoint slots. A Hello never carries payload.
  FrameHeader header{};
  EnvelopeBody body;
  if (!read_frame(stream, config_.io_timeout, header, body) ||
      header.type != MsgType::kHello || header.payload_len != 0) {
    return;
  }
  HelloMsg hello;
  if (!decode(body.span(), hello, nullptr)) return;

  const Served* served = find(hello.channel);
  HelloAckMsg ack;
  if (served == nullptr) {
    ack.message = "unknown channel '" + hello.channel + "'";
  } else if (hello.producer_key >= 0 &&
             hello.producer_key >= static_cast<std::int32_t>(served->producer_nodes.size())) {
    ack.message = "producer_key out of range";
  } else if (hello.consumer_key >= 0 &&
             hello.consumer_key >= static_cast<std::int32_t>(served->consumer_idx.size())) {
    ack.message = "consumer_key out of range";
  } else {
    ack.ok = true;
    // Advertise the channel's current slack so a pipelined producer can
    // open its window immediately instead of trickling until the first
    // coalesced ack refreshes the credit view.
    const std::size_t cap = served->channel->capacity();
    const std::size_t size = served->channel->size();
    ack.credits = cap == 0              ? kUnboundedCredits
                  : cap > size          ? static_cast<std::uint32_t>(cap - size)
                                        : 0;
  }
  if (stream.send_all(encode(ack).span(), config_.io_timeout) != IoStatus::kOk) return;
  if (!ack.ok) {
    STAMPEDE_LOG(kWarn) << "net.server: rejected hello: " << ack.message;
    return;
  }

  if (met_connections_ != nullptr) met_connections_->add();
  if (hello.producer_key >= 0 || hello.consumer_key >= 0) {
    const std::size_t slot =
        hello.producer_key >= 0
            ? static_cast<std::size_t>(hello.producer_key)
            : served->producer_nodes.size() +
                  static_cast<std::size_t>(hello.consumer_key);
    if (served->slot_attaches[slot].fetch_add(1, std::memory_order_relaxed) > 0 &&
        met_reconnects_ != nullptr) {
      met_reconnects_->add();
    }
  }

  stats::Shard* shard = acquire_shard();
  state.shard = shard;  // published to the reaper by the done flag
  serve_attached(stream, *served, hello, shard, st);
}

void ChannelServer::serve_attached(TcpStream& stream, const Served& served,
                                   const HelloMsg& hello, stats::Shard* shard,
                                   std::stop_token st) {
  Channel& channel = *served.channel;
  const NodeId chan_node = channel.id();
  std::int64_t last_tx = ctx_.now_ns();

  // Buffered I/O (wire v3): inbound bursts are decoded straight out of
  // `in` — one recv refills it with however many frames the kernel has
  // queued, so a pipelined producer costs nowhere near a syscall per
  // message. Outbound frames leave through `out.flush_with`: envelope from
  // the stack, payload (when present) zero-copy from the served item's
  // pooled slab, one sendmsg per reply.
  SendBuffer out;
  RecvBuffer in;

  auto send_frame = [&](const FrameBuf& frame, std::span<const std::byte> payload,
                        MsgType type) {
    if (out.flush_with(stream, frame.span(), payload, config_.io_timeout) !=
        IoStatus::kOk) {
      return false;
    }
    last_tx = ctx_.now_ns();
    shard->record(stats::Event{
        .type = stats::EventType::kNetTx,
        .node = chan_node,
        .t = last_tx,
        .a = static_cast<std::int64_t>(frame.len + payload.size()),
        .b = static_cast<std::int64_t>(type)});
    return true;
  };
  auto heartbeat_if_due = [&] {
    if (Nanos{ctx_.now_ns() - last_tx} < config_.heartbeat_interval) return true;
    return send_frame(encode(HeartbeatMsg{.t_ns = ctx_.now_ns()}), {},
                      MsgType::kHeartbeat);
  };

  // Receives a put's payload tail: buffered bytes first, then readv with
  // the decode buffer's free tail as the second iovec — the payload read
  // prefetches the frames behind it instead of leaving them for another
  // syscall.
  auto read_payload = [&](std::span<std::byte> dest) -> bool {
    const std::size_t take = std::min(in.buffered(), dest.size());
    if (take > 0) {
      std::memcpy(dest.data(), in.view().data(), take);
      in.consume(take);
    }
    std::size_t got = take;
    while (got < dest.size()) {
      const std::array<std::span<std::byte>, 2> bufs = {dest.subspan(got), in.tail()};
      std::size_t n = 0;
      if (stream.recv_vec(bufs, &n, config_.io_timeout) != IoStatus::kOk) return false;
      const std::size_t to_dest = std::min(n, dest.size() - got);
      got += to_dest;
      if (n > to_dest) in.commit(n - to_dest);
    }
    return true;
  };

  // Duplicate-suppression watermark for this producer slot. A fresh
  // session (new transport instance) resets it to start_seq - 1; a
  // reconnect of the same session keeps it, so replayed window tails are
  // settled-but-skipped.
  ProducerSeq* pseq =
      hello.producer_key >= 0
          ? &served.producer_seq[static_cast<std::size_t>(hello.producer_key)]
          : nullptr;
  if (pseq != nullptr && pseq->session.load(std::memory_order_relaxed) != hello.session) {
    pseq->session.store(hello.session, std::memory_order_relaxed);
    pseq->last_seq.store(hello.start_seq == 0 ? 0 : hello.start_seq - 1,
                         std::memory_order_relaxed);
  }

  // Coalesced-ack state: one PutAckMsg settles every put processed since
  // the last ack (cumulative seq + credits + summary-STP). Emitted when a
  // burst drains, before blocking on backpressure, and at least every
  // kMaxCoalescedPuts so the client's window keeps advancing mid-burst.
  bool ack_pending = false;
  std::int64_t puts_since_ack = 0;
  std::int64_t bytes_since_ack = 0;
  bool last_stored = false;
  Nanos last_summary = channel.summary();

  // Reused per-connection message scratch: decode() and the assignments
  // below overwrite every field, and the stp/attrs vector capacities
  // persist across frames, so the steady-state serve loop — every put ack
  // and get reply, STP piggyback included — is allocation-free apart from
  // materializing received items (aru-analyze hot rule).
  PutMsg put_msg;
  PutAckMsg put_ack;
  GetMsg get_msg;
  GetReplyMsg get_reply;

  auto credits_of = [&]() -> std::uint32_t {
    const std::size_t cap = channel.capacity();
    if (cap == 0) return kUnboundedCredits;
    const std::size_t size = channel.size();
    return cap > size ? static_cast<std::uint32_t>(cap - size) : 0;
  };

  auto emit_put_ack = [&]() -> bool {
    if (!ack_pending) return true;
    put_ack.stored = last_stored;
    put_ack.closed = channel.closed();
    put_ack.summary = last_summary;
    put_ack.cum_seq = pseq != nullptr ? pseq->last_seq.load(std::memory_order_relaxed) : 0;
    put_ack.credits = credits_of();
    channel.backward_stp_into(put_ack.stp);
    if (!served.producer_stp.empty()) {
      served.producer_stp[static_cast<std::size_t>(hello.producer_key)]->set(
          put_ack.summary.count());
    }
    if (met_ack_coalesced_ != nullptr) met_ack_coalesced_->observe(puts_since_ack);
    ack_pending = false;
    puts_since_ack = 0;
    bytes_since_ack = 0;
    return send_frame(encode(put_ack), {}, MsgType::kPutAck);
  };

  while (!st.stop_requested()) {
    if (in.buffered() < kHeaderBytes) {
      // Between frames. If nothing more is in the kernel buffer the burst
      // is over: settle it with one coalesced ack, then wait for data.
      if (!stream.readable(Nanos{0})) {
        if (!emit_put_ack()) return;
        if (!stream.readable(kServeSlice)) {
          if (stream.peer_hup() || !heartbeat_if_due()) return;
          continue;
        }
      }
      if (in.fill(stream, config_.io_timeout) != IoStatus::kOk) return;
      continue;
    }
    FrameHeader header{};
    if (!decode_header(in.view().first(kHeaderBytes), header, nullptr)) return;
    const std::size_t frame_bytes = kHeaderBytes + header.body_len;
    while (in.buffered() < frame_bytes) {
      if (in.fill(stream, config_.io_timeout) != IoStatus::kOk) return;
    }
    if (header.payload_len != 0 && header.type != MsgType::kPut) {
      return;  // protocol violation: only puts carry payload client→server
    }
    shard->record(stats::Event{
        .type = stats::EventType::kNetRx,
        .node = chan_node,
        .t = ctx_.now_ns(),
        .a = static_cast<std::int64_t>(kHeaderBytes + header.body_len +
                                       header.payload_len),
        .b = static_cast<std::int64_t>(header.type)});
    const std::span<const std::byte> body =
        in.view().subspan(kHeaderBytes, header.body_len);

    switch (header.type) {
      case MsgType::kPut: {
        if (hello.producer_key < 0) return;  // protocol violation
        if (!decode(body, put_msg, nullptr)) return;
        in.consume(frame_bytes);  // payload tail is next in the buffer
        if (put_msg.item.payload_bytes != header.payload_len) return;  // lengths disagree
        // Materialize first, then receive the payload tail directly into
        // the pooled slab — the frame-sized staging vector is gone.
        auto item = materialize(
            ctx_, put_msg.item,
            served.producer_nodes[static_cast<std::size_t>(hello.producer_key)],
            channel.cluster_node(), shard);
        if (header.payload_len > 0 && !read_payload(item->mutable_data())) return;
        const bool duplicate =
            put_msg.seq != 0 && pseq != nullptr &&
            put_msg.seq <= pseq->last_seq.load(std::memory_order_relaxed);
        if (duplicate) {
          // Reconnect replay of a put this channel already stored: the
          // payload is consumed (stream stays in sync), the materialized
          // replica is dropped (its alloc/free trace stays balanced), and
          // the cumulative ack settles it again. At-most-once holds.
          ack_pending = true;
          ++puts_since_ack;
          last_stored = true;
        } else {
          // Wait out a full bounded channel here (not in the channel):
          // heartbeats must keep flowing while backpressure holds the ack,
          // and everything already settled is acked *before* blocking so
          // the producer's window can keep advancing.
          std::optional<Channel::PutResult> res;
          while (!(res = channel.try_put(item))) {
            if (!emit_put_ack()) return;
            if (st.stop_requested() || stream.peer_hup() || !heartbeat_if_due()) return;
            ctx_.clock->sleep_for(config_.poll_interval);
          }
          last_stored = res->stored;
          last_summary = res->channel_summary;
          if (put_msg.seq != 0 && pseq != nullptr) {
            pseq->last_seq.store(put_msg.seq, std::memory_order_relaxed);
          }
          ack_pending = true;
          ++puts_since_ack;
        }
        bytes_since_ack += static_cast<std::int64_t>(header.payload_len);
        if ((puts_since_ack >= kMaxCoalescedPuts ||
             bytes_since_ack >= kAckCoalescedBytes) &&
            !emit_put_ack()) {
          return;
        }
        break;
      }
      case MsgType::kGet: {
        if (hello.consumer_key < 0) return;
        if (!decode(body, get_msg, nullptr)) return;
        in.consume(frame_bytes);
        // A connection holding both keys must see its puts settled before
        // the reply (reads-own-writes across one link).
        if (!emit_put_ack()) return;
        const int idx = served.consumer_idx[static_cast<std::size_t>(hello.consumer_key)];
        // Block here (not in the channel) so heartbeats keep flowing and a
        // vanished peer is noticed while we wait for data.
        while (!channel.ready(idx)) {
          if (st.stop_requested() || stream.peer_hup() || !heartbeat_if_due()) return;
          ctx_.clock->sleep_for(config_.poll_interval);
        }
        auto res = channel.get_latest(idx, get_msg.consumer_summary, get_msg.guarantee, st);
        get_reply.has_item = res.item != nullptr;
        get_reply.closed = channel.closed();
        get_reply.skipped = res.skipped;
        get_reply.summary = channel.summary();
        channel.backward_stp_into(get_reply.stp);
        if (res.item) {
          to_wire(*res.item, get_reply.item);
        } else {
          clear_wire_item(get_reply.item);  // the frame encodes it either way
        }
        // The shared_ptr in `res` keeps the payload slab alive (and
        // un-recycled) for the duration of the scatter-gather send even if
        // the channel overwrites the slot concurrently.
        const std::span<const std::byte> payload =
            res.item ? res.item->data() : std::span<const std::byte>{};
        if (!send_frame(encode(get_reply), payload, MsgType::kGetReply)) return;
        break;
      }
      case MsgType::kClose:
        emit_put_ack();  // settle the tail of the burst before goodbye
        return;
      case MsgType::kHeartbeat:
        in.consume(frame_bytes);
        break;  // liveness only
      default:
        return;  // protocol violation
    }
  }
}

}  // namespace stampede::net
