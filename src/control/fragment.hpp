/// \file fragment.hpp
/// \brief Builds one node's slice of a manifest-deployed pipeline into a
///        local Runtime.
///
/// Every worker parses the *full* manifest and derives its own fragment:
/// local channels become real `Channel`s (exported through one
/// `ChannelServer` on the node's fixed endpoint when any peer is
/// remote), remote channels become `RemoteChannel` proxies dialing the
/// hosting node's endpoint. Endpoint slots are agreed without any
/// runtime handshake: both sides walk the spec's task list in
/// declaration order, so the k-th remote producer of a channel computes
/// the same k everywhere (see remote_slots()).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/manifest.hpp"
#include "net/remote_channel.hpp"
#include "runtime/runtime.hpp"

namespace stampede::control {

/// Deterministic endpoint-slot assignment for one channel: element i of
/// `producers` is the task claiming producer_key=i (tasks placed off the
/// channel's node, in spec declaration order); likewise `consumers`.
struct ChannelSlots {
  std::vector<std::string> producers;
  std::vector<std::string> consumers;
};

ChannelSlots remote_slots(const Manifest& m, const PipelineSpec& spec,
                          const std::string& channel);

/// One node's slice of a deployment. Proxies and the server are owned
/// here (the Runtime holds non-owning graph references); keep the
/// fragment alive until after Runtime::stop().
struct Fragment {
  /// Names of the channels hosted locally (in spec order).
  std::vector<std::string> channels;
  /// Names of the tasks running locally (in spec order).
  std::vector<std::string> tasks;
  std::vector<std::unique_ptr<net::RemoteChannel>> proxies;
  /// Non-null when any local channel has a remote producer or consumer.
  /// Constructed but not started: call server->start() after rt.start().
  std::unique_ptr<net::ChannelServer> server;
  std::shared_ptr<void> state;
};

/// Builds `node`'s fragment into `rt`. The manifest must have passed
/// validate(). Throws std::invalid_argument for an unknown node name.
/// Call before rt.start(); the node's server (if any) binds on
/// server->start().
Fragment build_fragment(Runtime& rt, const Manifest& m, const PipelineSpec& spec,
                        const std::string& node);

}  // namespace stampede::control
