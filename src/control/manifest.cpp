#include "control/manifest.hpp"

#include <stdexcept>

namespace stampede::control {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("manifest: " + what);
}

constexpr const char* kNodePrefix = "node.";
constexpr const char* kPlacePrefix = "place.";

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& text, const std::string& what) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    throw std::invalid_argument("manifest: " + what + ": expected host:port, got '" +
                                text + "'");
  }
  Endpoint ep;
  ep.host = text.substr(0, colon);
  long port = 0;
  try {
    std::size_t used = 0;
    port = std::stol(text.substr(colon + 1), &used);
    if (used != text.size() - colon - 1) throw std::invalid_argument("junk");
  } catch (const std::exception&) {
    throw std::invalid_argument("manifest: " + what + ": bad port in '" + text + "'");
  }
  if (port <= 0 || port > 65535) {
    throw std::invalid_argument("manifest: " + what + ": port must be 1..65535 (got " +
                                std::to_string(port) +
                                "; ephemeral ports cannot survive a worker restart)");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

Manifest Manifest::parse(const Options& opts) {
  Manifest m;
  m.raw = opts;
  m.pipeline = opts.get_string("pipeline", "");
  if (m.pipeline.empty()) bad("missing required key 'pipeline='");
  m.params = PipelineParams::from_options(opts);

  for (const std::string& key : opts.keys()) {
    if (has_prefix(key, kNodePrefix)) {
      ManifestNode node;
      node.name = key.substr(std::string(kNodePrefix).size());
      if (node.name.empty()) bad("empty node name in '" + key + "='");
      node.endpoint = Endpoint::parse(opts.get_string(key, ""), key);
      node.index = static_cast<cluster::NodeIndex>(m.nodes.size());
      m.nodes.push_back(std::move(node));
    } else if (has_prefix(key, kPlacePrefix)) {
      const std::string entity = key.substr(std::string(kPlacePrefix).size());
      if (entity.empty()) bad("empty placement target in '" + key + "='");
      const std::string node = opts.get_string(key, "");
      if (node.empty()) bad(key + "= has no node name");
      // Task vs channel is resolved in validate() against the spec; store
      // in both maps and let validation move it to the right one.
      m.task_node[entity] = node;
    }
  }
  if (m.nodes.empty()) bad("no nodes declared (need at least one node.<name>=host:port)");
  return m;
}

Manifest Manifest::load(const std::string& path) {
  return parse(Options::parse_file(path));
}

const ManifestNode* Manifest::find(const std::string& node) const {
  for (const ManifestNode& n : nodes) {
    if (n.name == node) return &n;
  }
  return nullptr;
}

const ManifestNode& Manifest::channel_host(const std::string& channel) const {
  const auto it = channel_node.find(channel);
  if (it == channel_node.end()) bad("channel '" + channel + "' has no placement");
  const ManifestNode* node = find(it->second);
  if (!node) bad("channel '" + channel + "' placed on unknown node '" + it->second + "'");
  return *node;
}

cluster::Topology validate(Manifest& m, const PipelineSpec& spec) {
  if (m.pipeline != spec.name) {
    bad("manifest pipeline '" + m.pipeline + "' validated against spec '" + spec.name +
        "'");
  }

  // Node endpoints must be distinct: two workers cannot bind one port.
  for (std::size_t i = 0; i < m.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < m.nodes.size(); ++j) {
      if (m.nodes[i].name == m.nodes[j].name) {
        bad("duplicate node name '" + m.nodes[i].name + "'");
      }
      if (m.nodes[i].endpoint.host == m.nodes[j].endpoint.host &&
          m.nodes[i].endpoint.port == m.nodes[j].endpoint.port) {
        bad("nodes '" + m.nodes[i].name + "' and '" + m.nodes[j].name +
            "' share endpoint " + m.nodes[i].endpoint.host + ":" +
            std::to_string(m.nodes[i].endpoint.port));
      }
    }
  }

  // Split the raw placements into tasks and channels against the spec.
  // parse() stored everything in task_node; rebuild both maps here.
  std::map<std::string, std::string> tasks;
  std::map<std::string, std::string> channels;
  for (const auto& [entity, node] : m.task_node) {
    if (!m.find(node)) {
      bad("'" + entity + "' placed on unknown node '" + node + "'");
    }
    if (spec.find_task(entity)) {
      tasks[entity] = node;
    } else if (spec.has_channel(entity)) {
      channels[entity] = node;
    } else {
      bad("place." + entity + "=: pipeline '" + spec.name + "' has no task or channel '" +
          entity + "'");
    }
  }
  for (const PipelineSpec::Task& t : spec.tasks) {
    if (!tasks.count(t.name)) bad("task '" + t.name + "' has no placement");
  }
  for (const std::string& c : spec.channels) {
    if (!channels.count(c)) bad("channel '" + c + "' has no placement");
  }

  // Placement indices must be valid in the topology the deployment
  // models: a uniform cluster over the manifest's nodes with the paper's
  // gigabit links.
  const cluster::Topology topo = cluster::Topology::uniform(
      static_cast<int>(m.nodes.size()), cluster::Topology::gigabit_link());
  for (const ManifestNode& n : m.nodes) {
    if (!topo.valid(n.index)) {
      bad("node '" + n.name + "' index " + std::to_string(n.index) +
          " is outside the topology");
    }
  }

  // Publish the resolved split back into the manifest.
  m.task_node = std::move(tasks);
  m.channel_node = std::move(channels);
  return topo;
}

}  // namespace stampede::control
