/// \file manifest.hpp
/// \brief Pipeline deployment manifests: which pipeline, on which nodes,
///        with what placement.
///
/// A manifest is a util::Options file (key=value lines, `#` comments,
/// quoted values):
///
///   # Fig. 5 tracker on three nodes
///   pipeline=tracker            # a registered PipelineSpec name
///   aru=min seed=42 scale=1.0   # PipelineParams (any on its own line)
///
///   node.front=127.0.0.1:17641  # node name -> channel-server endpoint
///   node.mid=127.0.0.1:17642
///   node.back=127.0.0.1:17643
///
///   place.digitizer=front       # every task and channel -> a node name
///   place.frames=mid
///   ...
///
/// Endpoints are *fixed* (port 0 is rejected): a restarted worker must
/// rebind the same port so surviving peers' Transport reconnect finds it
/// again — that is what makes supervisor restarts self-healing.
///
/// `validate()` checks a parsed manifest against the pipeline's
/// structure (every task and channel placed exactly once, nodes known,
/// no two nodes sharing an endpoint) and against a cluster::Topology
/// built from the node list, so placement indices are valid cluster
/// node indices.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "control/pipelines.hpp"
#include "util/options.hpp"

namespace stampede::control {

/// A `host:port` channel-server endpoint.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  /// Parses "host:port"; throws std::invalid_argument on malformed input
  /// or port 0 (manifest endpoints must be rebindable after a restart).
  static Endpoint parse(const std::string& text, const std::string& what);
};

/// One named node of a deployment.
struct ManifestNode {
  std::string name;
  Endpoint endpoint;
  /// Index into the manifest's topology (declaration order).
  cluster::NodeIndex index = 0;
};

/// A parsed deployment manifest.
struct Manifest {
  std::string pipeline;
  PipelineParams params;
  /// Nodes in declaration order (index i has NodeIndex i).
  std::vector<ManifestNode> nodes;
  /// task name -> node name.
  std::map<std::string, std::string> task_node;
  /// channel name -> node name.
  std::map<std::string, std::string> channel_node;
  /// The raw option set (params + placement + anything extra), kept so
  /// callers can read deployment-specific keys (seconds=, conv=, ...).
  Options raw;

  /// Parses an option set into a manifest (no structural validation —
  /// call validate()). Throws std::invalid_argument on grammar errors.
  static Manifest parse(const Options& opts);

  /// parse_file + parse in one step.
  static Manifest load(const std::string& path);

  const ManifestNode* find(const std::string& node) const;

  /// Node hosting `channel` (must be validated).
  const ManifestNode& channel_host(const std::string& channel) const;
};

/// Structural validation against the pipeline spec and a uniform
/// topology built from the manifest's node list (gigabit links, matching
/// the paper's testbed). Resolves the raw placements into task_node /
/// channel_node, throws std::invalid_argument naming the first problem,
/// and returns the topology for runtime configuration.
cluster::Topology validate(Manifest& m, const PipelineSpec& spec);

}  // namespace stampede::control
