/// \file pipelines.hpp
/// \brief Built-in pipeline definitions the control plane can deploy.
///
/// A `PipelineSpec` is the *structure* of a task graph — tasks, channels,
/// and the port order of every edge — plus factories that build the task
/// bodies inside whichever process a task lands in. Manifests
/// (manifest.hpp) never describe structure; they only *place* a spec's
/// tasks and channels onto named nodes, mirroring the paper's evaluation
/// where one fixed Fig. 5 tracker graph is deployed on one node vs five.
///
/// Registered specs:
///   "tracker"  the Fig. 5 color tracker (digitizer, background,
///              histogram, detect1, detect2, gui over frames/masks/
///              hists/loc1/loc2)
///   "relay"    a minimal source -> stream -> sink pipe for tests and
///              smoke runs
///   "stereo"   the §1 stereo correspondence scenario (camera-left,
///              camera-right, stereo-matcher, depth-sink over
///              left/right/depths; the matcher must be co-located with
///              the frame channels it random-accesses via get_at)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "runtime/task.hpp"
#include "util/options.hpp"

namespace stampede::control {

/// Deployment-time knobs shared by every worker of one deployment. All
/// workers must parse identical values (the supervisor forwards one
/// option set to every spawn), so per-process RNG streams and stage
/// costs agree across the fleet.
struct PipelineParams {
  aru::Mode aru = aru::Mode::kMin;
  std::uint64_t seed = 42;
  /// Stage-cost multiplier (1.0 = the paper's costs).
  double scale = 1.0;
  /// Pixel-processing stride for the vision kernels.
  int stride = 8;

  static PipelineParams from_options(const Options& opts);
};

/// Structure of one deployable task graph.
struct PipelineSpec {
  struct Task {
    std::string name;
    /// Input channels in port order (get(0) reads inputs[0], ...).
    std::vector<std::string> inputs;
    /// Output channels in port order (put(0) writes outputs[0], ...).
    std::vector<std::string> outputs;
  };

  std::string name;
  std::vector<std::string> channels;
  std::vector<Task> tasks;

  /// Builds the per-process shared state (scene generators, detection
  /// accumulators) handed to every make_body call in this process.
  std::function<std::shared_ptr<void>(const PipelineParams&)> make_state;

  /// Builds the body for `task` (a name from `tasks`).
  std::function<TaskBody(const std::string& task, const PipelineParams&,
                         const std::shared_ptr<void>& state)>
      make_body;

  const Task* find_task(const std::string& task) const;
  bool has_channel(const std::string& channel) const;
};

/// Looks up a registered pipeline; nullptr if unknown.
const PipelineSpec* find_pipeline(const std::string& name);

/// Names of all registered pipelines (for diagnostics).
std::vector<std::string> pipeline_names();

}  // namespace stampede::control
