#include "control/fragment.hpp"

#include <map>
#include <stdexcept>

namespace stampede::control {

namespace {

const std::string& node_of_task(const Manifest& m, const std::string& task) {
  const auto it = m.task_node.find(task);
  if (it == m.task_node.end()) {
    throw std::invalid_argument("fragment: task '" + task + "' has no placement");
  }
  return it->second;
}

}  // namespace

ChannelSlots remote_slots(const Manifest& m, const PipelineSpec& spec,
                          const std::string& channel) {
  ChannelSlots slots;
  const auto host_it = m.channel_node.find(channel);
  if (host_it == m.channel_node.end()) {
    throw std::invalid_argument("fragment: channel '" + channel + "' has no placement");
  }
  const std::string& host = host_it->second;
  for (const PipelineSpec::Task& t : spec.tasks) {
    if (node_of_task(m, t.name) == host) continue;
    for (const std::string& out : t.outputs) {
      if (out == channel) slots.producers.push_back(t.name);
    }
    for (const std::string& in : t.inputs) {
      if (in == channel) slots.consumers.push_back(t.name);
    }
  }
  return slots;
}

Fragment build_fragment(Runtime& rt, const Manifest& m, const PipelineSpec& spec,
                        const std::string& node) {
  const ManifestNode* self = m.find(node);
  if (!self) {
    throw std::invalid_argument("fragment: unknown node '" + node + "'");
  }

  Fragment frag;
  frag.state = spec.make_state ? spec.make_state(m.params) : nullptr;

  // Local channels (spec order), plus the export list for remote peers.
  std::map<std::string, Channel*> local;
  std::vector<net::ServedChannel> served;
  for (const std::string& name : spec.channels) {
    if (m.channel_node.at(name) != node) continue;
    Channel& ch = rt.add_channel({.name = name});
    local[name] = &ch;
    frag.channels.push_back(name);
    const ChannelSlots slots = remote_slots(m, spec, name);
    if (!slots.producers.empty() || !slots.consumers.empty()) {
      served.push_back({.channel = &ch,
                        .remote_producers = static_cast<int>(slots.producers.size()),
                        .remote_consumers = static_cast<int>(slots.consumers.size())});
    }
  }
  if (!served.empty()) {
    net::ServerConfig server_config;
    server_config.host = self->endpoint.host;
    server_config.port = self->endpoint.port;
    frag.server = std::make_unique<net::ChannelServer>(rt, served, server_config);
  }

  // Slot claimed by (task, channel) on the serving side, or -1 if local.
  const auto slot_of = [&](const std::string& task, const std::string& channel,
                           bool producer) -> std::int32_t {
    const ChannelSlots slots = remote_slots(m, spec, channel);
    const auto& list = producer ? slots.producers : slots.consumers;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == task) return static_cast<std::int32_t>(i);
    }
    throw std::invalid_argument("fragment: no remote slot for task '" + task +
                                "' on channel '" + channel + "'");
  };

  // Local tasks, wired in port order; remote channels get one proxy per
  // (task, channel, direction) so each proxy's two links keep their
  // single-writer discipline.
  for (const PipelineSpec::Task& t : spec.tasks) {
    if (node_of_task(m, t.name) != node) continue;
    TaskBody body = spec.make_body(t.name, m.params, frag.state);
    if (!body) {
      throw std::invalid_argument("fragment: pipeline '" + spec.name +
                                  "' has no body factory for task '" + t.name + "'");
    }
    TaskContext& task = rt.add_task({.name = t.name, .body = std::move(body)});
    frag.tasks.push_back(t.name);

    for (const std::string& out : t.outputs) {
      if (const auto it = local.find(out); it != local.end()) {
        rt.connect(task, *it->second);
        continue;
      }
      const ManifestNode& host = m.channel_host(out);
      frag.proxies.push_back(std::make_unique<net::RemoteChannel>(
          rt, net::RemoteChannelConfig{
                  .name = out,
                  .transport = {.host = host.endpoint.host, .port = host.endpoint.port},
                  .producer_key = slot_of(t.name, out, /*producer=*/true)}));
      rt.connect(task, *frag.proxies.back());
    }
    for (const std::string& in : t.inputs) {
      if (const auto it = local.find(in); it != local.end()) {
        rt.connect(*it->second, task);
        continue;
      }
      const ManifestNode& host = m.channel_host(in);
      frag.proxies.push_back(std::make_unique<net::RemoteChannel>(
          rt, net::RemoteChannelConfig{
                  .name = in,
                  .transport = {.host = host.endpoint.host, .port = host.endpoint.port},
                  .consumer_key = slot_of(t.name, in, /*producer=*/false)}));
      rt.connect(*frag.proxies.back(), task);
    }
  }

  if (frag.channels.empty() && frag.tasks.empty()) {
    throw std::invalid_argument("fragment: node '" + node +
                                "' hosts no tasks and no channels");
  }
  return frag;
}

}  // namespace stampede::control
