#include "control/pipelines.hpp"

#include <array>
#include <cstddef>

#include "vision/stages.hpp"
#include "vision/stereo.hpp"

namespace stampede::control {

PipelineParams PipelineParams::from_options(const Options& opts) {
  PipelineParams p;
  p.aru = aru::parse_mode(opts.get_string("aru", aru::to_string(p.aru)));
  p.seed = static_cast<std::uint64_t>(opts.get_int("seed", static_cast<std::int64_t>(p.seed)));
  p.scale = opts.get_double("scale", p.scale);
  p.stride = static_cast<int>(opts.get_int("stride", p.stride));
  return p;
}

const PipelineSpec::Task* PipelineSpec::find_task(const std::string& task) const {
  for (const Task& t : tasks) {
    if (t.name == task) return &t;
  }
  return nullptr;
}

bool PipelineSpec::has_channel(const std::string& channel) const {
  for (const std::string& c : channels) {
    if (c == channel) return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// "tracker": the Fig. 5 color tracker
// ---------------------------------------------------------------------------

/// Per-process shared state of the tracker stages. Every process builds
/// the full struct (it is cheap) and its local stages pick what they
/// need; the shared seed keeps the digitizer's scene and the detectors'
/// ground-truth scene identical across processes.
struct TrackerState {
  std::shared_ptr<vision::SceneGenerator> gen;
  std::shared_ptr<vision::DetectionStats> stats0;
  std::shared_ptr<vision::DetectionStats> stats1;
};

PipelineSpec make_tracker_spec() {
  PipelineSpec spec;
  spec.name = "tracker";
  spec.channels = {"frames", "masks", "hists", "loc1", "loc2"};
  spec.tasks = {
      {.name = "digitizer", .inputs = {}, .outputs = {"frames"}},
      {.name = "background", .inputs = {"frames"}, .outputs = {"masks"}},
      {.name = "histogram", .inputs = {"frames"}, .outputs = {"hists"}},
      // Port order matters: make_target_detection reads masks on input 0,
      // hists on 1, frames on 2.
      {.name = "detect1", .inputs = {"masks", "hists", "frames"}, .outputs = {"loc1"}},
      {.name = "detect2", .inputs = {"masks", "hists", "frames"}, .outputs = {"loc2"}},
      {.name = "gui", .inputs = {"loc1", "loc2"}, .outputs = {}},
  };
  spec.make_state = [](const PipelineParams& p) -> std::shared_ptr<void> {
    auto state = std::make_shared<TrackerState>();
    state->gen = std::make_shared<vision::SceneGenerator>(p.seed);
    state->stats0 = std::make_shared<vision::DetectionStats>();
    state->stats1 = std::make_shared<vision::DetectionStats>();
    return state;
  };
  spec.make_body = [](const std::string& task, const PipelineParams& p,
                      const std::shared_ptr<void>& state) -> TaskBody {
    const auto& ts = *std::static_pointer_cast<TrackerState>(state);
    const vision::StageCosts costs = vision::StageCosts{}.scaled(p.scale);
    if (task == "digitizer") {
      return vision::make_digitizer(ts.gen, costs, INT64_MAX, p.stride);
    }
    if (task == "background") return vision::make_background(costs, p.stride);
    if (task == "histogram") return vision::make_histogram(costs, p.stride);
    if (task == "detect1") {
      return vision::make_target_detection(ts.gen, costs, 0, p.stride, ts.stats0);
    }
    if (task == "detect2") {
      return vision::make_target_detection(ts.gen, costs, 1, p.stride, ts.stats1);
    }
    if (task == "gui") return vision::make_gui(costs);
    return {};
  };
  return spec;
}

// ---------------------------------------------------------------------------
// "relay": source -> stream -> sink (cheap smoke/test pipeline)
// ---------------------------------------------------------------------------

PipelineSpec make_relay_spec() {
  PipelineSpec spec;
  spec.name = "relay";
  spec.channels = {"stream"};
  spec.tasks = {
      {.name = "source", .inputs = {}, .outputs = {"stream"}},
      {.name = "sink", .inputs = {"stream"}, .outputs = {}},
  };
  spec.make_state = [](const PipelineParams&) -> std::shared_ptr<void> { return nullptr; };
  spec.make_body = [](const std::string& task, const PipelineParams& p,
                      const std::shared_ptr<void>&) -> TaskBody {
    // Source at 1 ms, sink at 6 ms (x scale): with ARU on, summary-STP
    // feedback must pace the source onto the sink's period.
    if (task == "source") {
      return [cost = from_millis(1.0 * p.scale)](TaskContext& ctx) {
        static thread_local Timestamp ts = 0;
        ctx.compute(cost);
        ctx.put(0, ctx.make_item(ts++, 16 * 1024, {}));
        return TaskStatus::kContinue;
      };
    }
    if (task == "sink") {
      return [cost = from_millis(6.0 * p.scale)](TaskContext& ctx) {
        auto item = ctx.get(0);
        if (!item) return TaskStatus::kDone;
        ctx.compute(cost);
        ctx.emit(*item);
        return TaskStatus::kContinue;
      };
    }
    return {};
  };
  return spec;
}

// ---------------------------------------------------------------------------
// "stereo": the §1 timestamp-correspondence scenario
// ---------------------------------------------------------------------------

/// The examples/stereo_pipeline.cpp graph as a deployable spec: two camera
/// tasks render the same scene from a baseline, the matcher pairs the
/// latest left frame with the right frame of the *corresponding timestamp*
/// (get_at, falling back to get_nearest within the paper's footnote-1
/// tolerance), and depth estimates flow to a sink. Note for manifests: the
/// matcher random-accesses both frame channels, so it must be co-located
/// with them — a RemoteChannel proxy only speaks latest/summary, not
/// get_at.
PipelineSpec make_stereo_spec() {
  PipelineSpec spec;
  spec.name = "stereo";
  spec.channels = {"left", "right", "depths"};
  spec.tasks = {
      {.name = "camera-left", .inputs = {}, .outputs = {"left"}},
      {.name = "camera-right", .inputs = {}, .outputs = {"right"}},
      // Port order matters: the matcher reads the latest left on input 0
      // and random-accesses the right on input 1.
      {.name = "stereo-matcher", .inputs = {"left", "right"}, .outputs = {"depths"}},
      {.name = "depth-sink", .inputs = {"depths"}, .outputs = {}},
  };
  spec.make_state = [](const PipelineParams& p) -> std::shared_ptr<void> {
    // The shared seed keeps both cameras (and the matcher's ground truth)
    // rendering the identical scene in every process of the deployment.
    return std::make_shared<vision::StereoRig>(p.seed);
  };
  spec.make_body = [](const std::string& task, const PipelineParams& p,
                      const std::shared_ptr<void>& state) -> TaskBody {
    const auto rig = std::static_pointer_cast<vision::StereoRig>(state);
    const auto camera = [&](bool left) -> TaskBody {
      auto next_ts = std::make_shared<Timestamp>(0);
      return [rig, left, next_ts, cost = from_millis(4.0 * p.scale)](TaskContext& ctx) {
        const Timestamp ts = (*next_ts)++;
        auto frame = ctx.make_item(ts, vision::kFrameBytes, {});
        const Nanos t0 = ctx.now();
        if (left) {
          rig->render_left(ts, frame->mutable_data());
        } else {
          rig->render_right(ts, frame->mutable_data());
        }
        ctx.account_compute(ctx.now() - t0);
        ctx.compute(cost);
        ctx.put(0, frame);
        return TaskStatus::kContinue;
      };
    };
    if (task == "camera-left") return camera(true);
    if (task == "camera-right") return camera(false);
    if (task == "stereo-matcher") {
      return [rig, cost = from_millis(16.0 * p.scale)](TaskContext& ctx) {
        auto left = ctx.get(0);  // latest left frame
        if (!left) return TaskStatus::kDone;
        auto right = ctx.get_at(1, left->ts());
        if (!right) right = ctx.get_nearest(1, left->ts(), /*tolerance=*/1);
        if (!right) return TaskStatus::kContinue;  // not digitized yet: skip
        const Nanos t0 = ctx.now();
        const vision::DisparityEstimate est = vision::estimate_disparity(
            vision::ConstFrameView(left->data()), vision::ConstFrameView(right->data()),
            rig->scene().model_color(0));
        ctx.account_compute(ctx.now() - t0);
        ctx.compute(cost);
        (void)est;  // correspondence quality is asserted by the example/tests
        auto depth = ctx.make_item(left->ts(), 64, {left->id(), right->id()});
        ctx.put(0, depth);
        return TaskStatus::kContinue;
      };
    }
    if (task == "depth-sink") {
      return [](TaskContext& ctx) {
        auto in = ctx.get(0);
        if (!in) return TaskStatus::kDone;
        ctx.emit(*in);
        return TaskStatus::kContinue;
      };
    }
    return {};
  };
  return spec;
}

const std::array<PipelineSpec, 3>& registry() {
  static const std::array<PipelineSpec, 3> specs = {
      make_tracker_spec(), make_relay_spec(), make_stereo_spec()};
  return specs;
}

}  // namespace

const PipelineSpec* find_pipeline(const std::string& name) {
  for (const PipelineSpec& spec : registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> pipeline_names() {
  std::vector<std::string> out;
  for (const PipelineSpec& spec : registry()) out.push_back(spec.name);
  return out;
}

}  // namespace stampede::control
