#include "control/pipelines.hpp"

#include <array>
#include <cstddef>

#include "vision/stages.hpp"

namespace stampede::control {

PipelineParams PipelineParams::from_options(const Options& opts) {
  PipelineParams p;
  p.aru = aru::parse_mode(opts.get_string("aru", aru::to_string(p.aru)));
  p.seed = static_cast<std::uint64_t>(opts.get_int("seed", static_cast<std::int64_t>(p.seed)));
  p.scale = opts.get_double("scale", p.scale);
  p.stride = static_cast<int>(opts.get_int("stride", p.stride));
  return p;
}

const PipelineSpec::Task* PipelineSpec::find_task(const std::string& task) const {
  for (const Task& t : tasks) {
    if (t.name == task) return &t;
  }
  return nullptr;
}

bool PipelineSpec::has_channel(const std::string& channel) const {
  for (const std::string& c : channels) {
    if (c == channel) return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// "tracker": the Fig. 5 color tracker
// ---------------------------------------------------------------------------

/// Per-process shared state of the tracker stages. Every process builds
/// the full struct (it is cheap) and its local stages pick what they
/// need; the shared seed keeps the digitizer's scene and the detectors'
/// ground-truth scene identical across processes.
struct TrackerState {
  std::shared_ptr<vision::SceneGenerator> gen;
  std::shared_ptr<vision::DetectionStats> stats0;
  std::shared_ptr<vision::DetectionStats> stats1;
};

PipelineSpec make_tracker_spec() {
  PipelineSpec spec;
  spec.name = "tracker";
  spec.channels = {"frames", "masks", "hists", "loc1", "loc2"};
  spec.tasks = {
      {.name = "digitizer", .inputs = {}, .outputs = {"frames"}},
      {.name = "background", .inputs = {"frames"}, .outputs = {"masks"}},
      {.name = "histogram", .inputs = {"frames"}, .outputs = {"hists"}},
      // Port order matters: make_target_detection reads masks on input 0,
      // hists on 1, frames on 2.
      {.name = "detect1", .inputs = {"masks", "hists", "frames"}, .outputs = {"loc1"}},
      {.name = "detect2", .inputs = {"masks", "hists", "frames"}, .outputs = {"loc2"}},
      {.name = "gui", .inputs = {"loc1", "loc2"}, .outputs = {}},
  };
  spec.make_state = [](const PipelineParams& p) -> std::shared_ptr<void> {
    auto state = std::make_shared<TrackerState>();
    state->gen = std::make_shared<vision::SceneGenerator>(p.seed);
    state->stats0 = std::make_shared<vision::DetectionStats>();
    state->stats1 = std::make_shared<vision::DetectionStats>();
    return state;
  };
  spec.make_body = [](const std::string& task, const PipelineParams& p,
                      const std::shared_ptr<void>& state) -> TaskBody {
    const auto& ts = *std::static_pointer_cast<TrackerState>(state);
    const vision::StageCosts costs = vision::StageCosts{}.scaled(p.scale);
    if (task == "digitizer") {
      return vision::make_digitizer(ts.gen, costs, INT64_MAX, p.stride);
    }
    if (task == "background") return vision::make_background(costs, p.stride);
    if (task == "histogram") return vision::make_histogram(costs, p.stride);
    if (task == "detect1") {
      return vision::make_target_detection(ts.gen, costs, 0, p.stride, ts.stats0);
    }
    if (task == "detect2") {
      return vision::make_target_detection(ts.gen, costs, 1, p.stride, ts.stats1);
    }
    if (task == "gui") return vision::make_gui(costs);
    return {};
  };
  return spec;
}

// ---------------------------------------------------------------------------
// "relay": source -> stream -> sink (cheap smoke/test pipeline)
// ---------------------------------------------------------------------------

PipelineSpec make_relay_spec() {
  PipelineSpec spec;
  spec.name = "relay";
  spec.channels = {"stream"};
  spec.tasks = {
      {.name = "source", .inputs = {}, .outputs = {"stream"}},
      {.name = "sink", .inputs = {"stream"}, .outputs = {}},
  };
  spec.make_state = [](const PipelineParams&) -> std::shared_ptr<void> { return nullptr; };
  spec.make_body = [](const std::string& task, const PipelineParams& p,
                      const std::shared_ptr<void>&) -> TaskBody {
    // Source at 1 ms, sink at 6 ms (x scale): with ARU on, summary-STP
    // feedback must pace the source onto the sink's period.
    if (task == "source") {
      return [cost = from_millis(1.0 * p.scale)](TaskContext& ctx) {
        static thread_local Timestamp ts = 0;
        ctx.compute(cost);
        ctx.put(0, ctx.make_item(ts++, 16 * 1024, {}));
        return TaskStatus::kContinue;
      };
    }
    if (task == "sink") {
      return [cost = from_millis(6.0 * p.scale)](TaskContext& ctx) {
        auto item = ctx.get(0);
        if (!item) return TaskStatus::kDone;
        ctx.compute(cost);
        ctx.emit(*item);
        return TaskStatus::kContinue;
      };
    }
    return {};
  };
  return spec;
}

const std::array<PipelineSpec, 2>& registry() {
  static const std::array<PipelineSpec, 2> specs = {make_tracker_spec(),
                                                    make_relay_spec()};
  return specs;
}

}  // namespace

const PipelineSpec* find_pipeline(const std::string& name) {
  for (const PipelineSpec& spec : registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<std::string> pipeline_names() {
  std::vector<std::string> out;
  for (const PipelineSpec& spec : registry()) out.push_back(spec.name);
  return out;
}

}  // namespace stampede::control
