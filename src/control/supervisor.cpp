#include "control/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "telemetry/exporter.hpp"
#include "util/log.hpp"

extern char** environ;

namespace stampede::control {

namespace {

/// The stdout line every worker prints once its telemetry endpoint is
/// bound (examples/spd_node.cpp keeps this format stable).
constexpr const char* kMetricsAnnouncement = "spd_node: metrics on ";

/// Injects `node="<name>"` as the first label of every series line of a
/// Prometheus text body. Comment lines (HELP/TYPE) are dropped: the
/// merged fleet exposition would otherwise repeat each family's header
/// once per worker, which scrapers reject.
std::string inject_node_label(const std::string& body, const std::string& node) {
  const std::string label = "node=\"" + telemetry::json_escape(node) + "\"";
  std::string out;
  out.reserve(body.size() + 32 * (label.size() + 2));
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    if (end > pos && body[pos] != '#') {
      std::size_t brace = body.find('{', pos);
      std::size_t space = body.find(' ', pos);
      if (brace != std::string::npos && brace < end &&
          (space == std::string::npos || brace < space)) {
        out.append(body, pos, brace + 1 - pos);
        out += label;
        out += ',';
        out.append(body, brace + 1, end - brace - 1);
        out += '\n';
      } else if (space != std::string::npos && space < end) {
        out.append(body, pos, space - pos);
        out += '{';
        out += label;
        out += '}';
        out.append(body, space, end - space);
        out += '\n';
      }
      // Lines with neither a label set nor a value separator are not
      // exposition series; drop them rather than corrupt the merge.
    }
    pos = end + 1;
  }
  return out;
}

const char* state_json(WorkerState s) { return to_string(s); }

}  // namespace

const char* to_string(WorkerState s) {
  switch (s) {
    case WorkerState::kStarting: return "starting";
    case WorkerState::kUp: return "up";
    case WorkerState::kDegraded: return "degraded";
    case WorkerState::kBackoff: return "backoff";
    case WorkerState::kStopped: return "stopped";
  }
  return "?";
}

Supervisor::Supervisor(Manifest manifest, SupervisorConfig config)
    : manifest_(std::move(manifest)),
      config_(std::move(config)),
      clock_(config_.clock ? config_.clock : &RealClock::instance()) {
  if (config_.worker_path.empty()) {
    throw std::invalid_argument("supervisor: worker_path is required");
  }
  // Series registration happens before the fleet lock ever exists to a
  // second thread — and must not happen under it: the registry mutex
  // ranks kTelemetry (24), below kControl.
  std::vector<Worker> workers;
  workers.reserve(manifest_.nodes.size());
  for (const ManifestNode& n : manifest_.nodes) {
    Worker w;
    w.node = n.name;
    if (config_.registry != nullptr) {
      w.up_gauge = &config_.registry->gauge(
          "aru_ctl_worker_up", "1 while the worker probes healthy, else 0",
          {{"node", n.name}});
      w.restart_counter = &config_.registry->counter(
          "aru_ctl_restarts_total", "Worker respawns after unexpected death",
          {{"node", n.name}});
      w.probe_gauge = &config_.registry->gauge(
          "aru_ctl_probe_latency_ns", "Latency of the last successful health probe",
          {{"node", n.name}});
    }
    workers.push_back(std::move(w));
  }
  {
    util::MutexLock lock(mu_);
    workers_ = std::move(workers);
  }
  if (config_.registry != nullptr) {
    exposition_handle_ =
        config_.registry->add_exposition([this] { return aggregated_metrics(); });
    status_handle_ =
        config_.registry->add_status("fleet", [this] { return fleet_status_json(); });
  }
}

Supervisor::~Supervisor() {
  if (config_.registry != nullptr) {
    config_.registry->remove_exposition(exposition_handle_);
    config_.registry->remove_status(status_handle_);
  }
  stop();
}

void Supervisor::start() {
  util::MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  for (Worker& w : workers_) {
    spawn_locked(w);
    if (w.pid <= 0) {
      throw std::runtime_error("supervisor: failed to spawn worker '" + w.node + "'");
    }
  }
  thread_ = std::jthread([this](std::stop_token st) { supervise(st); });
}

void Supervisor::stop() {
  std::jthread thread;
  {
    util::MutexLock lock(mu_);
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    thread = std::move(thread_);
  }
  thread.request_stop();
  if (thread.joinable()) thread.join();

  // Sole supervision actor from here on (status readers still take mu_).
  {
    util::MutexLock lock(mu_);
    for (Worker& w : workers_) {
      if (w.pid > 0) ::kill(w.pid, SIGTERM);
    }
  }
  const Nanos deadline = clock_->now() + config_.stop_grace;
  for (;;) {
    bool all_dead = true;
    {
      util::MutexLock lock(mu_);
      for (Worker& w : workers_) {
        if (w.out_fd >= 0) drain_output_locked(w);
        if (w.pid > 0) reap_locked(w);
        all_dead = all_dead && w.pid <= 0;
      }
    }
    if (all_dead || clock_->now() >= deadline) break;
    clock_->sleep_for(millis(20));
  }
  util::MutexLock lock(mu_);
  for (Worker& w : workers_) {
    if (w.pid > 0) {
      STAMPEDE_LOG(kWarn) << "supervisor: worker '" << w.node
                          << "' ignored SIGTERM, killing";
      ::kill(w.pid, SIGKILL);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
      w.last_exit = WIFEXITED(status) ? WEXITSTATUS(status)
                    : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                          : -1;
      w.pid = -1;
    }
    if (w.out_fd >= 0) drain_output_locked(w);
    if (w.out_fd >= 0) {
      ::close(w.out_fd);
      w.out_fd = -1;
    }
    w.state = WorkerState::kStopped;
    w.metrics_port = 0;
    if (w.up_gauge != nullptr) w.up_gauge->set(0);
  }
}

// ---------------------------------------------------------------------------
// Supervision loop
// ---------------------------------------------------------------------------

void Supervisor::supervise(const std::stop_token& st) {
  while (!st.stop_requested()) {
    tick();
    clock_->sleep_for(config_.probe_interval);
  }
}

void Supervisor::tick() {
  std::vector<ProbeTarget> targets;
  {
    util::MutexLock lock(mu_);
    const std::int64_t now_ns = clock_->now().count();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (w.state == WorkerState::kStopped) continue;
      if (w.out_fd >= 0) drain_output_locked(w);
      if (w.pid > 0) reap_locked(w);
      if (w.state == WorkerState::kBackoff && now_ns >= w.next_spawn_ns) {
        spawn_locked(w);
      }
      if (w.pid > 0 && w.metrics_port != 0) {
        add_probe_target(targets, i, w.metrics_port);
      }
    }
  }
  probe_fleet(targets);
}

void Supervisor::add_probe_target(std::vector<ProbeTarget>& targets, std::size_t index,
                                  std::uint16_t port) {
  targets.push_back({.index = index, .port = port});
}

void Supervisor::drain_output_locked(Worker& w) {
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(w.out_fd, buf, sizeof(buf));
    if (n > 0) {
      w.partial_line.append(buf, static_cast<std::size_t>(n));
      std::size_t nl = 0;
      while ((nl = w.partial_line.find('\n')) != std::string::npos) {
        handle_line_locked(w, w.partial_line.substr(0, nl));
        w.partial_line.erase(0, nl + 1);
      }
      continue;
    }
    if (n == 0) {  // EOF: the worker (and every dup of the write end) is gone
      ::close(w.out_fd);
      w.out_fd = -1;
    }
    return;  // EOF, EAGAIN, or error: nothing more to drain now
  }
}

void Supervisor::handle_line_locked(Worker& w, const std::string& line) {
  if (line.rfind(kMetricsAnnouncement, 0) == 0) {
    const long port = std::strtol(line.c_str() + std::string(kMetricsAnnouncement).size(),
                                  nullptr, 10);
    if (port > 0 && port <= 65535) w.metrics_port = static_cast<std::uint16_t>(port);
  }
  if (config_.forward_output) {
    std::printf("[%s] %s\n", w.node.c_str(), line.c_str());
    std::fflush(stdout);
  }
}

void Supervisor::spawn_locked(Worker& w) {
  const bool respawn = w.last_exit != -1 || w.restarts > 0;
  if (w.out_fd >= 0) {
    ::close(w.out_fd);
    w.out_fd = -1;
  }
  w.partial_line.clear();
  w.metrics.clear();
  w.metrics_port = 0;
  w.good_probes = 0;

  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    schedule_respawn_locked(w);
    return;
  }
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);

  std::vector<std::string> args = {config_.worker_path,
                                   "manifest=" + config_.manifest_path,
                                   "node=" + w.node,
                                   "seconds=0",
                                   "metrics_port=0"};
  for (const std::string& extra : config_.extra_args) args.push_back(extra);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  posix_spawn_file_actions_t fa;
  ::posix_spawn_file_actions_init(&fa);
  ::posix_spawn_file_actions_adddup2(&fa, fds[1], STDOUT_FILENO);
  ::posix_spawn_file_actions_adddup2(&fa, fds[1], STDERR_FILENO);
  ::posix_spawn_file_actions_addclose(&fa, fds[0]);
  ::posix_spawn_file_actions_addclose(&fa, fds[1]);
  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, config_.worker_path.c_str(), &fa, nullptr,
                               argv.data(), environ);
  ::posix_spawn_file_actions_destroy(&fa);
  ::close(fds[1]);

  if (rc != 0) {
    ::close(fds[0]);
    STAMPEDE_LOG(kError) << "supervisor: posix_spawn('" << config_.worker_path
                         << "') for node '" << w.node << "' failed: " << rc;
    schedule_respawn_locked(w);
    return;
  }
  w.pid = pid;
  w.out_fd = fds[0];
  w.state = WorkerState::kStarting;
  if (respawn) {
    ++w.restarts;
    if (w.restart_counter != nullptr) w.restart_counter->add();
    STAMPEDE_LOG(kWarn) << "supervisor: restarted worker '" << w.node << "' (pid " << pid
                        << ", restart #" << w.restarts << ")";
  }
}

void Supervisor::reap_locked(Worker& w) {
  int status = 0;
  const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
  if (r != w.pid) return;
  w.last_exit = WIFEXITED(status)     ? WEXITSTATUS(status)
                : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                      : -1;
  w.pid = -1;
  w.metrics_port = 0;
  w.good_probes = 0;
  if (w.up_gauge != nullptr) w.up_gauge->set(0);
  if (!stopped_) {
    STAMPEDE_LOG(kWarn) << "supervisor: worker '" << w.node << "' died (exit "
                        << w.last_exit << ")";
    schedule_respawn_locked(w);
  }
}

void Supervisor::schedule_respawn_locked(Worker& w) {
  if (w.backoff <= Nanos{0}) w.backoff = config_.backoff_initial;
  w.state = WorkerState::kBackoff;
  w.next_spawn_ns = (clock_->now() + w.backoff).count();
  w.backoff = std::min(w.backoff * 2, config_.backoff_max);
}

void Supervisor::probe_fleet(const std::vector<ProbeTarget>& targets) {
  for (const ProbeTarget& t : targets) {
    const Nanos t0 = clock_->now();
    const auto health =
        telemetry::http_get("127.0.0.1", t.port, "/healthz", config_.probe_timeout);
    const Nanos latency = clock_->now() - t0;
    std::optional<std::string> metrics;
    if (health) {
      metrics =
          telemetry::http_get("127.0.0.1", t.port, "/metrics", config_.probe_timeout);
    }

    util::MutexLock lock(mu_);
    Worker& w = workers_[t.index];
    // The worker may have died or been respawned while we probed; fold
    // the result only if it still describes this incarnation.
    if (w.pid <= 0 || w.metrics_port != t.port) continue;
    if (health) {
      w.probe_ms = to_millis(latency);
      if (w.probe_gauge != nullptr) w.probe_gauge->set(latency.count());
      ++w.good_probes;
      if (w.state == WorkerState::kDegraded) w.state = WorkerState::kUp;
      if (w.state == WorkerState::kStarting && w.good_probes >= config_.healthy_probes) {
        w.state = WorkerState::kUp;
      }
      if (w.state == WorkerState::kUp) {
        w.backoff = Nanos{0};  // healthy again: next death backs off from scratch
        if (w.up_gauge != nullptr) w.up_gauge->set(1);
      }
      if (metrics) w.metrics = inject_node_label(*metrics, w.node);
    } else {
      ++w.probe_failures;
      w.good_probes = 0;
      if (w.state == WorkerState::kUp) w.state = WorkerState::kDegraded;
      if (w.up_gauge != nullptr) w.up_gauge->set(0);
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

const Supervisor::Worker* Supervisor::find(const std::string& node) const {
  for (const Worker& w : workers_) {
    if (w.node == node) return &w;
  }
  return nullptr;
}

WorkerStatus Supervisor::snapshot(const Worker& w) const {
  WorkerStatus s;
  s.node = w.node;
  s.state = w.state;
  s.pid = w.pid;
  s.restarts = w.restarts;
  s.metrics_port = w.metrics_port;
  s.probe_ms = w.probe_ms;
  s.probe_failures = w.probe_failures;
  s.last_exit = w.last_exit;
  return s;
}

WorkerStatus Supervisor::status(const std::string& node) const {
  util::MutexLock lock(mu_);
  const Worker* w = find(node);
  if (w == nullptr) throw std::invalid_argument("supervisor: unknown node '" + node + "'");
  return snapshot(*w);
}

std::vector<WorkerStatus> Supervisor::fleet() const {
  util::MutexLock lock(mu_);
  std::vector<WorkerStatus> out;
  out.reserve(workers_.size());
  for (const Worker& w : workers_) out.push_back(snapshot(w));
  return out;
}

bool Supervisor::all_up() const {
  util::MutexLock lock(mu_);
  for (const Worker& w : workers_) {
    if (w.state != WorkerState::kUp) return false;
  }
  return !workers_.empty();
}

bool Supervisor::wait_all_up(Nanos timeout) {
  const Nanos deadline = clock_->now() + timeout;
  while (!all_up()) {
    if (clock_->now() >= deadline) return false;
    clock_->sleep_for(millis(50));
  }
  return true;
}

std::string Supervisor::aggregated_metrics() const {
  util::MutexLock lock(mu_);
  std::string out;
  for (const Worker& w : workers_) out += w.metrics;
  return out;
}

std::string Supervisor::fleet_status_json() const {
  util::MutexLock lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const Worker& w : workers_) {
    if (!first) out += ',';
    first = false;
    out += "{\"node\":\"" + telemetry::json_escape(w.node) + "\"";
    out += ",\"state\":\"";
    out += state_json(w.state);
    out += "\",\"pid\":" + std::to_string(w.pid);
    out += ",\"restarts\":" + std::to_string(w.restarts);
    out += ",\"metrics_port\":" + std::to_string(w.metrics_port);
    out += ",\"probe_ms\":" + std::to_string(w.probe_ms);
    out += ",\"probe_failures\":" + std::to_string(w.probe_failures);
    out += ",\"last_exit\":" + std::to_string(w.last_exit) + "}";
  }
  out += "]";
  return out;
}

}  // namespace stampede::control
