/// \file supervisor.hpp
/// \brief Multi-node supervision: spawn one spd_node worker per manifest
///        node, probe health, restart on death, aggregate telemetry.
///
/// The supervisor is the deployment's control loop (a management
/// counterpart to the paper's data-plane feedback loop):
///
///   spawn ──▶ kStarting ──healthy probes──▶ kUp
///                ▲                            │ probe failure
///                │ backoff elapsed            ▼
///            kBackoff ◀──────death──────  kDegraded ──death──▶ kBackoff
///                                             │ probe ok
///                                             ▼
///                                            kUp         stop() ─▶ kStopped
///
/// Workers are full OS processes (fork/exec of `spd_node manifest=...
/// node=<name> seconds=0`); each announces its ephemeral metrics port on
/// stdout, which the supervisor scrapes through a per-worker pipe. Death
/// is detected with waitpid(WNOHANG) and answered with a respawn after a
/// bounded exponential backoff (doubled per consecutive death, reset
/// once the worker probes healthy). Link recovery needs no help from
/// here: manifest endpoints are fixed ports, so a restarted worker
/// rebinds and the surviving peers' Transport reconnect plus
/// ChannelServer slot re-attach restore the summary-STP feedback path.
///
/// Aggregation: each probe stores the worker's /metrics body relabeled
/// with node="<name>"; the supervisor registers an exposition block so
/// the controller's own /metrics serves the whole fleet, and a "fleet"
/// /status section with pid/state/restarts/probe latency per worker.
///
/// Locking: all fleet state sits behind one mutex of rank kControl —
/// above kTelemetry so the render callbacks may take it under the
/// registry lock. The supervision thread does its bookkeeping under the
/// lock but performs probe I/O and fork/exec outside it (both are
/// sanctioned aru-analyze escape edges).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "control/manifest.hpp"
#include "telemetry/registry.hpp"
#include "util/clock.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::control {

enum class WorkerState : std::uint8_t {
  kStarting,   ///< spawned, not yet seen healthy_probes good probes
  kUp,         ///< alive and probing healthy
  kDegraded,   ///< alive but the last probe failed
  kBackoff,    ///< dead; respawn scheduled at next_spawn
  kStopped,    ///< terminated by stop()
};

const char* to_string(WorkerState s);

struct SupervisorConfig {
  /// Path of the spd_node binary to exec.
  std::string worker_path;
  /// Manifest file path passed to every worker (workers re-parse it and
  /// build their own fragment).
  std::string manifest_path;
  /// Extra key=value arguments forwarded verbatim to every worker
  /// (deployment overrides such as scale=0.25).
  std::vector<std::string> extra_args;
  /// Supervision tick period (drain pipes, reap, respawn, probe).
  Nanos probe_interval = millis(250);
  /// Per-probe HTTP deadline.
  Nanos probe_timeout = millis(500);
  /// Restart backoff bounds: doubled per consecutive death, reset when
  /// the worker reaches kUp.
  Nanos backoff_initial = millis(100);
  Nanos backoff_max = seconds(2);
  /// Consecutive successful probes promoting kStarting -> kUp.
  int healthy_probes = 2;
  /// stop(): SIGTERM, wait this long for clean exits, then SIGKILL.
  Nanos stop_grace = seconds(5);
  /// Clock for sleeps/backoff (defaults to the real clock).
  Clock* clock = nullptr;
  /// When set, fleet series, the "fleet" /status section, and the merged
  /// per-worker exposition block are registered here.
  telemetry::Registry* registry = nullptr;
  /// Forward worker stdout/stderr lines to this process's stdout with a
  /// `[node]` prefix (off for quiet embedding in tests).
  bool forward_output = true;
};

/// Point-in-time view of one worker (for /status, tests, spd_ctl).
struct WorkerStatus {
  std::string node;
  WorkerState state = WorkerState::kStarting;
  pid_t pid = -1;
  std::int64_t restarts = 0;
  std::uint16_t metrics_port = 0;
  /// Last successful probe's latency; < 0 before the first success.
  double probe_ms = -1.0;
  std::int64_t probe_failures = 0;
  /// Exit code of the worker's last terminated process (-1 while the
  /// first process is still running; 128+signo for signal deaths).
  int last_exit = -1;
};

class Supervisor {
 public:
  /// `manifest` must have passed validate().
  Supervisor(Manifest manifest, SupervisorConfig config);

  /// stop()s if still running.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every worker and the supervision thread. Throws
  /// std::runtime_error if a spawn fails outright.
  void start() EXCLUDES(mu_);

  /// Graceful fleet shutdown: SIGTERM all workers, wait stop_grace for
  /// clean exits, SIGKILL stragglers, join the supervision thread.
  /// Idempotent.
  void stop() EXCLUDES(mu_);

  // -- introspection -----------------------------------------------------------

  WorkerStatus status(const std::string& node) const EXCLUDES(mu_);
  std::vector<WorkerStatus> fleet() const EXCLUDES(mu_);
  pid_t pid(const std::string& node) const { return status(node).pid; }
  std::int64_t restarts(const std::string& node) const { return status(node).restarts; }

  /// True when every worker is kUp.
  bool all_up() const EXCLUDES(mu_);

  /// Polls until all_up() or `timeout`; returns whether it got there.
  bool wait_all_up(Nanos timeout) EXCLUDES(mu_);

  /// The merged fleet exposition: every worker's last scraped /metrics
  /// body with a node="<name>" label injected into each series.
  std::string aggregated_metrics() const EXCLUDES(mu_);

  /// The "fleet" /status JSON array.
  std::string fleet_status_json() const EXCLUDES(mu_);

 private:
  struct Worker {
    std::string node;
    pid_t pid = -1;
    int out_fd = -1;             ///< nonblocking read end of the stdout pipe
    std::string partial_line;    ///< carry-over between drains
    WorkerState state = WorkerState::kStarting;
    std::uint16_t metrics_port = 0;
    std::int64_t restarts = 0;
    std::int64_t probe_failures = 0;
    int good_probes = 0;
    double probe_ms = -1.0;
    int last_exit = -1;
    Nanos backoff{0};
    std::int64_t next_spawn_ns = 0;  ///< clock time gating the respawn
    std::string metrics;             ///< last scraped body, relabeled
    telemetry::Gauge* up_gauge = nullptr;
    telemetry::Counter* restart_counter = nullptr;
    telemetry::Gauge* probe_gauge = nullptr;
  };

  /// A probe target snapshotted out of the lock.
  struct ProbeTarget {
    std::size_t index = 0;
    std::uint16_t port = 0;
  };

  void supervise(const std::stop_token& st);

  /// One supervision pass. Hot-path root: the loop that keeps a
  /// deployment alive must never pick up hidden allocation or blocking —
  /// everything that must block (pipe drain, fork/exec, probe I/O) is a
  /// named escape edge below.
  ARU_HOT_PATH void tick();

  /// Drains the worker's stdout pipe (nonblocking reads), forwarding
  /// complete lines and scraping the metrics-port announcement.
  ARU_MAY_BLOCK ARU_ALLOCATES
  ARU_ANALYZE_ESCAPE("nonblocking pipe drain: O_NONBLOCK reads until EAGAIN; line assembly reuses the worker's carry-over buffer")
  void drain_output_locked(Worker& w) REQUIRES(mu_);

  /// fork/execs the worker process and wires its stdout pipe.
  ARU_MAY_BLOCK ARU_ALLOCATES
  ARU_ANALYZE_ESCAPE("supervision fork/exec: posix_spawn of a dead worker is the restart action itself, gated by bounded backoff")
  void spawn_locked(Worker& w) REQUIRES(mu_);

  /// Probes every live worker's /healthz + /metrics over HTTP and folds
  /// the results back into the fleet state.
  ARU_MAY_BLOCK ARU_ALLOCATES
  ARU_ANALYZE_ESCAPE("supervision probe I/O: deadline-bounded http_get of worker /healthz + /metrics, performed outside the fleet lock")
  void probe_fleet(const std::vector<ProbeTarget>& targets) EXCLUDES(mu_);

  /// Appends one probe target to the per-tick snapshot.
  ARU_ALLOCATES
  ARU_ANALYZE_ESCAPE("control-plane cadence: one small probe-snapshot append per worker per 250 ms tick, far off the data path")
  static void add_probe_target(std::vector<ProbeTarget>& targets, std::size_t index,
                               std::uint16_t port);

  void handle_line_locked(Worker& w, const std::string& line) REQUIRES(mu_);
  void schedule_respawn_locked(Worker& w) REQUIRES(mu_);
  void reap_locked(Worker& w) REQUIRES(mu_);
  const Worker* find(const std::string& node) const REQUIRES(mu_);
  WorkerStatus snapshot(const Worker& w) const REQUIRES(mu_);

  const Manifest manifest_;
  const SupervisorConfig config_;
  Clock* clock_;

  mutable util::Mutex mu_{util::LockRank::kControl, "control.supervisor"};
  std::vector<Worker> workers_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
  std::jthread thread_ GUARDED_BY(mu_);

  std::uint64_t exposition_handle_ = 0;
  std::uint64_t status_handle_ = 0;
};

}  // namespace stampede::control
