#include "cluster/topology.hpp"

#include <stdexcept>

namespace stampede::cluster {

Topology Topology::single_node() { return Topology(1, Link{}); }

Topology Topology::uniform(int n, Link link) {
  if (n <= 0) throw std::invalid_argument("Topology: node count must be positive");
  return Topology(n, link);
}

Link Topology::gigabit_link() {
  // Gigabit Ethernet: ~125 MB/s payload bandwidth, ~100 us end-to-end
  // latency (the paper's testbed interconnect).
  return Link{.latency = micros(100), .bytes_per_sec = 125.0e6};
}

Nanos Topology::transfer_time(NodeIndex from, NodeIndex to, std::size_t bytes) const {
  if (!valid(from) || !valid(to)) {
    throw std::out_of_range("Topology: invalid node index");
  }
  if (from == to) return Nanos{0};
  return link_.transfer_time(bytes);
}

std::string Topology::describe() const {
  if (nodes_ == 1) return "1 node (shared memory)";
  return std::to_string(nodes_) + " nodes, link latency " +
         std::to_string(to_micros(link_.latency)) + " us, bandwidth " +
         std::to_string(link_.bytes_per_sec / 1e6) + " MB/s";
}

}  // namespace stampede::cluster
