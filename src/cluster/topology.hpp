/// \file topology.hpp
/// \brief Simulated cluster topology (substitute for the paper's 17-node
///        Gigabit-Ethernet cluster of 8-way SMPs).
///
/// Tasks and channels are *placed* on virtual cluster nodes. A `get` or
/// `put` whose endpoints live on different nodes pays a transfer delay of
/// `latency + bytes / bandwidth` — the first-order cost that distinguishes
/// the paper's config 1 (everything on one node) from config 2 (five
/// tasks on five nodes). See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace stampede::cluster {

/// Virtual cluster node index.
using NodeIndex = int;

/// Point-to-point link model.
struct Link {
  /// One-way message latency.
  Nanos latency{0};
  /// Sustained bandwidth in bytes per second (<= 0 means infinite).
  double bytes_per_sec = 0.0;

  /// Transfer time for a payload of `bytes`. The bytes/bandwidth term is
  /// rounded to the nearest nanosecond: truncation would bias every
  /// transfer fast, and at low bandwidths (where one byte costs whole
  /// nanoseconds) the floor loses up to a full ns per hop.
  Nanos transfer_time(std::size_t bytes) const {
    Nanos t = latency;
    if (bytes_per_sec > 0.0) {
      t += Nanos{std::llround(static_cast<double>(bytes) / bytes_per_sec * 1e9)};
    }
    return t;
  }
};

/// Cluster description: node count plus a uniform inter-node link model.
/// Intra-node communication is free (shared memory), as in Stampede.
class Topology {
 public:
  /// Single shared-memory node (the paper's configuration 1).
  static Topology single_node();

  /// `n` nodes joined by identical links (the paper's configuration 2 uses
  /// n = 5 with Gigabit Ethernet: ~125 MB/s, ~100 µs latency).
  static Topology uniform(int n, Link link);

  /// Gigabit-Ethernet-like defaults matching the paper's testbed.
  static Link gigabit_link();

  int nodes() const { return nodes_; }

  /// True if `n` is a valid node index.
  bool valid(NodeIndex n) const { return n >= 0 && n < nodes_; }

  /// Transfer delay between two placements for a payload of `bytes`
  /// (zero when co-located).
  Nanos transfer_time(NodeIndex from, NodeIndex to, std::size_t bytes) const;

  const Link& link() const { return link_; }

  std::string describe() const;

 private:
  Topology(int nodes, Link link) : nodes_(nodes), link_(link) {}

  int nodes_;
  Link link_;
};

}  // namespace stampede::cluster
