/// \file types.hpp
/// \brief Fundamental runtime identifiers and shared configuration PODs.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace stampede {

/// Virtual-time index attached to every data item (paper §1: "associating
/// every piece of data with a timestamp allows for an index into the
/// virtual (or wall-clock) time of the application"). Source threads
/// assign consecutive timestamps 0, 1, 2, ... and downstream stages tag
/// their outputs with the timestamp of the inputs they were derived from.
using Timestamp = std::int64_t;

inline constexpr Timestamp kNoTimestamp = -1;

/// Dense graph-node identity assigned by the Runtime (threads, channels
/// and queues share one id space — they are all "nodes" to ARU and DGC).
using NodeId = std::int32_t;

inline constexpr NodeId kNoNode = -1;

/// Globally unique item identity within a run.
using ItemId = std::uint64_t;

/// Node flavor.
enum class NodeKind : std::uint8_t { kThread, kChannel, kQueue };

/// How emulated compute cost is realized.
enum class CostMode : std::uint8_t {
  kSleep,  ///< sleep for the cost duration (deterministic on any core count)
  kSpin,   ///< busy-spin (real CPU contention, closest to the paper's testbed)
};

const char* to_string(NodeKind kind);

/// OS-scheduling noise model (paper §3.3.2: "Variances in the OS
/// scheduling of threads result in variances in the execution time of
/// task iterations ... consumer tasks intermittently emit large or small
/// summary-STP values"). With probability `preempt_prob`, a compute call
/// is stretched by an exponentially distributed preemption burst of mean
/// `slice_mean` — producing exactly the heavy-tailed STP spikes the
/// paper's proposed feedback filters are meant to absorb.
struct SchedulerNoise {
  double preempt_prob = 0.0;
  Nanos slice_mean{0};

  bool enabled() const { return preempt_prob > 0.0 && slice_mean.count() > 0; }
};

/// Buffer-management / memory-pressure cost model.
///
/// The paper's testbed slows down under load for reasons outside ARU
/// itself: channels holding many timestamped items cost more to scan and
/// garbage-collect, and a bloated footprint pressures the allocator and
/// memory system. We model both first-order effects explicitly so the
/// "No ARU" baseline exhibits the throughput/latency degradation the paper
/// measures (Fig. 10). Setting both knobs to zero disables the model.
struct PressureModel {
  /// Charged on every channel put/get, multiplied by the number of items
  /// currently stored in that channel (skip-scan + GC bookkeeping cost).
  Nanos per_item_scan{0};

  /// Charged on every item allocation, multiplied by the allocating
  /// cluster node's resident megabytes (allocator/VM pressure).
  Nanos per_mb_alloc{0};

  /// Relative compute-cost dilation per resident megabyte on the node:
  /// effective_cost = cost × (1 + dilation · MB). Models the cache /
  /// memory-bus contention of a bloated working set (the paper's testbed
  /// had 2 MB L2 caches against 738 kB frames — wasted items slow *all*
  /// computation, which is why the No-ARU tracker loses throughput and
  /// latency in Fig. 10).
  double compute_dilation_per_mb = 0.0;

  Nanos scan_cost(std::size_t items_stored) const {
    return Nanos{per_item_scan.count() * static_cast<std::int64_t>(items_stored)};
  }

  Nanos alloc_cost(std::int64_t node_bytes) const {
    const double mb = static_cast<double>(node_bytes) / (1024.0 * 1024.0);
    return Nanos{static_cast<std::int64_t>(static_cast<double>(per_mb_alloc.count()) * mb)};
  }

  /// Multiplier applied to emulated compute given node-resident bytes.
  double dilation(std::int64_t node_bytes) const {
    if (compute_dilation_per_mb <= 0.0) return 1.0;
    return 1.0 + compute_dilation_per_mb * static_cast<double>(node_bytes) / (1024.0 * 1024.0);
  }

  bool enabled() const {
    return per_item_scan.count() > 0 || per_mb_alloc.count() > 0 ||
           compute_dilation_per_mb > 0.0;
  }
};

}  // namespace stampede
