/// \file pool.hpp
/// \brief Size-class payload buffer pool — the zero-copy item fast path.
///
/// Every `Item` payload at digitizer rate used to be a fresh zero-filled
/// `std::vector`: at the paper's 738 kB frame size each allocation crosses
/// glibc's mmap threshold, so the steady state paid an mmap + kernel zero
/// pages + page faults on fill + munmap *per item*. The pool replaces that
/// with recycled slabs: a released payload parks on a free list keyed by
/// its size class and the next acquire of that class reuses the same hot,
/// already-faulted pages. Nothing is zero-filled — producers overwrite the
/// payload before publishing (the stride-grid discipline in vision/ keeps
/// readers on exactly the bytes writers touched); debug builds poison
/// acquired buffers instead so a read-before-write shows up as 0xA5 noise
/// rather than flaky zeros.
///
/// Size classes: requests ≤ 4 KiB round up to the next power of two (min
/// 64 B); larger requests round up to a 64 KiB multiple (the 738 kB frame
/// lands in the 768 KiB class, ~4% slack); requests over 8 MiB bypass the
/// pool entirely. `PayloadBuffer` remembers the *requested* size, so
/// `Item::bytes()` and all accounting stay exact.
///
/// Ownership: `acquire` hands out a move-only `PayloadBuffer` whose
/// destructor returns the slab to the pool — so recycling happens exactly
/// when the last `shared_ptr<Item>` reference drops, wherever that is
/// (consumer thread, channel GC sweep, or a same-timestamp overwrite under
/// the channel lock). The free lists therefore sit at rank `kPool`, above
/// `kBuffer` in the lock hierarchy. The pool must outlive every buffer it
/// issued; the Runtime owns it ahead of all channels/queues/tasks.
///
/// Accounting: live payload bytes are the Item's business (MemoryTracker
/// on_alloc/on_free, unchanged). The pool reports only the bytes *parked*
/// in free lists via `MemoryTracker::on_pool_cached`, so diagnostics can
/// distinguish resident-in-items from retained-for-reuse. Stats counters
/// are relaxed atomics — monotonic tallies, same contract as the tracker.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede {

class MemoryTracker;
class PayloadPool;

/// Byte poisoned over acquired payloads when PoolConfig::poison is set.
inline constexpr std::byte kPoolPoisonByte{0xA5};

/// Poison default: on when assertions are on. The release/RelWithDebInfo
/// presets define NDEBUG, so the hot path never pays the fill there;
/// tests that want poisoning deterministically set PoolConfig::poison.
#ifdef NDEBUG
inline constexpr bool kPoolPoisonDefault = false;
#else
inline constexpr bool kPoolPoisonDefault = true;
#endif

/// Move-only owning handle to one payload slab. Destruction recycles the
/// slab into the pool that issued it (or frees it, for bypass/unpooled
/// buffers). `size()` is the requested payload size; `capacity()` the
/// size-class slab size actually backing it.
class PayloadBuffer {
 public:
  PayloadBuffer() = default;
  ~PayloadBuffer();

  PayloadBuffer(PayloadBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_),
        pool_(other.pool_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.pool_ = nullptr;
  }

  PayloadBuffer& operator=(PayloadBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      pool_ = other.pool_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
      other.pool_ = nullptr;
    }
    return *this;
  }

  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool pooled() const { return pool_ != nullptr; }

  std::span<std::byte> span() { return {data_, size_}; }
  std::span<const std::byte> span() const { return {data_, size_}; }

 private:
  friend class PayloadPool;
  PayloadBuffer(std::byte* data, std::size_t size, std::size_t capacity,
                PayloadPool* pool)
      : data_(data), size_(size), capacity_(capacity), pool_(pool) {}

  void reset();

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  PayloadPool* pool_ = nullptr;  ///< null: plain heap slab, destructor frees
};

struct PoolConfig {
  /// Ceiling on bytes parked across all free lists; a release that would
  /// exceed it frees the slab instead of caching it. Bounds the memory a
  /// burst retains forever (steady-state working sets are far smaller).
  std::size_t max_retained_bytes = std::size_t{128} << 20;  // 128 MiB
  /// Fill acquired payloads with kPoolPoisonByte so read-before-write bugs
  /// surface deterministically instead of reading recycled data.
  bool poison = kPoolPoisonDefault;
};

/// Thread-safe free-listed slab pool. See file comment for the design.
class PayloadPool {
 public:
  /// Monotonic counters (relaxed reads; mutually stale by a few ops).
  struct Stats {
    std::int64_t acquires = 0;  ///< total acquire() calls (incl. bypass)
    std::int64_t hits = 0;      ///< acquires served from a free list
    std::int64_t misses = 0;    ///< acquires that allocated fresh
    std::int64_t releases = 0;  ///< pooled buffers returned
    std::int64_t retained_bytes = 0;  ///< bytes parked in free lists now
    std::int64_t in_use_bytes = 0;    ///< pooled slab bytes out with buffers
  };

  /// \param tracker when non-null, parked free-list bytes are reported via
  ///        on_pool_cached so diagnostics see retained-for-reuse memory.
  explicit PayloadPool(PoolConfig config = {}, MemoryTracker* tracker = nullptr);

  /// Frees every parked slab. All issued buffers must already be gone.
  ~PayloadPool();

  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Returns a buffer of exactly `bytes` logical size backed by a
  /// `class_size(bytes)` slab — recycled when one is parked, freshly
  /// allocated (not zero-filled) otherwise. Requests over kMaxPooledBytes
  /// get a plain heap slab that is freed, not recycled, on destruction.
  ARU_HOT_PATH PayloadBuffer acquire(std::size_t bytes);

  /// Plain heap slab, same no-zero-fill contract, freed (not recycled) on
  /// destruction. For standalone tooling and benchmarks only: runtime
  /// items always allocate from their RunContext's pool.
  ARU_ALLOCATES static PayloadBuffer unpooled(std::size_t bytes);

  /// The slab size backing a request: next power of two (min 64 B) up to
  /// 4 KiB, then 64 KiB multiples up to kMaxPooledBytes; identity above.
  static std::size_t class_size(std::size_t bytes);

  Stats stats() const;
  const PoolConfig& config() const { return config_; }

  /// Largest request the pool recycles; bigger payloads bypass.
  static constexpr std::size_t kMaxPooledBytes = std::size_t{8} << 20;  // 8 MiB

 private:
  friend class PayloadBuffer;

  // Small classes: 64, 128, ..., 4096 (powers of two).
  static constexpr std::size_t kSmallMin = 64;
  static constexpr std::size_t kSmallMax = 4096;
  static constexpr std::size_t kSmallClasses = 7;
  // Large classes: 64 KiB multiples up to kMaxPooledBytes.
  static constexpr std::size_t kLargeStep = std::size_t{64} << 10;
  static constexpr std::size_t kLargeClasses = kMaxPooledBytes / kLargeStep;
  static constexpr std::size_t kNumClasses = kSmallClasses + kLargeClasses;

  /// Free-list index for a *class* size (must be a valid class size).
  static std::size_t class_index(std::size_t class_bytes);

  /// Recycles a slab from a destructing PayloadBuffer. Runs on whatever
  /// thread drops the last item reference — including under a channel
  /// lock, which rank kPool > kBuffer permits.
  ARU_HOT_PATH void release(std::byte* data, std::size_t capacity);

  const PoolConfig config_;
  MemoryTracker* const tracker_;

  mutable util::Mutex mu_{util::LockRank::kPool, "runtime.pool"};
  std::array<std::vector<std::byte*>, kNumClasses> free_ GUARDED_BY(mu_);
  std::size_t retained_bytes_ GUARDED_BY(mu_) = 0;

  std::atomic<std::int64_t> acquires_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> releases_{0};
  std::atomic<std::int64_t> in_use_bytes_{0};
};

}  // namespace stampede
