/// \file channel.hpp
/// \brief Timestamped channel: the Stampede buffer abstraction.
///
/// A channel stores timestamped items and supports the access pattern the
/// paper's application class depends on (§1): consumers repeatedly fetch
/// the *latest* item newer than the one they last processed, implicitly
/// skipping over stale items. The channel simultaneously implements:
///
///  * **feedback piggy-backing** (paper §3.3.2): consumers hand their
///    summary-STP to the channel on every `get`; the channel folds those
///    into its backwardSTP vector and hands its own summary back to the
///    producer on every `put`;
///  * **garbage collection**: per-consumer consumed/skipped masks
///    (Transparent GC) and timestamp guarantees (Dead-Timestamp GC) decide
///    when stored items are reclaimed;
///  * **accounting**: every put/consume/skip/drop is recorded in the trace;
///  * **memory-pressure costs**: put/get report a scan overhead
///    proportional to channel occupancy which the calling task realizes
///    outside the channel lock (see PressureModel);
///  * optional **bounded capacity**: a classic backpressure baseline used
///    by the ablation benches (put blocks while the channel is full).
///
/// Storage is a flat deque of entries kept sorted by timestamp. Source
/// threads emit mostly-monotonic timestamps, so inserts are an O(1)
/// append in the common case; lookups (`get_at`, `get_nearest`, cursor
/// scans) binary-search. Garbage collection is incremental: only the
/// prefix below the frontier is visited, and an unchanged frontier
/// early-exits without touching storage at all (see `collect_locked`).
/// Trace events are composed under the channel lock but appended to the
/// stats shard after it is released (a dedicated mutex preserves the
/// shard's single-writer discipline), and blocked threads are woken only
/// when someone is actually waiting (`waiters_` count).
///
/// Thread-safety: all public operations are safe to call concurrently.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <optional>
#include <stop_token>
#include <string>
#include <vector>

#include "core/feedback.hpp"
#include "gc/frontier.hpp"
#include "runtime/context.hpp"
#include "runtime/item.hpp"
#include "stats/recorder.hpp"
#include "util/mutex.hpp"
#include "util/static_annotations.hpp"
#include "util/thread_annotations.hpp"

namespace stampede::telemetry {
class Counter;
class Gauge;
}  // namespace stampede::telemetry

namespace stampede {

/// Construction-time channel settings.
struct ChannelConfig {
  std::string name;
  /// Virtual cluster node the channel (and its item copies) lives on. In
  /// the paper channels are allocated on their producer's node.
  int cluster_node = 0;
  /// Maximum number of stored items; 0 = unbounded. A bounded channel
  /// blocks `put` when full — the classic backpressure baseline.
  std::size_t capacity = 0;
  /// Custom compress operator (used when the runtime's ARU mode is kCustom).
  aru::CompressFn custom_compress;
  /// Feedback filter spec for this channel's outgoing summary-STP
  /// (empty = use the runtime-wide setting).
  std::string filter;
};

class Channel {
 public:
  /// Maximum consumers per channel (consumed/skipped state is a bitmask).
  static constexpr int kMaxConsumers = 64;

  Channel(RunContext& ctx, NodeId id, ChannelConfig config, aru::Mode mode,
          std::unique_ptr<Filter> filter, stats::Shard* shard);

  // -- graph wiring (single-threaded construction phase) --------------------

  /// Registers a producing thread. Multiple producers are allowed.
  void register_producer(NodeId thread);

  /// Registers a consuming thread on `cluster_node`; returns the consumer
  /// index used by get operations.
  int register_consumer(NodeId thread, int cluster_node);

  // -- data plane ------------------------------------------------------------

  struct PutResult {
    /// The channel's summary-STP, piggy-backed to the producer (paper
    /// §3.3.2). kUnknownStp when ARU is off or no feedback arrived yet.
    Nanos channel_summary{0};
    /// Buffer-management overhead the caller must realize (pressure model).
    Nanos overhead{0};
    /// Time spent blocked on a full bounded channel (backpressure mode).
    Nanos blocked{0};
    /// False if the channel is closed (item was not stored).
    bool stored = false;
  };

  /// Inserts `item`. Blocks while a bounded channel is full (unless the
  /// stop token fires). An item whose timestamp is already below the DGC
  /// frontier is dead on arrival and dropped immediately — recorded as a
  /// tagged drop only (no put event), so postmortem waste accounting does
  /// not double-count it.
  ARU_HOT_PATH PutResult put(std::shared_ptr<Item> item, std::stop_token st);

  /// Non-blocking put: identical to put() except that a full bounded
  /// channel yields nullopt immediately instead of blocking (the item is
  /// untouched; callers holding their own reference may simply retry).
  /// Lets the net server skeleton keep emitting heartbeats while the
  /// channel exerts backpressure instead of going silent mid-RPC.
  ARU_HOT_PATH std::optional<PutResult> try_put(std::shared_ptr<Item> item);

  struct GetResult {
    /// The fetched item; nullptr when the channel closed with nothing left
    /// to deliver or the stop token fired.
    std::shared_ptr<const Item> item;
    /// Time spent blocked waiting for a new item.
    Nanos blocked{0};
    /// Simulated inter-node transfer delay the caller must realize.
    Nanos transfer{0};
    /// Buffer-management overhead the caller must realize.
    Nanos overhead{0};
    /// Number of stale items skipped over by this get.
    int skipped = 0;
  };

  /// Fetches the newest item strictly newer than this consumer's cursor,
  /// skipping (and marking) everything in between; blocks until one exists
  /// or the channel closes / `st` fires.
  ///
  /// \param consumer_idx   index from register_consumer.
  /// \param consumer_summary the consumer thread's summary-STP, folded into
  ///        this channel's backwardSTP vector (pass kUnknownStp when ARU is
  ///        off).
  /// \param extra_guarantee DGC: lowest output timestamp still wanted by
  ///        the consumer's own downstream (kNoTimestamp = none).
  ARU_HOT_PATH GetResult get_latest(int consumer_idx, Nanos consumer_summary,
                                    Timestamp extra_guarantee, std::stop_token st);

  /// Fetches the *oldest* item strictly newer than this consumer's cursor
  /// — in-order access without skipping (Stampede's sequential access
  /// mode). Blocks like get_latest. Skips nothing, so a consumer using
  /// only get_next never wastes items.
  ARU_HOT_PATH GetResult get_next(int consumer_idx, Nanos consumer_summary,
                                  Timestamp extra_guarantee, std::stop_token st);

  /// Non-blocking: the item with exactly timestamp `ts`, if present.
  /// Marks it consumed but does not move the cursor (random access —
  /// e.g. fetching the frame matching another stream's timestamp).
  /// Returns a null item when absent; never blocks.
  ARU_HOT_PATH GetResult get_at(int consumer_idx, Timestamp ts, Nanos consumer_summary);

  /// Non-blocking: the stored item whose timestamp is closest to `ts`
  /// within ±`tolerance` — the paper's §1 footnote: "corresponding
  /// timestamps could be timestamps with the same value or with values
  /// close enough within a pre-defined threshold". Ties prefer the newer
  /// item. Marks it consumed; does not move the cursor.
  ARU_HOT_PATH GetResult get_nearest(int consumer_idx, Timestamp ts, Timestamp tolerance,
                                     Nanos consumer_summary);

  /// Sliding-window access (e.g. gesture recognition over recent video):
  /// blocks until an item newer than the cursor exists, then returns the
  /// newest `window` items in ascending timestamp order. The newest is
  /// marked consumed and advances the cursor; older window members are
  /// only observed (they may already be consumed/skipped). The consumer's
  /// DGC guarantee is held back by `window` so the window's tail is not
  /// collected under it.
  struct WindowResult {
    std::vector<std::shared_ptr<const Item>> items;  ///< ascending ts; empty if closed
    Nanos blocked{0};
    Nanos transfer{0};  ///< transfer for the newest (new) item only
    Nanos overhead{0};
  };
  ARU_HOT_PATH WindowResult get_window(int consumer_idx, std::size_t window,
                                       Nanos consumer_summary, std::stop_token st);

  /// Explicit guarantee: consumer `consumer_idx` declares it will never
  /// again request a timestamp below `g`. Required by consumers that use
  /// only random access (`get_at`) — their cursor never moves, so without
  /// this call they pin the channel frontier at zero and nothing is ever
  /// collected.
  void raise_guarantee(int consumer_idx, Timestamp g);

  /// Non-blocking probe: timestamp of the newest stored item
  /// (kNoTimestamp when empty).
  Timestamp latest_ts() const;

  /// Non-blocking probe: would get_latest for this consumer return without
  /// blocking? True when an unseen item is stored or the channel is closed
  /// (a blocking get would return the drained remainder or null). Lets the
  /// net server skeleton poll instead of parking a thread per consumer.
  bool ready(int consumer_idx) const;

  /// True once close() was called.
  bool closed() const;

  /// Wakes all waiters; subsequent puts are rejected, gets drain what is
  /// left and then return null.
  void close();

  // -- introspection ----------------------------------------------------------

  NodeId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  int cluster_node() const { return config_.cluster_node; }
  /// Configured bound (0 = unbounded). The net server advertises
  /// `capacity - size` as put credits on coalesced acks.
  std::size_t capacity() const { return config_.capacity; }
  std::size_t size() const;
  /// DGC frontier: min consumer guarantee (for thread guarantee
  /// propagation — paper's dead-timestamp reasoning).
  Timestamp frontier() const;
  /// Current channel summary-STP (diagnostics/tests).
  Nanos summary() const;
  /// Snapshot of the backwardSTP vector (one slot per registered consumer;
  /// kUnknownStp = nothing received). The net skeleton piggy-backs this on
  /// put acks and get replies (paper §3.3.2 Fig. 3 over the wire).
  ARU_ALLOCATES std::vector<Nanos> backward_stp() const;
  /// Allocation-free variant for per-reply use: fills `out` in place, so
  /// a caller that reuses its vector pays at most one growth to the
  /// high-water STP width (the net serve loop piggy-backs this on every
  /// put ack and get reply).
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("fills the caller's reused vector — capacity persists across replies, so growth is amortized to the high-water STP width")
  void backward_stp_into(std::vector<Nanos>& out) const;
  std::size_t consumers() const;
  std::size_t producers() const;

 private:
  struct Entry {
    Timestamp ts = kNoTimestamp;
    std::shared_ptr<Item> item;
    std::uint64_t consumed_mask = 0;
    std::uint64_t skipped_mask = 0;
  };

  struct ConsumerState {
    NodeId thread = kNoNode;
    int cluster_node = 0;
    Timestamp cursor = kNoTimestamp;  // last timestamp delivered
  };

  /// Events composed under mu_ and appended to the shard after release.
  using EventBatch = std::vector<stats::Event>;

  /// Shared body of put()/try_put(). `blocking` selects between waiting
  /// out a full bounded channel on cv_ and returning nullopt.
  std::optional<PutResult> put_impl(std::shared_ptr<Item> item, std::stop_token st,
                                    bool blocking);

  /// Reclaims dead entries below the frontier; returns how many were
  /// erased. Incremental: when the frontier has not moved since the last
  /// pass and no mask/insert below it changed (`gc_pending_`), this is a
  /// constant-time no-op. Otherwise only the prefix with ts < frontier is
  /// visited. Reclaimed items are moved into `reclaimed` so their payloads
  /// are released after mu_ is dropped.
  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("appends into the per-thread reclaimed scratch whose capacity persists across operations; the deferred payload release runs after mu_ is dropped")
  std::size_t collect_locked(std::int64_t now, EventBatch& events,
                             std::vector<std::shared_ptr<Item>>& reclaimed) REQUIRES(mu_);

  /// True if every registered consumer has consumed or skipped the entry.
  bool all_passed(const Entry& e) const REQUIRES(mu_);

  /// Index of the first entry with ts >= `ts` (entries_.size() if none).
  std::size_t lower_bound_locked(Timestamp ts) const REQUIRES(mu_);

  /// Index of the entry with exactly `ts`, or entries_.size().
  std::size_t find_locked(Timestamp ts) const REQUIRES(mu_);

  /// Throws std::out_of_range unless `consumer_idx` names a registered
  /// consumer.
  void check_consumer_locked(int consumer_idx, const char* op) const REQUIRES(mu_);

  ARU_ALLOCATES ARU_ANALYZE_ESCAPE("amortized append to a reused thread-local event batch; capacity stabilizes after warmup")
  static void add_event(EventBatch& events, stats::EventType type, const Item& item,
                        std::int64_t now, NodeId node, std::int64_t a = 0,
                        std::int64_t b = 0);

  /// Appends a composed batch to the stats shard. Must be called WITHOUT
  /// mu_ held (lock rank kBufferStats < kBuffer enforces this at runtime
  /// in ARU_LOCK_DEBUG builds); stats_mu_ keeps the shard single-writer.
  void flush_events(EventBatch& events) EXCLUDES(mu_, stats_mu_);

  /// Wakes blocked threads only when some exist (skips the notify syscall
  /// entirely for the common uncontended case).
  void notify_waiters_locked() REQUIRES(mu_);

  /// Mirrors occupancy and the DGC frontier into the live gauges (two
  /// relaxed stores); called at the end of every locked section that can
  /// change them. No-op when telemetry is not wired (ctx_.metrics null).
  void update_gauges_locked() REQUIRES(mu_);

  RunContext& ctx_;
  NodeId id_;
  ChannelConfig config_;
  stats::Shard* const shard_ PT_GUARDED_BY(stats_mu_);

  mutable util::Mutex mu_{util::LockRank::kBuffer, "channel.mu"};
  std::condition_variable_any cv_;
  /// Sorted ascending by ts (unique). Deque: O(1) append at the back for
  /// monotonic producers, O(1) pop at the front for the collector, random
  /// access for binary search.
  std::deque<Entry> entries_ GUARDED_BY(mu_);
  std::vector<ConsumerState> consumer_states_ GUARDED_BY(mu_);
  gc::ConsumerFrontiers frontiers_ GUARDED_BY(mu_);
  aru::FeedbackState feedback_ GUARDED_BY(mu_);
  std::size_t producer_count_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
  /// Number of threads currently blocked in cv_.wait (producers on a full
  /// bounded channel and consumers on an empty one).
  int waiters_ GUARDED_BY(mu_) = 0;
  /// Frontier value at the end of the last collect pass.
  Timestamp collected_frontier_ GUARDED_BY(mu_) = 0;
  /// Set when storage below the current frontier may have changed without
  /// the frontier moving (random-access consume, explicit guarantee skip
  /// marking, out-of-order insert below the frontier).
  bool gc_pending_ GUARDED_BY(mu_) = false;
  /// Serializes shard appends now that they happen outside mu_.
  mutable util::Mutex stats_mu_{util::LockRank::kBufferStats, "channel.stats_mu"};

  /// Live telemetry series, registered once at construction (null when
  /// ctx_.metrics is). Increments are relaxed atomics — safe under mu_.
  telemetry::Counter* met_puts_ = nullptr;
  telemetry::Counter* met_gets_ = nullptr;
  telemetry::Counter* met_drops_ = nullptr;
  telemetry::Gauge* met_occupancy_ = nullptr;
  telemetry::Gauge* met_frontier_ = nullptr;
};

}  // namespace stampede
