#include "runtime/queue.hpp"

#include <stdexcept>

namespace stampede {

namespace {
aru::Mode effective_mode(aru::Mode global, const aru::CompressFn& custom) {
  if (global == aru::Mode::kOff || !custom) return global;
  return aru::Mode::kCustom;
}
}  // namespace

Queue::Queue(RunContext& ctx, NodeId id, QueueConfig config, aru::Mode mode,
             std::unique_ptr<Filter> filter, stats::Shard* shard)
    : ctx_(ctx),
      id_(id),
      config_(std::move(config)),
      shard_(shard),
      feedback_(effective_mode(mode, config_.custom_compress), /*is_thread=*/false,
                config_.custom_compress, std::move(filter)) {}

void Queue::register_producer(NodeId /*thread*/) {}

int Queue::register_consumer(NodeId thread, int cluster_node) {
  // Single-threaded construction phase; locked to keep the annotations
  // sound (see Channel::register_consumer).
  const util::MutexLock lock(mu_);
  consumer_states_.push_back(ConsumerState{.thread = thread, .cluster_node = cluster_node});
  feedback_.add_output();
  return static_cast<int>(consumer_states_.size()) - 1;
}

Queue::PutResult Queue::put(std::shared_ptr<Item> item, std::stop_token st) {
  if (!item) throw std::invalid_argument("Queue::put: null item");
  util::UniqueLock lock(mu_);

  PutResult result;
  if (config_.capacity > 0) {
    const Nanos wait_start = ctx_.clock->now();
    cv_.wait(lock, st, [&] {
      mu_.assert_held();
      return closed_ || items_.size() < config_.capacity;
    });
    result.blocked = ctx_.clock->now() - wait_start;
  }
  if (closed_ || st.stop_requested()) {
    result.queue_summary = feedback_.summary();
    return result;
  }

  const std::int64_t now = ctx_.now_ns();
  shard_->record(stats::Event{.type = stats::EventType::kPut,
                              .node = id_,
                              .ts = item->ts(),
                              .item = item->id(),
                              .t = now});
  items_.push_back(std::move(item));
  result.stored = true;
  result.overhead = ctx_.pressure.scan_cost(items_.size());
  result.queue_summary = feedback_.summary();
  cv_.notify_all();
  return result;
}

Queue::GetResult Queue::get(int consumer_idx, Nanos consumer_summary, std::stop_token st) {
  util::UniqueLock lock(mu_);
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Queue::get: bad consumer index");
  }
  const ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];

  GetResult result;
  if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
    feedback_.update_backward(consumer_idx, consumer_summary);
  }

  const Nanos wait_start = ctx_.clock->now();
  cv_.wait(lock, st, [&] {
    mu_.assert_held();
    return closed_ || !items_.empty();
  });
  result.blocked = ctx_.clock->now() - wait_start;

  if (items_.empty()) return result;  // closed & drained, or stop requested

  result.item = items_.front();
  items_.pop_front();

  const std::int64_t now = ctx_.now_ns();
  shard_->record(stats::Event{.type = stats::EventType::kConsume,
                              .node = me.thread,
                              .ts = result.item->ts(),
                              .item = result.item->id(),
                              .t = now});
  result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                 result.item->bytes());
  result.overhead = ctx_.pressure.scan_cost(items_.size());
  cv_.notify_all();
  return result;
}

void Queue::close() {
  const util::MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t Queue::size() const {
  const util::MutexLock lock(mu_);
  return items_.size();
}

Nanos Queue::summary() const {
  const util::MutexLock lock(mu_);
  return feedback_.summary();
}

}  // namespace stampede
