/// \file queue.hpp
/// \brief FIFO queue: Stampede's second buffer abstraction.
///
/// Unlike a Channel, a Queue delivers every item exactly once, in
/// timestamp-arrival order, to exactly one of its consumers (multiple
/// consumers compete for items — work-queue semantics). Queues still
/// participate fully in ARU feedback: consumers piggy-back their
/// summary-STP on every `get`, producers receive the queue's summary on
/// every `put` (queues, like channels, have no current-STP of their own —
/// paper §3.3.2).
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <stop_token>
#include <string>

#include "core/feedback.hpp"
#include "runtime/context.hpp"
#include "runtime/item.hpp"
#include "stats/recorder.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stampede {

struct QueueConfig {
  std::string name;
  int cluster_node = 0;
  /// Maximum queued items; 0 = unbounded. A bounded queue blocks `put`.
  std::size_t capacity = 0;
  aru::CompressFn custom_compress;
  std::string filter;
};

class Queue {
 public:
  Queue(RunContext& ctx, NodeId id, QueueConfig config, aru::Mode mode,
        std::unique_ptr<Filter> filter, stats::Shard* shard);

  void register_producer(NodeId thread);
  int register_consumer(NodeId thread, int cluster_node);

  struct PutResult {
    Nanos queue_summary{0};
    Nanos overhead{0};
    Nanos blocked{0};
    bool stored = false;
  };

  /// Appends `item`; blocks while a bounded queue is full.
  PutResult put(std::shared_ptr<Item> item, std::stop_token st);

  struct GetResult {
    std::shared_ptr<const Item> item;  ///< nullptr when closed & drained
    Nanos blocked{0};
    Nanos transfer{0};
    Nanos overhead{0};
  };

  /// Pops the oldest item; blocks until one exists or the queue closes.
  GetResult get(int consumer_idx, Nanos consumer_summary, std::stop_token st);

  void close();

  NodeId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  int cluster_node() const { return config_.cluster_node; }
  std::size_t size() const;
  Nanos summary() const;

 private:
  struct ConsumerState {
    NodeId thread = kNoNode;
    int cluster_node = 0;
  };

  RunContext& ctx_;
  NodeId id_;
  QueueConfig config_;
  /// Unlike Channel, queue events are recorded under mu_ (queue traffic is
  /// control-plane scale; no out-of-lock flush needed yet).
  stats::Shard* const shard_ PT_GUARDED_BY(mu_);

  mutable util::Mutex mu_{util::LockRank::kBuffer, "queue.mu"};
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<Item>> items_ GUARDED_BY(mu_);
  std::vector<ConsumerState> consumer_states_ GUARDED_BY(mu_);
  aru::FeedbackState feedback_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace stampede
