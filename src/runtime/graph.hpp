/// \file graph.hpp
/// \brief Task-graph registry: nodes, connections, validation, DOT export.
///
/// ARU's second assumption (paper §3.3.3) is that "the application task
/// graph is made available to the runtime system". The Runtime populates
/// this registry as channels/queues/tasks are wired; the graph is frozen
/// before threads start, validated to be a DAG (timestamp guarantees and
/// backward STP propagation both assume acyclic pipelines), and can be
/// exported as Graphviz DOT for documentation.
#pragma once

#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace stampede {

struct NodeInfo {
  NodeId id = kNoNode;
  NodeKind kind = NodeKind::kThread;
  std::string name;
  int cluster_node = 0;
};

struct EdgeInfo {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
};

class Graph {
 public:
  /// Registers a node; ids must be dense and added in order.
  void add_node(NodeInfo info);

  /// Registers a directed edge (producer thread -> buffer, or buffer ->
  /// consumer thread).
  void add_edge(NodeId from, NodeId to);

  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  const std::vector<EdgeInfo>& edges() const { return edges_; }

  const NodeInfo& node(NodeId id) const;

  /// Direct successors / predecessors of a node.
  std::vector<NodeId> successors(NodeId id) const;
  std::vector<NodeId> predecessors(NodeId id) const;

  /// True if the node has no incoming edges (a source thread).
  bool is_source(NodeId id) const;

  /// True if the node has no outgoing edges (a sink thread).
  bool is_sink(NodeId id) const;

  /// Throws std::logic_error if the graph contains a cycle or an edge
  /// references an unknown node.
  void validate() const;

  /// Topological order of node ids (throws on cycles).
  std::vector<NodeId> topological_order() const;

  /// Graphviz DOT rendering (threads as boxes, buffers as ellipses,
  /// cluster nodes as subgraph clusters).
  std::string to_dot() const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<EdgeInfo> edges_;
};

}  // namespace stampede
