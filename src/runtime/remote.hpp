/// \file remote.hpp
/// \brief Abstract remote buffer endpoint — the runtime's view of a
///        channel living in another OS process.
///
/// The runtime layer knows nothing about sockets: `src/net/` implements
/// this interface (net::RemoteChannel) and registers it through
/// `Runtime::connect`, so a task body cannot tell whether its port is
/// backed by a local `Channel` or a TCP link. That keeps the dependency
/// arrow pointing one way (net → runtime) and keeps pipelines that never
/// leave the process free of any networking code.
///
/// Failure semantics (paper-faithful degradation): when the link is down a
/// put reports `dropped` — the item is accounted as a drop, and the
/// producer keeps pacing against the *last received* summary-STP rather
/// than stalling or free-running. A get blocks through reconnects until
/// data, close, or stop.
#pragma once

#include <memory>
#include <stop_token>
#include <string>

#include "core/compress.hpp"
#include "runtime/types.hpp"
#include "util/time.hpp"

namespace stampede {

class Item;

class RemoteEndpoint {
 public:
  struct PutResult {
    /// Remote channel's summary-STP from the put ack; while disconnected,
    /// the last value received before the link died (kUnknownStp if none
    /// ever arrived).
    Nanos summary{aru::kUnknownStp};
    bool stored = false;   ///< remote channel accepted and stored the item
    bool dropped = false;  ///< link down: item dropped locally, keep producing
    bool closed = false;   ///< remote channel closed: producer should stop
  };

  struct GetResult {
    /// The fetched item (materialized locally); nullptr when the remote
    /// channel closed with nothing left or the stop token fired.
    std::shared_ptr<const Item> item;
    /// Wall time this get spent waiting (RPC + server-side blocking).
    Nanos blocked{0};
    /// Stale items the remote channel skipped over for this consumer.
    int skipped = 0;
  };

  virtual ~RemoteEndpoint() = default;

  /// Sends `item` to the remote channel; never blocks on a dead link
  /// (returns dropped instead).
  virtual PutResult put(std::shared_ptr<Item> item, std::stop_token st) = 0;

  /// Fetches the latest unseen item, blocking (through reconnects) until
  /// one exists, the channel closes, or `st` fires. `consumer_summary` is
  /// piggy-backed to the remote channel's backwardSTP vector; `guarantee`
  /// carries the DGC extra guarantee (kNoTimestamp = none).
  virtual GetResult get_latest(Nanos consumer_summary, Timestamp guarantee,
                               std::stop_token st) = 0;

  /// Graph node id assigned when the endpoint was registered.
  virtual NodeId id() const = 0;
  virtual const std::string& name() const = 0;
};

}  // namespace stampede
