#include "runtime/runtime.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace stampede {

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)),
      tracker_(config_.topology.nodes()),
      pool_(config_.pool, &tracker_) {
  if (config_.clock == nullptr) config_.clock = &RealClock::instance();
  run_.clock = config_.clock;
  run_.tracker = &tracker_;
  run_.pool = &pool_;
  run_.recorder = &recorder_;
  run_.topology = &config_.topology;
  run_.pressure = config_.pressure;
  run_.sched_noise = config_.sched_noise;
  run_.cost_mode = config_.cost_mode;
  run_.gc = config_.gc;
  run_.aru = config_.aru;
  run_.metrics = &metrics_;
  register_builtin_metrics();
  const util::MutexLock lock(lifecycle_mu_);
  t_start_ = run_.now_ns();
}

void Runtime::register_builtin_metrics() {
  // Polled series: evaluated at scrape time under the registry mutex
  // (rank kTelemetry, below the pool's kPool and the channels' kBuffer),
  // reading counters the pool/tracker already maintain — zero hot-path
  // cost and no double bookkeeping.
  metrics_.polled_counter("aru_pool_acquires_total", "Payload pool acquire() calls",
                          {}, [this] {
                            return static_cast<double>(pool_.stats().acquires);
                          });
  metrics_.polled_counter("aru_pool_hits_total",
                          "Pool acquires served from a free list", {}, [this] {
                            return static_cast<double>(pool_.stats().hits);
                          });
  metrics_.polled_counter("aru_pool_misses_total",
                          "Pool acquires that allocated a fresh slab", {}, [this] {
                            return static_cast<double>(pool_.stats().misses);
                          });
  metrics_.polled_counter("aru_pool_releases_total",
                          "Pooled buffers returned to a free list", {}, [this] {
                            return static_cast<double>(pool_.stats().releases);
                          });
  metrics_.polled_gauge("aru_pool_hit_ratio",
                        "Fraction of acquires served from a free list", {}, [this] {
                          const PayloadPool::Stats s = pool_.stats();
                          return s.acquires > 0 ? static_cast<double>(s.hits) /
                                                      static_cast<double>(s.acquires)
                                                : 0.0;
                        });
  metrics_.polled_gauge("aru_pool_parked_bytes",
                        "Bytes parked in the pool's free lists", {}, [this] {
                          return static_cast<double>(pool_.stats().retained_bytes);
                        });
  metrics_.polled_gauge("aru_pool_in_use_bytes",
                        "Pooled slab bytes currently out with buffers", {}, [this] {
                          return static_cast<double>(pool_.stats().in_use_bytes);
                        });
  metrics_.polled_gauge("aru_memory_total_bytes", "Live item bytes (MemoryTracker)",
                        {}, [this] {
                          return static_cast<double>(tracker_.total_bytes());
                        });
  metrics_.polled_gauge("aru_memory_peak_bytes", "High-water mark of total bytes",
                        {}, [this] {
                          return static_cast<double>(tracker_.peak_bytes());
                        });
  metrics_.polled_gauge("aru_memory_pool_cached_bytes",
                        "Parked pool memory outside total_bytes", {}, [this] {
                          return static_cast<double>(tracker_.pool_cached_bytes());
                        });

  // /status sections. The channels section reads live channel state
  // (Channel::mu_, rank kBuffer — legal under the kTelemetry registry
  // lock) and renders [] once the runtime stopped: take_trace() clears
  // channels_ after stop, and the exporter is stopped before that, so
  // the guard only protects direct render_status() callers.
  metrics_.add_status("channels", [this] {
    std::string out = "[";
    if (running_.load(std::memory_order_acquire)) {
      bool first = true;
      for (const auto& ch : channels_) {
        if (!first) out += ',';
        first = false;
        const Nanos summary = ch->summary();
        out += "{\"name\":\"" + telemetry::json_escape(ch->name()) + "\"";
        out += ",\"occupancy\":" + std::to_string(ch->size());
        out += ",\"frontier_ts\":" + std::to_string(ch->frontier());
        out += ",\"summary_stp_ns\":" +
               std::to_string(aru::known(summary) ? summary.count() : 0);
        out += "}";
      }
    }
    out += "]";
    return out;
  });
  metrics_.add_status("pool", [this] {
    const PayloadPool::Stats s = pool_.stats();
    std::string out = "{";
    out += "\"acquires\":" + std::to_string(s.acquires);
    out += ",\"hits\":" + std::to_string(s.hits);
    out += ",\"misses\":" + std::to_string(s.misses);
    out += ",\"releases\":" + std::to_string(s.releases);
    out += ",\"parked_bytes\":" + std::to_string(s.retained_bytes);
    out += ",\"in_use_bytes\":" + std::to_string(s.in_use_bytes);
    out += "}";
    return out;
  });
  metrics_.add_status("memory", [this] {
    std::string out = "{";
    out += "\"total_bytes\":" + std::to_string(tracker_.total_bytes());
    out += ",\"peak_bytes\":" + std::to_string(tracker_.peak_bytes());
    out += ",\"pool_cached_bytes\":" + std::to_string(tracker_.pool_cached_bytes());
    out += "}";
    return out;
  });
}

Runtime::~Runtime() { stop(); }

std::unique_ptr<Filter> Runtime::filter_for(const std::string& override_spec) const {
  const std::string& spec = override_spec.empty() ? config_.aru.filter : override_spec;
  return make_filter(spec);
}

void Runtime::check_mutable(const char* op) const {
  if (running_.load(std::memory_order_acquire) || stopped_.load(std::memory_order_acquire)) {
    throw std::logic_error(std::string("Runtime: ") + op + " after start()");
  }
}

Channel& Runtime::add_channel(ChannelConfig config) {
  check_mutable("add_channel");
  if (!config_.topology.valid(config.cluster_node)) {
    throw std::invalid_argument("Runtime: channel placed on invalid cluster node");
  }
  const NodeId id = next_node_id();
  auto filter = filter_for(config.filter);
  graph_.add_node(NodeInfo{.id = id,
                           .kind = NodeKind::kChannel,
                           .name = config.name,
                           .cluster_node = config.cluster_node});
  recorder_.set_node_name(id, config.name);
  channels_.push_back(std::make_unique<Channel>(run_, id, std::move(config),
                                                config_.aru.mode, std::move(filter),
                                                recorder_.new_shard()));
  return *channels_.back();
}

Queue& Runtime::add_queue(QueueConfig config) {
  check_mutable("add_queue");
  if (!config_.topology.valid(config.cluster_node)) {
    throw std::invalid_argument("Runtime: queue placed on invalid cluster node");
  }
  const NodeId id = next_node_id();
  auto filter = filter_for(config.filter);
  graph_.add_node(NodeInfo{.id = id,
                           .kind = NodeKind::kQueue,
                           .name = config.name,
                           .cluster_node = config.cluster_node});
  recorder_.set_node_name(id, config.name);
  queues_.push_back(std::make_unique<Queue>(run_, id, std::move(config), config_.aru.mode,
                                            std::move(filter), recorder_.new_shard()));
  return *queues_.back();
}

TaskContext& Runtime::add_task(TaskConfig config) {
  check_mutable("add_task");
  if (!config.body) throw std::invalid_argument("Runtime: task has no body");
  if (!config_.topology.valid(config.cluster_node)) {
    throw std::invalid_argument("Runtime: task placed on invalid cluster node");
  }
  const NodeId id = next_node_id();
  auto filter = filter_for({});
  graph_.add_node(NodeInfo{.id = id,
                           .kind = NodeKind::kThread,
                           .name = config.name,
                           .cluster_node = config.cluster_node});
  recorder_.set_node_name(id, config.name);
  const std::uint64_t seed = SplitMix64(config_.seed ^ (0x5151BEEFULL + id)).next();
  tasks_.push_back(std::make_unique<TaskContext>(run_, id, std::move(config),
                                                 config_.aru.mode, std::move(filter),
                                                 recorder_.new_shard(), seed));
  return *tasks_.back();
}

void Runtime::connect(TaskContext& task, Channel& channel) {
  check_mutable("connect");
  task.add_output(channel);
  graph_.add_edge(task.id(), channel.id());
}

void Runtime::connect(TaskContext& task, Queue& queue) {
  check_mutable("connect");
  task.add_output(queue);
  graph_.add_edge(task.id(), queue.id());
}

void Runtime::connect(Channel& channel, TaskContext& task) {
  check_mutable("connect");
  task.add_input(channel);
  graph_.add_edge(channel.id(), task.id());
}

void Runtime::connect(Queue& queue, TaskContext& task) {
  check_mutable("connect");
  task.add_input(queue);
  graph_.add_edge(queue.id(), task.id());
}

NodeId Runtime::add_remote_node(const std::string& name, NodeKind kind) {
  check_mutable("add_remote_node");
  const NodeId id = next_node_id();
  graph_.add_node(NodeInfo{.id = id, .kind = kind, .name = name, .cluster_node = 0});
  recorder_.set_node_name(id, name);
  return id;
}

void Runtime::add_remote_edge(NodeId from, NodeId to) {
  check_mutable("add_remote_edge");
  graph_.add_edge(from, to);
}

void Runtime::connect(TaskContext& task, RemoteEndpoint& remote) {
  check_mutable("connect");
  task.add_output(remote);
  graph_.add_edge(task.id(), remote.id());
}

void Runtime::connect(RemoteEndpoint& remote, TaskContext& task) {
  check_mutable("connect");
  task.add_input(remote);
  graph_.add_edge(remote.id(), task.id());
}

void Runtime::start() {
  check_mutable("start");
  graph_.validate();

  // Source detection: threads with no inputs pace themselves under ARU.
  for (auto& task : tasks_) {
    task->set_source(graph_.is_source(task->id()));
  }

  const util::MutexLock lock(lifecycle_mu_);

  // Bring the exposition endpoint up before any thread spawns: a bind
  // failure throws out of start() with the runtime still cleanly stopped.
  if (config_.metrics_port >= 0 && !exporter_) {
    if (config_.metrics_port > 65535) {
      throw std::invalid_argument("Runtime: metrics_port out of range");
    }
    exporter_ = std::make_unique<telemetry::Exporter>(
        metrics_,
        telemetry::ExporterConfig{
            .host = config_.metrics_host,
            .port = static_cast<std::uint16_t>(config_.metrics_port)});
  }
  if (exporter_) exporter_->start();

  t_start_ = run_.now_ns();
  running_.store(true, std::memory_order_release);
  threads_.reserve(tasks_.size() + 1);
  for (auto& task : tasks_) {
    threads_.emplace_back([t = task.get()](std::stop_token st) { t->run_loop(st); });
  }

  if (config_.monitor_period.count() > 0) {
    stats::Shard* shard = recorder_.new_shard();
    threads_.emplace_back([this, shard](std::stop_token st) {
      while (!st.stop_requested() && !run_.stopping.load(std::memory_order_relaxed)) {
        const std::int64_t now = run_.now_ns();
        for (const auto& ch : channels_) {
          shard->record(stats::Event{
              .type = stats::EventType::kGauge,
              .node = ch->id(),
              .t = now,
              .a = static_cast<std::int64_t>(ch->size()),
              .b = tracker_.node_bytes(ch->cluster_node()),
          });
        }
        for (const auto& q : queues_) {
          shard->record(stats::Event{
              .type = stats::EventType::kGauge,
              .node = q->id(),
              .t = now,
              .a = static_cast<std::int64_t>(q->size()),
              .b = tracker_.node_bytes(q->cluster_node()),
          });
        }
        shard->record(stats::Event{.type = stats::EventType::kGauge,
                                   .node = kNoNode,
                                   .t = now,
                                   .a = tracker_.total_bytes(),
                                   .b = tracker_.peak_bytes()});
        shard->record(stats::Event{.type = stats::EventType::kGauge,
                                   .node = stats::kPoolGaugeNode,
                                   .t = now,
                                   .a = tracker_.pool_cached_bytes(),
                                   .b = pool_.stats().in_use_bytes});
        run_.clock->sleep_for(config_.monitor_period);
      }
    });
  }
  STAMPEDE_LOG(kInfo) << "runtime started: " << tasks_.size() << " tasks, "
                      << channels_.size() << " channels, " << queues_.size() << " queues";
}

bool Runtime::wait_emits(std::int64_t n, Nanos timeout) {
  const Nanos deadline = run_.clock->now() + timeout;
  while (recorder_.emits() < n) {
    if (run_.clock->now() >= deadline) return false;
    run_.clock->sleep_for(millis(2));
  }
  return true;
}

void Runtime::run_for(Nanos d) {
  if (!running()) start();
  run_.clock->sleep_for(d);
}

void Runtime::stop() {
  const util::MutexLock lock(lifecycle_mu_);
  stop_locked();
}

void Runtime::stop_locked() {
  if (!running_.load(std::memory_order_acquire) || stopped_.load(std::memory_order_acquire)) {
    stopped_.store(true, std::memory_order_release);
    return;
  }
  run_.stopping.store(true, std::memory_order_relaxed);
  // Stop serving scrapes before the data plane is torn down; the /status
  // channel section reads live channel state.
  if (exporter_) exporter_->stop();
  for (auto& th : threads_) th.request_stop();
  for (auto& ch : channels_) ch->close();
  for (auto& q : queues_) q->close();
  for (auto& th : threads_) {
    if (th.joinable()) th.join();
  }
  threads_.clear();
  running_.store(false, std::memory_order_release);
  stopped_.store(true, std::memory_order_release);
  t_stop_ = run_.now_ns();
  STAMPEDE_LOG(kInfo) << "runtime stopped after "
                      << to_millis(Nanos{t_stop_ - t_start_}) << " ms";
}

bool Runtime::drain(Nanos timeout) {
  if (!running()) return true;
  // Close the buffers: producers' puts start failing (bodies should treat
  // a failed put / null get as kDone) while consumers still drain stored
  // items.
  for (auto& ch : channels_) ch->close();
  for (auto& q : queues_) q->close();

  const Nanos deadline = run_.clock->now() + timeout;
  bool all_done = false;
  while (run_.clock->now() < deadline) {
    all_done = true;
    for (const auto& ch : channels_) all_done &= ch->size() == 0;
    for (const auto& q : queues_) all_done &= q->size() == 0;
    if (all_done) break;
    run_.clock->sleep_for(millis(2));
  }
  stop();
  return all_done;
}

stats::Trace Runtime::take_trace() {
  if (running()) throw std::logic_error("Runtime: take_trace while running");
  std::int64_t t_begin = 0;
  std::int64_t t_end = 0;
  {
    const util::MutexLock lock(lifecycle_mu_);
    if (t_stop_ == 0) t_stop_ = run_.now_ns();
    t_begin = t_start_;
    t_end = t_stop_;
  }

  // Drain buffers so every remaining item's free event lands in the trace
  // before the merge.
  channels_.clear();
  queues_.clear();
  return recorder_.merge(t_begin, t_end);
}

}  // namespace stampede
