#include "runtime/item.hpp"

namespace stampede {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kThread: return "thread";
    case NodeKind::kChannel: return "channel";
    case NodeKind::kQueue: return "queue";
  }
  return "?";
}

Item::Item(RunContext& ctx, Timestamp ts, std::size_t bytes, NodeId producer,
           int cluster_node, std::vector<ItemId> lineage, Nanos produce_cost)
    : ctx_(ctx),
      id_(ctx.recorder->next_item_id()),
      ts_(ts),
      producer_(producer),
      cluster_node_(cluster_node),
      produce_cost_(produce_cost),
      t_alloc_(ctx.now_ns()),
      lineage_(std::move(lineage)),
      data_(ctx.pool->acquire(bytes)) {
  ctx_.tracker->on_alloc(cluster_node_, static_cast<std::int64_t>(bytes));
}

Item::~Item() {
  const std::int64_t bytes = static_cast<std::int64_t>(data_.size());
  ctx_.tracker->on_free(cluster_node_, bytes);
  ctx_.recorder->record_any_thread(stats::Event{
      .type = stats::EventType::kFree,
      .node = producer_,
      .ts = ts_,
      .item = id_,
      .t = ctx_.now_ns(),
      .a = bytes,
      .b = cluster_node_,
  });
}

}  // namespace stampede
