#include "runtime/graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace stampede {

void Graph::add_node(NodeInfo info) {
  if (info.id != static_cast<NodeId>(nodes_.size())) {
    throw std::logic_error("Graph: node ids must be dense and in order");
  }
  nodes_.push_back(std::move(info));
}

void Graph::add_edge(NodeId from, NodeId to) {
  edges_.push_back(EdgeInfo{from, to});
}

const NodeInfo& Graph::node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    throw std::out_of_range("Graph: unknown node id");
  }
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Graph::successors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& e : edges_) {
    if (e.from == id) out.push_back(e.to);
  }
  return out;
}

std::vector<NodeId> Graph::predecessors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& e : edges_) {
    if (e.to == id) out.push_back(e.from);
  }
  return out;
}

bool Graph::is_source(NodeId id) const {
  return std::none_of(edges_.begin(), edges_.end(),
                      [id](const EdgeInfo& e) { return e.to == id; });
}

bool Graph::is_sink(NodeId id) const {
  return std::none_of(edges_.begin(), edges_.end(),
                      [id](const EdgeInfo& e) { return e.from == id; });
}

void Graph::validate() const {
  for (const auto& e : edges_) {
    if (e.from < 0 || static_cast<std::size_t>(e.from) >= nodes_.size() || e.to < 0 ||
        static_cast<std::size_t>(e.to) >= nodes_.size()) {
      throw std::logic_error("Graph: edge references unknown node");
    }
    const NodeKind a = nodes_[static_cast<std::size_t>(e.from)].kind;
    const NodeKind b = nodes_[static_cast<std::size_t>(e.to)].kind;
    const bool thread_to_buffer = a == NodeKind::kThread && b != NodeKind::kThread;
    const bool buffer_to_thread = a != NodeKind::kThread && b == NodeKind::kThread;
    if (!thread_to_buffer && !buffer_to_thread) {
      throw std::logic_error("Graph: edges must alternate thread <-> buffer");
    }
  }
  (void)topological_order();  // throws on cycles
}

std::vector<NodeId> Graph::topological_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (const auto& e : edges_) ++indegree[static_cast<std::size_t>(e.to)];

  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (const auto& e : edges_) {
      if (e.from != n) continue;
      if (--indegree[static_cast<std::size_t>(e.to)] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::logic_error("Graph: cycle detected (pipelines must be DAGs)");
  }
  return order;
}

std::string Graph::to_dot() const {
  std::ostringstream out;
  out << "digraph pipeline {\n  rankdir=LR;\n";

  // Group nodes by cluster placement.
  std::map<int, std::vector<const NodeInfo*>> by_cluster;
  for (const auto& n : nodes_) by_cluster[n.cluster_node].push_back(&n);

  for (const auto& [cluster, members] : by_cluster) {
    const bool clustered = by_cluster.size() > 1;
    if (clustered) {
      out << "  subgraph cluster_" << cluster << " {\n    label=\"node " << cluster
          << "\";\n";
    }
    for (const NodeInfo* n : members) {
      const char* shape = n->kind == NodeKind::kThread ? "box" : "ellipse";
      out << (clustered ? "    " : "  ") << 'n' << n->id << " [label=\"" << n->name
          << "\", shape=" << shape << "];\n";
    }
    if (clustered) out << "  }\n";
  }
  for (const auto& e : edges_) {
    out << "  n" << e.from << " -> n" << e.to << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace stampede
