#include "runtime/channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace stampede {

namespace {
/// A per-node custom operator (the paper's data-dependency parameter on
/// buffer/thread creation) overrides the runtime-wide mode — unless ARU
/// is off entirely.
aru::Mode effective_mode(aru::Mode global, const aru::CompressFn& custom) {
  if (global == aru::Mode::kOff || !custom) return global;
  return aru::Mode::kCustom;
}
}  // namespace

Channel::Channel(RunContext& ctx, NodeId id, ChannelConfig config, aru::Mode mode,
                 std::unique_ptr<Filter> filter, stats::Shard* shard)
    : ctx_(ctx),
      id_(id),
      config_(std::move(config)),
      shard_(shard),
      feedback_(effective_mode(mode, config_.custom_compress), /*is_thread=*/false,
                config_.custom_compress, std::move(filter)) {}

void Channel::register_producer(NodeId /*thread*/) { ++producer_count_; }

int Channel::register_consumer(NodeId thread, int cluster_node) {
  if (consumer_states_.size() >= static_cast<std::size_t>(kMaxConsumers)) {
    throw std::length_error("Channel: too many consumers");
  }
  consumer_states_.push_back(ConsumerState{.thread = thread, .cluster_node = cluster_node});
  const int idx = frontiers_.add_consumer();
  feedback_.add_output();
  return idx;
}

void Channel::record_locked(stats::EventType type, const Item& item, std::int64_t now,
                            NodeId node, std::int64_t a, std::int64_t b) {
  shard_->record(stats::Event{
      .type = type,
      .node = node,
      .ts = item.ts(),
      .item = item.id(),
      .t = now,
      .a = a,
      .b = b,
  });
}

bool Channel::all_passed(const Entry& e) const {
  const std::uint64_t passed = e.consumed_mask | e.skipped_mask;
  const std::uint64_t all =
      consumer_states_.size() >= 64 ? ~0ULL : ((1ULL << consumer_states_.size()) - 1);
  return (passed & all) == all;
}

void Channel::collect_locked(std::int64_t now) {
  if (ctx_.gc == gc::Kind::kNone) return;
  // The frontier (min consumer guarantee) caps what may be reclaimed in
  // every mode: window/random-access consumers hold it back to keep items
  // they may re-read resident. Below the frontier, Transparent GC frees
  // entries every consumer has consumed or skipped; Dead-Timestamp GC
  // frees everything (the guarantees assert no future request).
  const Timestamp frontier = frontiers_.frontier();

  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool below_frontier = it->first < frontier;
    const bool passed = all_passed(it->second);
    const bool collectible =
        below_frontier && (passed || ctx_.gc == gc::Kind::kDeadTimestamp);
    if (!collectible) {
      ++it;
      continue;
    }
    if (it->second.consumed_mask == 0) {
      // Reclaimed without ever being consumed: this is the wasted item the
      // paper's instrumentation marks.
      record_locked(stats::EventType::kDrop, *it->second.item, now, id_);
    }
    it = entries_.erase(it);
  }
}

Channel::PutResult Channel::put(std::shared_ptr<Item> item, std::stop_token st) {
  if (!item) throw std::invalid_argument("Channel::put: null item");
  std::unique_lock<std::mutex> lock(mu_);

  PutResult result;

  // Bounded channel: classic backpressure — block until space frees up.
  if (config_.capacity > 0) {
    const Nanos wait_start = ctx_.clock->now();
    cv_.wait(lock, st, [&] { return closed_ || entries_.size() < config_.capacity; });
    result.blocked = ctx_.clock->now() - wait_start;
  }
  if (closed_ || st.stop_requested()) {
    result.channel_summary = feedback_.summary();
    return result;
  }

  const std::int64_t now = ctx_.now_ns();
  const Timestamp ts = item->ts();

  record_locked(stats::EventType::kPut, *item, now, id_);

  // Dead on arrival: a DGC frontier already guarantees no consumer will
  // ever request this timestamp.
  const bool dead = ctx_.gc == gc::Kind::kDeadTimestamp && ts < frontiers_.frontier() &&
                    !consumer_states_.empty();
  if (dead) {
    record_locked(stats::EventType::kDrop, *item, now, id_);
  } else {
    auto [it, inserted] = entries_.insert_or_assign(ts, Entry{.item = std::move(item)});
    (void)it;
    (void)inserted;
  }

  result.stored = !dead;
  result.overhead = ctx_.pressure.scan_cost(entries_.size());
  result.channel_summary = feedback_.summary();
  collect_locked(now);
  cv_.notify_all();
  return result;
}

Channel::GetResult Channel::get_latest(int consumer_idx, Nanos consumer_summary,
                                       Timestamp extra_guarantee, std::stop_token st) {
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Channel::get_latest: bad consumer index");
  }
  std::unique_lock<std::mutex> lock(mu_);
  ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
  const std::uint64_t my_bit = 1ULL << consumer_idx;

  GetResult result;

  // Feedback piggy-back: fold the consumer's summary-STP into our
  // backwardSTP vector (paper §3.3.2).
  if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
    feedback_.update_backward(consumer_idx, consumer_summary);
  }

  // DGC: raise this consumer's guarantee with its downstream knowledge.
  if (ctx_.gc == gc::Kind::kDeadTimestamp && extra_guarantee != kNoTimestamp) {
    frontiers_.raise(consumer_idx, extra_guarantee);
  }

  auto newest_unseen = [&]() -> Timestamp {
    if (entries_.empty()) return kNoTimestamp;
    const Timestamp newest = entries_.rbegin()->first;
    return newest > me.cursor ? newest : kNoTimestamp;
  };

  const Nanos wait_start = ctx_.clock->now();
  cv_.wait(lock, st, [&] { return closed_ || newest_unseen() != kNoTimestamp; });
  result.blocked = ctx_.clock->now() - wait_start;

  const Timestamp target = newest_unseen();
  if (target == kNoTimestamp) {
    return result;  // closed and drained, or stop requested
  }

  const std::int64_t now = ctx_.now_ns();

  // Mark everything older than the target (and newer than our cursor) as
  // skipped by this consumer — the paper's skip-over semantics.
  for (auto it = entries_.upper_bound(me.cursor); it != entries_.end() && it->first < target;
       ++it) {
    if ((it->second.skipped_mask & my_bit) == 0 && (it->second.consumed_mask & my_bit) == 0) {
      it->second.skipped_mask |= my_bit;
      record_locked(stats::EventType::kSkip, *it->second.item, now, me.thread);
      ++result.skipped;
    }
  }

  auto chosen = entries_.find(target);
  chosen->second.consumed_mask |= my_bit;
  result.item = chosen->second.item;
  record_locked(stats::EventType::kConsume, *result.item, now, me.thread);

  me.cursor = target;
  // The consumer will never again request a timestamp <= target.
  frontiers_.raise(consumer_idx, target + 1);

  result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                 result.item->bytes());
  result.overhead = ctx_.pressure.scan_cost(entries_.size());

  collect_locked(now);
  cv_.notify_all();  // a bounded channel may have freed space
  return result;
}

Channel::GetResult Channel::get_next(int consumer_idx, Nanos consumer_summary,
                                     Timestamp extra_guarantee, std::stop_token st) {
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Channel::get_next: bad consumer index");
  }
  std::unique_lock<std::mutex> lock(mu_);
  ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
  const std::uint64_t my_bit = 1ULL << consumer_idx;

  GetResult result;
  if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
    feedback_.update_backward(consumer_idx, consumer_summary);
  }
  if (ctx_.gc == gc::Kind::kDeadTimestamp && extra_guarantee != kNoTimestamp) {
    frontiers_.raise(consumer_idx, extra_guarantee);
  }

  auto oldest_unseen = [&]() -> Timestamp {
    const auto it = entries_.upper_bound(me.cursor);
    return it == entries_.end() ? kNoTimestamp : it->first;
  };

  const Nanos wait_start = ctx_.clock->now();
  cv_.wait(lock, st, [&] { return closed_ || oldest_unseen() != kNoTimestamp; });
  result.blocked = ctx_.clock->now() - wait_start;

  const Timestamp target = oldest_unseen();
  if (target == kNoTimestamp) return result;

  const std::int64_t now = ctx_.now_ns();
  auto chosen = entries_.find(target);
  chosen->second.consumed_mask |= my_bit;
  result.item = chosen->second.item;
  record_locked(stats::EventType::kConsume, *result.item, now, me.thread);

  me.cursor = target;
  frontiers_.raise(consumer_idx, target + 1);
  result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                 result.item->bytes());
  result.overhead = ctx_.pressure.scan_cost(entries_.size());
  collect_locked(now);
  cv_.notify_all();
  return result;
}

Channel::GetResult Channel::get_at(int consumer_idx, Timestamp ts, Nanos consumer_summary) {
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Channel::get_at: bad consumer index");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
  const std::uint64_t my_bit = 1ULL << consumer_idx;

  GetResult result;
  if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
    feedback_.update_backward(consumer_idx, consumer_summary);
  }
  const auto it = entries_.find(ts);
  if (it == entries_.end()) return result;

  const std::int64_t now = ctx_.now_ns();
  it->second.consumed_mask |= my_bit;
  result.item = it->second.item;
  record_locked(stats::EventType::kConsume, *result.item, now, me.thread);
  result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                 result.item->bytes());
  result.overhead = ctx_.pressure.scan_cost(entries_.size());
  // Random access does not move the cursor or raise any guarantee.
  return result;
}

Channel::GetResult Channel::get_nearest(int consumer_idx, Timestamp ts, Timestamp tolerance,
                                        Nanos consumer_summary) {
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Channel::get_nearest: bad consumer index");
  }
  if (tolerance < 0) throw std::invalid_argument("Channel::get_nearest: negative tolerance");
  const std::lock_guard<std::mutex> lock(mu_);
  const ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
  const std::uint64_t my_bit = 1ULL << consumer_idx;

  GetResult result;
  if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
    feedback_.update_backward(consumer_idx, consumer_summary);
  }
  if (entries_.empty()) return result;

  // Candidates: the first entry at/after ts, and its predecessor.
  auto best = entries_.end();
  Timestamp best_dist = 0;
  const auto after = entries_.lower_bound(ts);
  auto consider = [&](std::map<Timestamp, Entry>::iterator it) {
    if (it == entries_.end()) return;
    const Timestamp dist = it->first >= ts ? it->first - ts : ts - it->first;
    if (dist > tolerance) return;
    // Prefer smaller distance; on ties prefer the newer timestamp.
    if (best == entries_.end() || dist < best_dist ||
        (dist == best_dist && it->first > best->first)) {
      best = it;
      best_dist = dist;
    }
  };
  consider(after);
  if (after != entries_.begin()) consider(std::prev(after));
  if (best == entries_.end()) return result;

  const std::int64_t now = ctx_.now_ns();
  best->second.consumed_mask |= my_bit;
  result.item = best->second.item;
  record_locked(stats::EventType::kConsume, *result.item, now, me.thread);
  result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                 result.item->bytes());
  result.overhead = ctx_.pressure.scan_cost(entries_.size());
  return result;
}

Channel::WindowResult Channel::get_window(int consumer_idx, std::size_t window,
                                          Nanos consumer_summary, std::stop_token st) {
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Channel::get_window: bad consumer index");
  }
  if (window == 0) throw std::invalid_argument("Channel::get_window: window must be > 0");
  std::unique_lock<std::mutex> lock(mu_);
  ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
  const std::uint64_t my_bit = 1ULL << consumer_idx;

  WindowResult result;
  if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
    feedback_.update_backward(consumer_idx, consumer_summary);
  }

  auto newest_unseen = [&]() -> Timestamp {
    if (entries_.empty()) return kNoTimestamp;
    const Timestamp newest = entries_.rbegin()->first;
    return newest > me.cursor ? newest : kNoTimestamp;
  };

  const Nanos wait_start = ctx_.clock->now();
  cv_.wait(lock, st, [&] { return closed_ || newest_unseen() != kNoTimestamp; });
  result.blocked = ctx_.clock->now() - wait_start;

  const Timestamp target = newest_unseen();
  if (target == kNoTimestamp) return result;

  const std::int64_t now = ctx_.now_ns();

  // Collect the newest `window` entries, ascending.
  auto it = entries_.find(target);
  std::vector<std::shared_ptr<const Item>> items;
  items.push_back(it->second.item);
  while (items.size() < window && it != entries_.begin()) {
    --it;
    items.push_back(it->second.item);
  }
  std::reverse(items.begin(), items.end());
  result.items = std::move(items);

  // Mark intermediate unseen items (between cursor and target) that are
  // not part of the window as skipped; consume the newest.
  const Timestamp window_tail = result.items.front()->ts();
  for (auto jt = entries_.upper_bound(me.cursor); jt != entries_.end() && jt->first < target;
       ++jt) {
    if (jt->first >= window_tail) continue;  // still observable via the window
    if ((jt->second.skipped_mask & my_bit) == 0 && (jt->second.consumed_mask & my_bit) == 0) {
      jt->second.skipped_mask |= my_bit;
      record_locked(stats::EventType::kSkip, *jt->second.item, now, me.thread);
    }
  }
  auto chosen = entries_.find(target);
  chosen->second.consumed_mask |= my_bit;
  record_locked(stats::EventType::kConsume, *chosen->second.item, now, me.thread);

  me.cursor = target;
  // Hold the guarantee back at the window tail so the window's older
  // members stay collectible only once they fall out of every window.
  frontiers_.raise(consumer_idx, window_tail);

  result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                 chosen->second.item->bytes());
  result.overhead = ctx_.pressure.scan_cost(entries_.size());
  collect_locked(now);
  cv_.notify_all();
  return result;
}

void Channel::raise_guarantee(int consumer_idx, Timestamp g) {
  if (consumer_idx < 0 || static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range("Channel::raise_guarantee: bad consumer index");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  frontiers_.raise(consumer_idx, g);
  // Mark now-dead, never-touched entries as skipped by this consumer so
  // Transparent GC can also reclaim them.
  const std::uint64_t my_bit = 1ULL << consumer_idx;
  const std::int64_t now = ctx_.now_ns();
  for (auto it = entries_.begin(); it != entries_.end() && it->first < g; ++it) {
    if ((it->second.skipped_mask & my_bit) == 0 && (it->second.consumed_mask & my_bit) == 0) {
      it->second.skipped_mask |= my_bit;
      record_locked(stats::EventType::kSkip, *it->second.item, now,
                    consumer_states_[static_cast<std::size_t>(consumer_idx)].thread);
    }
  }
  collect_locked(now);
  cv_.notify_all();
}

Timestamp Channel::latest_ts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? kNoTimestamp : entries_.rbegin()->first;
}

void Channel::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t Channel::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Timestamp Channel::frontier() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return frontiers_.frontier();
}

Nanos Channel::summary() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return feedback_.summary();
}

std::size_t Channel::consumers() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return consumer_states_.size();
}

}  // namespace stampede
