#include "runtime/channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "telemetry/registry.hpp"

namespace stampede {

namespace {
/// A per-node custom operator (the paper's data-dependency parameter on
/// buffer/thread creation) overrides the runtime-wide mode — unless ARU
/// is off entirely.
aru::Mode effective_mode(aru::Mode global, const aru::CompressFn& custom) {
  if (global == aru::Mode::kOff || !custom) return global;
  return aru::Mode::kCustom;
}

/// Per-thread scratch for event batches: channel ops never nest on one
/// thread, so each op can borrow the buffer without allocating.
std::vector<stats::Event>& tl_event_batch() {
  static thread_local std::vector<stats::Event> batch;
  return batch;
}

/// Per-thread scratch for items collected under mu_. Their payload
/// release (pool lock + accounting) must wait until the channel lock is
/// dropped, so ops clear() the scratch — destroying the items — after
/// flush_events(); the vector's capacity persists across operations.
std::vector<std::shared_ptr<Item>>& tl_reclaimed() {
  static thread_local std::vector<std::shared_ptr<Item>> v;
  return v;
}
}  // namespace

Channel::Channel(RunContext& ctx, NodeId id, ChannelConfig config, aru::Mode mode,
                 std::unique_ptr<Filter> filter, stats::Shard* shard)
    : ctx_(ctx),
      id_(id),
      config_(std::move(config)),
      shard_(shard),
      feedback_(effective_mode(mode, config_.custom_compress), /*is_thread=*/false,
                config_.custom_compress, std::move(filter)) {
  if (ctx_.metrics != nullptr) {
    telemetry::Registry& reg = *ctx_.metrics;
    const telemetry::Registry::Labels labels = {{"channel", config_.name}};
    met_puts_ = &reg.counter("aru_channel_puts_total", "Items stored by put", labels);
    met_gets_ = &reg.counter("aru_channel_gets_total",
                             "Items delivered to consumers (all get variants)", labels);
    met_drops_ = &reg.counter(
        "aru_channel_drops_total",
        "Wasted items: dead-on-arrival puts and entries reclaimed unconsumed",
        labels);
    met_occupancy_ = &reg.gauge("aru_channel_occupancy", "Stored items", labels);
    met_frontier_ =
        &reg.gauge("aru_channel_frontier_ts", "Dead-timestamp GC frontier", labels);
    feedback_.bind_gauges(
        nullptr, &reg.gauge("aru_channel_summary_stp_ns",
                            "Channel summary-STP propagated upstream (0 = unknown)",
                            labels));
  }
}

void Channel::register_producer(NodeId /*thread*/) {
  // Registration happens in the single-threaded construction phase, but
  // taking the lock keeps the guarded-member annotations sound (and the
  // cost is irrelevant off the data plane).
  const util::MutexLock lock(mu_);
  ++producer_count_;
}

int Channel::register_consumer(NodeId thread, int cluster_node) {
  const util::MutexLock lock(mu_);
  if (consumer_states_.size() >= static_cast<std::size_t>(kMaxConsumers)) {
    throw std::length_error("Channel: too many consumers");
  }
  consumer_states_.push_back(ConsumerState{.thread = thread, .cluster_node = cluster_node});
  const int idx = frontiers_.add_consumer();
  feedback_.add_output();
  return idx;
}

void Channel::check_consumer_locked(int consumer_idx, const char* op) const {
  if (consumer_idx < 0 ||
      static_cast<std::size_t>(consumer_idx) >= consumer_states_.size()) {
    throw std::out_of_range(std::string(op) + ": bad consumer index");
  }
}

void Channel::add_event(EventBatch& events, stats::EventType type, const Item& item,
                        std::int64_t now, NodeId node, std::int64_t a, std::int64_t b) {
  events.push_back(stats::Event{
      .type = type,
      .node = node,
      .ts = item.ts(),
      .item = item.id(),
      .t = now,
      .a = a,
      .b = b,
  });
}

void Channel::flush_events(EventBatch& events) {
  if (events.empty()) return;
  {
    const util::MutexLock lock(stats_mu_);
    for (const stats::Event& e : events) shard_->record(e);
  }
  events.clear();
}

void Channel::update_gauges_locked() {
  if (met_occupancy_ == nullptr) return;
  met_occupancy_->set(static_cast<std::int64_t>(entries_.size()));
  met_frontier_->set(frontiers_.frontier());
}

void Channel::notify_waiters_locked() {
  if (waiters_ == 0) return;
  if (waiters_ == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

bool Channel::all_passed(const Entry& e) const {
  const std::uint64_t passed = e.consumed_mask | e.skipped_mask;
  const std::uint64_t all =
      consumer_states_.size() >= 64 ? ~0ULL : ((1ULL << consumer_states_.size()) - 1);
  return (passed & all) == all;
}

std::size_t Channel::lower_bound_locked(Timestamp ts) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), ts,
      [](const Entry& e, Timestamp t) { return e.ts < t; });
  return static_cast<std::size_t>(it - entries_.begin());
}

std::size_t Channel::find_locked(Timestamp ts) const {
  const std::size_t idx = lower_bound_locked(ts);
  if (idx < entries_.size() && entries_[idx].ts == ts) return idx;
  return entries_.size();
}

std::size_t Channel::collect_locked(std::int64_t now, EventBatch& events,
                                    std::vector<std::shared_ptr<Item>>& reclaimed) {
  if (ctx_.gc == gc::Kind::kNone) return 0;
  // The frontier (min consumer guarantee) caps what may be reclaimed in
  // every mode: window/random-access consumers hold it back to keep items
  // they may re-read resident. Below the frontier, Transparent GC frees
  // entries every consumer has consumed or skipped; Dead-Timestamp GC
  // frees everything (the guarantees assert no future request).
  const Timestamp frontier = frontiers_.frontier();
  if (frontier == collected_frontier_ && !gc_pending_) return 0;

  const auto dead_end = entries_.begin() +
                        static_cast<std::ptrdiff_t>(lower_bound_locked(frontier));
  std::size_t erased = 0;
  auto keep = entries_.begin();
  for (auto it = entries_.begin(); it != dead_end; ++it) {
    const bool collectible = ctx_.gc == gc::Kind::kDeadTimestamp || all_passed(*it);
    if (!collectible) {
      if (keep != it) *keep = std::move(*it);
      ++keep;
      continue;
    }
    if (it->consumed_mask == 0) {
      // Reclaimed without ever being consumed: this is the wasted item the
      // paper's instrumentation marks.
      add_event(events, stats::EventType::kDrop, *it->item, now, id_);
      if (met_drops_ != nullptr) met_drops_->add();
    }
    // Defer the payload release (and its accounting) until mu_ is dropped.
    reclaimed.push_back(std::move(it->item));
    ++erased;
  }
  entries_.erase(keep, dead_end);
  collected_frontier_ = frontier;
  gc_pending_ = false;
  return erased;
}

Channel::PutResult Channel::put(std::shared_ptr<Item> item, std::stop_token st) {
  if (!item) throw std::invalid_argument("Channel::put: null item");
  return *put_impl(std::move(item), std::move(st), /*blocking=*/true);
}

std::optional<Channel::PutResult> Channel::try_put(std::shared_ptr<Item> item) {
  if (!item) throw std::invalid_argument("Channel::try_put: null item");
  return put_impl(std::move(item), std::stop_token{}, /*blocking=*/false);
}

std::optional<Channel::PutResult> Channel::put_impl(std::shared_ptr<Item> item,
                                                    std::stop_token st, bool blocking) {
  EventBatch& events = tl_event_batch();
  events.clear();
  auto& reclaimed = tl_reclaimed();
  PutResult result;
  {
    util::UniqueLock lock(mu_);

    // Bounded channel: classic backpressure — block until space frees up
    // (or report "would block" to a non-blocking caller).
    if (config_.capacity > 0) {
      if (blocking) {
        const Nanos wait_start = ctx_.clock->now();
        ++waiters_;
        cv_.wait(lock, st, [&] {
          mu_.assert_held();  // the wait re-acquires mu_ before evaluating
          return closed_ || entries_.size() < config_.capacity;
        });
        --waiters_;
        result.blocked = ctx_.clock->now() - wait_start;
      } else if (!closed_ && entries_.size() >= config_.capacity) {
        return std::nullopt;
      }
    }
    if (closed_ || st.stop_requested()) {
      result.channel_summary = feedback_.summary();
      return result;
    }

    const std::int64_t now = ctx_.now_ns();
    const Timestamp ts = item->ts();

    // Dead on arrival: a DGC frontier already guarantees no consumer will
    // ever request this timestamp. Recorded as a tagged drop only — no put
    // event — so postmortem put/drop accounting counts the item once.
    const Timestamp frontier = frontiers_.frontier();
    const bool dead = ctx_.gc == gc::Kind::kDeadTimestamp && !consumer_states_.empty() &&
                      ts < frontier;
    if (dead) {
      add_event(events, stats::EventType::kDrop, *item, now, id_, /*a=*/1);
      if (met_drops_ != nullptr) met_drops_->add();
    } else {
      add_event(events, stats::EventType::kPut, *item, now, id_);
      if (met_puts_ != nullptr) met_puts_->add();
      if (entries_.empty() || entries_.back().ts < ts) {
        // Monotonic producer fast path.
        entries_.push_back(Entry{.ts = ts, .item = std::move(item)});
      } else {
        const std::size_t idx = lower_bound_locked(ts);
        if (idx < entries_.size() && entries_[idx].ts == ts) {
          // Same-timestamp overwrite resets the per-consumer masks, like
          // the map's insert_or_assign did.
          entries_[idx] = Entry{.ts = ts, .item = std::move(item)};
        } else {
          entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(idx),
                          Entry{.ts = ts, .item = std::move(item)});
        }
      }
      // An insert below the frontier (possible under TGC / no-consumer
      // channels) must re-arm the collector even if the frontier is
      // unchanged.
      if (ts < frontier) gc_pending_ = true;
    }

    result.stored = !dead;
    result.overhead = ctx_.pressure.scan_cost(entries_.size());
    result.channel_summary = feedback_.summary();
    const std::size_t erased = collect_locked(now, events, reclaimed);
    if (result.stored || erased > 0) notify_waiters_locked();
    update_gauges_locked();
  }
  flush_events(events);
  reclaimed.clear();  // releases the payloads (pool + accounting) outside mu_
  return result;
}

Channel::GetResult Channel::get_latest(int consumer_idx, Nanos consumer_summary,
                                       Timestamp extra_guarantee, std::stop_token st) {
  EventBatch& events = tl_event_batch();
  events.clear();
  auto& reclaimed = tl_reclaimed();
  GetResult result;
  {
    util::UniqueLock lock(mu_);
    check_consumer_locked(consumer_idx, "Channel::get_latest");
    ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
    const std::uint64_t my_bit = 1ULL << consumer_idx;

    // Feedback piggy-back: fold the consumer's summary-STP into our
    // backwardSTP vector (paper §3.3.2).
    if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
      feedback_.update_backward(consumer_idx, consumer_summary);
    }

    // DGC: raise this consumer's guarantee with its downstream knowledge.
    if (ctx_.gc == gc::Kind::kDeadTimestamp && extra_guarantee != kNoTimestamp) {
      frontiers_.raise(consumer_idx, extra_guarantee);
    }

    auto newest_unseen = [&]() -> Timestamp {
      mu_.assert_held();
      if (entries_.empty()) return kNoTimestamp;
      const Timestamp newest = entries_.back().ts;
      return newest > me.cursor ? newest : kNoTimestamp;
    };

    const Nanos wait_start = ctx_.clock->now();
    ++waiters_;
    cv_.wait(lock, st, [&] {
      mu_.assert_held();
      return closed_ || newest_unseen() != kNoTimestamp;
    });
    --waiters_;
    result.blocked = ctx_.clock->now() - wait_start;

    const Timestamp target = newest_unseen();
    if (target == kNoTimestamp) {
      return result;  // closed and drained, or stop requested
    }

    const std::int64_t now = ctx_.now_ns();
    const Timestamp pre_frontier = frontiers_.frontier();

    // Mark everything older than the target (and newer than our cursor) as
    // skipped by this consumer — the paper's skip-over semantics.
    for (std::size_t i = lower_bound_locked(me.cursor + 1);
         i < entries_.size() && entries_[i].ts < target; ++i) {
      Entry& e = entries_[i];
      if ((e.skipped_mask & my_bit) == 0 && (e.consumed_mask & my_bit) == 0) {
        e.skipped_mask |= my_bit;
        add_event(events, stats::EventType::kSkip, *e.item, now, me.thread);
        ++result.skipped;
        // A lagging consumer can mark entries already below the frontier
        // collectible without moving the frontier itself.
        if (e.ts < pre_frontier) gc_pending_ = true;
      }
    }

    Entry& chosen = entries_.back();  // target is the newest entry
    chosen.consumed_mask |= my_bit;
    result.item = chosen.item;
    add_event(events, stats::EventType::kConsume, *result.item, now, me.thread);
    if (met_gets_ != nullptr) met_gets_->add();
    if (chosen.ts < pre_frontier) gc_pending_ = true;

    me.cursor = target;
    // The consumer will never again request a timestamp <= target.
    frontiers_.raise(consumer_idx, target + 1);

    result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                   result.item->bytes());
    result.overhead = ctx_.pressure.scan_cost(entries_.size());

    const std::size_t erased = collect_locked(now, events, reclaimed);
    // A bounded channel may have freed space for blocked producers.
    if (config_.capacity > 0 && erased > 0) notify_waiters_locked();
    update_gauges_locked();
  }
  flush_events(events);
  reclaimed.clear();  // releases the payloads (pool + accounting) outside mu_
  return result;
}

Channel::GetResult Channel::get_next(int consumer_idx, Nanos consumer_summary,
                                     Timestamp extra_guarantee, std::stop_token st) {
  EventBatch& events = tl_event_batch();
  events.clear();
  auto& reclaimed = tl_reclaimed();
  GetResult result;
  {
    util::UniqueLock lock(mu_);
    check_consumer_locked(consumer_idx, "Channel::get_next");
    ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
    const std::uint64_t my_bit = 1ULL << consumer_idx;

    if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
      feedback_.update_backward(consumer_idx, consumer_summary);
    }
    if (ctx_.gc == gc::Kind::kDeadTimestamp && extra_guarantee != kNoTimestamp) {
      frontiers_.raise(consumer_idx, extra_guarantee);
    }

    auto oldest_unseen = [&]() -> std::size_t {
      mu_.assert_held();
      return lower_bound_locked(me.cursor + 1);
    };

    const Nanos wait_start = ctx_.clock->now();
    ++waiters_;
    cv_.wait(lock, st, [&] {
      mu_.assert_held();
      return closed_ || oldest_unseen() < entries_.size();
    });
    --waiters_;
    result.blocked = ctx_.clock->now() - wait_start;

    const std::size_t idx = oldest_unseen();
    if (idx >= entries_.size()) return result;

    const std::int64_t now = ctx_.now_ns();
    Entry& chosen = entries_[idx];
    const Timestamp target = chosen.ts;
    chosen.consumed_mask |= my_bit;
    result.item = chosen.item;
    add_event(events, stats::EventType::kConsume, *result.item, now, me.thread);
    if (met_gets_ != nullptr) met_gets_->add();
    if (target < frontiers_.frontier()) gc_pending_ = true;

    me.cursor = target;
    frontiers_.raise(consumer_idx, target + 1);
    result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                   result.item->bytes());
    result.overhead = ctx_.pressure.scan_cost(entries_.size());
    const std::size_t erased = collect_locked(now, events, reclaimed);
    if (config_.capacity > 0 && erased > 0) notify_waiters_locked();
    update_gauges_locked();
  }
  flush_events(events);
  reclaimed.clear();  // releases the payloads (pool + accounting) outside mu_
  return result;
}

Channel::GetResult Channel::get_at(int consumer_idx, Timestamp ts, Nanos consumer_summary) {
  EventBatch& events = tl_event_batch();
  events.clear();
  GetResult result;
  {
    const util::MutexLock lock(mu_);
    check_consumer_locked(consumer_idx, "Channel::get_at");
    const ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
    const std::uint64_t my_bit = 1ULL << consumer_idx;

    if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
      feedback_.update_backward(consumer_idx, consumer_summary);
    }
    const std::size_t idx = find_locked(ts);
    if (idx >= entries_.size()) return result;

    const std::int64_t now = ctx_.now_ns();
    Entry& e = entries_[idx];
    e.consumed_mask |= my_bit;
    result.item = e.item;
    add_event(events, stats::EventType::kConsume, *result.item, now, me.thread);
    if (met_gets_ != nullptr) met_gets_->add();
    // Random-access consumption can complete an entry below the frontier.
    if (e.ts < frontiers_.frontier()) gc_pending_ = true;
    result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                   result.item->bytes());
    result.overhead = ctx_.pressure.scan_cost(entries_.size());
    // Random access does not move the cursor or raise any guarantee.
  }
  flush_events(events);
  return result;
}

Channel::GetResult Channel::get_nearest(int consumer_idx, Timestamp ts, Timestamp tolerance,
                                        Nanos consumer_summary) {
  if (tolerance < 0) throw std::invalid_argument("Channel::get_nearest: negative tolerance");
  EventBatch& events = tl_event_batch();
  events.clear();
  GetResult result;
  {
    const util::MutexLock lock(mu_);
    check_consumer_locked(consumer_idx, "Channel::get_nearest");
    const ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
    const std::uint64_t my_bit = 1ULL << consumer_idx;

    if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
      feedback_.update_backward(consumer_idx, consumer_summary);
    }
    if (entries_.empty()) return result;

    // Candidates: the first entry at/after ts, and its predecessor.
    std::size_t best = entries_.size();
    Timestamp best_dist = 0;
    const std::size_t after = lower_bound_locked(ts);
    auto consider = [&](std::size_t idx) {
      if (idx >= entries_.size()) return;
      const Timestamp ets = entries_[idx].ts;
      const Timestamp dist = ets >= ts ? ets - ts : ts - ets;
      if (dist > tolerance) return;
      // Prefer smaller distance; on ties prefer the newer timestamp.
      if (best >= entries_.size() || dist < best_dist ||
          (dist == best_dist && ets > entries_[best].ts)) {
        best = idx;
        best_dist = dist;
      }
    };
    consider(after);
    if (after > 0) consider(after - 1);
    if (best >= entries_.size()) return result;

    const std::int64_t now = ctx_.now_ns();
    Entry& e = entries_[best];
    e.consumed_mask |= my_bit;
    result.item = e.item;
    add_event(events, stats::EventType::kConsume, *result.item, now, me.thread);
    if (met_gets_ != nullptr) met_gets_->add();
    if (e.ts < frontiers_.frontier()) gc_pending_ = true;
    result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                   result.item->bytes());
    result.overhead = ctx_.pressure.scan_cost(entries_.size());
  }
  flush_events(events);
  return result;
}

Channel::WindowResult Channel::get_window(int consumer_idx, std::size_t window,
                                          Nanos consumer_summary, std::stop_token st) {
  if (window == 0) throw std::invalid_argument("Channel::get_window: window must be > 0");
  EventBatch& events = tl_event_batch();
  events.clear();
  auto& reclaimed = tl_reclaimed();
  WindowResult result;
  {
    util::UniqueLock lock(mu_);
    check_consumer_locked(consumer_idx, "Channel::get_window");
    ConsumerState& me = consumer_states_[static_cast<std::size_t>(consumer_idx)];
    const std::uint64_t my_bit = 1ULL << consumer_idx;

    if (ctx_.aru.enabled() && aru::known(consumer_summary)) {
      feedback_.update_backward(consumer_idx, consumer_summary);
    }

    auto newest_unseen = [&]() -> Timestamp {
      mu_.assert_held();
      if (entries_.empty()) return kNoTimestamp;
      const Timestamp newest = entries_.back().ts;
      return newest > me.cursor ? newest : kNoTimestamp;
    };

    const Nanos wait_start = ctx_.clock->now();
    ++waiters_;
    cv_.wait(lock, st, [&] {
      mu_.assert_held();
      return closed_ || newest_unseen() != kNoTimestamp;
    });
    --waiters_;
    result.blocked = ctx_.clock->now() - wait_start;

    const Timestamp target = newest_unseen();
    if (target == kNoTimestamp) return result;

    const std::int64_t now = ctx_.now_ns();
    const Timestamp pre_frontier = frontiers_.frontier();

    // Collect the newest `window` entries (the target is the back entry),
    // ascending.
    const std::size_t count = std::min(window, entries_.size());
    const std::size_t first = entries_.size() - count;
    result.items.reserve(count);
    for (std::size_t i = first; i < entries_.size(); ++i) {
      result.items.push_back(entries_[i].item);
    }

    // Mark intermediate unseen items (between cursor and target) that are
    // not part of the window as skipped; consume the newest.
    const Timestamp window_tail = entries_[first].ts;
    for (std::size_t i = lower_bound_locked(me.cursor + 1); i < first; ++i) {
      Entry& e = entries_[i];
      if (e.ts >= target) break;
      if ((e.skipped_mask & my_bit) == 0 && (e.consumed_mask & my_bit) == 0) {
        e.skipped_mask |= my_bit;
        add_event(events, stats::EventType::kSkip, *e.item, now, me.thread);
        if (e.ts < pre_frontier) gc_pending_ = true;
      }
    }
    Entry& chosen = entries_.back();
    chosen.consumed_mask |= my_bit;
    add_event(events, stats::EventType::kConsume, *chosen.item, now, me.thread);
    if (met_gets_ != nullptr) met_gets_->add();
    if (chosen.ts < pre_frontier) gc_pending_ = true;

    me.cursor = target;
    // Hold the guarantee back at the window tail so the window's older
    // members stay collectible only once they fall out of every window.
    frontiers_.raise(consumer_idx, window_tail);

    result.transfer = ctx_.topology->transfer_time(config_.cluster_node, me.cluster_node,
                                                   chosen.item->bytes());
    result.overhead = ctx_.pressure.scan_cost(entries_.size());
    const std::size_t erased = collect_locked(now, events, reclaimed);
    if (config_.capacity > 0 && erased > 0) notify_waiters_locked();
    update_gauges_locked();
  }
  flush_events(events);
  reclaimed.clear();  // releases the payloads (pool + accounting) outside mu_
  return result;
}

void Channel::raise_guarantee(int consumer_idx, Timestamp g) {
  EventBatch& events = tl_event_batch();
  events.clear();
  auto& reclaimed = tl_reclaimed();
  {
    const util::MutexLock lock(mu_);
    check_consumer_locked(consumer_idx, "Channel::raise_guarantee");
    frontiers_.raise(consumer_idx, g);
    // Mark now-dead, never-touched entries as skipped by this consumer so
    // Transparent GC can also reclaim them.
    const std::uint64_t my_bit = 1ULL << consumer_idx;
    const std::int64_t now = ctx_.now_ns();
    const Timestamp frontier = frontiers_.frontier();
    const std::size_t dead_end = lower_bound_locked(g);
    for (std::size_t i = 0; i < dead_end; ++i) {
      Entry& e = entries_[i];
      if ((e.skipped_mask & my_bit) == 0 && (e.consumed_mask & my_bit) == 0) {
        e.skipped_mask |= my_bit;
        add_event(events, stats::EventType::kSkip, *e.item, now,
                  consumer_states_[static_cast<std::size_t>(consumer_idx)].thread);
        if (e.ts < frontier) gc_pending_ = true;
      }
    }
    const std::size_t erased = collect_locked(now, events, reclaimed);
    if (config_.capacity > 0 && erased > 0) notify_waiters_locked();
    update_gauges_locked();
  }
  flush_events(events);
  reclaimed.clear();  // releases the payloads (pool + accounting) outside mu_
}

Timestamp Channel::latest_ts() const {
  const util::MutexLock lock(mu_);
  return entries_.empty() ? kNoTimestamp : entries_.back().ts;
}

bool Channel::ready(int consumer_idx) const {
  const util::MutexLock lock(mu_);
  check_consumer_locked(consumer_idx, "ready");
  if (closed_) return true;
  if (entries_.empty()) return false;
  return entries_.back().ts >
         consumer_states_[static_cast<std::size_t>(consumer_idx)].cursor;
}

bool Channel::closed() const {
  const util::MutexLock lock(mu_);
  return closed_;
}

void Channel::close() {
  const util::MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t Channel::size() const {
  const util::MutexLock lock(mu_);
  return entries_.size();
}

Timestamp Channel::frontier() const {
  const util::MutexLock lock(mu_);
  return frontiers_.frontier();
}

Nanos Channel::summary() const {
  const util::MutexLock lock(mu_);
  return feedback_.summary();
}

std::vector<Nanos> Channel::backward_stp() const {
  const util::MutexLock lock(mu_);
  const auto view = feedback_.backward();
  return {view.begin(), view.end()};
}

void Channel::backward_stp_into(std::vector<Nanos>& out) const {
  const util::MutexLock lock(mu_);
  const auto view = feedback_.backward();
  out.assign(view.begin(), view.end());
}

std::size_t Channel::consumers() const {
  const util::MutexLock lock(mu_);
  return consumer_states_.size();
}

std::size_t Channel::producers() const {
  const util::MutexLock lock(mu_);
  return producer_count_;
}

}  // namespace stampede
