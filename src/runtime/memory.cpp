#include "runtime/memory.hpp"

#include <stdexcept>

namespace stampede {

const char* to_string_impl(int);  // (no-op guard against empty TU warnings)

MemoryTracker::MemoryTracker(int cluster_nodes) : nodes_(cluster_nodes) {
  if (cluster_nodes <= 0) {
    throw std::invalid_argument("MemoryTracker: cluster node count must be positive");
  }
  per_node_ = std::make_unique<std::atomic<std::int64_t>[]>(static_cast<std::size_t>(cluster_nodes));
  for (int i = 0; i < cluster_nodes; ++i) per_node_[i].store(0, std::memory_order_relaxed);
}

void MemoryTracker::on_alloc(int node, std::int64_t bytes) {
  if (node < 0 || node >= nodes_) throw std::out_of_range("MemoryTracker: bad node");
  per_node_[node].fetch_add(bytes, std::memory_order_relaxed);
  const std::int64_t now = total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update.
  std::int64_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::on_free(int node, std::int64_t bytes) {
  if (node < 0 || node >= nodes_) throw std::out_of_range("MemoryTracker: bad node");
  per_node_[node].fetch_sub(bytes, std::memory_order_relaxed);
  total_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::int64_t MemoryTracker::node_bytes(int node) const {
  if (node < 0 || node >= nodes_) throw std::out_of_range("MemoryTracker: bad node");
  return per_node_[node].load(std::memory_order_relaxed);
}

}  // namespace stampede
