/// \file memory.hpp
/// \brief Live memory accounting, per virtual cluster node and global.
///
/// Every item payload registers its size on allocation and deregisters on
/// release; the tracker feeds (a) the pressure model (per-node resident
/// bytes) and (b) live diagnostics. The authoritative footprint *metrics*
/// (time-weighted mean/σ, Figs. 6, 8, 9) are computed postmortem from
/// alloc/free trace events, not from this tracker.
///
/// Thread-safety: fully lock-free. All counters are relaxed atomics —
/// they are monotonic tallies with no cross-counter invariant a reader
/// could observe torn (node/total/peak may be mutually stale by a few
/// operations, which the pressure model tolerates by design). The peak
/// is maintained with a CAS loop so concurrent allocations can never
/// lower it. Item destructors call on_free from arbitrary threads,
/// sometimes under a channel lock — keeping this class lock-free keeps
/// it off the lock hierarchy entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace stampede {

class MemoryTracker {
 public:
  /// \param cluster_nodes number of virtual cluster nodes being tracked.
  explicit MemoryTracker(int cluster_nodes);

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void on_alloc(int node, std::int64_t bytes);
  void on_free(int node, std::int64_t bytes);

  /// Resident bytes on one cluster node.
  std::int64_t node_bytes(int node) const;

  /// Resident bytes across the whole cluster.
  std::int64_t total_bytes() const { return total_.load(std::memory_order_relaxed); }

  /// High-water mark of total_bytes().
  std::int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Payload-pool retention accounting: bytes parked in free lists, ready
  /// for reuse but resident in no item. Deliberately NOT part of
  /// total_bytes() — the pressure model and footprint metrics measure the
  /// paper's live item footprint; retained slabs are an implementation
  /// cache that diagnostics can read separately.
  void on_pool_cached(std::int64_t delta) {
    pool_cached_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t pool_cached_bytes() const {
    return pool_cached_.load(std::memory_order_relaxed);
  }

  int nodes() const { return nodes_; }

 private:
  int nodes_;
  std::unique_ptr<std::atomic<std::int64_t>[]> per_node_;
  std::atomic<std::int64_t> total_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::int64_t> pool_cached_{0};
};

}  // namespace stampede
