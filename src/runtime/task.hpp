/// \file task.hpp
/// \brief Task execution context: the API a pipeline-stage body programs
///        against, plus the per-iteration ARU bookkeeping.
///
/// A task is the paper's "thread": a loop that repeatedly gets the latest
/// data from its input buffers, processes it, and puts new data into its
/// output buffers. The runtime drives the loop; the body is a callable
/// invoked once per iteration. `periodicity_sync()` — the API call the
/// paper added to Stampede (§4) — closes an iteration: it measures the
/// current-STP, folds it into the node's summary-STP, and paces the thread
/// (sleeps) when ARU says production should slow down.
///
/// Body convention for compute/waste accounting: emulate the stage cost
/// with `compute(...)` (and/or run real kernels timed by the runtime),
/// then `make_item(...)`, fill the payload, and `put(...)`. Compute
/// accumulated since the previous make_item is attributed as the new
/// item's production cost.
#pragma once

#include <functional>
#include <memory>
#include <stop_token>
#include <string>
#include <vector>

#include "core/feedback.hpp"
#include "core/stp.hpp"
#include "runtime/channel.hpp"
#include "runtime/queue.hpp"
#include "runtime/remote.hpp"
#include "util/rng.hpp"

namespace stampede {

class TaskContext;

/// Result of one body invocation.
enum class TaskStatus {
  kContinue,  ///< run another iteration
  kDone,      ///< task finished voluntarily (e.g. produced all frames)
};

/// One pipeline-stage iteration.
using TaskBody = std::function<TaskStatus(TaskContext&)>;

struct TaskConfig {
  std::string name;
  int cluster_node = 0;
  TaskBody body;
  /// Custom compress operator for this thread node (ARU kCustom mode).
  aru::CompressFn custom_compress;
};

class TaskContext {
 public:
  TaskContext(RunContext& run, NodeId id, TaskConfig config, aru::Mode mode,
              std::unique_ptr<Filter> filter, stats::Shard* shard, std::uint64_t seed);

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

  // -- data plane (called from the body) -------------------------------------

  /// Fetches the latest unseen item from input `idx` (blocking). Returns
  /// nullptr when the runtime is stopping or the upstream closed — the
  /// body should then return TaskStatus::kDone.
  std::shared_ptr<const Item> get(std::size_t idx);

  /// In-order access: the oldest unseen item from input `idx` (blocking,
  /// never skips). Channel inputs only.
  std::shared_ptr<const Item> get_next(std::size_t idx);

  /// Random access: the item with exactly timestamp `ts` from input
  /// `idx`, or nullptr if not (or no longer) stored. Non-blocking;
  /// channel inputs only.
  std::shared_ptr<const Item> get_at(std::size_t idx, Timestamp ts);

  /// Nearest-timestamp random access: the stored item closest to `ts`
  /// within ±`tolerance` (paper §1 footnote's "close enough within a
  /// pre-defined threshold"), or nullptr. Non-blocking; channel inputs
  /// only.
  std::shared_ptr<const Item> get_nearest(std::size_t idx, Timestamp ts,
                                          Timestamp tolerance);

  /// Sliding-window access: blocks for a new item on input `idx`, then
  /// returns the newest `window` stored items in ascending timestamp
  /// order (channel inputs only). See Channel::get_window.
  std::vector<std::shared_ptr<const Item>> get_window(std::size_t idx, std::size_t window);

  /// Declares this task done with all items below `ts` on channel input
  /// `idx` — required for inputs accessed only via get_at, whose cursor
  /// (and therefore GC guarantee) never advances otherwise.
  void release_until(std::size_t idx, Timestamp ts);

  /// Emulates `cost` of stage work (sleeps or spins per the runtime's
  /// CostMode) and accounts it toward the next produced item.
  void compute(Nanos cost);

  /// Accounts externally timed work (e.g. a real pixel kernel measured by
  /// the caller) without emulating it again.
  void account_compute(Nanos cost);

  /// DGC computation elimination (paper §3.2): true if at least one output
  /// buffer still wants timestamp `ts`. When false, the body should skip
  /// the stage work and call `elide(saved_cost)`.
  bool outputs_want(Timestamp ts) const;

  /// Records an elided (saved) computation of `saved` nanoseconds.
  void elide(Nanos saved);

  /// Creates a timestamped output item of `bytes`, charged to this task's
  /// cluster node; `lineage` lists the input items it derives from.
  /// Applies the allocation-pressure cost.
  std::shared_ptr<Item> make_item(Timestamp ts, std::size_t bytes,
                                  std::vector<ItemId> lineage);

  /// Puts `item` into output `idx`, receiving the buffer's summary-STP
  /// feedback (paper §3.3.2 piggy-backing). Returns false if the buffer
  /// rejected the item (runtime stopping).
  bool put(std::size_t idx, std::shared_ptr<Item> item);

  /// Marks a pipeline result: `source` reached the end of the pipeline.
  /// Sinks call this once per displayed/committed result.
  void emit(const Item& source);

  /// Marks one sink refresh (one *output frame* in the paper's throughput
  /// sense). A sink combining several results per refresh (e.g. the GUI
  /// showing both tracked models) calls emit() per result but display()
  /// once per refresh; throughput and jitter are computed over displays
  /// when any were recorded.
  void display(Timestamp newest_ts);

  /// Ends the current iteration: measures current-STP, updates the
  /// summary-STP, and paces the thread when ARU calls for it. The runtime
  /// invokes this automatically after the body returns; a body may also
  /// call it manually (the paper's convention) — the automatic call then
  /// becomes a no-op for that iteration.
  void periodicity_sync();

  // -- environment ------------------------------------------------------------

  /// True when the runtime is shutting down; long-running bodies should
  /// poll this and return kDone.
  bool stopping() const;

  Clock& clock() const { return *run_.clock; }
  Nanos now() const { return run_.clock->now(); }
  Xoshiro256& rng() { return rng_; }
  NodeId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  int cluster_node() const { return config_.cluster_node; }
  std::size_t inputs() const { return inputs_.size(); }
  std::size_t outputs() const { return outputs_.size(); }

  /// Iterations completed so far.
  std::int64_t iterations() const { return meter_.iterations(); }

  /// Current ARU view (diagnostics/tests).
  const aru::FeedbackState& feedback() const { return feedback_; }
  Nanos current_stp() const { return meter_.current_stp(); }

  /// Opens a new loop iteration. Normally the runtime's loop driver calls
  /// this before each body invocation; loop-style threads (the spd facade)
  /// call it from periodicity_sync to start their next iteration.
  void begin_iteration();

 private:
  friend class Runtime;

  struct InputPort {
    Channel* channel = nullptr;
    Queue* queue = nullptr;
    RemoteEndpoint* remote = nullptr;
    int consumer_idx = 0;
    /// Remote copy held on this task's cluster node (Stampede materializes
    /// transferred items locally); replaced on the next remote fetch from
    /// this port, released at task end.
    std::shared_ptr<const Item> replica;
  };
  struct OutputPort {
    Channel* channel = nullptr;
    Queue* queue = nullptr;
    RemoteEndpoint* remote = nullptr;
    int feedback_slot = 0;
  };

  // Runtime-side wiring/driving (construction and thread loop).
  void add_input(Channel& ch);
  void add_input(Queue& q);
  void add_input(RemoteEndpoint& remote);
  void add_output(Channel& ch);
  void add_output(Queue& q);
  void add_output(RemoteEndpoint& remote);
  void set_source(bool is_source) { is_source_ = is_source; }
  void run_loop(std::stop_token st);

  /// Accounts a freshly transferred remote copy on this node's memory,
  /// replacing the port's previous replica.
  void hold_replica(InputPort& port, std::shared_ptr<const Item> item);
  void drop_replica(InputPort& port);
  void drop_all_replicas();

  void realize_cost(Nanos d);
  void apply_overhead(Nanos d);
  void record(stats::EventType type, std::int64_t a = 0, std::int64_t b = 0,
              ItemId item = 0, Timestamp ts = kNoTimestamp);

  RunContext& run_;
  NodeId id_;
  TaskConfig config_;
  stats::Shard* shard_;
  Xoshiro256 rng_;

  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;

  aru::StpMeter meter_;
  aru::FeedbackState feedback_;
  bool is_source_ = false;
  bool synced_this_iteration_ = false;
  Nanos unattributed_compute_{0};
  std::stop_token stop_token_;
};

}  // namespace stampede
