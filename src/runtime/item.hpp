/// \file item.hpp
/// \brief Timestamped data item — the unit of communication, accounting
///        and garbage collection.
///
/// An item owns its payload bytes — a pooled `PayloadBuffer` drawn from
/// the run's `PayloadPool` (always: the silent plain-heap fallback for a
/// pool-less context was a per-item allocation on the hot path, flagged
/// by aru-analyze and removed — contexts must provide a pool).
/// Channels and consumers share ownership via shared_ptr; the memory is
/// accounted as *freed* when the last reference drops (exactly when the
/// bytes become reclaimable), which the destructor reports to the
/// MemoryTracker and the trace — and that same last-reference drop is
/// what recycles the payload slab into the pool.
///
/// Payloads are NOT zero-filled: every producer overwrites its payload
/// before putting the item (vision's stride-grid discipline keeps readers
/// on exactly the bytes writers touched). Debug builds poison fresh
/// payloads with 0xA5 instead (see PoolConfig::poison).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/pool.hpp"
#include "runtime/types.hpp"
#include "util/static_annotations.hpp"

namespace stampede {

class Item {
 public:
  /// Creates an item and accounts its allocation (tracker + trace).
  ///
  /// \param ctx          run services; must outlive the item.
  /// \param ts           virtual timestamp.
  /// \param bytes        payload size (uninitialized; producer overwrites).
  /// \param producer     producing thread node.
  /// \param cluster_node virtual cluster node charged for the memory.
  /// \param lineage      ids of the input items this one was derived from.
  /// \param produce_cost compute time spent producing it (trace metadata).
  ARU_HOT_PATH Item(RunContext& ctx, Timestamp ts, std::size_t bytes, NodeId producer,
                    int cluster_node, std::vector<ItemId> lineage, Nanos produce_cost);

  /// Accounts the release (tracker + trace). May run on any thread.
  ~Item();

  Item(const Item&) = delete;
  Item& operator=(const Item&) = delete;

  ItemId id() const { return id_; }
  Timestamp ts() const { return ts_; }
  /// Logical payload size as requested — not the (rounded) slab size.
  std::size_t bytes() const { return data_.size(); }
  NodeId producer() const { return producer_; }
  int cluster_node() const { return cluster_node_; }
  Nanos produce_cost() const { return produce_cost_; }

  /// Sets the production cost after the fact (the runtime attributes
  /// accumulated compute when the item is put into its buffer).
  void set_produce_cost(Nanos cost) { produce_cost_ = cost; }
  std::int64_t t_alloc() const { return t_alloc_; }
  const std::vector<ItemId>& lineage() const { return lineage_; }

  /// Payload access. Producers fill the payload before putting the item
  /// into a channel; after that, consumers only use the const view.
  std::span<std::byte> mutable_data() { return data_.span(); }
  std::span<const std::byte> data() const { return data_.span(); }

 private:
  RunContext& ctx_;
  ItemId id_;
  Timestamp ts_;
  NodeId producer_;
  int cluster_node_;
  Nanos produce_cost_;
  std::int64_t t_alloc_;
  std::vector<ItemId> lineage_;
  PayloadBuffer data_;
};

}  // namespace stampede
