/// \file item.hpp
/// \brief Timestamped data item — the unit of communication, accounting
///        and garbage collection.
///
/// An item owns its payload bytes. Channels and consumers share ownership
/// via shared_ptr; the memory is accounted as *freed* when the last
/// reference drops (exactly when the bytes become reclaimable), which the
/// destructor reports to the MemoryTracker and the trace.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/types.hpp"

namespace stampede {

class Item {
 public:
  /// Creates an item and accounts its allocation (tracker + trace).
  ///
  /// \param ctx          run services; must outlive the item.
  /// \param ts           virtual timestamp.
  /// \param bytes        payload size (zero-filled).
  /// \param producer     producing thread node.
  /// \param cluster_node virtual cluster node charged for the memory.
  /// \param lineage      ids of the input items this one was derived from.
  /// \param produce_cost compute time spent producing it (trace metadata).
  Item(RunContext& ctx, Timestamp ts, std::size_t bytes, NodeId producer,
       int cluster_node, std::vector<ItemId> lineage, Nanos produce_cost);

  /// Accounts the release (tracker + trace). May run on any thread.
  ~Item();

  Item(const Item&) = delete;
  Item& operator=(const Item&) = delete;

  ItemId id() const { return id_; }
  Timestamp ts() const { return ts_; }
  std::size_t bytes() const { return data_.size(); }
  NodeId producer() const { return producer_; }
  int cluster_node() const { return cluster_node_; }
  Nanos produce_cost() const { return produce_cost_; }

  /// Sets the production cost after the fact (the runtime attributes
  /// accumulated compute when the item is put into its buffer).
  void set_produce_cost(Nanos cost) { produce_cost_ = cost; }
  std::int64_t t_alloc() const { return t_alloc_; }
  const std::vector<ItemId>& lineage() const { return lineage_; }

  /// Payload access. Producers fill the payload before putting the item
  /// into a channel; after that, consumers only use the const view.
  std::span<std::byte> mutable_data() { return data_; }
  std::span<const std::byte> data() const { return data_; }

 private:
  RunContext& ctx_;
  ItemId id_;
  Timestamp ts_;
  NodeId producer_;
  int cluster_node_;
  Nanos produce_cost_;
  std::int64_t t_alloc_;
  std::vector<ItemId> lineage_;
  std::vector<std::byte> data_;
};

}  // namespace stampede
