/// \file runtime.hpp
/// \brief The Stampede-style runtime: owns the task graph, buffers,
///        threads, clock, accounting and the ARU/GC configuration.
///
/// Typical use:
/// \code
///   Runtime rt({.aru = {.mode = aru::Mode::kMax}, .gc = gc::Kind::kDeadTimestamp});
///   Channel& frames = rt.add_channel({.name = "frames"});
///   TaskContext& dig = rt.add_task({.name = "digitizer", .body = digitizer_body});
///   TaskContext& trk = rt.add_task({.name = "tracker", .body = tracker_body});
///   rt.connect(dig, frames);   // dig produces into frames
///   rt.connect(frames, trk);   // trk consumes frames (input port 0)
///   rt.start();
///   rt.wait_emits(100, seconds(30));
///   rt.stop();
///   stats::Trace trace = rt.take_trace();
/// \endcode
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/topology.hpp"
#include "runtime/channel.hpp"
#include "runtime/graph.hpp"
#include "runtime/pool.hpp"
#include "runtime/queue.hpp"
#include "runtime/task.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stampede {

struct RuntimeConfig {
  /// Clock driving all timing; defaults to the process steady clock.
  Clock* clock = nullptr;
  aru::Config aru;
  gc::Kind gc = gc::Kind::kDeadTimestamp;
  CostMode cost_mode = CostMode::kSleep;
  cluster::Topology topology = cluster::Topology::single_node();
  PressureModel pressure;
  /// Preemption-burst injection (heavy-tailed STP noise, paper §3.3.2).
  SchedulerNoise sched_noise;
  /// Payload buffer pool tuning (retention cap, debug poison).
  PoolConfig pool;
  /// Master seed; each task derives its own deterministic stream.
  std::uint64_t seed = 1;
  /// When positive, a monitor thread samples every channel's occupancy and
  /// the per-node footprints into the trace (kGauge events) at this period.
  Nanos monitor_period{0};
  /// Live telemetry exposition (telemetry/exporter.hpp). Negative =
  /// disabled (the registry still collects; nothing is served). 0 = bind
  /// an ephemeral port, read back via Runtime::metrics_port(). start()
  /// throws if the bind fails.
  std::int32_t metrics_port = -1;
  /// Bind address for the metrics endpoint (loopback by default; set
  /// "0.0.0.0" to expose it off-host).
  std::string metrics_host = "127.0.0.1";
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // -- graph construction (before start) --------------------------------------

  Channel& add_channel(ChannelConfig config);
  Queue& add_queue(QueueConfig config);
  TaskContext& add_task(TaskConfig config);

  /// Producer edge: `task` puts into `buffer` (output ports are indexed in
  /// connect order).
  void connect(TaskContext& task, Channel& channel);
  void connect(TaskContext& task, Queue& queue);

  /// Consumer edge: `task` reads `buffer` (input ports indexed in order).
  void connect(Channel& channel, TaskContext& task);
  void connect(Queue& queue, TaskContext& task);

  // -- distributed pipelines (src/net) ----------------------------------------

  /// Registers a graph node that stands in for an entity living in another
  /// process: a remote channel proxy (kChannel) or a remote peer thread
  /// (kThread). The node gets a trace name and participates in graph
  /// validation but owns no local storage. Returns the assigned id.
  NodeId add_remote_node(const std::string& name, NodeKind kind);

  /// Registers an edge touching a remote node (e.g. remote producer →
  /// local channel). Both ids must already be registered.
  void add_remote_edge(NodeId from, NodeId to);

  /// Producer edge into a remote channel: `task` puts into `remote`.
  void connect(TaskContext& task, RemoteEndpoint& remote);

  /// Consumer edge from a remote channel: `task` reads `remote`.
  void connect(RemoteEndpoint& remote, TaskContext& task);

  // -- execution ---------------------------------------------------------------

  /// Validates the graph and launches one thread per task.
  void start();

  /// Blocks until at least `n` sink emissions were recorded or `timeout`
  /// elapses; returns whether the target was reached. (Counts emissions
  /// since runtime construction.)
  bool wait_emits(std::int64_t n, Nanos timeout);

  /// Runs for (roughly) `d` of clock time, then returns (runtime keeps
  /// running; call stop()).
  void run_for(Nanos d);

  /// Requests all tasks to stop, closes all buffers, joins all threads.
  /// Idempotent and safe to call from several control threads (the first
  /// caller joins; later callers see the stopped state). Must NOT be
  /// called from inside a task body — it joins the task threads.
  void stop();

  /// Graceful shutdown: closes all buffers *without* signalling tasks, so
  /// consumers drain what is already buffered (their gets return the
  /// remaining items, then null and the bodies exit with kDone), then
  /// joins everything. Returns false if draining exceeded `timeout` and a
  /// hard stop() was issued instead.
  bool drain(Nanos timeout);

  bool running() const { return running_.load(std::memory_order_acquire); }

  // -- results & introspection -------------------------------------------------

  /// Merges and returns the recorded trace (call after stop()).
  stats::Trace take_trace();

  const Graph& graph() const { return graph_; }
  MemoryTracker& memory() { return tracker_; }
  PayloadPool& payload_pool() { return pool_; }
  /// Live metrics registry (always collecting; served when metrics_port
  /// is enabled). Register run-specific series before start().
  telemetry::Registry& metrics() { return metrics_; }
  /// The bound metrics port: the configured one, or the ephemeral pick
  /// when metrics_port was 0. Zero before start() or when disabled.
  std::uint16_t metrics_port() const {
    return exporter_ ? exporter_->port() : 0;
  }
  stats::Recorder& recorder() { return recorder_; }
  Clock& clock() { return *run_.clock; }
  const RunContext& context() const { return run_; }
  /// Mutable run services for the net layer (item materialization on the
  /// receive path needs the tracker/recorder).
  RunContext& context() { return run_; }

  std::size_t channels() const { return channels_.size(); }
  std::size_t queues() const { return queues_.size(); }
  std::size_t tasks() const { return tasks_.size(); }

 private:
  NodeId next_node_id() { return static_cast<NodeId>(graph_.nodes().size()); }
  std::unique_ptr<Filter> filter_for(const std::string& override_spec) const;
  void check_mutable(const char* op) const;
  void stop_locked() REQUIRES(lifecycle_mu_);
  /// Registers the runtime-owned polled series (pool, memory) and the
  /// /status sections (channels, pool, memory). Called once from the
  /// constructor.
  void register_builtin_metrics();

  RuntimeConfig config_;
  stats::Recorder recorder_;
  MemoryTracker tracker_;
  /// Declared before (so destroyed after) every container that can hold
  /// items: an Item's destructor recycles its payload into this pool.
  PayloadPool pool_;
  /// Declared before channels_/tasks_ (destroyed after them): they hold
  /// raw pointers to series registered here. The exporter is declared
  /// after the registry so it stops serving before the registry dies.
  telemetry::Registry metrics_;
  std::unique_ptr<telemetry::Exporter> exporter_;
  RunContext run_;
  Graph graph_;

  // Graph containers are mutated only during the single-threaded
  // construction phase (enforced by check_mutable) and are read-only once
  // start() spawns threads, so they need no lock.
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<TaskContext>> tasks_;

  /// Serializes start/stop/drain transitions. Rank kLifecycle: held while
  /// closing buffers (rank kBuffer) and joining task threads — task
  /// bodies never acquire it, so the join cannot deadlock.
  mutable util::Mutex lifecycle_mu_{util::LockRank::kLifecycle, "runtime.lifecycle"};
  std::vector<std::jthread> threads_ GUARDED_BY(lifecycle_mu_);

  /// Atomic mirrors of the lifecycle state so hot-path readers
  /// (running(), check_mutable from task threads) stay lock-free.
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  std::int64_t t_start_ GUARDED_BY(lifecycle_mu_) = 0;
  std::int64_t t_stop_ GUARDED_BY(lifecycle_mu_) = 0;
};

}  // namespace stampede
