/// \file spd.hpp
/// \brief Stampede-style flat C API facade (paper §4).
///
/// The paper describes ARU's integration into Stampede's C API: a new
/// `periodicity_sync()` call that every thread invokes at the end of its
/// loop iteration, and a data-dependency parameter added to the
/// channel/queue/thread creation calls (`spd_chan_alloc()` et al.) that
/// selects the compress operator. This facade reproduces that API surface
/// on top of the C++ runtime, for ports of legacy Stampede-style code and
/// as an executable record of the published interface.
///
/// Threads are written in the paper's style — a function owning its own
/// loop, calling `spd_get_latest` / `spd_put` / `spd_periodicity_sync`:
///
/// \code
///   void tracker(spd_ctx* ctx, void* arg) {
///     while (!spd_stopping(ctx)) {
///       spd_item in;
///       if (spd_get_latest(ctx, 0, &in) != SPD_OK) break;
///       ...
///       spd_put(ctx, 0, in.ts, out_buf, out_len, &in.id, 1);
///       spd_item_release(&in);
///       spd_periodicity_sync(ctx);  // the paper's ARU call
///     }
///   }
/// \endcode
///
/// Error handling: every call returns SPD_OK or a negative error code;
/// no exceptions cross this boundary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stampede::spd {

// -- handles and codes ------------------------------------------------------------

struct spd_runtime;  ///< opaque runtime handle
struct spd_ctx;      ///< opaque per-thread context (passed to thread functions)

using spd_chan = int;    ///< channel handle (>= 0)
using spd_queue = int;   ///< queue handle (>= 0)
using spd_thread = int;  ///< thread handle (>= 0)

inline constexpr int SPD_OK = 0;
inline constexpr int SPD_ERR_ARG = -1;      ///< bad argument / handle
inline constexpr int SPD_ERR_STATE = -2;    ///< wrong lifecycle state
inline constexpr int SPD_ERR_CLOSED = -3;   ///< buffer closed / runtime stopping
inline constexpr int SPD_ERR_NOSPACE = -4;  ///< caller buffer too small
inline constexpr int SPD_ERR_INTERNAL = -5;

/// ARU mode for the whole runtime (paper: min is the safe default).
enum spd_aru_mode : int {
  SPD_ARU_OFF = 0,
  SPD_ARU_MIN = 1,
  SPD_ARU_MAX = 2,
};

/// Per-buffer data-dependency hint — the parameter the paper added to
/// `spd_chan_alloc()`: SPD_DEP_INDEPENDENT keeps the conservative min
/// operator; SPD_DEP_COMMON_SINK asserts all consumers feed one sink, so
/// the aggressive max operator is safe (paper Fig. 4).
enum spd_dependency : int {
  SPD_DEP_INDEPENDENT = 0,
  SPD_DEP_COMMON_SINK = 1,
};

/// Runtime creation attributes.
struct spd_attr {
  spd_aru_mode aru = SPD_ARU_OFF;
  int gc_dgc = 1;        ///< 1 = Dead-Timestamp GC (paper baseline), 0 = transparent
  int cluster_nodes = 1; ///< simulated cluster size (1 = shared memory)
  std::uint64_t seed = 1;
};

/// A fetched item view. `data` stays valid until spd_item_release.
struct spd_item {
  std::int64_t ts = -1;
  std::uint64_t id = 0;
  const void* data = nullptr;
  std::size_t len = 0;
  void* opaque = nullptr;  ///< internal ownership token
};

/// Thread entry point, paper style (owns its loop).
using spd_thread_fn = void (*)(spd_ctx* ctx, void* arg);

// -- lifecycle ---------------------------------------------------------------------

/// Creates a runtime. Returns nullptr on bad attributes.
spd_runtime* spd_init(const spd_attr* attr);

/// Stops (if running) and destroys the runtime and all its objects.
void spd_shutdown(spd_runtime* rt);

/// Allocates a channel on `cluster_node` with dependency hint `dep`
/// (the ARU parameter the paper added). Returns a handle or SPD_ERR_*.
spd_chan spd_chan_alloc(spd_runtime* rt, const char* name, int cluster_node,
                        spd_dependency dep);

/// Allocates a FIFO queue (exactly-once delivery) with the same ARU
/// dependency parameter. Queue handles share the channel handle space:
/// attach/get/put work identically.
spd_queue spd_queue_alloc(spd_runtime* rt, const char* name, int cluster_node,
                          spd_dependency dep);

/// Creates a thread running `fn(ctx, arg)` on `cluster_node`.
spd_thread spd_thread_create(spd_runtime* rt, const char* name, int cluster_node,
                             spd_thread_fn fn, void* arg);

/// Wires channel `ch` as the next input of thread `th` (consumer edge).
int spd_attach_input(spd_runtime* rt, spd_thread th, spd_chan ch);

/// Wires channel `ch` as the next output of thread `th` (producer edge).
int spd_attach_output(spd_runtime* rt, spd_thread th, spd_chan ch);

/// Validates the graph and starts all threads.
int spd_start(spd_runtime* rt);

/// Sleeps the calling thread for `ms` of runtime clock time.
void spd_run_ms(spd_runtime* rt, std::int64_t ms);

/// Requests stop, closes buffers, joins threads. Idempotent.
int spd_stop(spd_runtime* rt);

/// Emissions recorded so far (sink results).
std::int64_t spd_emit_count(spd_runtime* rt);

/// Renders the wired task graph as Graphviz DOT into `buf` (NUL
/// terminated). Returns the full length needed (excluding the NUL) —
/// call with buf=nullptr/len=0 to size, like snprintf.
std::int64_t spd_graph_dot(spd_runtime* rt, char* buf, std::size_t len);

// -- data plane (from within thread functions) ---------------------------------------

/// True when the thread should exit its loop.
bool spd_stopping(spd_ctx* ctx);

/// Blocking latest-item fetch from input `idx`; fills `*out`.
/// Returns SPD_OK, or SPD_ERR_CLOSED when upstream is gone.
int spd_get_latest(spd_ctx* ctx, int idx, spd_item* out);

/// Releases an item view obtained from spd_get_latest.
void spd_item_release(spd_item* item);

/// Produces an item of `len` bytes with timestamp `ts` into output `idx`;
/// `lineage` lists the input item ids it derives from.
int spd_put(spd_ctx* ctx, int idx, std::int64_t ts, const void* data, std::size_t len,
            const std::uint64_t* lineage, std::size_t lineage_len);

/// Emulates `ms` of stage computation (accounted to the next put).
void spd_compute_ms(spd_ctx* ctx, double ms);

/// Marks a result as leaving the pipeline (sinks only).
void spd_emit(spd_ctx* ctx, const spd_item* item);

/// The paper's ARU call: closes the current loop iteration — measures the
/// current-STP, refreshes the summary-STP, paces the thread if ARU says so
/// — and opens the next iteration.
void spd_periodicity_sync(spd_ctx* ctx);

}  // namespace stampede::spd
