/// \file context.hpp
/// \brief Shared run-wide services handed to channels, items and tasks.
#pragma once

#include <atomic>

#include "cluster/topology.hpp"
#include "core/policy.hpp"
#include "gc/frontier.hpp"
#include "runtime/memory.hpp"
#include "runtime/types.hpp"
#include "stats/recorder.hpp"
#include "util/clock.hpp"

namespace stampede::telemetry {
class Registry;
}  // namespace stampede::telemetry

namespace stampede {

/// Aggregates the services every runtime component needs. Owned by the
/// Runtime; outlives all channels, tasks and items of that runtime.
class PayloadPool;

struct RunContext {
  Clock* clock = nullptr;
  MemoryTracker* tracker = nullptr;
  stats::Recorder* recorder = nullptr;
  /// Live metrics registry (telemetry/registry.hpp). Always set by the
  /// Runtime; components register their series at construction time and
  /// keep the returned pointers for hot-path increments. Null only in
  /// hand-rolled test fixtures that bypass Runtime.
  telemetry::Registry* metrics = nullptr;
  /// Payload buffer pool items allocate from (runtime/pool.hpp). Must be
  /// set before any Item is constructed: there is deliberately no heap
  /// fallback (a pool-less context would silently re-introduce a per-item
  /// allocation on the hot path — aru-analyze's hot-path purity rule).
  /// Fixtures that want heap behavior use a pool with
  /// `max_retained_bytes = 0`, which recycles nothing.
  PayloadPool* pool = nullptr;
  const cluster::Topology* topology = nullptr;
  PressureModel pressure;
  SchedulerNoise sched_noise;
  CostMode cost_mode = CostMode::kSleep;
  gc::Kind gc = gc::Kind::kDeadTimestamp;
  aru::Config aru;

  /// Set once when the runtime begins shutting down.
  std::atomic<bool> stopping{false};

  std::int64_t now_ns() const { return clock->now().count(); }
};

}  // namespace stampede
