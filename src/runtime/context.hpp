/// \file context.hpp
/// \brief Shared run-wide services handed to channels, items and tasks.
#pragma once

#include <atomic>

#include "cluster/topology.hpp"
#include "core/policy.hpp"
#include "gc/frontier.hpp"
#include "runtime/memory.hpp"
#include "runtime/types.hpp"
#include "stats/recorder.hpp"
#include "util/clock.hpp"

namespace stampede {

/// Aggregates the services every runtime component needs. Owned by the
/// Runtime; outlives all channels, tasks and items of that runtime.
class PayloadPool;

struct RunContext {
  Clock* clock = nullptr;
  MemoryTracker* tracker = nullptr;
  stats::Recorder* recorder = nullptr;
  /// Payload buffer pool items allocate from (runtime/pool.hpp). May be
  /// null — items then fall back to plain heap slabs (still no zero-fill).
  PayloadPool* pool = nullptr;
  const cluster::Topology* topology = nullptr;
  PressureModel pressure;
  SchedulerNoise sched_noise;
  CostMode cost_mode = CostMode::kSleep;
  gc::Kind gc = gc::Kind::kDeadTimestamp;
  aru::Config aru;

  /// Set once when the runtime begins shutting down.
  std::atomic<bool> stopping{false};

  std::int64_t now_ns() const { return clock->now().count(); }
};

}  // namespace stampede
