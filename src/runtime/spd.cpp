#include "runtime/spd.hpp"

#include <cstring>
#include <memory>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/log.hpp"

namespace stampede::spd {

namespace {

struct ThreadSpec {
  spd_thread_fn fn = nullptr;
  void* arg = nullptr;
};

}  // namespace

/// Per-thread context: bridges the paper's loop style onto the runtime's
/// per-iteration body model. The TaskBody runs the user function once (it
/// owns its loop); spd_periodicity_sync closes one iteration and opens the
/// next.
struct spd_ctx {
  TaskContext* task = nullptr;
};

struct spd_runtime {
  explicit spd_runtime(const RuntimeConfig& cfg) : runtime(cfg) {}

  /// Channels and queues share one handle space.
  struct Buffer {
    Channel* channel = nullptr;
    Queue* queue = nullptr;
  };

  Runtime runtime;
  std::vector<Buffer> buffers;
  std::vector<TaskContext*> threads;
  std::vector<std::unique_ptr<spd_ctx>> contexts;
  bool started = false;
};

spd_runtime* spd_init(const spd_attr* attr) {
  const spd_attr defaults;
  const spd_attr& a = attr != nullptr ? *attr : defaults;
  if (a.cluster_nodes <= 0) return nullptr;

  RuntimeConfig cfg;
  switch (a.aru) {
    case SPD_ARU_OFF: cfg.aru.mode = aru::Mode::kOff; break;
    case SPD_ARU_MIN: cfg.aru.mode = aru::Mode::kMin; break;
    case SPD_ARU_MAX: cfg.aru.mode = aru::Mode::kMax; break;
    default: return nullptr;
  }
  cfg.gc = a.gc_dgc != 0 ? gc::Kind::kDeadTimestamp : gc::Kind::kTransparent;
  cfg.seed = a.seed;
  if (a.cluster_nodes > 1) {
    cfg.topology =
        cluster::Topology::uniform(a.cluster_nodes, cluster::Topology::gigabit_link());
  }
  try {
    return new spd_runtime(cfg);
  } catch (const std::exception& e) {
    STAMPEDE_LOG(kError) << "spd_init: " << e.what();
    return nullptr;
  }
}

void spd_shutdown(spd_runtime* rt) {
  if (rt == nullptr) return;
  rt->runtime.stop();
  delete rt;
}

spd_chan spd_chan_alloc(spd_runtime* rt, const char* name, int cluster_node,
                        spd_dependency dep) {
  if (rt == nullptr || name == nullptr) return SPD_ERR_ARG;
  try {
    ChannelConfig cfg{.name = name, .cluster_node = cluster_node};
    // The paper's dependency parameter: a common-sink assertion upgrades
    // this buffer's compress operator from min to max.
    if (dep == SPD_DEP_COMMON_SINK) {
      cfg.custom_compress = aru::compress_max;
    } else if (rt->runtime.context().aru.mode == aru::Mode::kCustom) {
      cfg.custom_compress = aru::compress_min;
    }
    Channel& ch = rt->runtime.add_channel(std::move(cfg));
    rt->buffers.push_back({.channel = &ch});
    return static_cast<spd_chan>(rt->buffers.size()) - 1;
  } catch (const std::exception& e) {
    STAMPEDE_LOG(kError) << "spd_chan_alloc: " << e.what();
    return SPD_ERR_STATE;
  }
}

spd_queue spd_queue_alloc(spd_runtime* rt, const char* name, int cluster_node,
                          spd_dependency dep) {
  if (rt == nullptr || name == nullptr) return SPD_ERR_ARG;
  try {
    QueueConfig cfg{.name = name, .cluster_node = cluster_node};
    if (dep == SPD_DEP_COMMON_SINK) cfg.custom_compress = aru::compress_max;
    Queue& q = rt->runtime.add_queue(std::move(cfg));
    rt->buffers.push_back({.queue = &q});
    return static_cast<spd_queue>(rt->buffers.size()) - 1;
  } catch (const std::exception& e) {
    STAMPEDE_LOG(kError) << "spd_queue_alloc: " << e.what();
    return SPD_ERR_STATE;
  }
}

spd_thread spd_thread_create(spd_runtime* rt, const char* name, int cluster_node,
                             spd_thread_fn fn, void* arg) {
  if (rt == nullptr || name == nullptr || fn == nullptr) return SPD_ERR_ARG;
  try {
    rt->contexts.push_back(std::make_unique<spd_ctx>());
    spd_ctx* ctx = rt->contexts.back().get();
    const ThreadSpec spec{fn, arg};
    TaskContext& task = rt->runtime.add_task(
        {.name = name, .cluster_node = cluster_node, .body = [ctx, spec](TaskContext& tc) {
           // Paper style: the user function owns its loop; one TaskBody
           // invocation runs it to completion.
           ctx->task = &tc;
           spec.fn(ctx, spec.arg);
           return TaskStatus::kDone;
         }});
    rt->threads.push_back(&task);
    return static_cast<spd_thread>(rt->threads.size()) - 1;
  } catch (const std::exception& e) {
    STAMPEDE_LOG(kError) << "spd_thread_create: " << e.what();
    return SPD_ERR_STATE;
  }
}

namespace {

bool valid_chan(const spd_runtime* rt, spd_chan ch) {
  return ch >= 0 && static_cast<std::size_t>(ch) < rt->buffers.size();
}
bool valid_thread(const spd_runtime* rt, spd_thread th) {
  return th >= 0 && static_cast<std::size_t>(th) < rt->threads.size();
}

}  // namespace

int spd_attach_input(spd_runtime* rt, spd_thread th, spd_chan ch) {
  if (rt == nullptr || !valid_thread(rt, th) || !valid_chan(rt, ch)) return SPD_ERR_ARG;
  try {
    const auto& buf = rt->buffers[static_cast<std::size_t>(ch)];
    TaskContext& task = *rt->threads[static_cast<std::size_t>(th)];
    if (buf.channel != nullptr) {
      rt->runtime.connect(*buf.channel, task);
    } else {
      rt->runtime.connect(*buf.queue, task);
    }
    return SPD_OK;
  } catch (const std::exception&) {
    return SPD_ERR_STATE;
  }
}

int spd_attach_output(spd_runtime* rt, spd_thread th, spd_chan ch) {
  if (rt == nullptr || !valid_thread(rt, th) || !valid_chan(rt, ch)) return SPD_ERR_ARG;
  try {
    const auto& buf = rt->buffers[static_cast<std::size_t>(ch)];
    TaskContext& task = *rt->threads[static_cast<std::size_t>(th)];
    if (buf.channel != nullptr) {
      rt->runtime.connect(task, *buf.channel);
    } else {
      rt->runtime.connect(task, *buf.queue);
    }
    return SPD_OK;
  } catch (const std::exception&) {
    return SPD_ERR_STATE;
  }
}

int spd_start(spd_runtime* rt) {
  if (rt == nullptr) return SPD_ERR_ARG;
  if (rt->started) return SPD_ERR_STATE;
  try {
    rt->runtime.start();
    rt->started = true;
    return SPD_OK;
  } catch (const std::exception& e) {
    STAMPEDE_LOG(kError) << "spd_start: " << e.what();
    return SPD_ERR_STATE;
  }
}

void spd_run_ms(spd_runtime* rt, std::int64_t ms) {
  if (rt == nullptr) return;
  rt->runtime.clock().sleep_for(millis(ms));
}

int spd_stop(spd_runtime* rt) {
  if (rt == nullptr) return SPD_ERR_ARG;
  rt->runtime.stop();
  return SPD_OK;
}

std::int64_t spd_emit_count(spd_runtime* rt) {
  return rt == nullptr ? 0 : rt->runtime.recorder().emits();
}

std::int64_t spd_graph_dot(spd_runtime* rt, char* buf, std::size_t len) {
  if (rt == nullptr) return SPD_ERR_ARG;
  const std::string dot = rt->runtime.graph().to_dot();
  if (buf != nullptr && len > 0) {
    const std::size_t n = std::min(len - 1, dot.size());
    std::memcpy(buf, dot.data(), n);
    buf[n] = '\0';
  }
  return static_cast<std::int64_t>(dot.size());
}

bool spd_stopping(spd_ctx* ctx) {
  return ctx == nullptr || ctx->task == nullptr || ctx->task->stopping();
}

int spd_get_latest(spd_ctx* ctx, int idx, spd_item* out) {
  if (ctx == nullptr || ctx->task == nullptr || out == nullptr || idx < 0) return SPD_ERR_ARG;
  try {
    auto item = ctx->task->get(static_cast<std::size_t>(idx));
    if (!item) return SPD_ERR_CLOSED;
    out->ts = item->ts();
    out->id = item->id();
    out->data = item->data().data();
    out->len = item->bytes();
    // Transfer ownership of one shared_ptr reference into the view.
    out->opaque = new std::shared_ptr<const Item>(std::move(item));
    return SPD_OK;
  } catch (const std::exception&) {
    return SPD_ERR_ARG;
  }
}

void spd_item_release(spd_item* item) {
  if (item == nullptr || item->opaque == nullptr) return;
  delete static_cast<std::shared_ptr<const Item>*>(item->opaque);
  item->opaque = nullptr;
  item->data = nullptr;
  item->len = 0;
}

int spd_put(spd_ctx* ctx, int idx, std::int64_t ts, const void* data, std::size_t len,
            const std::uint64_t* lineage, std::size_t lineage_len) {
  if (ctx == nullptr || ctx->task == nullptr || idx < 0) return SPD_ERR_ARG;
  if (len > 0 && data == nullptr) return SPD_ERR_ARG;
  try {
    std::vector<ItemId> parents(lineage, lineage + (lineage != nullptr ? lineage_len : 0));
    auto item = ctx->task->make_item(ts, len, std::move(parents));
    if (len > 0) std::memcpy(item->mutable_data().data(), data, len);
    return ctx->task->put(static_cast<std::size_t>(idx), std::move(item)) ? SPD_OK
                                                                          : SPD_ERR_CLOSED;
  } catch (const std::exception&) {
    return SPD_ERR_ARG;
  }
}

void spd_compute_ms(spd_ctx* ctx, double ms) {
  if (ctx == nullptr || ctx->task == nullptr) return;
  ctx->task->compute(from_millis(ms));
}

void spd_emit(spd_ctx* ctx, const spd_item* item) {
  if (ctx == nullptr || ctx->task == nullptr || item == nullptr || item->opaque == nullptr) {
    return;
  }
  const auto& shared = *static_cast<std::shared_ptr<const Item>*>(item->opaque);
  ctx->task->emit(*shared);
}

void spd_periodicity_sync(spd_ctx* ctx) {
  if (ctx == nullptr || ctx->task == nullptr) return;
  // Close this loop iteration (STP measurement, summary update, pacing)
  // and open the next one — the paper's end-of-loop convention.
  ctx->task->periodicity_sync();
  ctx->task->begin_iteration();
}

}  // namespace stampede::spd
