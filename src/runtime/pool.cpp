#include "runtime/pool.hpp"

#include <bit>
#include <cstring>
#include <memory>

#include "runtime/memory.hpp"

namespace stampede {
namespace {

/// Fresh slab, explicitly NOT value-initialized: make_unique would zero
/// the pages, which is exactly the cost the pool exists to avoid.
ARU_ALLOCATES std::byte* raw_alloc(std::size_t bytes) { return new std::byte[bytes]; }

}  // namespace

void PayloadBuffer::reset() {
  if (data_ == nullptr) return;
  if (pool_ != nullptr) {
    pool_->release(data_, capacity_);
  } else {
    delete[] data_;
  }
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  pool_ = nullptr;
}

PayloadBuffer::~PayloadBuffer() { reset(); }

PayloadPool::PayloadPool(PoolConfig config, MemoryTracker* tracker)
    : config_(config), tracker_(tracker) {}

PayloadPool::~PayloadPool() {
  const util::MutexLock lock(mu_);
  for (auto& list : free_) {
    for (std::byte* slab : list) delete[] slab;
    list.clear();
  }
  if (tracker_ != nullptr && retained_bytes_ > 0) {
    tracker_->on_pool_cached(-static_cast<std::int64_t>(retained_bytes_));
  }
  retained_bytes_ = 0;
}

std::size_t PayloadPool::class_size(std::size_t bytes) {
  if (bytes == 0) return 0;
  if (bytes <= kSmallMax) {
    const std::size_t rounded = std::bit_ceil(bytes);
    return rounded < kSmallMin ? kSmallMin : rounded;
  }
  if (bytes <= kMaxPooledBytes) {
    return ((bytes + kLargeStep - 1) / kLargeStep) * kLargeStep;
  }
  return bytes;  // bypass: no rounding, no recycling
}

std::size_t PayloadPool::class_index(std::size_t class_bytes) {
  if (class_bytes <= kSmallMax) {
    // 64 → 0, 128 → 1, ..., 4096 → 6.
    return static_cast<std::size_t>(std::countr_zero(class_bytes)) - 6;
  }
  return kSmallClasses + class_bytes / kLargeStep - 1;
}

PayloadBuffer PayloadPool::acquire(std::size_t bytes) {
  if (bytes == 0) return {};
  acquires_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t cap = class_size(bytes);
  if (cap > kMaxPooledBytes) {
    // Oversized: plain heap slab, freed (not recycled) on destruction.
    misses_.fetch_add(1, std::memory_order_relaxed);
    PayloadBuffer buf(raw_alloc(cap), bytes, cap, nullptr);
    if (config_.poison) std::memset(buf.span().data(), std::to_integer<int>(kPoolPoisonByte), bytes);
    return buf;
  }

  std::byte* slab = nullptr;
  {
    const util::MutexLock lock(mu_);
    auto& list = free_[class_index(cap)];
    if (!list.empty()) {
      slab = list.back();
      list.pop_back();
      retained_bytes_ -= cap;
    }
  }
  if (slab != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (tracker_ != nullptr) tracker_->on_pool_cached(-static_cast<std::int64_t>(cap));
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    slab = raw_alloc(cap);
  }
  in_use_bytes_.fetch_add(static_cast<std::int64_t>(cap), std::memory_order_relaxed);

  PayloadBuffer buf(slab, bytes, cap, this);
  if (config_.poison) std::memset(buf.span().data(), std::to_integer<int>(kPoolPoisonByte), bytes);
  return buf;
}

PayloadBuffer PayloadPool::unpooled(std::size_t bytes) {
  if (bytes == 0) return {};
  return PayloadBuffer(raw_alloc(bytes), bytes, bytes, nullptr);
}

void PayloadPool::release(std::byte* data, std::size_t capacity) {
  releases_.fetch_add(1, std::memory_order_relaxed);
  in_use_bytes_.fetch_sub(static_cast<std::int64_t>(capacity), std::memory_order_relaxed);

  bool cached = false;
  {
    const util::MutexLock lock(mu_);
    if (retained_bytes_ + capacity <= config_.max_retained_bytes) {
      free_[class_index(capacity)].push_back(data);
      retained_bytes_ += capacity;
      cached = true;
    }
  }
  if (cached) {
    if (tracker_ != nullptr) tracker_->on_pool_cached(static_cast<std::int64_t>(capacity));
  } else {
    delete[] data;
  }
}

PayloadPool::Stats PayloadPool::stats() const {
  Stats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.in_use_bytes = in_use_bytes_.load(std::memory_order_relaxed);
  {
    const util::MutexLock lock(mu_);
    s.retained_bytes = static_cast<std::int64_t>(retained_bytes_);
  }
  return s;
}

}  // namespace stampede
