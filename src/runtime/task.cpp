#include "runtime/task.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/pacing.hpp"
#include "telemetry/registry.hpp"
#include "util/log.hpp"
#include "util/spin.hpp"

namespace stampede {

namespace {
aru::Mode effective_task_mode(aru::Mode global, const aru::CompressFn& custom) {
  if (global == aru::Mode::kOff || !custom) return global;
  return aru::Mode::kCustom;
}
}  // namespace

TaskContext::TaskContext(RunContext& run, NodeId id, TaskConfig config, aru::Mode mode,
                         std::unique_ptr<Filter> filter, stats::Shard* shard,
                         std::uint64_t seed)
    : run_(run),
      id_(id),
      config_(std::move(config)),
      shard_(shard),
      rng_(seed),
      feedback_(effective_task_mode(mode, config_.custom_compress), /*is_thread=*/true,
                config_.custom_compress, std::move(filter)) {
  if (run_.metrics != nullptr) {
    const telemetry::Registry::Labels labels = {{"task", config_.name}};
    feedback_.bind_gauges(
        &run_.metrics->gauge("aru_task_current_stp_ns",
                             "Measured current-STP of this thread node (0 = unknown)",
                             labels),
        &run_.metrics->gauge(
            "aru_task_summary_stp_ns",
            "Summary-STP this thread node propagates upstream (0 = unknown)",
            labels));
  }
}

void TaskContext::add_input(Channel& ch) {
  const int idx = ch.register_consumer(id_, config_.cluster_node);
  inputs_.push_back(InputPort{.channel = &ch, .consumer_idx = idx});
}

void TaskContext::add_input(Queue& q) {
  const int idx = q.register_consumer(id_, config_.cluster_node);
  inputs_.push_back(InputPort{.queue = &q, .consumer_idx = idx});
}

void TaskContext::add_input(RemoteEndpoint& remote) {
  inputs_.push_back(InputPort{.remote = &remote});
}

void TaskContext::add_output(Channel& ch) {
  ch.register_producer(id_);
  const int slot = feedback_.add_output();
  outputs_.push_back(OutputPort{.channel = &ch, .feedback_slot = slot});
}

void TaskContext::add_output(Queue& q) {
  q.register_producer(id_);
  const int slot = feedback_.add_output();
  outputs_.push_back(OutputPort{.queue = &q, .feedback_slot = slot});
}

void TaskContext::add_output(RemoteEndpoint& remote) {
  const int slot = feedback_.add_output();
  outputs_.push_back(OutputPort{.remote = &remote, .feedback_slot = slot});
}

void TaskContext::record(stats::EventType type, std::int64_t a, std::int64_t b,
                         ItemId item, Timestamp ts) {
  shard_->record(stats::Event{
      .type = type, .node = id_, .ts = ts, .item = item, .t = run_.now_ns(), .a = a, .b = b});
}

void TaskContext::realize_cost(Nanos d) {
  if (d.count() <= 0) return;
  if (run_.cost_mode == CostMode::kSleep) {
    run_.clock->sleep_for(d);
  } else {
    busy_spin_for(*run_.clock, d);
  }
}

void TaskContext::apply_overhead(Nanos d) {
  if (d.count() <= 0) return;
  realize_cost(d);
  record(stats::EventType::kOverhead, d.count());
}

void TaskContext::hold_replica(InputPort& port, std::shared_ptr<const Item> item) {
  drop_replica(port);
  const auto bytes = static_cast<std::int64_t>(item->bytes());
  run_.tracker->on_alloc(config_.cluster_node, bytes);
  record(stats::EventType::kReplicate, bytes, config_.cluster_node, item->id(), item->ts());
  port.replica = std::move(item);
}

void TaskContext::drop_replica(InputPort& port) {
  if (!port.replica) return;
  const auto bytes = static_cast<std::int64_t>(port.replica->bytes());
  run_.tracker->on_free(config_.cluster_node, bytes);
  record(stats::EventType::kReplicaFree, bytes, config_.cluster_node, port.replica->id(),
         port.replica->ts());
  port.replica.reset();
}

void TaskContext::drop_all_replicas() {
  for (InputPort& port : inputs_) drop_replica(port);
}

bool TaskContext::stopping() const {
  return run_.stopping.load(std::memory_order_relaxed) ||
         (stop_token_.stop_possible() && stop_token_.stop_requested());
}

std::shared_ptr<const Item> TaskContext::get(std::size_t idx) {
  if (idx >= inputs_.size()) throw std::out_of_range("TaskContext::get: bad input index");
  InputPort& port = inputs_[idx];

  // DGC: propagate downstream knowledge upstream — the lowest output
  // timestamp our own consumers still want bounds what inputs we need.
  Timestamp extra = kNoTimestamp;
  if (run_.gc == gc::Kind::kDeadTimestamp && !outputs_.empty()) {
    bool all_channels = true;
    Timestamp lo = std::numeric_limits<Timestamp>::max();
    for (const OutputPort& out : outputs_) {
      if (out.channel == nullptr) {
        all_channels = false;
        break;
      }
      lo = std::min(lo, out.channel->frontier());
    }
    if (all_channels && lo != std::numeric_limits<Timestamp>::max()) extra = lo;
  }

  const Nanos my_summary = run_.aru.enabled() ? feedback_.summary() : aru::kUnknownStp;

  std::shared_ptr<const Item> item;
  Nanos blocked{0};
  Nanos transfer{0};
  Nanos overhead{0};
  if (port.channel != nullptr) {
    auto res = port.channel->get_latest(port.consumer_idx, my_summary, extra, stop_token_);
    item = std::move(res.item);
    blocked = res.blocked;
    transfer = res.transfer;
    overhead = res.overhead;
  } else if (port.remote != nullptr) {
    // Real network transfer: the RPC's wall time already contains the
    // transfer, so only blocked time is accounted (no simulated cost).
    auto res = port.remote->get_latest(my_summary, extra, stop_token_);
    item = std::move(res.item);
    blocked = res.blocked;
  } else {
    auto res = port.queue->get(port.consumer_idx, my_summary, stop_token_);
    item = std::move(res.item);
    blocked = res.blocked;
    transfer = res.transfer;
    overhead = res.overhead;
  }

  if (blocked.count() > 0) {
    meter_.add_blocked(blocked);
    record(stats::EventType::kBlocked, blocked.count());
  }
  if (item && transfer.count() > 0) {
    realize_cost(transfer);
    record(stats::EventType::kTransfer, transfer.count(),
           static_cast<std::int64_t>(item->bytes()), item->id(), item->ts());
    hold_replica(port, item);
  }
  apply_overhead(overhead);
  return item;
}

std::shared_ptr<const Item> TaskContext::get_next(std::size_t idx) {
  if (idx >= inputs_.size()) throw std::out_of_range("TaskContext::get_next: bad input index");
  InputPort& port = inputs_[idx];
  if (port.channel == nullptr) {
    throw std::logic_error("TaskContext::get_next: input is not a channel");
  }
  const Nanos my_summary = run_.aru.enabled() ? feedback_.summary() : aru::kUnknownStp;
  auto res = port.channel->get_next(port.consumer_idx, my_summary, kNoTimestamp, stop_token_);
  if (res.blocked.count() > 0) {
    meter_.add_blocked(res.blocked);
    record(stats::EventType::kBlocked, res.blocked.count());
  }
  if (res.item && res.transfer.count() > 0) {
    realize_cost(res.transfer);
    record(stats::EventType::kTransfer, res.transfer.count(),
           static_cast<std::int64_t>(res.item->bytes()), res.item->id(), res.item->ts());
    hold_replica(port, res.item);
  }
  apply_overhead(res.overhead);
  return res.item;
}

std::shared_ptr<const Item> TaskContext::get_at(std::size_t idx, Timestamp ts) {
  if (idx >= inputs_.size()) throw std::out_of_range("TaskContext::get_at: bad input index");
  InputPort& port = inputs_[idx];
  if (port.channel == nullptr) {
    throw std::logic_error("TaskContext::get_at: input is not a channel");
  }
  const Nanos my_summary = run_.aru.enabled() ? feedback_.summary() : aru::kUnknownStp;
  auto res = port.channel->get_at(port.consumer_idx, ts, my_summary);
  if (res.item && res.transfer.count() > 0) {
    realize_cost(res.transfer);
    record(stats::EventType::kTransfer, res.transfer.count(),
           static_cast<std::int64_t>(res.item->bytes()), res.item->id(), res.item->ts());
    hold_replica(port, res.item);
  }
  apply_overhead(res.overhead);
  return res.item;
}

std::shared_ptr<const Item> TaskContext::get_nearest(std::size_t idx, Timestamp ts,
                                                     Timestamp tolerance) {
  if (idx >= inputs_.size()) {
    throw std::out_of_range("TaskContext::get_nearest: bad input index");
  }
  InputPort& port = inputs_[idx];
  if (port.channel == nullptr) {
    throw std::logic_error("TaskContext::get_nearest: input is not a channel");
  }
  const Nanos my_summary = run_.aru.enabled() ? feedback_.summary() : aru::kUnknownStp;
  auto res = port.channel->get_nearest(port.consumer_idx, ts, tolerance, my_summary);
  if (res.item && res.transfer.count() > 0) {
    realize_cost(res.transfer);
    record(stats::EventType::kTransfer, res.transfer.count(),
           static_cast<std::int64_t>(res.item->bytes()), res.item->id(), res.item->ts());
    hold_replica(port, res.item);
  }
  apply_overhead(res.overhead);
  return res.item;
}

std::vector<std::shared_ptr<const Item>> TaskContext::get_window(std::size_t idx,
                                                                 std::size_t window) {
  if (idx >= inputs_.size()) {
    throw std::out_of_range("TaskContext::get_window: bad input index");
  }
  InputPort& port = inputs_[idx];
  if (port.channel == nullptr) {
    throw std::logic_error("TaskContext::get_window: input is not a channel");
  }
  const Nanos my_summary = run_.aru.enabled() ? feedback_.summary() : aru::kUnknownStp;
  auto res = port.channel->get_window(port.consumer_idx, window, my_summary, stop_token_);
  if (res.blocked.count() > 0) {
    meter_.add_blocked(res.blocked);
    record(stats::EventType::kBlocked, res.blocked.count());
  }
  if (!res.items.empty() && res.transfer.count() > 0) {
    const auto& newest = res.items.back();
    realize_cost(res.transfer);
    record(stats::EventType::kTransfer, res.transfer.count(),
           static_cast<std::int64_t>(newest->bytes()), newest->id(), newest->ts());
    hold_replica(port, newest);
  }
  apply_overhead(res.overhead);
  return std::move(res.items);
}

void TaskContext::release_until(std::size_t idx, Timestamp ts) {
  if (idx >= inputs_.size()) {
    throw std::out_of_range("TaskContext::release_until: bad input index");
  }
  InputPort& port = inputs_[idx];
  if (port.channel == nullptr) {
    throw std::logic_error("TaskContext::release_until: input is not a channel");
  }
  port.channel->raise_guarantee(port.consumer_idx, ts);
}

void TaskContext::compute(Nanos cost) {
  if (cost.count() <= 0) return;
  // Memory-pressure dilation: computing against a bloated node-resident
  // working set is slower (see PressureModel::compute_dilation_per_mb).
  const double dil = run_.pressure.dilation(run_.tracker->node_bytes(config_.cluster_node));
  Nanos effective{static_cast<std::int64_t>(static_cast<double>(cost.count()) * dil)};
  // Scheduler noise: occasional exponential preemption burst stretches
  // this iteration (the paper's intermittent large summary-STP values).
  if (run_.sched_noise.enabled() && rng_.uniform() < run_.sched_noise.preempt_prob) {
    const double u = std::max(rng_.uniform(), 1e-12);
    const double burst =
        -std::log(u) * static_cast<double>(run_.sched_noise.slice_mean.count());
    effective += Nanos{static_cast<std::int64_t>(burst)};
  }
  realize_cost(effective);
  unattributed_compute_ += effective;
}

void TaskContext::account_compute(Nanos cost) {
  if (cost.count() > 0) unattributed_compute_ += cost;
}

bool TaskContext::outputs_want(Timestamp ts) const {
  if (run_.gc != gc::Kind::kDeadTimestamp) return true;
  if (outputs_.empty()) return true;
  for (const OutputPort& out : outputs_) {
    if (out.channel == nullptr) return true;  // queues: no frontier knowledge
    if (out.channel->frontier() <= ts) return true;
  }
  return false;
}

void TaskContext::elide(Nanos saved) {
  record(stats::EventType::kElide, saved.count());
}

std::shared_ptr<Item> TaskContext::make_item(Timestamp ts, std::size_t bytes,
                                             std::vector<ItemId> lineage) {
  // Allocation pressure: allocating into a bloated node costs more.
  apply_overhead(run_.pressure.alloc_cost(run_.tracker->node_bytes(config_.cluster_node)));

  auto item = std::make_shared<Item>(run_, ts, bytes, id_, config_.cluster_node,
                                     std::move(lineage), Nanos{0});
  record(stats::EventType::kAlloc, static_cast<std::int64_t>(bytes), config_.cluster_node,
         item->id(), ts);
  return item;
}

bool TaskContext::put(std::size_t idx, std::shared_ptr<Item> item) {
  if (!item) throw std::invalid_argument("TaskContext::put: null item");
  if (idx >= outputs_.size()) throw std::out_of_range("TaskContext::put: bad output index");
  OutputPort& port = outputs_[idx];

  // Attribute the compute accumulated since the last put as this item's
  // production cost (the paper's per-item wasted-computation accounting).
  const Nanos produce_cost = unattributed_compute_;
  unattributed_compute_ = Nanos{0};
  item->set_produce_cost(produce_cost);
  shard_->record_item(stats::ItemRecord{
      .id = item->id(),
      .ts = item->ts(),
      .bytes = static_cast<std::int64_t>(item->bytes()),
      .producer = id_,
      .cluster_node = config_.cluster_node,
      .t_alloc = item->t_alloc(),
      .produce_cost = produce_cost.count(),
      .lineage = item->lineage(),
  });
  if (produce_cost.count() > 0) {
    record(stats::EventType::kCompute, produce_cost.count(), 0, item->id(), item->ts());
  }

  Nanos summary{0};
  Nanos overhead{0};
  Nanos blocked{0};
  bool stored = false;
  if (port.channel != nullptr) {
    auto res = port.channel->put(std::move(item), stop_token_);
    summary = res.channel_summary;
    overhead = res.overhead;
    blocked = res.blocked;
    stored = res.stored;
  } else if (port.remote != nullptr) {
    auto res = port.remote->put(std::move(item), stop_token_);
    summary = res.summary;
    // A drop on a dead link is a successful iteration from the producer's
    // point of view: it keeps producing (and pacing against the held
    // summary-STP) rather than treating the pipeline as finished.
    stored = res.stored || res.dropped;
  } else {
    auto res = port.queue->put(std::move(item), stop_token_);
    summary = res.queue_summary;
    overhead = res.overhead;
    blocked = res.blocked;
    stored = res.stored;
  }

  if (blocked.count() > 0) {
    meter_.add_blocked(blocked);
    record(stats::EventType::kBlocked, blocked.count());
  }
  apply_overhead(overhead);

  // Backward STP propagation: the buffer's summary reaches us on the put.
  if (run_.aru.enabled() && aru::known(summary)) {
    feedback_.update_backward(port.feedback_slot, summary);
  }
  return stored;
}

void TaskContext::emit(const Item& source) {
  record(stats::EventType::kEmit, 0, 0, source.id(), source.ts());
  run_.recorder->count_emit();
}

void TaskContext::display(Timestamp newest_ts) {
  record(stats::EventType::kDisplay, 0, 0, 0, newest_ts);
}

void TaskContext::begin_iteration() {
  meter_.begin_iteration(run_.clock->now());
  synced_this_iteration_ = false;
}

void TaskContext::periodicity_sync() {
  if (synced_this_iteration_) return;
  synced_this_iteration_ = true;

  // Any residual (sink) work of this iteration counts as compute.
  if (unattributed_compute_.count() > 0) {
    record(stats::EventType::kCompute, unattributed_compute_.count());
    unattributed_compute_ = Nanos{0};
  }

  const Nanos now = run_.clock->now();
  const Nanos current = meter_.end_iteration(now);

  if (run_.aru.enabled()) {
    feedback_.set_current_stp(current);
    record(stats::EventType::kStp, current.count(), feedback_.summary().count());

    if (aru::should_pace(run_.aru, is_source_)) {
      const Nanos elapsed = now - meter_.iteration_start();
      const Nanos sleep =
          aru::pacing_sleep(feedback_.summary(), elapsed, run_.aru.pace_gain);
      if (sleep.count() > 0 && !stopping()) {
        // Pacing is idle time, never emulated work: always a real sleep.
        run_.clock->sleep_for(sleep);
        record(stats::EventType::kSleep, sleep.count());
      }
    }
  }
}

void TaskContext::run_loop(std::stop_token st) {
  stop_token_ = st;
  while (!st.stop_requested() && !run_.stopping.load(std::memory_order_relaxed)) {
    begin_iteration();
    TaskStatus status = TaskStatus::kDone;
    try {
      status = config_.body(*this);
    } catch (const std::exception& e) {
      STAMPEDE_LOG(kError) << "task '" << config_.name << "' threw: " << e.what();
      break;
    }
    periodicity_sync();
    if (status == TaskStatus::kDone) break;
  }
  drop_all_replicas();
}

}  // namespace stampede
