/// \file ablation_gc.cpp
/// \brief Garbage-collector ablation on the No-ARU tracker: no GC vs
///        Transparent GC (reachability) vs Dead-Timestamp GC (the paper's
///        DGC baseline) — and DGC's computation-elimination savings.
///
/// Reproduces the paper's §2/§3.2 positioning: GC frees waste after the
/// fact (DGC earlier than TGC thanks to propagated timestamp guarantees),
/// but cannot prevent the waste — which is ARU's job; DGC's upstream
/// computation elimination shows the "limited success" the paper reports.
///
/// Usage: ablation_gc [seconds=5] [seed=42] [csv=...]
#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Ablation — GC strategy under the unthrottled (No-ARU) tracker");
  table.set_header({"gc", "aru", "footprint (MB)", "peak (MB)", "% mem wasted",
                    "elided comp (ms)", "tput (fps)"});

  struct Config {
    gc::Kind gc;
    aru::Mode mode;
  };
  const std::vector<Config> configs{
      {gc::Kind::kNone, aru::Mode::kOff},
      {gc::Kind::kTransparent, aru::Mode::kOff},
      {gc::Kind::kDeadTimestamp, aru::Mode::kOff},
      {gc::Kind::kDeadTimestamp, aru::Mode::kMax},
  };

  for (const Config& c : configs) {
    vision::TrackerOptions opts = tracker_options_from(cli, c.mode, 1);
    // No GC grows without bound: keep that run short.
    const auto secs = cli.get_int("seconds", 5);
    opts.duration = seconds(c.gc == gc::Kind::kNone ? std::min<std::int64_t>(secs, 5) : secs);
    opts.gc = c.gc;
    std::fprintf(stderr, "  running gc=%s aru=%s...\n", gc::to_string(c.gc).c_str(),
                 aru::to_string(c.mode).c_str());
    const auto a = vision::run_tracker(opts).analysis;
    table.add_row({gc::to_string(c.gc), aru::to_string(c.mode),
                   Table::num(a.res.footprint_mb_mean),
                   Table::num(a.res.footprint_mb_peak),
                   Table::num(a.res.wasted_mem_pct, 1),
                   Table::num(a.res.elided_compute_ms, 1),
                   Table::num(a.perf.throughput_fps)});
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: without GC the footprint grows unboundedly; TGC bounds it; DGC's\n"
      "guarantees free items earlier; but only ARU (last row) removes the waste.\n");
  maybe_write_csv(cli, table);
  return 0;
}
