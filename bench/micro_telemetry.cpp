/// \file micro_telemetry.cpp
/// \brief Micro-benchmarks of the live telemetry plane: the per-event
///        cost a series increment adds to an instrumented hot path.
///
/// The registry's design target is <= ~10 ns per uncontended counter
/// increment (one relaxed fetch_add on a per-thread stripe) — cheap
/// enough that Channel/Transport hooks are unconditional. The threaded
/// variants measure what the stripes buy: kStripes cache-line-isolated
/// cells vs every thread hammering one shared atomic.
///
/// Run via bench/run_bench.sh to emit BENCH_telemetry.json at the repo
/// root — every PR appends to that perf trajectory.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "telemetry/registry.hpp"

namespace stampede::telemetry {
namespace {

/// One uncontended counter increment: the unconditional per-event cost
/// the channel/transport hooks pay.
void BM_CounterAdd(benchmark::State& state) {
  Registry reg;
  Counter& c = reg.counter("bench_total", "benchmark counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

/// Gauge store — the occupancy/STP update path.
void BM_GaugeSet(benchmark::State& state) {
  Registry reg;
  Gauge& g = reg.gauge("bench_gauge", "benchmark gauge");
  std::int64_t v = 0;
  for (auto _ : state) g.set(++v);
  benchmark::DoNotOptimize(g.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

/// Histogram observe: bounded bucket scan + two relaxed fetch_adds. The
/// arg sweeps where the value lands, i.e. how far the scan walks the
/// 8-bound rpc-latency-style bucket layout.
void BM_HistogramObserve(benchmark::State& state) {
  Registry reg;
  static constexpr std::int64_t kBounds[] = {1'000,      10'000,      100'000,
                                             1'000'000,  10'000'000,  100'000'000,
                                             1'000'000'000, 10'000'000'000};
  Histogram& h = reg.histogram("bench_hist", "benchmark histogram", kBounds);
  const std::int64_t v = state.range(0);
  for (auto _ : state) h.observe(v);
  benchmark::DoNotOptimize(h.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->Arg(500)->Arg(5'000'000)->Arg(50'000'000'000);

/// Contended striped counter: every thread increments the same series,
/// landing on its own cache-line-aligned stripe.
void BM_CounterAddStriped(benchmark::State& state) {
  static Registry reg;
  static Counter& c = reg.counter("bench_striped_total", "striped contended");
  for (auto _ : state) c.add();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddStriped)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// The naive alternative the stripes replace: all threads fetch_add one
/// shared atomic, bouncing its cache line on every increment. The gap vs
/// BM_CounterAddStriped at >1 threads is what the stripe memory buys.
void BM_CounterAddSharedAtomic(benchmark::State& state) {
  static std::atomic<std::uint64_t> shared{0};
  for (auto _ : state) shared.fetch_add(1, std::memory_order_relaxed);
  benchmark::DoNotOptimize(shared.load(std::memory_order_relaxed));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddSharedAtomic)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

/// Render cost for a realistically sized registry (what a scrape pays,
/// off the hot path, under the kTelemetry mutex): 64 counters + 16
/// gauges + 4 histograms.
void BM_RenderPrometheus(benchmark::State& state) {
  Registry reg;
  static constexpr std::int64_t kBounds[] = {1'000, 1'000'000, 1'000'000'000};
  // Labels are built by append, not `"c" + std::to_string(i)`: the
  // temporary-chain form trips GCC 12's bogus -Wrestrict at -O2
  // (PR105329) under -Werror.
  const auto label = [](const char* prefix, int i) {
    std::string s = prefix;
    s += std::to_string(i);
    return s;
  };
  for (int i = 0; i < 64; ++i) {
    reg.counter("bench_render_total", "render counter", {{"ch", label("c", i)}})
        .add(static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 16; ++i) {
    reg.gauge("bench_render_gauge", "render gauge", {{"t", label("t", i)}}).set(i);
  }
  for (int i = 0; i < 4; ++i) {
    reg.histogram("bench_render_hist", "render histogram", kBounds,
                  {{"h", label("h", i)}})
        .observe(i * 1'000);
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = reg.render_prometheus();
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["exposition_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_RenderPrometheus);

}  // namespace
}  // namespace stampede::telemetry

BENCHMARK_MAIN();
