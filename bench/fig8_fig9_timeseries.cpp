/// \file fig8_fig9_timeseries.cpp
/// \brief Regenerates paper Figures 8 and 9: memory footprint of the
///        tracker as a function of time — IGC, ARU-max, ARU-min, No-ARU
///        side by side on a shared y-scale (config 1 = Fig. 8, config 2 =
///        Fig. 9).
///
/// Prints ASCII charts (shared scale per configuration, like the paper's
/// shared axes) and optionally writes one CSV per series via csvdir=.
///
/// Usage: fig8_fig9_timeseries [seconds=8] [seed=42] [csvdir=.]
#include <array>

#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const std::string csvdir = cli.get_string("csvdir", "");
  constexpr std::size_t kWidthCols = 72;
  constexpr std::size_t kHeightRows = 9;

  for (const int config : {1, 2}) {
    std::printf("=== Fig. %d — Memory footprint over time, config %d (%s) ===\n",
                config == 1 ? 8 : 9, config,
                config == 1 ? "single node" : "five nodes");

    struct Series {
      std::string name;
      std::vector<double> values;
    };
    std::vector<Series> all;
    double y_max = 0.0;

    for (const aru::Mode mode : paper_modes()) {
      const Cell cell = run_cell(cli, mode, config);
      const std::string name =
          mode == aru::Mode::kOff ? "No ARU" : "ARU-" + aru::to_string(mode);
      // The paper's leftmost panel is the IGC bound; take it from the
      // ARU-max run (any run's trace yields the same style of bound).
      if (mode == aru::Mode::kMax) {
        all.insert(all.begin(),
                   Series{"IGC (ideal bound)",
                          cell.analysis.igc_footprint.resample(kWidthCols)});
      }
      all.push_back(Series{name, cell.analysis.footprint.resample(kWidthCols)});

      const std::string path = csvdir.empty()
                                   ? ""
                                   : csvdir + "/fig" + std::to_string(config == 1 ? 8 : 9) +
                                         "_" + aru::to_string(mode) + ".csv";
      if (!path.empty()) {
        std::ofstream out(path);
        out << cell.analysis.footprint.to_csv();
      }
    }

    for (const Series& s : all) {
      for (const double v : s.values) y_max = std::max(y_max, v);
    }

    // Paper presentation: all four panels share the same scale.
    for (const Series& s : all) {
      std::printf("--- %s (y-max %.2f MB shared) ---\n", s.name.c_str(),
                  y_max / (1024.0 * 1024.0));
      std::printf("%s", ascii_chart(s.values, kWidthCols, kHeightRows, y_max).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "shape check: IGC lowest and flat; ARU-max close above it; ARU-min higher;\n"
      "No ARU dominates the shared scale with large fluctuations (paper Figs. 8-9).\n");
  return 0;
}
