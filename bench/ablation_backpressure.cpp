/// \file ablation_backpressure.cpp
/// \brief ARU versus the modern alternative: bounded-buffer backpressure.
///
/// Today's streaming systems (Flink, Akka Streams, Reactive Streams)
/// throttle producers by bounding buffers: a full buffer blocks the
/// producer. This bench compares that baseline (bounded frames channel,
/// ARU off) against ARU's feedback pacing on the same tracker, isolating
/// what the 2005 mechanism does and doesn't buy:
///  * both eliminate unbounded overproduction;
///  * backpressure still *creates* items that later get skipped (waste)
///    and holds them in the bounded buffer (latency), while ARU prevents
///    their creation outright.
///
/// Usage: ablation_backpressure [seconds=6] [seed=42] [csv=...]
#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Ablation — ARU vs bounded-buffer backpressure");
  table.set_header({"policy", "tput (fps)", "latency (ms)", "% mem wasted",
                    "footprint (MB)", "% comp wasted"});

  struct Config {
    std::string name;
    aru::Mode mode;
    std::size_t capacity;
  };
  const std::vector<Config> configs{
      {"unbounded, no ARU", aru::Mode::kOff, 0},
      {"backpressure cap=8", aru::Mode::kOff, 8},
      {"backpressure cap=4", aru::Mode::kOff, 4},
      {"backpressure cap=2", aru::Mode::kOff, 2},
      {"ARU-min", aru::Mode::kMin, 0},
      {"ARU-max", aru::Mode::kMax, 0},
  };

  for (const Config& c : configs) {
    vision::TrackerOptions opts = tracker_options_from(cli, c.mode, 1);
    opts.duration = seconds(cli.get_int("seconds", 6));
    opts.frame_capacity = c.capacity;
    std::fprintf(stderr, "  running %s...\n", c.name.c_str());
    const auto a = vision::run_tracker(opts).analysis;
    table.add_row({c.name, Table::num(a.perf.throughput_fps),
                   Table::num(a.perf.latency_ms_mean, 0),
                   Table::num(a.res.wasted_mem_pct, 1),
                   Table::num(a.res.footprint_mb_mean),
                   Table::num(a.res.wasted_comp_pct, 1)});
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: tight caps bound the footprint like ARU does, but items are still\n"
      "produced-then-skipped (waste persists) and queue in the bounded buffer;\n"
      "ARU prevents doomed items from being created at all.\n");
  maybe_write_csv(cli, table);
  return 0;
}
