/// \file micro_kernels.cpp
/// \brief Micro-benchmarks of the vision pixel kernels on deterministic
///        scene frames, at the pipeline stride (8) and at full resolution
///        (stride 1) where per-pixel costs dominate.
///
/// Run via bench/run_bench.sh to emit BENCH_kernels.json at the repo
/// root — every PR appends to that perf trajectory.
#include <benchmark/benchmark.h>

#include <vector>

#include "vision/kernels.hpp"
#include "vision/records.hpp"

namespace stampede::vision {
namespace {

/// Deterministic frames/mask/histogram shared by all kernel benches. The
/// scene is rendered at stride 1 so stride-1 kernel runs see real pixels
/// everywhere.
struct KernelFixture {
  SceneGenerator gen{42};
  std::vector<std::byte> prev = std::vector<std::byte>(kFrameBytes);
  std::vector<std::byte> cur = std::vector<std::byte>(kFrameBytes);
  std::vector<std::byte> mask = std::vector<std::byte>(kMaskBytes);
  std::vector<std::byte> hist = std::vector<std::byte>(kHistogramBytes);

  KernelFixture() {
    gen.render(30, prev, /*stride=*/1);
    gen.render(31, cur, /*stride=*/1);
    frame_difference(ConstFrameView(cur), ConstFrameView(prev), mask, 24, 1);
    color_histogram(ConstFrameView(cur), hist, 1);
  }
};

KernelFixture& fixture() {
  static KernelFixture f;
  return f;
}

void BM_FrameDifference(benchmark::State& state) {
  KernelFixture& f = fixture();
  const int stride = static_cast<int>(state.range(0));
  std::vector<std::byte> mask(kMaskBytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        frame_difference(ConstFrameView(f.cur), ConstFrameView(f.prev), mask, 24, stride));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameDifference)->Arg(1)->Arg(8);

void BM_ColorHistogram(benchmark::State& state) {
  KernelFixture& f = fixture();
  const int stride = static_cast<int>(state.range(0));
  std::vector<std::byte> payload(kHistogramBytes);
  for (auto _ : state) {
    color_histogram(ConstFrameView(f.cur), payload, stride);
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColorHistogram)->Arg(1)->Arg(8);

void BM_DetectTarget(benchmark::State& state) {
  KernelFixture& f = fixture();
  const int stride = static_cast<int>(state.range(0));
  const Rgb model = f.gen.model_color(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_target(ConstFrameView(f.cur), f.mask,
                                           ConstHistogramView(f.hist), model, 0, stride));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectTarget)->Arg(1)->Arg(8);

/// Unmasked variant: every pixel on the stride grid is weighted — the
/// worst case for the per-pixel similarity math.
void BM_DetectTargetNoMask(benchmark::State& state) {
  KernelFixture& f = fixture();
  const int stride = static_cast<int>(state.range(0));
  const Rgb model = f.gen.model_color(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_target(ConstFrameView(f.cur), {},
                                           ConstHistogramView(f.hist), model, 0, stride));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectTargetNoMask)->Arg(1)->Arg(8);

void BM_MeanShiftTrack(benchmark::State& state) {
  KernelFixture& f = fixture();
  const int stride = static_cast<int>(state.range(0));
  const Scene truth = f.gen.scene_at(31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mean_shift_track(ConstFrameView(f.cur), f.gen.model_color(0),
                                              truth.blobs[0].cx + 20, truth.blobs[0].cy - 15,
                                              60.0, 15, stride));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeanShiftTrack)->Arg(1)->Arg(8);

void BM_ConnectedComponents(benchmark::State& state) {
  KernelFixture& f = fixture();
  const int stride = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(f.mask, stride, 2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConnectedComponents)->Arg(1)->Arg(8);

}  // namespace
}  // namespace stampede::vision

BENCHMARK_MAIN();
