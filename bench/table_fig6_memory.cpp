/// \file table_fig6_memory.cpp
/// \brief Regenerates paper Figure 6: mean/σ memory footprint (MB) of the
///        tracker under No-ARU / ARU-min / ARU-max versus the Ideal
///        Garbage Collector, in both cluster configurations, with the
///        "% w.r.t. IGC" column.
///
/// Paper reference values (their testbed):
///   cfg1: No-ARU 33.62 MB (387%), min 16.23 (187%), max 12.45 (143%), IGC 8.69 (100%)
///   cfg2: No-ARU 36.81 (341%), min 15.72 (145%), max 13.09 (121%), IGC 10.81 (100%)
/// The reproduction target is the *shape*: No-ARU ≫ min > max ≥ IGC.
///
/// Usage: table_fig6_memory [seconds=8] [repeats=1] [seed=42] [csv=...]
#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Fig. 6 — Memory footprint of the tracker vs the Ideal Garbage Collector");
  table.set_header({"config", "policy", "mem mean (MB)", "STD", "% wrt IGC"});

  for (const int config : {1, 2}) {
    double igc_mean = 0.0, igc_std = 0.0;
    for (const aru::Mode mode : paper_modes()) {
      const Cell cell = run_cell(cli, mode, config);
      const auto& res = cell.analysis.res;
      // Each run carries its own IGC bound; the paper's single IGC row is
      // the bound of the most efficient configuration (the last, ARU-max).
      igc_mean = res.igc_mb_mean;
      igc_std = res.igc_mb_std;
      const double pct = res.igc_mb_mean > 0
                             ? 100.0 * res.footprint_mb_mean / res.igc_mb_mean
                             : 0.0;
      table.add_row({"cfg" + std::to_string(config),
                     mode == aru::Mode::kOff ? "No ARU" : "ARU-" + aru::to_string(mode),
                     Table::num(res.footprint_mb_mean), Table::num(res.footprint_mb_std),
                     Table::num(pct, 0)});
    }
    table.add_row({"cfg" + std::to_string(config), "IGC", Table::num(igc_mean),
                   Table::num(igc_std), "100"});
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf("shape check: expect No ARU >> ARU-min > ARU-max >= IGC in both configs.\n");
  maybe_write_csv(cli, table);
  return 0;
}
