/// \file table_buffer_wait.cpp
/// \brief Evidence for the paper's §5.2 latency explanation: "as consumers
///        are waiting for data in buffers, items never spend time in
///        buffers themselves. This causes the observed reduced latency for
///        ARU-max."
///
/// Measures, per policy, how long items sit in each tracker channel
/// between put and (first) consumption. Expect the mean buffer residency
/// to collapse under ARU-max — the mechanism behind its Fig.-10 latency
/// win.
///
/// Usage: table_buffer_wait [seconds=6] [seed=42] [csv=...]
#include "bench_common.hpp"
#include "stats/breakdown.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Buffer residency (ms items spend in channels before consumption)");
  table.set_header({"policy", "frames wait", "masks wait", "hists wait", "loc wait",
                    "latency (ms)"});

  for (const aru::Mode mode : paper_modes()) {
    vision::TrackerOptions opts = tracker_options_from(cli, mode, 1);
    opts.duration = seconds(cli.get_int("seconds", 6));
    std::fprintf(stderr, "  running %s...\n", vision::label(opts).c_str());
    const vision::TrackerResult r = vision::run_tracker(opts);

    const stats::Analyzer analyzer(r.trace);
    const stats::Breakdown b = stats::compute_breakdown(r.trace, analyzer);
    auto wait_of = [&](const char* prefix) {
      for (const auto& buf : b.buffers) {
        if (buf.name.find(prefix) != std::string::npos) return buf.wait_ms_mean;
      }
      return 0.0;
    };
    const double loc_wait = (wait_of("loc1") + wait_of("loc2")) / 2.0;
    table.add_row({mode == aru::Mode::kOff ? "No ARU" : "ARU-" + aru::to_string(mode),
                   Table::num(wait_of("frames"), 2), Table::num(wait_of("masks"), 2),
                   Table::num(wait_of("hists"), 2), Table::num(loc_wait, 2),
                   Table::num(r.analysis.perf.latency_ms_mean, 0)});
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: ARU aligns stage rates, so a consumer is already waiting when an\n"
      "item arrives — buffer residency (and with it end-to-end latency) collapses.\n");
  maybe_write_csv(cli, table);
  return 0;
}
