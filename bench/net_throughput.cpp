/// \file net_throughput.cpp
/// \brief Loopback micro-benchmarks of the networked transport: put and
///        get round-trip latency and sustained items/bytes per second at
///        the paper's payload scales (1 KB location records up to 1 MB
///        frame-sized items).
///
/// Each benchmark stands up an in-process ChannelServer on an ephemeral
/// loopback port and drives it through a RemoteChannel proxy, so the
/// measured path is the full production stack: wire encode → TCP →
/// server decode → channel op → ack encode → TCP → proxy decode.
///
/// Run via bench/run_bench.sh to emit BENCH_net.json at the repo root.
#include <benchmark/benchmark.h>

#include <memory>
#include <stop_token>

#include "net/remote_channel.hpp"
#include "runtime/runtime.hpp"

namespace stampede {
namespace {

/// One served channel + one attached proxy on loopback.
struct Loop {
  Runtime rt;
  Channel* channel = nullptr;
  std::unique_ptr<net::ChannelServer> server;
  std::unique_ptr<net::RemoteChannel> proxy;
  std::stop_source stop;

  /// `producers`/`consumers` are the remote slot counts; the proxy claims
  /// slot 0 on each side that has one. `pooled = false` zeroes the pool's
  /// retention cap so every payload acquire on the path (producer alloc,
  /// server materialize, consumer materialize) falls through to the heap —
  /// the pre-pool behaviour, measured for the pooled-vs-unpooled series.
  /// `put_window = 0` pins the classic synchronous one-ack-per-put RPC
  /// (the round-trip baselines); BM_NetPutPipelined opens the window.
  Loop(int producers, int consumers, bool pooled = true, std::size_t put_window = 0)
      : rt(RuntimeConfig{.pool = {.max_retained_bytes =
                                      pooled ? PoolConfig{}.max_retained_bytes : 0}}) {
    channel = &rt.add_channel({.name = "bench"});
    server = std::make_unique<net::ChannelServer>(
        rt, std::vector<net::ServedChannel>{{.channel = channel,
                                             .remote_producers = producers,
                                             .remote_consumers = consumers}});
    server->start();
    proxy = std::make_unique<net::RemoteChannel>(
        rt, net::RemoteChannelConfig{
                .name = "bench",
                .transport = {.port = server->port(), .put_window = put_window},
                .producer_key = producers > 0 ? 0 : -1,
                .consumer_key = consumers > 0 ? 0 : -1,
            });
  }

  ~Loop() { server->stop(); }

  std::shared_ptr<Item> item(Timestamp ts, std::size_t bytes) {
    return std::make_shared<Item>(rt.context(), ts, bytes, /*producer=*/100,
                                  /*cluster_node=*/0, std::vector<ItemId>{}, Nanos{0});
  }
};

/// Put round trip: encode + send + server-side materialize + channel put +
/// PutAck with the folded summary-STP. The channel has no consumers, so
/// stored items die on arrival and occupancy stays flat.
void BM_NetPutRtt(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Loop loop(/*producers=*/1, /*consumers=*/0);
  Timestamp ts = 0;
  // Warm up: first put pays the connect + Hello handshake.
  (void)loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token());

  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_NetPutRtt)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// Pipelined put throughput (wire v3): puts return once queued in the
/// bounded in-flight window, envelopes batch into scatter/gather flushes,
/// and the server settles bursts with coalesced cumulative acks. Compare
/// items/s against BM_NetPutRtt at the same size to read the win over the
/// one-ack-per-put RPC.
void BM_NetPutPipelined(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Loop loop(/*producers=*/1, /*consumers=*/0, /*pooled=*/true, /*put_window=*/64);
  Timestamp ts = 0;
  // Warm up: first put pays the connect + Hello handshake.
  (void)loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token());
  loop.proxy->drain_puts(loop.stop.get_token());

  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token()));
  }
  // Settle the in-flight tail so every counted item was actually acked.
  loop.proxy->drain_puts(loop.stop.get_token());
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_NetPutPipelined)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// Get round trip: a local put makes the channel ready, then the proxy
/// pulls the item over the wire (server-side get + item payload + backward
/// summary-STP in the reply).
void BM_NetGetRtt(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Loop loop(/*producers=*/0, /*consumers=*/1);
  Timestamp ts = 0;
  loop.channel->put(loop.item(ts++, bytes), loop.stop.get_token());
  (void)loop.proxy->get_latest(aru::kUnknownStp, kNoTimestamp, loop.stop.get_token());

  for (auto _ : state) {
    loop.channel->put(loop.item(ts++, bytes), loop.stop.get_token());
    benchmark::DoNotOptimize(
        loop.proxy->get_latest(aru::kUnknownStp, kNoTimestamp, loop.stop.get_token()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_NetGetRtt)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// Producer→consumer relay through the served channel: one proxy puts,
/// another gets, so each iteration crosses the wire twice (the two-process
/// pipeline hop distributed_tracker runs at full scale).
void BM_NetPutGetPipe(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Loop loop(/*producers=*/1, /*consumers=*/1);
  Timestamp ts = 0;
  (void)loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token());
  (void)loop.proxy->get_latest(aru::kUnknownStp, kNoTimestamp, loop.stop.get_token());

  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token()));
    benchmark::DoNotOptimize(
        loop.proxy->get_latest(aru::kUnknownStp, kNoTimestamp, loop.stop.get_token()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 2 * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_NetPutGetPipe)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// The same two-hop relay with pooling disabled: every payload on the path
/// is a fresh heap allocation, as before the pool existed. Diff against
/// BM_NetPutGetPipe at the same size to read the pool's share of the net
/// win separately from the scatter-gather framing.
void BM_NetPutGetPipeUnpooled(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Loop loop(/*producers=*/1, /*consumers=*/1, /*pooled=*/false);
  Timestamp ts = 0;
  (void)loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token());
  (void)loop.proxy->get_latest(aru::kUnknownStp, kNoTimestamp, loop.stop.get_token());

  for (auto _ : state) {
    benchmark::DoNotOptimize(loop.proxy->put(loop.item(ts++, bytes), loop.stop.get_token()));
    benchmark::DoNotOptimize(
        loop.proxy->get_latest(aru::kUnknownStp, kNoTimestamp, loop.stop.get_token()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 2 * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_NetPutGetPipeUnpooled)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace stampede

BENCHMARK_MAIN();
