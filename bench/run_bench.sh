#!/usr/bin/env bash
# Runs the hot-path micro-benchmarks and emits their JSON results at the
# repo root (BENCH_channel.json / BENCH_kernels.json / BENCH_net.json).
# Every PR that touches a hot path re-runs this script and commits the
# refreshed JSON, so the perf trajectory is tracked in-tree from PR 1
# onward.
#
# Usage:
#   bench/run_bench.sh [build-dir]
#
# Environment:
#   BENCH_FILTER       --benchmark_filter regex (default: all)
#   BENCH_REPETITIONS  --benchmark_repetitions (default: 1)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

if [[ ! -x "$BUILD/bench/micro_channel" || ! -x "$BUILD/bench/micro_kernels" ||
      ! -x "$BUILD/bench/net_throughput" ]]; then
  echo "building benchmarks in $BUILD..." >&2
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" -j --target micro_channel micro_kernels net_throughput >/dev/null
fi

common_args=(
  "--benchmark_filter=${BENCH_FILTER:-.}"
  "--benchmark_repetitions=${BENCH_REPETITIONS:-1}"
  --benchmark_out_format=json
)

run() {
  local bin="$1" out="$2"
  echo "== $bin -> $out" >&2
  "$BUILD/bench/$bin" "${common_args[@]}" "--benchmark_out=$ROOT/$out"
}

run micro_channel BENCH_channel.json
run micro_kernels BENCH_kernels.json
run net_throughput BENCH_net.json

echo "wrote $ROOT/BENCH_channel.json, $ROOT/BENCH_kernels.json and $ROOT/BENCH_net.json" >&2
