#!/usr/bin/env bash
# Runs the hot-path micro-benchmarks and emits their JSON results at the
# repo root (BENCH_channel.json / BENCH_pool.json / BENCH_kernels.json /
# BENCH_net.json / BENCH_telemetry.json). Every PR that touches a hot path
# re-runs this script and commits the refreshed JSON, so the perf
# trajectory is tracked in-tree from PR 1 onward.
#
# The committed JSON is only ever produced from a Release build: the script
# reads CMAKE_BUILD_TYPE out of the build directory's CMakeCache.txt and
# refuses to write BENCH_*.json from anything else. (The JSON's own
# "library_build_type" field reports the prebuilt benchmark library, not
# this repo's flags, so it cannot serve as the gate.)
#
# Usage:
#   bench/run_bench.sh [--smoke] [build-dir]
#
#   --smoke  run every benchmark with --benchmark_min_time=0.01 and no
#            JSON output — a CI-speed smoke that the binaries still run.
#            The Release gate is skipped since nothing is recorded.
#
# Environment:
#   BENCH_FILTER       --benchmark_filter regex (default: all)
#   BENCH_REPETITIONS  --benchmark_repetitions (default: 1)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SMOKE=0
BUILD=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    -*) echo "usage: bench/run_bench.sh [--smoke] [build-dir]" >&2; exit 2 ;;
    *) BUILD="$arg" ;;
  esac
done
BUILD="${BUILD:-$ROOT/build}"

BINARIES=(micro_channel micro_pool micro_kernels net_throughput micro_telemetry)

missing=0
for bin in "${BINARIES[@]}"; do
  [[ -x "$BUILD/bench/$bin" ]] || missing=1
done
if [[ "$missing" -ne 0 ]]; then
  echo "building benchmarks in $BUILD..." >&2
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" -j --target "${BINARIES[@]}" >/dev/null
fi

if [[ "$SMOKE" -eq 0 ]]; then
  if ! grep -q '^CMAKE_BUILD_TYPE:STRING=Release$' "$BUILD/CMakeCache.txt" 2>/dev/null; then
    echo "run_bench.sh: $BUILD is not a Release build; refusing to write BENCH_*.json." >&2
    echo "  configure with: cmake --preset release   (or pass a release build dir)" >&2
    echo "  or run with --smoke to execute the benchmarks without recording." >&2
    exit 1
  fi
fi

common_args=(
  "--benchmark_filter=${BENCH_FILTER:-.}"
  "--benchmark_repetitions=${BENCH_REPETITIONS:-1}"
)

run() {
  local bin="$1" out="$2"
  if [[ "$SMOKE" -eq 1 ]]; then
    echo "== $bin (smoke)" >&2
    # bare seconds, not "0.01s": the suffixed form only parses on
    # google/benchmark >= 1.8, the bare double parses everywhere
    "$BUILD/bench/$bin" "${common_args[@]}" --benchmark_min_time=0.01
  else
    echo "== $bin -> $out" >&2
    "$BUILD/bench/$bin" "${common_args[@]}" \
      --benchmark_out_format=json "--benchmark_out=$ROOT/$out"
  fi
}

run micro_channel BENCH_channel.json
run micro_pool BENCH_pool.json
run micro_kernels BENCH_kernels.json
run net_throughput BENCH_net.json
run micro_telemetry BENCH_telemetry.json

if [[ "$SMOKE" -eq 1 ]]; then
  echo "bench smoke passed (no JSON written)" >&2
else
  echo "wrote $ROOT/BENCH_channel.json, $ROOT/BENCH_pool.json," \
       "$ROOT/BENCH_kernels.json, $ROOT/BENCH_net.json and" \
       "$ROOT/BENCH_telemetry.json" >&2
fi
