/// \file micro_channel.cpp
/// \brief Micro-benchmarks of the runtime primitives: channel put/get at
///        varying occupancy and consumer counts, in-order and windowed
///        access, GC pressure, queue ops, and item allocation at the
///        paper's payload sizes.
///
/// Run via bench/run_bench.sh to emit BENCH_channel.json at the repo
/// root — every PR appends to that perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>

#include "runtime/channel.hpp"
#include "runtime/pool.hpp"
#include "runtime/queue.hpp"
#include "vision/records.hpp"

namespace stampede {
namespace {

struct Fixture {
  ManualClock clock;
  MemoryTracker tracker{1};
  PayloadPool pool{PoolConfig{}, &tracker};
  stats::Recorder recorder;
  cluster::Topology topo = cluster::Topology::single_node();
  RunContext ctx;
  std::stop_source stop;

  Fixture() {
    ctx.clock = &clock;
    ctx.tracker = &tracker;
    ctx.pool = &pool;
    ctx.recorder = &recorder;
    ctx.topology = &topo;
    ctx.gc = gc::Kind::kDeadTimestamp;
  }

  std::shared_ptr<Item> item(Timestamp ts, std::size_t bytes = 256) {
    return std::make_shared<Item>(ctx, ts, bytes, 100, 0, std::vector<ItemId>{}, Nanos{0});
  }
};

/// Steady-state put + get_latest with `consumers` active readers while a
/// pinning consumer holds the DGC frontier `occupancy` items back, so the
/// channel stores ~`occupancy` entries throughout (the regime where
/// storage layout dominates). Args: (consumers, occupancy).
void BM_ChannelGetLatest_MultiConsumer(benchmark::State& state) {
  Fixture f;
  Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
             f.recorder.new_shard());
  const int n = static_cast<int>(state.range(0));
  const Timestamp occupancy = state.range(1);
  std::vector<int> consumers;
  for (int i = 0; i < n; ++i) consumers.push_back(ch.register_consumer(200 + i, 0));
  const int pin = ch.register_consumer(300, 0);

  // Pre-fill to the target occupancy so the first timed iteration already
  // runs at depth.
  Timestamp ts = 0;
  for (; ts < occupancy; ++ts) ch.put(f.item(ts), f.stop.get_token());
  for (const int c : consumers) {
    (void)ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token());
  }

  for (auto _ : state) {
    ch.put(f.item(ts), f.stop.get_token());
    for (const int c : consumers) {
      benchmark::DoNotOptimize(
          ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
    }
    if (ts >= occupancy) ch.raise_guarantee(pin, ts - occupancy + 1);
    ++ts;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["occupancy"] = static_cast<double>(ch.size());
}
BENCHMARK(BM_ChannelGetLatest_MultiConsumer)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({8, 64})
    ->Args({4, 256});

/// In-order consumption lagging `occupancy` items behind the producer —
/// the storage cost of get_next's oldest-unseen lookup at depth.
void BM_ChannelGetNext(benchmark::State& state) {
  Fixture f;
  Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
             f.recorder.new_shard());
  const Timestamp occupancy = state.range(0);
  const int c = ch.register_consumer(200, 0);
  const int pin = ch.register_consumer(300, 0);

  Timestamp ts = 0;
  for (; ts < occupancy; ++ts) ch.put(f.item(ts), f.stop.get_token());

  for (auto _ : state) {
    ch.put(f.item(ts), f.stop.get_token());
    benchmark::DoNotOptimize(
        ch.get_next(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
    if (ts >= occupancy) ch.raise_guarantee(pin, ts - occupancy + 1);
    ++ts;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["occupancy"] = static_cast<double>(ch.size());
}
BENCHMARK(BM_ChannelGetNext)->Arg(1)->Arg(64)->Arg(256);

/// Sliding-window fetch at window sizes 8/64: get_window's own guarantee
/// holds occupancy at ~window, so the newest-window walk runs at depth.
void BM_ChannelGetWindow(benchmark::State& state) {
  Fixture f;
  Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
             f.recorder.new_shard());
  const auto window = static_cast<std::size_t>(state.range(0));
  const int c = ch.register_consumer(200, 0);

  Timestamp ts = 0;
  for (; ts < static_cast<Timestamp>(window); ++ts) ch.put(f.item(ts), f.stop.get_token());

  for (auto _ : state) {
    ch.put(f.item(ts), f.stop.get_token());
    benchmark::DoNotOptimize(ch.get_window(c, window, aru::kUnknownStp, f.stop.get_token()));
    ++ts;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["occupancy"] = static_cast<double>(ch.size());
}
BENCHMARK(BM_ChannelGetWindow)->Arg(8)->Arg(64);

/// GC-pressure scenario: Transparent GC with one laggard consumer that
/// never reads, so nothing is ever collectible — every put/get still pays
/// the collector's scan over the resident entries. Rewards an incremental
/// collector that early-exits on an unchanged frontier. Args: occupancy.
void BM_ChannelGcPressure(benchmark::State& state) {
  Fixture f;
  f.ctx.gc = gc::Kind::kTransparent;
  const Timestamp occupancy = state.range(0);
  constexpr int kOpsPerRound = 64;

  for (auto _ : state) {
    state.PauseTiming();
    Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
               f.recorder.new_shard());
    const int c = ch.register_consumer(200, 0);
    ch.register_consumer(300, 0);  // laggard: never reads, pins everything
    Timestamp ts = 0;
    for (; ts < occupancy; ++ts) ch.put(f.item(ts), f.stop.get_token());
    state.ResumeTiming();

    for (int i = 0; i < kOpsPerRound; ++i) {
      ch.put(f.item(ts++), f.stop.get_token());
      benchmark::DoNotOptimize(
          ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerRound);
}
BENCHMARK(BM_ChannelGcPressure)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChannelSkipScan(benchmark::State& state) {
  // One get skipping over `n-1` stale items — the cost of the skip-over
  // access pattern itself.
  Fixture f;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
               f.recorder.new_shard());
    const int c = ch.register_consumer(200, 0);
    for (Timestamp ts = 0; ts < n; ++ts) ch.put(f.item(ts), f.stop.get_token());
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
  }
}
BENCHMARK(BM_ChannelSkipScan)->Arg(2)->Arg(16)->Arg(128);

/// Random access by timestamp at depth (binary search vs tree walk).
void BM_ChannelGetAt(benchmark::State& state) {
  Fixture f;
  f.ctx.gc = gc::Kind::kNone;
  Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
             f.recorder.new_shard());
  const Timestamp n = state.range(0);
  const int c = ch.register_consumer(200, 0);
  for (Timestamp ts = 0; ts < n; ++ts) ch.put(f.item(ts), f.stop.get_token());
  Timestamp probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.get_at(c, probe, aru::kUnknownStp));
    probe = (probe + 17) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelGetAt)->Arg(64)->Arg(1024);

void BM_QueuePutGet(benchmark::State& state) {
  Fixture f;
  Queue q(f.ctx, 0, QueueConfig{.name = "q"}, aru::Mode::kOff, make_filter(""),
          f.recorder.new_shard());
  const int c = q.register_consumer(200, 0);
  Timestamp ts = 0;
  for (auto _ : state) {
    q.put(f.item(ts), f.stop.get_token());
    benchmark::DoNotOptimize(q.get(c, aru::kUnknownStp, f.stop.get_token()));
    ++ts;
  }
}
BENCHMARK(BM_QueuePutGet);

/// Steady-state put + get_latest with a real payload write each iteration
/// — the end-to-end per-item cost a stage pays at the paper's frame and
/// mask sizes. With the pool wired into the fixture the slab freed by DGC
/// on iteration N is the one re-acquired on N+1, so this measures the
/// recycled path, not the allocator.
void BM_ChannelPutGetPayload(benchmark::State& state) {
  Fixture f;
  Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
             f.recorder.new_shard());
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int c = ch.register_consumer(200, 0);
  Timestamp ts = 0;
  for (auto _ : state) {
    auto item = f.item(ts, bytes);
    std::memset(item->mutable_data().data(), 0x2A, bytes);
    ch.put(std::move(item), f.stop.get_token());
    benchmark::DoNotOptimize(
        ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
    ++ts;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  const auto st = f.pool.stats();
  state.counters["pool_hit_rate"] =
      st.acquires > 0 ? static_cast<double>(st.hits) / static_cast<double>(st.acquires) : 0.0;
}
BENCHMARK(BM_ChannelPutGetPayload)
    ->Arg(static_cast<std::int64_t>(vision::kMaskBytes))
    ->Arg(static_cast<std::int64_t>(vision::kFrameBytes));

void BM_ItemAllocFree(benchmark::State& state) {
  Fixture f;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Timestamp ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.item(ts++, bytes));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ItemAllocFree)
    ->Arg(static_cast<std::int64_t>(vision::kLocationBytes))
    ->Arg(static_cast<std::int64_t>(vision::kMaskBytes))
    ->Arg(static_cast<std::int64_t>(vision::kFrameBytes))
    ->Arg(static_cast<std::int64_t>(vision::kHistogramBytes));

}  // namespace
}  // namespace stampede

BENCHMARK_MAIN();
