/// \file micro_channel.cpp
/// \brief Micro-benchmarks of the runtime primitives: channel put/get at
///        varying occupancy and consumer counts, queue ops, and item
///        allocation at the paper's payload sizes.
#include <benchmark/benchmark.h>

#include "runtime/channel.hpp"
#include "runtime/queue.hpp"
#include "vision/records.hpp"

namespace stampede {
namespace {

struct Fixture {
  ManualClock clock;
  MemoryTracker tracker{1};
  stats::Recorder recorder;
  cluster::Topology topo = cluster::Topology::single_node();
  RunContext ctx;
  std::stop_source stop;

  Fixture() {
    ctx.clock = &clock;
    ctx.tracker = &tracker;
    ctx.recorder = &recorder;
    ctx.topology = &topo;
    ctx.gc = gc::Kind::kDeadTimestamp;
  }

  std::shared_ptr<Item> item(Timestamp ts, std::size_t bytes = 256) {
    return std::make_shared<Item>(ctx, ts, bytes, 100, 0, std::vector<ItemId>{}, Nanos{0});
  }
};

void BM_ChannelGetLatest_MultiConsumer(benchmark::State& state) {
  Fixture f;
  Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
             f.recorder.new_shard());
  const int n = static_cast<int>(state.range(0));
  std::vector<int> consumers;
  for (int i = 0; i < n; ++i) consumers.push_back(ch.register_consumer(200 + i, 0));
  Timestamp ts = 0;
  for (auto _ : state) {
    ch.put(f.item(ts), f.stop.get_token());
    for (const int c : consumers) {
      benchmark::DoNotOptimize(
          ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
    }
    ++ts;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelGetLatest_MultiConsumer)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ChannelSkipScan(benchmark::State& state) {
  // One get skipping over `n-1` stale items — the cost of the skip-over
  // access pattern itself.
  Fixture f;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Channel ch(f.ctx, 0, ChannelConfig{.name = "c"}, aru::Mode::kOff, make_filter(""),
               f.recorder.new_shard());
    const int c = ch.register_consumer(200, 0);
    for (Timestamp ts = 0; ts < n; ++ts) ch.put(f.item(ts), f.stop.get_token());
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        ch.get_latest(c, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
  }
}
BENCHMARK(BM_ChannelSkipScan)->Arg(2)->Arg(16)->Arg(128);

void BM_QueuePutGet(benchmark::State& state) {
  Fixture f;
  Queue q(f.ctx, 0, QueueConfig{.name = "q"}, aru::Mode::kOff, make_filter(""),
          f.recorder.new_shard());
  const int c = q.register_consumer(200, 0);
  Timestamp ts = 0;
  for (auto _ : state) {
    q.put(f.item(ts), f.stop.get_token());
    benchmark::DoNotOptimize(q.get(c, aru::kUnknownStp, f.stop.get_token()));
    ++ts;
  }
}
BENCHMARK(BM_QueuePutGet);

void BM_ItemAllocFree(benchmark::State& state) {
  Fixture f;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  Timestamp ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.item(ts++, bytes));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ItemAllocFree)
    ->Arg(static_cast<std::int64_t>(vision::kLocationBytes))
    ->Arg(static_cast<std::int64_t>(vision::kMaskBytes))
    ->Arg(static_cast<std::int64_t>(vision::kFrameBytes))
    ->Arg(static_cast<std::int64_t>(vision::kHistogramBytes));

}  // namespace
}  // namespace stampede

BENCHMARK_MAIN();
