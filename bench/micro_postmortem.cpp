/// \file micro_postmortem.cpp
/// \brief Micro-benchmarks of the measurement infrastructure itself: trace
///        analysis and serialization throughput on synthetic traces.
///
/// The paper's methodology depends on recording everything and analyzing
/// postmortem; these benches show the analysis pipeline handles
/// million-event traces comfortably.
#include <benchmark/benchmark.h>

#include <sstream>

#include "stats/breakdown.hpp"
#include "stats/postmortem.hpp"
#include "stats/trace_io.hpp"
#include "util/rng.hpp"

namespace stampede::stats {
namespace {

/// Synthetic trace: `chains` linear lineage chains of depth 3, each with
/// alloc/put/consume/free events; ~40% of chains end in an emit.
Trace synthetic_trace(std::int64_t chains, std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  Trace t;
  t.t_begin = 0;
  t.node_names = {"src", "chan", "mid", "chan2", "sink"};
  ItemId next_id = 1;
  std::int64_t now = 0;
  for (std::int64_t c = 0; c < chains; ++c) {
    const ItemId frame = next_id++;
    const ItemId derived = next_id++;
    const bool emitted = rng.uniform() < 0.4;
    const Ts ts = c;
    now += 1000;
    t.items.push_back(ItemRecord{
        .id = frame, .ts = ts, .bytes = 4096, .producer = 0, .t_alloc = now,
        .produce_cost = 500, .lineage = {}});
    t.events.push_back(Event{.type = EventType::kAlloc, .node = 0, .ts = ts,
                             .item = frame, .t = now, .a = 4096});
    t.events.push_back(Event{.type = EventType::kPut, .node = 1, .ts = ts,
                             .item = frame, .t = now + 10});
    t.events.push_back(Event{.type = EventType::kConsume, .node = 2, .ts = ts,
                             .item = frame, .t = now + 50});
    t.items.push_back(ItemRecord{
        .id = derived, .ts = ts, .bytes = 256, .producer = 2, .t_alloc = now + 60,
        .produce_cost = 300, .lineage = {frame}});
    t.events.push_back(Event{.type = EventType::kAlloc, .node = 2, .ts = ts,
                             .item = derived, .t = now + 60, .a = 256});
    t.events.push_back(Event{.type = EventType::kPut, .node = 3, .ts = ts,
                             .item = derived, .t = now + 70});
    if (emitted) {
      t.events.push_back(Event{.type = EventType::kConsume, .node = 4, .ts = ts,
                               .item = derived, .t = now + 120});
      t.events.push_back(Event{.type = EventType::kEmit, .node = 4, .ts = ts,
                               .item = derived, .t = now + 120});
    }
    t.events.push_back(Event{.type = EventType::kFree, .node = 0, .ts = ts,
                             .item = frame, .t = now + 200, .a = 4096});
    t.events.push_back(Event{.type = EventType::kFree, .node = 2, .ts = ts,
                             .item = derived, .t = now + 210, .a = 256});
  }
  t.t_end = now + 1000;
  return t;
}

void BM_AnalyzerFullRun(benchmark::State& state) {
  const Trace trace = synthetic_trace(state.range(0));
  for (auto _ : state) {
    const Analyzer analyzer(trace);
    benchmark::DoNotOptimize(analyzer.run());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_AnalyzerFullRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BreakdownCompute(benchmark::State& state) {
  const Trace trace = synthetic_trace(state.range(0));
  const Analyzer analyzer(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_breakdown(trace, analyzer));
  }
}
BENCHMARK(BM_BreakdownCompute)->Arg(1000)->Arg(10000);

void BM_TraceSaveLoad(benchmark::State& state) {
  const Trace trace = synthetic_trace(state.range(0));
  for (auto _ : state) {
    std::stringstream buf;
    save_trace(trace, buf);
    benchmark::DoNotOptimize(load_trace(buf));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.events.size()));
}
BENCHMARK(BM_TraceSaveLoad)->Arg(1000)->Arg(10000);

void BM_FootprintReconstruction(benchmark::State& state) {
  const Trace trace = synthetic_trace(state.range(0));
  for (auto _ : state) {
    auto series = footprint_from_events(trace.events, trace.t_begin, trace.t_end);
    benchmark::DoNotOptimize(series.weighted());
  }
}
BENCHMARK(BM_FootprintReconstruction)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace stampede::stats

BENCHMARK_MAIN();
