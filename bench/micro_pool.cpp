/// \file micro_pool.cpp
/// \brief Micro-benchmarks of the payload buffer pool: steady-state
///        acquire/release on the recycled path vs the heap, and full
///        Item churn with and without a pool wired into the context.
///
/// Run via bench/run_bench.sh to emit BENCH_channel.json at the repo
/// root — every PR appends to that perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "runtime/channel.hpp"
#include "runtime/pool.hpp"
#include "vision/records.hpp"

namespace stampede {
namespace {

/// Acquire + full write + drop each iteration. After the first lap the
/// slab comes off the free list, so this is the recycled hot path: no
/// allocator call, no page faults on the touch.
void BM_PoolAcquireRelease(benchmark::State& state) {
  PayloadPool pool(PoolConfig{}, nullptr);
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    PayloadBuffer buf = pool.acquire(bytes);
    std::memset(buf.span().data(), 0x2A, bytes);
    benchmark::DoNotOptimize(buf.span().data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
  const auto st = pool.stats();
  state.counters["pool_hit_rate"] =
      st.acquires > 0 ? static_cast<double>(st.hits) / static_cast<double>(st.acquires) : 0.0;
}
BENCHMARK(BM_PoolAcquireRelease)
    ->Arg(4096)
    ->Arg(static_cast<std::int64_t>(vision::kMaskBytes))
    ->Arg(static_cast<std::int64_t>(vision::kFrameBytes))
    ->Arg(8 << 20);

/// The same loop through the heap: fresh `new std::byte[]` + full write +
/// `delete[]` per iteration. The gap vs BM_PoolAcquireRelease is the
/// allocator + soft-fault tax the pool removes.
void BM_HeapAcquireRelease(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    PayloadBuffer buf = PayloadPool::unpooled(bytes);
    std::memset(buf.span().data(), 0x2A, bytes);
    benchmark::DoNotOptimize(buf.span().data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HeapAcquireRelease)
    ->Arg(4096)
    ->Arg(static_cast<std::int64_t>(vision::kMaskBytes))
    ->Arg(static_cast<std::int64_t>(vision::kFrameBytes))
    ->Arg(8 << 20);

struct Fixture {
  ManualClock clock;
  MemoryTracker tracker{1};
  PayloadPool pool{PoolConfig{}, &tracker};
  /// "Unpooled" series: a pool that retains nothing, so every acquire is a
  /// fresh heap slab and every release a free — the heap baseline, measured
  /// through the same mandatory-pool item path the runtime uses.
  PayloadPool no_retain_pool{PoolConfig{.max_retained_bytes = 0}, &tracker};
  stats::Recorder recorder;
  cluster::Topology topo = cluster::Topology::single_node();
  RunContext ctx;

  explicit Fixture(bool pooled) {
    ctx.clock = &clock;
    ctx.tracker = &tracker;
    ctx.pool = pooled ? &pool : &no_retain_pool;
    ctx.recorder = &recorder;
    ctx.topology = &topo;
    ctx.gc = gc::Kind::kDeadTimestamp;
  }
};

/// Full Item create + payload write + destroy cycle — what a producer
/// stage pays per frame before the channel even sees the item. Arg 0/1
/// selects unpooled/pooled so the two series diff cleanly in the JSON.
void BM_ItemChurn(benchmark::State& state) {
  Fixture f(state.range(0) != 0);
  constexpr auto kBytes = static_cast<std::size_t>(vision::kFrameBytes);
  Timestamp ts = 0;
  for (auto _ : state) {
    auto item = std::make_shared<Item>(f.ctx, ts++, kBytes, 100, 0,
                                       std::vector<ItemId>{}, Nanos{0});
    std::memset(item->mutable_data().data(), 0x2A, kBytes);
    benchmark::DoNotOptimize(item);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(kBytes));
  const auto st = f.pool.stats();
  state.counters["pool_hit_rate"] =
      st.acquires > 0 ? static_cast<double>(st.hits) / static_cast<double>(st.acquires) : 0.0;
}
BENCHMARK(BM_ItemChurn)->Arg(0)->Arg(1);

}  // namespace
}  // namespace stampede

BENCHMARK_MAIN();
