/// \file table_fig10_performance.cpp
/// \brief Regenerates paper Figure 10: throughput (fps, mean/σ), latency
///        (ms, mean/σ) and jitter (ms) of the tracker per policy and
///        configuration.
///
/// Paper reference values:
///   cfg1: No-ARU 3.30±0.02 fps, 661±23 ms, 77 ms jitter
///         min    4.68±0.09,     594±9,     34
///         max    4.18±0.10,     350±7,     46
///   cfg2: No-ARU 4.27±0.06,     648±23,    96
///         min    4.47±0.10,     605±24,    89
///         max    3.53±0.15,     480±13,    162
/// Shape targets: ARU-min has the best throughput; ARU-max trades
/// throughput for the lowest latency (the §5.2 aggressiveness artifact);
/// No-ARU pays for wasted work with throughput and latency.
///
/// Usage: table_fig10_performance [seconds=8] [repeats=1] [seed=42] [csv=...]
#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Fig. 10 — Latency, throughput and jitter of the tracker");
  table.set_header({"config", "policy", "tput (fps)", "tput STD", "latency (ms)",
                    "lat STD", "jitter (ms)"});

  for (const int config : {1, 2}) {
    for (const aru::Mode mode : paper_modes()) {
      const Cell cell = run_cell(cli, mode, config);
      const auto& perf = cell.analysis.perf;
      table.add_row({"cfg" + std::to_string(config),
                     mode == aru::Mode::kOff ? "No ARU" : "ARU-" + aru::to_string(mode),
                     Table::num(perf.throughput_fps), Table::num(perf.throughput_fps_std),
                     Table::num(perf.latency_ms_mean, 0), Table::num(perf.latency_ms_std, 0),
                     Table::num(perf.jitter_ms, 0)});
    }
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "shape check: ARU-min >= No-ARU throughput; ARU-max lowest latency but pays\n"
      "throughput for its aggressiveness (paper's balance discussion, Sec. 5.2/6).\n");
  maybe_write_csv(cli, table);
  return 0;
}
