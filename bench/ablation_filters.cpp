/// \file ablation_filters.cpp
/// \brief The paper's named future-work extension, implemented and
///        measured: smoothing the noisy summary-STP feedback with filters
///        (as in the Swift feedback toolbox) before it paces producers.
///
/// §3.3.2: "We observe that consumer tasks intermittently emit large or
/// small summary-STP values. Such noise can be smoothed out by applying
/// filters ... currently not implemented in ARU and left for future
/// work." We compare passthrough (the published system) with EMA, median
/// and sliding-mean filters under ARU-max — the mode the paper says
/// suffers most from feedback noise.
///
/// Usage: ablation_filters [seconds=6] [seed=42] [csv=...]
#include <cmath>

#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

namespace {

/// Std-dev of the digitizer's outgoing summary-STP samples (ms): the
/// noise the filter is supposed to remove.
double summary_noise_ms(const stats::Trace& trace) {
  // Locate the digitizer node by name.
  stats::NodeRef digitizer = -1;
  for (std::size_t i = 0; i < trace.node_names.size(); ++i) {
    if (trace.node_names[i] == "digitizer") digitizer = static_cast<stats::NodeRef>(i);
  }
  const stats::Analyzer analyzer(trace);
  StreamingStats s;
  for (const auto& sample : analyzer.stp_series(digitizer)) {
    if (sample.summary_ns > 0) s.add(static_cast<double>(sample.summary_ns) / 1e6);
  }
  return s.stddev();
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Ablation — feedback filters on summary-STP (paper future work)");
  table.set_header({"filter", "summary noise (ms, std)", "tput (fps)", "jitter (ms)",
                    "% mem wasted", "latency (ms)"});

  for (const char* filter : {"passthrough", "ema:0.25", "median:5", "mean:5"}) {
    vision::TrackerOptions opts = tracker_options_from(cli, aru::Mode::kMax, 1);
    opts.duration = seconds(cli.get_int("seconds", 6));
    opts.aru_filter = filter;
    std::fprintf(stderr, "  running filter=%s...\n", filter);
    const vision::TrackerResult r = vision::run_tracker(opts);
    const auto& a = r.analysis;
    table.add_row({filter, Table::num(summary_noise_ms(r.trace), 2),
                   Table::num(a.perf.throughput_fps), Table::num(a.perf.jitter_ms, 1),
                   Table::num(a.res.wasted_mem_pct, 1),
                   Table::num(a.perf.latency_ms_mean, 0)});
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: filters cut the summary-STP noise the paper attributes to OS\n"
      "scheduling variance; smoother feedback -> steadier ARU-max production rate.\n");
  maybe_write_csv(cli, table);
  return 0;
}
