/// \file validation_model.cpp
/// \brief Cross-validation: the deterministic rate model
///        (core/simulator.hpp) against the threaded runtime.
///
/// For each ARU mode, the tracker's rate skeleton is fed to the
/// RateSimulator; its steady-state per-channel skip-fraction predictions
/// are compared with the fractions measured from a real tracker run
/// (stats::Breakdown). Agreement means the feedback loop in the live
/// system behaves as the paper's §3.3 algorithm says it should — and
/// that the model can be trusted for the design-space sweeps in
/// ablation_stability.
///
/// Usage: validation_model [seconds=6] [seed=42] [csv=...]
#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "stats/breakdown.hpp"

using namespace stampede;
using namespace stampede::bench;

namespace {

/// Stage indices in the rate-skeleton model.
enum Stage { kDig = 0, kBg = 1, kHist = 2, kTd1 = 3, kTd2 = 4, kGui = 5 };

std::vector<aru::SimStage> tracker_skeleton(const vision::StageCosts& costs) {
  using aru::SimStage;
  return {
      SimStage{.name = "digitizer", .cost = costs.digitizer, .consumers = {kBg, kHist, kTd1, kTd2}},
      SimStage{.name = "background", .cost = costs.background, .consumers = {kTd1, kTd2}},
      SimStage{.name = "histogram", .cost = costs.histogram, .consumers = {kTd1, kTd2}},
      SimStage{.name = "detect1", .cost = costs.detect0, .consumers = {kGui}},
      SimStage{.name = "detect2", .cost = costs.detect1, .consumers = {kGui}},
      SimStage{.name = "gui", .cost = costs.gui, .consumers = {}},
  };
}

/// Aggregate predicted skip fraction for a channel with producer `p` and
/// consumers `cs`: consumed rate is Σ 1/P_c against produced rate
/// n × 1/P_p, so skipped fraction = 1 − (P_p/n) Σ 1/P_c.
double predicted_channel_skip(aru::RateSimulator& sim, int p, std::span<const int> cs) {
  const double pp = static_cast<double>(sim.effective_period(p).count());
  double consume_rate = 0.0;
  for (const int c : cs) {
    consume_rate += 1.0 / static_cast<double>(sim.effective_period(c).count());
  }
  const double produce_rate = static_cast<double>(cs.size()) / pp;
  return std::max(0.0, 1.0 - consume_rate / produce_rate);
}

/// Measured skip fraction of one channel: skips / (skips + consumes).
double measured_channel_skip(const stats::Breakdown& b, const char* name_prefix) {
  for (const auto& buf : b.buffers) {
    if (buf.name.find(name_prefix) == std::string::npos) continue;
    const double total = static_cast<double>(buf.skips + buf.consumes);
    return total > 0 ? static_cast<double>(buf.skips) / total : 0.0;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Model validation — predicted vs measured channel skip fractions");
  table.set_header({"mode", "channel", "predicted skip %", "measured skip %"});

  for (const aru::Mode mode : paper_modes()) {
    // Analytic prediction from the rate skeleton.
    vision::TrackerOptions opts = tracker_options_from(cli, mode, 1);
    opts.duration = seconds(cli.get_int("seconds", 6));
    aru::RateSimulator sim(tracker_skeleton(opts.costs), {.mode = mode});
    sim.run(12);  // well past convergence (depth <= 4 hops)

    // Measurement from a real run.
    std::fprintf(stderr, "  running %s...\n", vision::label(opts).c_str());
    const vision::TrackerResult r = vision::run_tracker(opts);
    const stats::Analyzer analyzer(r.trace);
    const stats::Breakdown b = stats::compute_breakdown(r.trace, analyzer);

    const int frames_consumers[] = {kBg, kHist, kTd1, kTd2};
    const int mask_consumers[] = {kTd1, kTd2};
    struct Row {
      const char* channel;
      int producer;
      std::span<const int> consumers;
    };
    const Row rows[] = {
        {"frames", kDig, frames_consumers},
        {"masks", kBg, mask_consumers},
        {"hists", kHist, mask_consumers},
    };
    for (const Row& row : rows) {
      table.add_row({aru::to_string(mode), row.channel,
                     Table::num(100.0 * predicted_channel_skip(sim, row.producer,
                                                               row.consumers),
                                1),
                     Table::num(100.0 * measured_channel_skip(b, row.channel), 1)});
    }
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: the 6-stage rate model predicts each channel's skip fraction from\n"
      "steady-state periods alone; the live runtime (with jitter, pressure and\n"
      "blocking) should land near it — exactly under ARU (aligned rates), and\n"
      "directionally for the unthrottled baseline, whose real digitizer period is\n"
      "inflated by the memory-pressure model the skeleton doesn't include.\n");
  maybe_write_csv(cli, table);
  return 0;
}
