/// \file micro_aru_overhead.cpp
/// \brief Validates the paper's §4 overhead claim: the ARU mechanism —
///        8-byte summary-STP piggy-backing plus an O(out-degree) min/max
///        fold per put/get — costs nanoseconds against stage work that
///        costs milliseconds.
///
/// google-benchmark micro measurements of every ARU-touched code path,
/// with and without the mechanism enabled.
#include <benchmark/benchmark.h>

#include "core/feedback.hpp"
#include "core/pacing.hpp"
#include "core/stp.hpp"
#include "runtime/channel.hpp"
#include "runtime/pool.hpp"
#include "util/clock.hpp"

namespace stampede {
namespace {

// -- pure feedback logic ---------------------------------------------------------

void BM_FeedbackUpdateAndSummary(benchmark::State& state) {
  const int outputs = static_cast<int>(state.range(0));
  aru::FeedbackState f(aru::Mode::kMin, /*is_thread=*/true);
  for (int i = 0; i < outputs; ++i) f.add_output();
  std::int64_t slot = 0;
  for (auto _ : state) {
    f.update_backward(static_cast<int>(slot % outputs), millis(10 + slot % 7));
    benchmark::DoNotOptimize(f.summary());
    ++slot;
  }
  state.SetLabel("out-degree " + std::to_string(outputs));
}
BENCHMARK(BM_FeedbackUpdateAndSummary)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_CompressMin(benchmark::State& state) {
  std::vector<Nanos> v(static_cast<std::size_t>(state.range(0)), millis(10));
  for (auto _ : state) benchmark::DoNotOptimize(aru::compress_min(v));
}
BENCHMARK(BM_CompressMin)->Arg(2)->Arg(8)->Arg(64);

void BM_StpMeterIteration(benchmark::State& state) {
  aru::StpMeter meter;
  ManualClock clock;
  for (auto _ : state) {
    meter.begin_iteration(clock.now());
    clock.advance(millis(1));
    benchmark::DoNotOptimize(meter.end_iteration(clock.now()));
  }
}
BENCHMARK(BM_StpMeterIteration);

void BM_PacingDecision(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(aru::pacing_sleep(millis(33), millis(12), 1.0));
  }
}
BENCHMARK(BM_PacingDecision);

// -- channel data path, ARU off vs on ---------------------------------------------

struct ChannelFixtureState {
  ManualClock clock;
  MemoryTracker tracker{1};
  PayloadPool pool{PoolConfig{}, &tracker};
  stats::Recorder recorder;
  cluster::Topology topo = cluster::Topology::single_node();
  RunContext ctx;
  std::unique_ptr<Channel> ch;
  int consumer = 0;
  std::stop_source stop;

  explicit ChannelFixtureState(aru::Mode mode) {
    ctx.clock = &clock;
    ctx.tracker = &tracker;
    ctx.pool = &pool;
    ctx.recorder = &recorder;
    ctx.topology = &topo;
    ctx.gc = gc::Kind::kDeadTimestamp;
    ctx.aru = aru::Config{.mode = mode};
    ch = std::make_unique<Channel>(ctx, 0, ChannelConfig{.name = "bench"}, mode,
                                   make_filter(""), recorder.new_shard());
    ch->register_producer(100);
    consumer = ch->register_consumer(200, 0);
  }

  std::shared_ptr<Item> item(Timestamp ts) {
    return std::make_shared<Item>(ctx, ts, 256, 100, 0, std::vector<ItemId>{}, Nanos{0});
  }
};

void BM_ChannelPutGet_AruOff(benchmark::State& state) {
  ChannelFixtureState f(aru::Mode::kOff);
  Timestamp ts = 0;
  for (auto _ : state) {
    f.ch->put(f.item(ts), f.stop.get_token());
    benchmark::DoNotOptimize(
        f.ch->get_latest(f.consumer, aru::kUnknownStp, kNoTimestamp, f.stop.get_token()));
    ++ts;
  }
}
BENCHMARK(BM_ChannelPutGet_AruOff);

void BM_ChannelPutGet_AruMin(benchmark::State& state) {
  ChannelFixtureState f(aru::Mode::kMin);
  Timestamp ts = 0;
  for (auto _ : state) {
    f.ch->put(f.item(ts), f.stop.get_token());
    benchmark::DoNotOptimize(
        f.ch->get_latest(f.consumer, millis(10), kNoTimestamp, f.stop.get_token()));
    ++ts;
  }
}
BENCHMARK(BM_ChannelPutGet_AruMin);

}  // namespace
}  // namespace stampede

int main(int argc, char** argv) {
  std::printf("piggy-backed feedback value size: %zu bytes (paper: 8 bytes)\n",
              sizeof(stampede::Nanos));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "overhead check: ARU paths cost nanoseconds; tracker stage work costs\n"
      "milliseconds -> the paper's 'negligible overhead' claim holds here too.\n");
  return 0;
}
