/// \file ablation_stability.cpp
/// \brief Maps the control-loop design space the paper's §6 leaves open
///        ("find the right balance between wasted resource usage and
///        application performance"): pacing gain × feedback noise, with
///        and without smoothing filters, on the deterministic feedback
///        model (core/simulator.hpp).
///
/// For the tracker-shaped fan-out (fast digitizer, two detectors of
/// 28/33 ms) it reports, per (operator, gain, noise, filter) cell:
/// rounds-to-converge, settled source period, its std (production-rate
/// jitter — the paper's §3.3.2 noise problem) and overshoot.
///
/// Usage: ablation_stability [rounds=600] [csv=...]
#include "bench_common.hpp"
#include "core/simulator.hpp"

using namespace stampede;
using namespace stampede::bench;

namespace {

/// Tracker-shaped model: source -> {background 12, histogram 15} -> both
/// -> detectors 28/33 -> gui 6 (the Fig. 5 topology collapsed to its rate
/// skeleton).
std::vector<aru::SimStage> tracker_model(double noise) {
  using aru::SimStage;
  return {
      SimStage{.name = "digitizer", .cost = millis(5), .noise = noise, .consumers = {1, 2, 3, 4}},
      SimStage{.name = "background", .cost = millis(12), .noise = noise, .consumers = {3, 4}},
      SimStage{.name = "histogram", .cost = millis(15), .noise = noise, .consumers = {3, 4}},
      SimStage{.name = "detect1", .cost = millis(28), .noise = noise, .consumers = {5}},
      SimStage{.name = "detect2", .cost = millis(33), .noise = noise, .consumers = {5}},
      SimStage{.name = "gui", .cost = millis(6), .noise = noise, .consumers = {}},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const int rounds = static_cast<int>(cli.get_int("rounds", 600));

  Table table("Ablation — feedback-loop stability (gain x noise x filter)");
  table.set_header({"operator", "gain", "noise", "filter", "settle (rounds)",
                    "period (ms)", "period std", "overshoot (ms)"});

  for (const aru::Mode mode : {aru::Mode::kMin, aru::Mode::kMax}) {
    for (const double gain : {1.0, 0.5, 0.2}) {
      for (const double noise : {0.0, 0.15, 0.3}) {
        for (const char* filter : {"passthrough", "median:7"}) {
          for (const double deadband : {0.0, 0.2}) {
            if (noise == 0.0 && (std::string(filter) != "passthrough" || deadband > 0)) {
              continue;
            }
            if (deadband > 0 && (gain != 1.0 || std::string(filter) != "passthrough")) {
              continue;  // deadband studied on the undamped, unfiltered loop
            }
            aru::SimConfig cfg{.mode = mode,
                               .pace_gain = gain,
                               .deadband = deadband,
                               .filter = filter,
                               .seed = 9};
            aru::RateSimulator sim(tracker_model(noise), std::move(cfg));
            const auto conv = sim.analyze(0, rounds);
            std::string label = filter;
            if (deadband > 0) label += " +deadband";
            table.add_row({aru::to_string(mode), Table::num(gain, 2),
                           Table::num(noise, 2), label,
                           conv.rounds_to_converge >= 0
                               ? std::to_string(conv.rounds_to_converge)
                               : "n/a",
                           Table::num(conv.final_period_ms, 2),
                           Table::num(conv.final_std_ms, 3),
                           Table::num(conv.overshoot_ms, 2)});
          }
        }
      }
    }
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: min settles at the fast detector (~28 ms), max at the slow one\n"
      "(~33 ms); noise inflates max's settled period (upward bias -> starvation);\n"
      "lower gain slows settling but damps jitter; the median filter recovers\n"
      "most of the noise-free behaviour — the paper's proposed future work.\n");
  maybe_write_csv(cli, table);
  return 0;
}
