/// \file ablation_operators.cpp
/// \brief Ablation of the design choice the paper's §5.2/§6 discusses:
///        how aggressive should producer slow-down be?
///
/// Sweeps the compress operator (min / max / a custom mean-of-known
/// operator — the §3.3.2 user-defined extension point) and the pacing
/// gain (controller damping), reporting the waste-vs-performance
/// trade-off: "it is therefore important to find the right balance
/// between wasted resource usage and application performance".
///
/// Usage: ablation_operators [seconds=6] [seed=42] [csv=...]
#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

namespace {

/// Balanced user-defined operator: arithmetic mean of the known
/// backward-STP values — between min's caution and max's aggression.
Nanos compress_mean(std::span<const Nanos> backward) {
  std::int64_t sum = 0, n = 0;
  for (const Nanos v : backward) {
    if (!aru::known(v)) continue;
    sum += v.count();
    ++n;
  }
  return n == 0 ? aru::kUnknownStp : Nanos{sum / n};
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Ablation — compress operator & pacing gain (waste vs performance)");
  table.set_header({"operator", "gain", "tput (fps)", "latency (ms)", "% mem wasted",
                    "footprint (MB)"});

  struct Config {
    std::string name;
    aru::Mode mode;
    aru::CompressFn op;
    double gain;
  };
  std::vector<Config> configs{
      {"min", aru::Mode::kMin, {}, 1.0},
      {"mean (custom)", aru::Mode::kCustom, compress_mean, 1.0},
      {"max", aru::Mode::kMax, {}, 1.0},
      {"max, damped", aru::Mode::kMax, {}, 0.5},
      {"max, weak", aru::Mode::kMax, {}, 0.25},
      {"off", aru::Mode::kOff, {}, 1.0},
  };

  for (const Config& c : configs) {
    vision::TrackerOptions opts = tracker_options_from(cli, c.mode, 1);
    opts.duration = seconds(cli.get_int("seconds", 6));
    opts.custom_compress = c.op;
    opts.pace_gain = c.gain;
    std::fprintf(stderr, "  running operator=%s gain=%.2f...\n", c.name.c_str(), c.gain);
    const auto a = vision::run_tracker(opts).analysis;
    table.add_row({c.name, Table::num(c.gain, 2), Table::num(a.perf.throughput_fps),
                   Table::num(a.perf.latency_ms_mean, 0),
                   Table::num(a.res.wasted_mem_pct, 1),
                   Table::num(a.res.footprint_mb_mean)});
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "reading: operators order production aggressiveness min < mean < max; waste\n"
      "falls with aggressiveness while throughput risk rises — the paper's balance.\n");
  maybe_write_csv(cli, table);
  return 0;
}
