/// \file bench_common.hpp
/// \brief Shared experiment runner for the paper-table benches.
///
/// Every table/figure bench runs the same 3 policies × 2 configurations
/// matrix of tracker experiments (No ARU / ARU-min / ARU-max on 1 and 5
/// simulated nodes) and formats a slice of the resulting metrics. Common
/// CLI knobs: seconds= (run length), seed=, repeats= (averaging), csv=
/// (also write CSV to the given file).
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/options.hpp"
#include "util/table.hpp"
#include "vision/tracker.hpp"

namespace stampede::bench {

struct Cell {
  vision::TrackerOptions opts;
  stats::Analysis analysis;            ///< averaged metrics (last repeat's series)
  std::vector<stats::Analysis> repeats;
};

/// Experiment matrix in paper order: No ARU, ARU-min, ARU-max.
inline std::vector<aru::Mode> paper_modes() {
  return {aru::Mode::kOff, aru::Mode::kMin, aru::Mode::kMax};
}

inline vision::TrackerOptions tracker_options_from(const Options& cli, aru::Mode mode,
                                                   int config) {
  vision::TrackerOptions opts;
  opts.aru = mode;
  opts.cluster_config = config;
  opts.duration = seconds(cli.get_int("seconds", 8));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opts.gc = gc::parse_kind(cli.get_string("gc", "dgc"));
  opts.aru_filter = cli.get_string("filter", "passthrough");
  opts.costs = vision::StageCosts{}.scaled(cli.get_double("scale", 1.0));
  return opts;
}

/// Averages scalar metrics across repeats (series kept from the last run).
inline stats::Analysis average(const std::vector<stats::Analysis>& runs) {
  stats::Analysis out = runs.back();
  auto avg = [&](auto member) {
    double sum = 0;
    for (const auto& r : runs) sum += r.*member;
    return sum / static_cast<double>(runs.size());
  };
  (void)avg;
  if (runs.size() == 1) return out;
  auto mean_of = [&](double stats::PerfMetrics::*m) {
    double s = 0;
    for (const auto& r : runs) s += r.perf.*m;
    return s / static_cast<double>(runs.size());
  };
  auto mean_res = [&](double stats::ResourceMetrics::*m) {
    double s = 0;
    for (const auto& r : runs) s += r.res.*m;
    return s / static_cast<double>(runs.size());
  };
  out.perf.throughput_fps = mean_of(&stats::PerfMetrics::throughput_fps);
  out.perf.throughput_fps_std = mean_of(&stats::PerfMetrics::throughput_fps_std);
  out.perf.latency_ms_mean = mean_of(&stats::PerfMetrics::latency_ms_mean);
  out.perf.latency_ms_std = mean_of(&stats::PerfMetrics::latency_ms_std);
  out.perf.jitter_ms = mean_of(&stats::PerfMetrics::jitter_ms);
  out.res.footprint_mb_mean = mean_res(&stats::ResourceMetrics::footprint_mb_mean);
  out.res.footprint_mb_std = mean_res(&stats::ResourceMetrics::footprint_mb_std);
  out.res.igc_mb_mean = mean_res(&stats::ResourceMetrics::igc_mb_mean);
  out.res.igc_mb_std = mean_res(&stats::ResourceMetrics::igc_mb_std);
  out.res.wasted_mem_pct = mean_res(&stats::ResourceMetrics::wasted_mem_pct);
  out.res.wasted_comp_pct = mean_res(&stats::ResourceMetrics::wasted_comp_pct);
  return out;
}

/// Runs one matrix cell with repeats.
inline Cell run_cell(const Options& cli, aru::Mode mode, int config) {
  Cell cell;
  cell.opts = tracker_options_from(cli, mode, config);
  const auto repeats = cli.get_int("repeats", 1);
  for (std::int64_t i = 0; i < repeats; ++i) {
    vision::TrackerOptions opts = cell.opts;
    opts.seed += static_cast<std::uint64_t>(i) * 1000;
    std::fprintf(stderr, "  running %s (repeat %lld/%lld)...\n",
                 vision::label(opts).c_str(), static_cast<long long>(i + 1),
                 static_cast<long long>(repeats));
    cell.repeats.push_back(vision::run_tracker(opts).analysis);
  }
  cell.analysis = average(cell.repeats);
  return cell;
}

/// Writes CSV output when csv= was given.
inline void maybe_write_csv(const Options& cli, const Table& table) {
  const std::string path = cli.get_string("csv", "");
  if (path.empty()) return;
  std::ofstream out(path);
  out << table.to_csv();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace stampede::bench
