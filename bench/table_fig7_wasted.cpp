/// \file table_fig7_wasted.cpp
/// \brief Regenerates paper Figure 7: percentage of wasted memory and
///        wasted computation in the tracker, with and without ARU.
///
/// Paper reference values:
///   cfg1: No-ARU 66.0% mem / 25.2% comp; min 4.1 / 2.8; max 0.3 / 0.2
///   cfg2: No-ARU 60.7 / 24.4;            min 7.2 / 4.0; max 4.8 / 2.1
/// Shape target: No-ARU wastes the majority of its buffered memory; both
/// ARU operators cut waste by an order of magnitude, max most aggressively.
///
/// Usage: table_fig7_wasted [seconds=8] [repeats=1] [seed=42] [csv=...]
#include "bench_common.hpp"

using namespace stampede;
using namespace stampede::bench;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  Table table("Fig. 7 — Wasted memory footprint and wasted computation");
  table.set_header(
      {"config", "policy", "% mem wasted", "% comp wasted", "items wasted", "items total"});

  for (const int config : {1, 2}) {
    for (const aru::Mode mode : paper_modes()) {
      const Cell cell = run_cell(cli, mode, config);
      const auto& res = cell.analysis.res;
      table.add_row({"cfg" + std::to_string(config),
                     mode == aru::Mode::kOff ? "No ARU" : "ARU-" + aru::to_string(mode),
                     Table::num(res.wasted_mem_pct, 1), Table::num(res.wasted_comp_pct, 1),
                     std::to_string(res.items_wasted), std::to_string(res.items_total)});
    }
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "shape check: No ARU wastes a large share of memory/compute; ARU-min cuts it by\n"
      ">5x; ARU-max directs almost all resources to useful work (paper: <5%% wasted).\n");
  maybe_write_csv(cli, table);
  return 0;
}
