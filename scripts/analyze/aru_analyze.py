#!/usr/bin/env python3
"""aru-analyze: call-graph static analyzer for the stampede runtime.

Consumes a compile database (compile_commands.json), parses every
translation unit and header under the configured source prefixes with a
lightweight C++ tokenizer, builds the project-wide call graph, and
enforces the annotation-driven rules declared in
src/util/static_annotations.hpp:

  hot       No function reachable from an ARU_HOT_PATH root may
            transitively allocate (operator new, container growth) or
            block (sleeps, waits, joins, blocking syscalls), unless the
            callee carries a reviewed ARU_ANALYZE_ESCAPE or the site is
            listed in the baseline.
  ranks     Every util::Mutex acquisition is checked against the
            LockRank partial order: while a rank-R guard is lexically
            held, no acquisition of rank <= R may occur, directly or
            through any callee (ARU_LOCK_DEBUG is the runtime backstop
            for paths the lexical analysis cannot see).
  nothrow   Functions reachable from an ARU_NOTHROW_PATH root must not
            `throw` or call a throwing-by-contract function (`at`,
            `stoi`, `optional::value`, ...). std::bad_alloc is out of
            scope -- allocation on these paths is the hot rule's job.
  lint      AST-level versions of the grep rules that grep cannot do
            soundly: raw-payload (std::vector<std::byte>, including
            through using/typedef alias chains), raw-sleep
            (std::this_thread::sleep_for/until, including through
            namespace aliases and using-declarations), and
            telemetry-http (the exporter's HTTP parsing —
            parse_http_request / HttpRequest — referenced outside
            src/telemetry/; clients use telemetry::http_get), and
            send-vec (TcpStream::send_vec named outside the socket
            layer; frames leave through net::SendBuffer so they can
            never interleave mid-stream).

The analyzer is deliberately pure Python stdlib: the CI image and dev
containers are not guaranteed a libclang with matching Python bindings,
and the checked properties are lexical/call-graph level, not
template-instantiation level. The ARU_ANALYZE_ANNOTATE macro gate in
static_annotations.hpp reserves the upgrade path to a libclang backend.

Soundness model (documented in docs/ARCHITECTURE.md):
  - Unknown callees (std:: internals, token not resolvable) are assumed
    clean unless their *name* is in the builtin allocating / blocking /
    throwing tables below. Calls through function pointers, virtuals and
    type-erased callables are invisible; TSan + ARU_LOCK_DEBUG remain
    the runtime backstop.
  - Name resolution over-approximates: an unqualified or
    unknown-receiver call may fan out to every project function with
    that simple name. Over-approximation can cause false positives
    (fix with qualification or a baseline entry), never false negatives
    at this level.

Exit codes: 0 clean, 1 findings (or stale baseline), 2 usage/config
error (e.g. missing compile database).
"""

from __future__ import annotations

import argparse
import glob as globmod
import json
import os
import re
import shlex
import sys
from collections import defaultdict
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Builtin knowledge: names that allocate, block, or throw by contract.
# Matched against the *callee name* of call sites whose target is not a
# project function. Kept deliberately small and reviewable.
# --------------------------------------------------------------------------

ALLOCATING_NAMES = {
    # container growth / reallocation
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "resize", "reserve", "insert", "insert_or_assign", "try_emplace",
    "assign", "append", "shrink_to_fit",
    # factories and conversions that heap-allocate
    "make_shared", "make_unique", "to_string", "substr",
    "malloc", "calloc", "realloc", "strdup",
}

BLOCKING_NAMES = {
    # std waiting primitives
    "sleep_for", "sleep_until", "wait", "wait_for", "wait_until", "join",
    # POSIX blocking syscalls (the socket layer wraps these)
    "nanosleep", "usleep", "poll", "ppoll", "select", "epoll_wait",
    "accept", "connect", "recv", "recvmsg", "recvfrom",
    "send", "sendmsg", "sendto", "read", "write", "fsync", "flock",
}

THROWING_NAMES = {
    # throwing-by-contract accessors / conversions (bad_alloc excluded
    # by design: allocation on decode paths is the hot rule's finding)
    "at", "value", "stoi", "stol", "stoll", "stoul", "stoull",
    "stof", "stod", "stold",
}

# Names so generic that resolving them against *any* project method by
# simple name would wire unrelated classes together. These only resolve
# via a known receiver type, `this`, or explicit qualification.
GENERIC_METHOD_NAMES = {
    "size", "empty", "clear", "begin", "end", "data", "reset", "get",
    "count", "find", "front", "back", "swap", "name", "stop", "start",
    "value", "id", "type", "bytes", "close",
    # std::atomic's accessors: x.load() must not resolve to an unrelated
    # load() method elsewhere in the codebase (e.g. Manifest::load).
    "load", "store", "exchange",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "static_assert", "decltype", "catch", "new", "delete",
    "throw", "co_await", "co_return", "co_yield", "static_cast",
    "dynamic_cast", "const_cast", "reinterpret_cast", "typeid",
    "noexcept", "assert", "defined", "requires", "explicit", "operator",
}

# Thread-safety annotation macros (util/thread_annotations.hpp) that can
# trail a function declarator. REQUIRES feeds the held-at-entry set.
TSA_MACROS = {
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "RELEASE_GENERIC", "TRY_ACQUIRE",
    "TRY_ACQUIRE_SHARED", "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
    "ASSERT_CAPABILITY", "ASSERT_SHARED_CAPABILITY",
}

# ARU annotation macros (util/static_annotations.hpp).
ARU_FLAG_MACROS = {"ARU_HOT_PATH", "ARU_MAY_BLOCK", "ARU_ALLOCATES",
                   "ARU_NOTHROW_PATH"}
ARU_ARG_MACROS = {"ARU_ACQUIRES_RANK", "ARU_ANALYZE_ESCAPE"}

# Declaration-position attribute macros to skip over when parsing heads.
DECL_NOISE_MACROS = TSA_MACROS | {
    "CAPABILITY", "SCOPED_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY",
    "ACQUIRED_BEFORE", "ACQUIRED_AFTER",
}


# --------------------------------------------------------------------------
# Tokenizer + minimal preprocessor
# --------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str   # "id" | "num" | "str" | "chr" | "punct"
    text: str
    line: int


_PUNCT2 = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "++", "--"}

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")


def _eval_pp_expr(expr: str, defines: dict) -> bool:
    """Evaluate a preprocessor #if expression against a define map.

    Supports defined(X)/defined X, integer literals, ! && || == != < >
    <= >= and parentheses. Unknown identifiers and unknown function-like
    invocations (__has_include, __has_feature, ...) evaluate to 0, which
    matches how this tree uses conditionals (feature-test style)."""
    toks = re.findall(r"defined\s*\(\s*\w+\s*\)|defined\s+\w+|\w+|&&|\|\||"
                      r"[!<>=]=|[()!<>]|\d+", expr)
    out = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.startswith("defined"):
            name = re.findall(r"\w+", t)[1]
            out.append("1" if name in defines else "0")
        elif re.fullmatch(r"\d+[uUlL]*", t):
            out.append(re.sub(r"[uUlL]+$", "", t))
        elif re.fullmatch(r"\w+", t):
            val = defines.get(t)
            if val is not None and re.fullmatch(r"\d+", str(val)):
                out.append(str(val))
            elif i + 1 < len(toks) and toks[i + 1] == "(":
                # unknown function-like: skip its argument list
                depth = 0
                i += 1
                while i < len(toks):
                    if toks[i] == "(":
                        depth += 1
                    elif toks[i] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                out.append("0")
            else:
                out.append("0")
        elif t == "&&":
            out.append(" and ")
        elif t == "||":
            out.append(" or ")
        elif t == "!":
            out.append(" not ")
        else:
            out.append(t)
        i += 1
    try:
        return bool(eval("".join(out), {"__builtins__": {}}, {}))  # noqa: S307
    except Exception:
        return False


def preprocess(text: str, defines: dict) -> str:
    """Resolve #if/#ifdef conditionals, blank out directive lines and
    inactive regions (preserving line numbers), splice continuations."""
    # Splice backslash-newline, keeping a newline so line numbers hold.
    text = text.replace("\\\n", " \n")
    out_lines = []
    # stack of [taken_now, taken_ever] per open conditional
    stack = []
    local_defines = dict(defines)
    for line in text.split("\n"):
        stripped = line.lstrip()
        active = all(s[0] for s in stack)
        if stripped.startswith("#"):
            d = stripped[1:].lstrip()
            if d.startswith("ifdef"):
                name = d[5:].strip().split()[0] if d[5:].strip() else ""
                taken = active and name in local_defines
                stack.append([taken, taken])
            elif d.startswith("ifndef"):
                name = d[6:].strip().split()[0] if d[6:].strip() else ""
                taken = active and name not in local_defines
                stack.append([taken, taken])
            elif d.startswith("if"):
                taken = active and _eval_pp_expr(d[2:], local_defines)
                stack.append([taken, taken])
            elif d.startswith("elif"):
                if stack:
                    outer = all(s[0] for s in stack[:-1])
                    taken = (outer and not stack[-1][1]
                             and _eval_pp_expr(d[4:], local_defines))
                    stack[-1][0] = taken
                    stack[-1][1] = stack[-1][1] or taken
            elif d.startswith("else"):
                if stack:
                    outer = all(s[0] for s in stack[:-1])
                    stack[-1][0] = outer and not stack[-1][1]
                    stack[-1][1] = True
            elif d.startswith("endif"):
                if stack:
                    stack.pop()
            elif d.startswith("define") and active:
                m = re.match(r"define\s+(\w+)(?:\s+(\S+))?", d)
                if m and "(" not in (m.group(1) or ""):
                    local_defines[m.group(1)] = m.group(2) or "1"
            elif d.startswith("undef") and active:
                m = re.match(r"undef\s+(\w+)", d)
                if m:
                    local_defines.pop(m.group(1), None)
            out_lines.append("")  # directive line itself never tokenized
        else:
            out_lines.append(line if active else "")
    return "\n".join(out_lines)


def tokenize(text: str) -> list:
    """Comment- and literal-aware C++ tokenizer with line numbers."""
    toks = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            line += text.count("\n", i, j)
            i = j
        elif c == '"' or (c == "R" and text[i:i + 2] == 'R"'):
            if c == "R":
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    delim = ")" + m.group(1) + '"'
                    j = text.find(delim, i + m.end())
                    j = n if j < 0 else j + len(delim)
                    toks.append(Tok("str", text[i:j], line))
                    line += text.count("\n", i, j)
                    i = j
                    continue
                # plain identifier starting with R
                j = i
                while j < n and text[j] in _ID_CONT:
                    j += 1
                toks.append(Tok("id", text[i:j], line))
                i = j
                continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("str", text[i:j + 1], line))
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("chr", text[i:j + 1], line))
            i = j + 1
        elif c in _ID_START:
            j = i
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
        elif c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j] in _ID_CONT or text[j] == "."
                             or (text[j] in "+-" and text[j - 1] in "eEpP")
                             # C++14 digit separator: 1'000'000. Without
                             # this the ' opens a phantom char literal
                             # that can swallow real code past it.
                             or (text[j] == "'" and j + 1 < n
                                 and text[j + 1] in _ID_CONT)):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
        else:
            two = text[i:i + 2]
            if two in _PUNCT2:
                toks.append(Tok("punct", two, line))
                i += 2
            else:
                toks.append(Tok("punct", c, line))
                i += 1
    return toks


# --------------------------------------------------------------------------
# Parsed model
# --------------------------------------------------------------------------

@dataclass
class CallSite:
    name: str            # simple callee name ("push_back", "acquire", ...)
    qualifier: str       # explicit "a::b" qualification, "" if none
    receiver: str        # last identifier of the receiver chain, "" if none
    tok_idx: int         # index into the owning function's body tokens
    line: int
    file: str


@dataclass
class AcquireSite:
    mutex_expr: str      # last identifier of the mutex expression
    rank: object         # int rank if resolvable, else None
    var: str             # guard variable name ("" for direct .lock())
    tok_idx: int
    end_idx: int         # token index where the guard lexically dies
    line: int
    file: str


@dataclass
class Func:
    qname: str           # "ns::Class::name" (anon namespaces transparent)
    name: str
    cls: str             # enclosing class qname, "" for free functions
    file: str
    line: int
    annotations: set = field(default_factory=set)
    escape_reason: str = ""
    acquires_ranks: list = field(default_factory=list)  # from ARU_ACQUIRES_RANK
    requires: list = field(default_factory=list)        # REQUIRES(...) mutexes
    calls: list = field(default_factory=list)           # [CallSite]
    acquires: list = field(default_factory=list)        # [AcquireSite]
    news: list = field(default_factory=list)            # [(tok_idx, line)]
    throws: list = field(default_factory=list)          # [(tok_idx, line)]
    body: list = field(default_factory=list)            # body tokens
    is_def: bool = False

    @property
    def is_escape(self):
        return "escape" in self.annotations


@dataclass
class Model:
    funcs: dict = field(default_factory=dict)        # qname -> Func (defs)
    by_name: dict = field(default_factory=lambda: defaultdict(list))
    classes: set = field(default_factory=set)        # class qnames
    class_simple: dict = field(default_factory=lambda: defaultdict(list))
    members: dict = field(default_factory=dict)      # (cls, member) -> type key
    mutex_ranks: dict = field(default_factory=dict)  # (cls, member) -> rank name
    ns_mutex_ranks: dict = field(default_factory=dict)  # name -> rank name
    rank_values: dict = field(default_factory=dict)  # "kBuffer" -> 30
    lint_findings: list = field(default_factory=list)

    def add_func(self, fn: Func):
        prev = self.funcs.get(fn.qname)
        if prev is None or (fn.is_def and not prev.is_def):
            if prev is not None:
                # decl seen first: carry its annotations onto the def
                fn.annotations |= prev.annotations
                fn.requires = fn.requires or prev.requires
                fn.acquires_ranks = fn.acquires_ranks or prev.acquires_ranks
                fn.escape_reason = fn.escape_reason or prev.escape_reason
            self.funcs[fn.qname] = fn
            self.by_name[fn.name] = [f for f in self.by_name[fn.name]
                                     if f.qname != fn.qname] + [fn]
        else:
            # def seen first (or second decl): merge annotations in
            prev.annotations |= fn.annotations
            prev.requires = prev.requires or fn.requires
            prev.acquires_ranks = prev.acquires_ranks or fn.acquires_ranks
            prev.escape_reason = prev.escape_reason or fn.escape_reason


def _match(toks, i, open_p, close_p):
    """Index just past the token matching open_p at toks[i]."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_p:
            depth += 1
        elif t == close_p:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_template_args(toks, i):
    """toks[i] == '<': best-effort skip of a template argument list.
    Returns index past the matching '>' or i if this '<' looks like a
    comparison (heuristic: hit ';' '{' '}' or ran too far)."""
    depth, j, n = 0, i, len(toks)
    limit = i + 160
    while j < n and j < limit:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}") or (t == "&&" and depth):
            return i
        j += 1
    return i


class Parser:
    """One pass over one file's token stream. Fills a shared Model."""

    def __init__(self, model: Model, path: str, toks: list):
        self.m = model
        self.path = path
        self.toks = toks
        self.i = 0
        self.scopes = []  # ("ns"|"class"|"skip", name)

    # ---- scope helpers ----
    def ns_qname(self):
        return "::".join(n for k, n in self.scopes if k == "ns" and n)

    def cls_qname(self):
        parts = [n for k, n in self.scopes if k in ("ns", "class") and n]
        in_cls = any(k == "class" for k, _ in self.scopes)
        return "::".join(parts) if in_cls else ""

    def qname_for(self, name):
        parts = [n for k, n in self.scopes if k in ("ns", "class") and n]
        return "::".join(parts + [name]) if parts else name

    # ---- main loop ----
    def run(self):
        toks, n = self.toks, len(self.toks)
        while self.i < n:
            t = toks[self.i]
            if t.kind == "id" and t.text == "namespace":
                self.handle_namespace()
            elif t.kind == "id" and t.text in ("class", "struct", "union"):
                if not self.handle_class():
                    self.i += 1
            elif t.kind == "id" and t.text == "enum":
                self.skip_enum()
            elif t.kind == "id" and t.text in ("using", "typedef"):
                self.handle_alias()
            elif t.kind == "id" and t.text == "template":
                self.i += 1
                if self.i < n and toks[self.i].text == "<":
                    self.i = _skip_template_args(toks, self.i)
            elif t.kind == "id" and t.text == "extern" and self.i + 1 < n \
                    and toks[self.i + 1].kind == "str":
                self.i += 2
                if self.i < n and toks[self.i].text == "{":
                    self.scopes.append(("ns", ""))  # transparent
                    self.i += 1
            elif t.text == "{":
                self.scopes.append(("skip", ""))
                self.i += 1
            elif t.text == "}":
                if self.scopes:
                    self.scopes.pop()
                self.i += 1
            elif t.text == ";":
                self.i += 1
            else:
                self.parse_decl_chunk()

    def handle_namespace(self):
        toks, n = self.toks, len(self.toks)
        j = self.i + 1
        name_parts = []
        while j < n and (toks[j].kind == "id" or toks[j].text == "::"):
            if toks[j].kind == "id":
                name_parts.append(toks[j].text)
            j += 1
        if j < n and toks[j].text == "=":
            # namespace alias: record for the raw-sleep lint, then skip
            k = j + 1
            target = []
            while k < n and toks[k].text != ";":
                target.append(toks[k].text)
                k += 1
            if name_parts:
                NS_ALIASES.setdefault(self.path, {})[name_parts[0]] = \
                    "".join(target)
            self.i = k + 1
            return
        if j < n and toks[j].text == "{":
            # anonymous namespaces are transparent: internal linkage does
            # not matter to the call graph, and qnames stay stable
            self.scopes.append(("ns", "::".join(name_parts)))
            self.i = j + 1
        else:
            self.i = j + 1

    def handle_class(self):
        """Returns False when this is not a class definition head."""
        toks, n = self.toks, len(self.toks)
        j = self.i + 1
        name = ""
        while j < n:
            t = toks[j]
            if t.kind == "id":
                if t.text in DECL_NOISE_MACROS or t.text == "alignas":
                    j += 1
                    if j < n and toks[j].text == "(":
                        j = _match(toks, j, "(", ")")
                    continue
                if t.text == "final":
                    j += 1
                    continue
                name = t.text
                j += 1
                if j < n and toks[j].text == "<":
                    j = _skip_template_args(toks, j)
                continue
            if t.text == ":":       # base clause
                while j < n and toks[j].text not in ("{", ";"):
                    j += 1
                continue
            if t.text == "{":
                if not name:
                    return False
                self.scopes.append(("class", name))
                cq = self.cls_qname()
                self.m.classes.add(cq)
                self.m.class_simple[name].append(cq)
                self.i = j + 1
                return True
            if t.text == ";":        # forward declaration
                self.i = j + 1
                return True
            if t.text == "[":        # attribute
                j = _match(toks, j, "[", "]")
                continue
            return False
        return False

    def skip_enum(self):
        toks, n = self.toks, len(self.toks)
        j = self.i + 1
        # remember LockRank enumerator values: enum class LockRank { kX = 10, }
        while j < n and toks[j].text not in ("{", ";"):
            j += 1
        names = [t.text for t in toks[self.i:j] if t.kind == "id"]
        is_lockrank = "LockRank" in names
        if j < n and toks[j].text == "{":
            end = _match(toks, j, "{", "}")
            if is_lockrank:
                body = toks[j + 1:end - 1]
                k = 0
                while k < len(body):
                    if body[k].kind == "id" and k + 2 < len(body) \
                            and body[k + 1].text == "=" \
                            and body[k + 2].kind == "num":
                        self.m.rank_values[body[k].text] = int(body[k + 2].text)
                    k += 1
            self.i = end
        else:
            self.i = j + 1

    def handle_alias(self):
        toks, n = self.toks, len(self.toks)
        j = self.i
        chunk = []
        while j < n and toks[j].text != ";":
            chunk.append(toks[j])
            j += 1
        TYPE_ALIASES.setdefault(self.path, []).append(chunk)
        self.i = j + 1

    # ---- declarations: functions and members ----
    def parse_decl_chunk(self):
        """Parse one declaration at namespace/class scope: a function
        definition/declaration, or a (member) variable. Advances self.i."""
        toks, n = self.toks, len(self.toks)
        start = self.i
        j = start
        name_idx = -1          # declarator name position (id before '(')
        params_end = -1
        saw_eq = False
        head_anns = set()
        head_escape = ""
        head_acq = []
        while j < n:
            t = toks[j]
            if t.text == "=" and name_idx < 0 \
                    and not (j > start and toks[j - 1].text == "operator"):
                # the `=` of `operator=` is part of the declarator name,
                # not a variable initializer — treating it as one made the
                # parser swallow an inline move-assignment body plus the
                # next member's, desyncing brace/scope tracking for the
                # rest of the class (and losing its qname prefix).
                saw_eq = True
            if t.kind == "id" and t.text in ARU_FLAG_MACROS:
                head_anns.add(t.text)
            if t.kind == "id" and t.text in ARU_ARG_MACROS \
                    and j + 1 < n and toks[j + 1].text == "(":
                end = _match(toks, j + 1, "(", ")")
                arg = toks[j + 2:end - 1]
                if t.text == "ARU_ANALYZE_ESCAPE":
                    head_anns.add("ARU_ANALYZE_ESCAPE")
                    head_escape = " ".join(a.text.strip('"') for a in arg)
                else:
                    head_anns.add("ARU_ACQUIRES_RANK")
                    head_acq.extend(a.text for a in arg if a.kind in
                                    ("id", "num") and a.text != "LockRank")
                j = end
                continue
            if t.kind == "id" and t.text in DECL_NOISE_MACROS \
                    and j + 1 < n and toks[j + 1].text == "(":
                j = _match(toks, j + 1, "(", ")")
                continue
            if t.text == "(" and not saw_eq and j > start \
                    and name_idx < 0:
                prev = toks[j - 1]
                if prev.kind == "id" and prev.text not in CPP_KEYWORDS:
                    name_idx = j - 1
                    params_end = _match(toks, j, "(", ")")
                    j = params_end
                    continue
                if prev.kind == "id" and prev.text == "operator":
                    name_idx = j - 1
                    params_end = _match(toks, j, "(", ")")
                    j = params_end
                    continue
                if prev.text in (">", "=") or prev.kind == "punct":
                    # operator with symbol name: operator==(...), etc.
                    k = j - 1
                    while k > start and toks[k].kind == "punct" \
                            and toks[k].text not in (";", "{", "}"):
                        k -= 1
                    if k >= start and toks[k].text == "operator":
                        name_idx = k
                        params_end = _match(toks, j, "(", ")")
                        j = params_end
                        continue
                # not a declarator; treat as expression/initializer
                j = _match(toks, j, "(", ")")
                continue
            if t.text == "{":
                if name_idx >= 0 and params_end > 0:
                    self.finish_function(start, name_idx, params_end, j,
                                         head_anns, head_escape, head_acq)
                    return
                # brace initializer on a variable: skip to ';'
                end = _match(toks, j, "{", "}")
                self.parse_member_var(start, end)
                while end < n and toks[end].text != ";":
                    end += 1
                self.i = end + 1
                return
            if t.text == ":" and name_idx >= 0 and params_end > 0:
                # constructor init list: calls in it count as body calls
                k = j
                while k < n and toks[k].text != "{":
                    if toks[k].text == "(":
                        k = _match(toks, k, "(", ")")
                        continue
                    if toks[k].text == ";":   # was not an init list
                        break
                    k += 1
                if k < n and toks[k].text == "{":
                    self.finish_function(start, name_idx, params_end, k,
                                         head_anns, head_escape, head_acq,
                                         init_start=j)
                    return
                j = k
                continue
            if t.text == ";":
                if name_idx >= 0 and params_end > 0 and not saw_eq:
                    self.record_decl(start, name_idx, head_anns,
                                     head_escape, head_acq)
                else:
                    self.parse_member_var(start, j)
                self.i = j + 1
                return
            if t.text == "}":
                self.i = j  # stray: let the main loop pop the scope
                return
            j += 1
        self.i = n

    def record_decl(self, start, name_idx, anns, escape, acq):
        """A declaration (no body): annotations attach to the qname so
        headers can annotate functions defined out-of-line."""
        name = self._declarator_name(name_idx)
        if not name:
            return
        fn = Func(qname=self.qname_for(name), name=name.split("::")[-1],
                  cls=self.cls_qname(), file=self.path,
                  line=self.toks[name_idx].line)
        self._apply_anns(fn, anns, escape, acq)
        self._apply_tsa(fn, start, name_idx)
        self.m.add_func(fn)

    def finish_function(self, start, name_idx, params_end, body_open,
                        anns, escape, acq, init_start=None):
        toks = self.toks
        name = self._declarator_name(name_idx)
        body_close = _match(toks, body_open, "{", "}")
        if not name:
            self.i = body_close
            return
        # Out-of-line member: "Class::name" -> attach to the class.
        cls = self.cls_qname()
        simple = name.split("::")[-1]
        if "::" in name:
            owner = name.rsplit("::", 1)[0]
            cands = self.m.class_simple.get(owner.split("::")[-1], [])
            cls = cands[0] if cands else self.qname_for(owner)
            qname = (cls + "::" + simple) if cls else self.qname_for(name)
        else:
            qname = self.qname_for(name)
        body = toks[(init_start if init_start is not None else body_open):
                    body_close]
        fn = Func(qname=qname, name=simple, cls=cls, file=self.path,
                  line=toks[name_idx].line, body=body, is_def=True)
        fn.params = toks[name_idx + 1:params_end]
        self._apply_anns(fn, anns, escape, acq)
        self._apply_tsa(fn, start, name_idx)
        # qualifier-position annotations (between ')' and '{') were
        # already collected by the head scan; now mine the body.
        analyze_body(fn, self.m)
        self.m.add_func(fn)
        self.i = body_close

    def _declarator_name(self, name_idx):
        """Reconstruct a possibly qualified declarator name ending at
        name_idx: walks back over `id ::` pairs and `~`."""
        toks = self.toks
        if toks[name_idx].text == "operator":
            j = name_idx + 1
            sym = []
            while j < len(toks) and toks[j].text != "(":
                sym.append(toks[j].text)
                j += 1
            return "operator" + "".join(sym)
        parts = [toks[name_idx].text]
        j = name_idx - 1
        if j >= 0 and toks[j].text == "~":
            parts[0] = "~" + parts[0]
            j -= 1
        while j - 1 >= 0 and toks[j].text == "::" and toks[j - 1].kind == "id":
            parts.insert(0, toks[j - 1].text)
            j -= 2
        return "::".join(parts)

    def _apply_anns(self, fn, anns, escape, acq):
        mapping = {"ARU_HOT_PATH": "hot", "ARU_MAY_BLOCK": "may_block",
                   "ARU_ALLOCATES": "allocates",
                   "ARU_NOTHROW_PATH": "nothrow",
                   "ARU_ANALYZE_ESCAPE": "escape",
                   "ARU_ACQUIRES_RANK": "acquires_rank"}
        fn.annotations |= {mapping[a] for a in anns if a in mapping}
        fn.escape_reason = escape or fn.escape_reason
        fn.acquires_ranks.extend(acq)

    def _apply_tsa(self, fn, start, name_idx):
        """REQUIRES(mu) in the head -> held-at-entry mutexes."""
        toks = self.toks
        j = start
        while j < len(toks) and toks[j].text != "{" and toks[j].text != ";":
            if toks[j].kind == "id" and toks[j].text in ("REQUIRES",) \
                    and j + 1 < len(toks) and toks[j + 1].text == "(":
                end = _match(toks, j + 1, "(", ")")
                ids = [t.text for t in toks[j + 2:end - 1] if t.kind == "id"]
                fn.requires.extend(ids)
                j = end
                continue
            j += 1

    def parse_member_var(self, start, end):
        """Member/namespace-scope variable declaration in toks[start:end).
        Records the member's type key and, for util::Mutex members, the
        declared LockRank."""
        toks = self.toks
        chunk = toks[start:end]
        if not chunk:
            return
        # strip attribute-style macros (GUARDED_BY(mu_), ...) and their
        # argument lists: they follow the member name and would otherwise
        # be mistaken for it
        stripped = []
        k = 0
        while k < len(chunk):
            t = chunk[k]
            if t.kind == "id" and t.text in DECL_NOISE_MACROS:
                if k + 1 < len(chunk) and chunk[k + 1].text == "(":
                    depth = 0
                    k += 1
                    while k < len(chunk):
                        if chunk[k].text == "(":
                            depth += 1
                        elif chunk[k].text == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        k += 1
                k += 1
                continue
            stripped.append(t)
            k += 1
        chunk = stripped
        if not chunk:
            return
        # find the variable name: last id before '{' '=' '[' or end
        stop = len(chunk)
        for k, t in enumerate(chunk):
            if t.text in ("{", "=", "["):
                stop = k
                break
        ids = [(k, t) for k, t in enumerate(chunk[:stop]) if t.kind == "id"]
        if not ids:
            return
        name_k, name_t = ids[-1]
        type_ids = [t.text for _, t in ids[:-1]
                    if t.text not in ("const", "static", "mutable", "inline",
                                      "constexpr", "std", "util", "unsigned",
                                      "struct", "class", "thread_local")]
        if not type_ids:
            return
        var = name_t.text
        cls = self.cls_qname()
        is_mutex = "Mutex" in type_ids
        if is_mutex:
            rank = ""
            for k in range(stop, len(chunk)):
                # `util::LockRank::kX` in the initializer (parse-order
                # independent: the enum may live in a not-yet-seen file)
                if chunk[k].kind == "id" and chunk[k].text == "LockRank":
                    for k2 in range(k + 1, min(k + 3, len(chunk))):
                        if chunk[k2].kind == "id":
                            rank = chunk[k2].text
                            break
                    break
            if cls:
                self.m.mutex_ranks[(cls, var)] = rank
            else:
                self.m.ns_mutex_ranks[var] = rank
        if cls:
            # type key: innermost/last type identifier (unwraps
            # unique_ptr<T>, shared_ptr<T>, T*, T&)
            self.m.members[(cls, var)] = type_ids[-1]


# file path -> {alias: target} for "namespace x = std::this_thread;"
NS_ALIASES = {}
# file path -> [token chunks] for using/typedef declarations
TYPE_ALIASES = {}
# file path -> full token stream (for the lint rules)
FILE_TOKS = {}

BUILTIN_TYPE_NAMES = {
    "int", "bool", "char", "float", "double", "void", "auto", "long",
    "short", "unsigned", "signed", "size_t", "ssize_t", "ptrdiff_t",
    "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "uintptr_t", "intptr_t", "byte", "nullptr_t",
}

GUARD_TYPES = {"MutexLock", "UniqueLock"}


def analyze_body(fn: Func, m: Model):
    """Mine a function body's tokens: call sites, guard acquisitions
    with their lexical extent, operator new, throw, in-body escapes."""
    toks = fn.body
    n = len(toks)
    # brace depth per token (depth of the scope the token lives in)
    depth = [0] * n
    d = 0
    for k, t in enumerate(toks):
        if t.text == "}":
            d -= 1
        depth[k] = d
        if t.text == "{":
            d += 1

    def guard_end(idx):
        d0 = depth[idx]
        for k in range(idx + 1, n):
            if depth[k] < d0:
                return k
        return n

    k = 0
    while k < n:
        t = toks[k]
        if t.kind != "id":
            k += 1
            continue
        # ---- in-body escape marker ----
        if t.text == "ARU_ANALYZE_ESCAPE" and k + 1 < n \
                and toks[k + 1].text == "(":
            end = _match(toks, k + 1, "(", ")")
            fn.annotations.add("escape")
            fn.escape_reason = fn.escape_reason or " ".join(
                a.text.strip('"') for a in toks[k + 2:end - 1])
            k = end
            continue
        # ---- operator new ----
        if t.text == "new":
            fn.news.append((k, t.line))
            k += 1
            continue
        if t.text == "throw":
            fn.throws.append((k, t.line))
            k += 1
            continue
        # ---- scoped guard declaration: util::MutexLock l(mu_); ----
        if t.text in GUARD_TYPES and k + 2 < n and toks[k + 1].kind == "id" \
                and toks[k + 2].text == "(":
            end = _match(toks, k + 2, "(", ")")
            args = toks[k + 3:end - 1]
            mutex = ""
            for a in args:
                if a.kind == "id":
                    mutex = a.text        # last identifier of the expr
            fn.acquires.append(AcquireSite(
                mutex_expr=mutex, rank=None, var=toks[k + 1].text,
                tok_idx=k, end_idx=guard_end(k), line=t.line, file=fn.file))
            k = end
            continue
        # ---- call site ----
        if t.text in CPP_KEYWORDS or t.text in GUARD_TYPES \
                or t.text in DECL_NOISE_MACROS or t.text in ARU_FLAG_MACROS \
                or t.text in ARU_ARG_MACROS:
            k += 1
            continue
        j = k + 1
        if j < n and toks[j].text == "<":
            j2 = _skip_template_args(toks, j)
            if j2 > j and j2 < n and toks[j2].text == "(":
                j = j2
        if j < n and toks[j].text == "(":
            prev = toks[k - 1] if k > 0 else None
            # `Type name(...)`: a declaration -> constructor call of Type
            if prev is not None and prev.kind == "id" \
                    and prev.text not in CPP_KEYWORDS:
                if prev.text in BUILTIN_TYPE_NAMES:
                    k = j  # builtin-typed local: no call
                    continue
                fn.calls.append(CallSite(name=prev.text, qualifier="",
                                         receiver="", tok_idx=k,
                                         line=t.line, file=fn.file))
                k = j
                continue
            qualifier, receiver = "", ""
            if prev is not None and prev.text == "::":
                qparts = []
                b = k - 1
                while b - 1 >= 0 and toks[b].text == "::" \
                        and toks[b - 1].kind == "id":
                    qparts.insert(0, toks[b - 1].text)
                    b -= 2
                qualifier = "::".join(qparts)
            elif prev is not None and prev.text in (".", "->"):
                b = k - 2
                if b >= 0 and toks[b].kind == "id":
                    receiver = toks[b].text
                elif b >= 0 and toks[b].text == ")":
                    receiver = "?expr"
                elif b >= 0 and toks[b].text == "]":
                    receiver = "?expr"
            fn.calls.append(CallSite(name=t.text, qualifier=qualifier,
                                     receiver=receiver, tok_idx=k,
                                     line=t.line, file=fn.file))
            k = j
            continue
        k += 1

    # ---- thread-spawn arguments run on the new thread, not here ----
    # Calls inside `std::jthread(...)` / `std::thread(...)` construction
    # arguments (typically a lambda body) are real call-graph edges but
    # are NOT made under any lock the spawning function holds: the body
    # executes later, on the spawned thread, with an empty lock set.
    fn.deferred = []
    for k, t in enumerate(toks):
        if t.kind == "id" and t.text in ("jthread", "thread") \
                and k + 1 < n and toks[k + 1].text == "(":
            end_idx = _match(toks, k + 1, "(", ")")
            fn.deferred.append((k, end_idx))

    # ---- manual lock()/unlock() handling ----
    # `v.unlock()` on a guard variable ends its extent early;
    # `mu_.lock()` acquires until `mu_.unlock()` or function end.
    guard_vars = {a.var: a for a in fn.acquires if a.var}
    for c in fn.calls:
        if c.name == "unlock" and c.receiver in guard_vars:
            a = guard_vars[c.receiver]
            if c.tok_idx < a.end_idx:
                a.end_idx = c.tok_idx
        elif c.name == "lock" and c.receiver and c.receiver != "?expr" \
                and c.receiver not in guard_vars:
            end = n
            for c2 in fn.calls:
                if c2.name == "unlock" and c2.receiver == c.receiver \
                        and c2.tok_idx > c.tok_idx:
                    end = min(end, c2.tok_idx)
            fn.acquires.append(AcquireSite(
                mutex_expr=c.receiver, rank=None, var="",
                tok_idx=c.tok_idx, end_idx=end, line=c.line, file=fn.file))


# --------------------------------------------------------------------------
# Resolution
# --------------------------------------------------------------------------

def build_locals(m: Model):
    """Second pass once every class is known: map local/param variables
    of project class types so receiver calls resolve precisely."""
    for fn in m.funcs.values():
        locals_ = {}
        for toks in (getattr(fn, "params", []), fn.body):
            n = len(toks)
            for k, t in enumerate(toks):
                if t.kind != "id" or t.text not in m.class_simple:
                    continue
                j = k + 1
                while j < n and toks[j].text in ("*", "&", "&&", "const"):
                    j += 1
                if j < n and toks[j].kind == "id" \
                        and toks[j].text not in CPP_KEYWORDS:
                    nxt = toks[j + 1].text if j + 1 < n else ";"
                    if nxt in ("(", "{", "=", ";", ",", ")"):
                        locals_[toks[j].text] = t.text
        fn.locals = locals_


def class_methods(m: Model, cls: str, name: str):
    return [f for f in m.by_name.get(name, []) if f.cls == cls]


def resolve_call(m: Model, fn: Func, c: CallSite):
    """Resolve a call site to project functions. Empty list => not a
    project function (builtin tables apply by name)."""
    name = c.name
    if c.qualifier:
        q = c.qualifier
        if q.split("::")[0] in ("std", "boost"):
            return []
        full = q + "::" + name
        exact = [f for qn, f in m.funcs.items()
                 if qn == full or qn.endswith("::" + full)]
        if exact:
            return exact
        # Class::method via the class simple-name index
        cands = m.class_simple.get(q.split("::")[-1], [])
        out = []
        for cq in cands:
            out.extend(class_methods(m, cq, name))
        return out
    if c.receiver:
        if c.receiver == "this":
            return class_methods(m, fn.cls, name)
        cls_key = None
        locals_ = getattr(fn, "locals", {})
        if c.receiver in locals_:
            cls_key = locals_[c.receiver]
        elif fn.cls and (fn.cls, c.receiver) in m.members:
            cls_key = m.members[(fn.cls, c.receiver)]
        if cls_key:
            out = []
            for cq in m.class_simple.get(cls_key, []):
                out.extend(class_methods(m, cq, name))
            return out
        if name in GENERIC_METHOD_NAMES:
            return []
        # unknown receiver: over-approximate to any method of that name
        return [f for f in m.by_name.get(name, []) if f.cls]
    # unqualified free-style call: own class first, then same-file free
    # functions (anonymous-namespace helpers), then free functions
    # anywhere, and only then the full over-approximation
    own = class_methods(m, fn.cls, name) if fn.cls else []
    if own:
        return own
    if name in GENERIC_METHOD_NAMES:
        return []
    cands = list(m.by_name.get(name, []))
    same_file_free = [f for f in cands if not f.cls and f.file == fn.file]
    if same_file_free:
        return same_file_free
    free = [f for f in cands if not f.cls]
    if free:
        return free
    return cands


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

@dataclass
class Finding:
    rule: str
    func: str            # qualified enclosing function
    callee: str          # callee name / "operator new" / "throw" / rank pair
    file: str
    line: int
    chain: list          # call chain from a root to func
    note: str = ""

    @property
    def key(self):
        return f"{self.rule} {self.func} {self.callee}"


def _rank_value(m: Model, rank_name: str):
    if not rank_name:
        return None
    if rank_name in m.rank_values:
        return m.rank_values[rank_name]
    if re.fullmatch(r"\d+", rank_name):
        return int(rank_name)
    return None


def _acquire_rank(m: Model, fn: Func, a: AcquireSite):
    """Resolve the LockRank of an acquisition site's mutex expression."""
    if fn.cls and (fn.cls, a.mutex_expr) in m.mutex_ranks:
        return _rank_value(m, m.mutex_ranks[(fn.cls, a.mutex_expr)])
    if a.mutex_expr in m.ns_mutex_ranks:
        return _rank_value(m, m.ns_mutex_ranks[a.mutex_expr])
    # unique ranked member of that name across all classes (e.g. a guard
    # on `other.stats_mu_` from a free function)
    ranks = {v for (c, mname), v in m.mutex_ranks.items()
             if mname == a.mutex_expr}
    if len(ranks) == 1:
        return _rank_value(m, next(iter(ranks)))
    return None


def resolve_acquire_ranks(m: Model):
    for fn in m.funcs.values():
        for a in fn.acquires:
            a.rank = _acquire_rank(m, fn, a)


def _entry_held(m: Model, fn: Func):
    """Ranks held at entry, from REQUIRES(mu) annotations."""
    held = []
    for mu in fn.requires:
        r = _acquire_rank(m, fn, AcquireSite(mu, None, "", 0, 0, 0, ""))
        if r is not None:
            held.append(r)
    return held


def _held_at(m: Model, fn: Func, tok_idx: int, exclude=None):
    held = list(_entry_held(m, fn))
    for a in fn.acquires:
        if a is exclude or a.rank is None:
            continue
        if a.tok_idx < tok_idx < a.end_idx:
            held.append(a.rank)
    return held


def rule_hot(m: Model, findings, sanctioned):
    """BFS from ARU_HOT_PATH roots; flag transitive allocation/blocking."""
    roots = [f for f in m.funcs.values() if "hot" in f.annotations and f.is_def]
    parent = {}
    seen = set()
    queue = []
    for r in roots:
        if r.qname not in seen:
            seen.add(r.qname)
            queue.append(r)

    def chain(fn):
        out = [fn.qname]
        q = fn.qname
        while q in parent:
            q = parent[q]
            out.insert(0, q)
        return out

    while queue:
        fn = queue.pop(0)
        for idx, line in fn.news:
            findings.append(Finding("hot-alloc", fn.qname, "operator new",
                                    fn.file, line, chain(fn)))
        for c in fn.calls:
            targets = [t for t in resolve_call(m, fn, c) if t.is_def
                       or t.annotations]
            if not targets:
                if c.name in ALLOCATING_NAMES:
                    findings.append(Finding("hot-alloc", fn.qname, c.name,
                                            fn.file, c.line, chain(fn)))
                elif c.name in BLOCKING_NAMES:
                    findings.append(Finding("hot-block", fn.qname, c.name,
                                            fn.file, c.line, chain(fn)))
                continue
            for t in targets:
                if t.qname == fn.qname:
                    continue
                if t.is_escape:
                    sanctioned.append((fn.qname, t.qname, t.escape_reason))
                    continue
                flagged = False
                if "allocates" in t.annotations:
                    findings.append(Finding("hot-alloc", fn.qname, t.name,
                                            fn.file, c.line, chain(fn),
                                            note="callee is ARU_ALLOCATES"))
                    flagged = True
                if "may_block" in t.annotations:
                    findings.append(Finding("hot-block", fn.qname, t.name,
                                            fn.file, c.line, chain(fn),
                                            note="callee is ARU_MAY_BLOCK"))
                    flagged = True
                if not flagged and t.is_def and t.qname not in seen:
                    seen.add(t.qname)
                    parent[t.qname] = fn.qname
                    queue.append(t)


def _min_acquired(m: Model, fn: Func, memo, stack):
    """(value, where_qname, line) of the lowest-rank acquisition
    reachable through fn, or None. Cycle-safe."""
    if fn.qname in memo:
        return memo[fn.qname]
    if fn.qname in stack:
        return None
    stack.add(fn.qname)
    best = None
    for a in fn.acquires:
        if a.rank is not None:
            cand = (a.rank, fn.qname, a.line)
            if best is None or cand[0] < best[0]:
                best = cand
    for rname in fn.acquires_ranks:
        v = _rank_value(m, rname)
        if v is not None and (best is None or v < best[0]):
            best = (v, fn.qname, fn.line)
    for c in fn.calls:
        for t in resolve_call(m, fn, c):
            if t.qname == fn.qname or not (t.is_def or t.acquires_ranks):
                continue
            sub = _min_acquired(m, t, memo, stack)
            if sub is not None and (best is None or sub[0] < best[0]):
                best = sub
    stack.discard(fn.qname)
    memo[fn.qname] = best
    return best


def rule_ranks(m: Model, findings):
    """LockRank partial order: while rank R is held, every acquisition
    (direct or through any callee) must have rank strictly > R."""
    memo = {}
    for fn in m.funcs.values():
        if not fn.is_def:
            continue
        # direct guard-under-guard
        for a in fn.acquires:
            if a.rank is None:
                continue
            held = _held_at(m, fn, a.tok_idx, exclude=a)
            if held and a.rank <= max(held):
                findings.append(Finding(
                    "rank-order", fn.qname, a.mutex_expr, a.file, a.line,
                    [fn.qname],
                    note=f"acquires rank {a.rank} while rank "
                         f"{max(held)} is held"))
        # transitive: calls made while a guard is lexically held
        deferred = getattr(fn, "deferred", [])
        for c in fn.calls:
            if any(s < c.tok_idx < e for s, e in deferred):
                continue
            held = _held_at(m, fn, c.tok_idx)
            if not held:
                continue
            for t in resolve_call(m, fn, c):
                if t.qname == fn.qname:
                    continue
                # REQUIRES callees run under the already-held lock and
                # were checked with that lock in their own entry set
                if t.requires:
                    continue
                sub = _min_acquired(m, t, memo, set())
                if sub is not None and sub[0] <= max(held):
                    findings.append(Finding(
                        "rank-order", fn.qname, t.name, fn.file, c.line,
                        [fn.qname, sub[1]],
                        note=f"callee path acquires rank {sub[0]} at "
                             f"{sub[1]} while rank {max(held)} is held"))


def rule_nothrow(m: Model, findings):
    """No throw-paths reachable from ARU_NOTHROW_PATH roots."""
    roots = [f for f in m.funcs.values()
             if "nothrow" in f.annotations and f.is_def]
    parent = {}
    seen = {r.qname for r in roots}
    queue = list(roots)

    def chain(fn):
        out = [fn.qname]
        q = fn.qname
        while q in parent:
            q = parent[q]
            out.insert(0, q)
        return out

    while queue:
        fn = queue.pop(0)
        for idx, line in fn.throws:
            findings.append(Finding("nothrow-throw", fn.qname, "throw",
                                    fn.file, line, chain(fn)))
        for c in fn.calls:
            targets = [t for t in resolve_call(m, fn, c)
                       if t.is_def or t.annotations]
            if not targets:
                if c.name in THROWING_NAMES and (c.receiver or c.qualifier
                                                 or c.name.startswith("sto")):
                    findings.append(Finding(
                        "nothrow-throw", fn.qname, c.name, fn.file, c.line,
                        chain(fn), note="throwing-by-contract callee"))
                continue
            for t in targets:
                if t.qname == fn.qname or t.is_escape:
                    continue
                if t.is_def and t.qname not in seen:
                    seen.add(t.qname)
                    parent[t.qname] = fn.qname
                    queue.append(t)


# --------------------------------------------------------------------------
# AST-level lint rules (migrated from scripts/lint.sh greps)
# --------------------------------------------------------------------------

def lint_rules(m: Model, rel_of, allow):
    """raw-payload and raw-sleep (alias-aware), telemetry-http, send-vec."""
    findings = []

    def allowed(rule, path):
        return (rule, rel_of(path)) in allow

    # raw-payload: std::vector<std::byte>, through using/typedef chains.
    payload_aliases = set()
    changed = True
    while changed:
        changed = False
        for path, chunks in TYPE_ALIASES.items():
            for chunk in chunks:
                texts = [t.text for t in chunk]
                name = None
                if texts and texts[0] == "using" and "=" in texts:
                    name = texts[1] if len(texts) > 1 else None
                elif texts and texts[0] == "typedef":
                    name = texts[-1]
                if not name or name in payload_aliases:
                    continue
                rhs = texts[2:]
                if ("vector" in rhs and "byte" in rhs) or \
                        any(a in rhs for a in payload_aliases):
                    payload_aliases.add(name)
                    changed = True

    for path, toks in FILE_TOKS.items():
        if allowed("raw-payload", path):
            pass
        else:
            n = len(toks)
            for k, t in enumerate(toks):
                hit = None
                if t.text == "vector" and k + 1 < n \
                        and toks[k + 1].text == "<":
                    end = _skip_template_args(toks, k + 1)
                    # element type exactly std::byte — a vector of
                    # std::byte* (the pool's free lists) is fine
                    args = toks[k + 1:end]
                    if any(x.text == "byte" and
                           (i2 + 1 >= len(args) or
                            args[i2 + 1].text not in ("*", "&"))
                           for i2, x in enumerate(args)):
                        hit = "std::vector<std::byte>"
                elif t.kind == "id" and t.text in payload_aliases:
                    prev = toks[k - 1].text if k else ""
                    nxt = toks[k + 1].text if k + 1 < n else ""
                    if prev not in ("using", "typedef") and nxt != "=":
                        hit = f"alias of std::vector<std::byte> ({t.text})"
                if hit:
                    findings.append(Finding(
                        "raw-payload", rel_of(path), hit, path, t.line, [],
                        note="payloads go through runtime::PayloadBuffer "
                             "(pooled, no zero-fill)"))

        # telemetry-http: the exporter's HTTP request parsing is an
        # implementation detail of src/telemetry/ — referencing
        # parse_http_request or HttpRequest anywhere else would let ad-hoc
        # HTTP handling creep into other subsystems (http_get is the
        # public client helper; use that).
        if "/telemetry/" not in path.replace(os.sep, "/") \
                and not allowed("telemetry-http", path):
            for t in toks:
                if t.kind == "id" and t.text in ("parse_http_request",
                                                 "HttpRequest"):
                    findings.append(Finding(
                        "telemetry-http", rel_of(path), t.text, path, t.line,
                        [],
                        note="HTTP parsing lives in src/telemetry/ only; "
                             "clients use telemetry::http_get"))

        # send-vec: TcpStream::send_vec is the raw scatter/gather
        # primitive; only net::SendBuffer (socket.{hpp,cpp}) may call it.
        # Routing every frame through one buffered writer is what
        # guarantees frames can never interleave mid-stream — a direct
        # send_vec elsewhere could slip between a staged batch and its
        # flush and desynchronize the connection.
        if not path.replace(os.sep, "/").endswith(("/net/socket.hpp",
                                                   "/net/socket.cpp")) \
                and not allowed("send-vec", path):
            for t in toks:
                if t.kind == "id" and t.text == "send_vec":
                    findings.append(Finding(
                        "send-vec", rel_of(path), t.text, path, t.line, [],
                        note="frames leave through net::SendBuffer "
                             "(flush/flush_with), the only legal "
                             "send_vec caller"))

        # raw-sleep: std::this_thread::sleep_for/until, via namespace
        # aliases and using-declarations too.
        if allowed("raw-sleep", path):
            continue
        aliases = {a for a, tgt in NS_ALIASES.get(path, {}).items()
                   if "this_thread" in tgt}
        bare_ok = any(
            c and c[0].text == "using" and "=" not in [x.text for x in c]
            and "this_thread" in [x.text for x in c]
            for c in TYPE_ALIASES.get(path, []))
        n = len(toks)
        for k, t in enumerate(toks):
            if t.text not in ("sleep_for", "sleep_until"):
                continue
            qual_ok = False
            if k >= 2 and toks[k - 1].text == "::" and \
                    toks[k - 2].text in ({"this_thread"} | aliases):
                qual_ok = True
            bare = (k + 1 < n and toks[k + 1].text == "(" and
                    (k == 0 or toks[k - 1].text not in ("::", ".", "->")))
            if qual_ok or (bare and bare_ok):
                findings.append(Finding(
                    "raw-sleep", rel_of(path), t.text, path, t.line, [],
                    note="runtime sleeping goes through util::Clock "
                         "(ManualClock in tests)"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def load_compile_db(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"aru-analyze: cannot read compile database {path}: {e}",
              file=sys.stderr)
        print("  configure a build first (any preset exports "
              "compile_commands.json),", file=sys.stderr)
        print("  e.g.: cmake --preset release && "
              "scripts/analyze/aru_analyze.py --compile-db "
              "build-release/compile_commands.json", file=sys.stderr)
        sys.exit(2)


def collect_sources(args, root):
    """(files, defines): absolute paths to parse + preprocessor defines."""
    defines = {}
    for d in args.define:
        name, _, val = d.partition("=")
        defines[name] = val or "1"
    files = []
    if args.sources:
        for srcdir in args.sources:
            base = srcdir if os.path.isabs(srcdir) else os.path.join(root,
                                                                     srcdir)
            for ext in ("cpp", "hpp", "h", "cc"):
                files.extend(globmod.glob(os.path.join(base, "**", f"*.{ext}"),
                                          recursive=True))
        return sorted(set(files)), defines
    db = load_compile_db(args.compile_db)
    prefixes = [os.path.normpath(p) for p in args.src_prefix]
    for entry in db:
        fpath = entry.get("file", "")
        if not os.path.isabs(fpath):
            fpath = os.path.normpath(os.path.join(entry.get("directory", ""),
                                                  fpath))
        rel = os.path.relpath(fpath, root)
        if not any(rel == p or rel.startswith(p + os.sep) for p in prefixes):
            continue
        files.append(fpath)
        argv = entry.get("arguments") or shlex.split(entry.get("command", ""))
        for a in argv:
            if a.startswith("-D"):
                name, _, val = a[2:].partition("=")
                defines.setdefault(name, val or "1")
    for p in prefixes:
        for ext in ("hpp", "h"):
            files.extend(globmod.glob(os.path.join(root, p, "**", f"*.{ext}"),
                                      recursive=True))
    return sorted(set(files)), defines


def load_allowlist(path):
    allow = set()
    if path and os.path.isfile(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    parts = line.split(None, 1)
                    if len(parts) == 2:
                        allow.add((parts[0], parts[1]))
    return allow


def load_baseline(path):
    keys = []
    if path and os.path.isfile(path):
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("#"):
                    keys.append(line)
    return keys


def report(findings, verbose):
    by_rule = defaultdict(list)
    for f in findings:
        by_rule[f.rule].append(f)
    for rule in sorted(by_rule):
        for f in by_rule[rule]:
            print(f"aru-analyze [{rule}]: {f.func} -> {f.callee}"
                  f"  ({f.file}:{f.line})")
            if f.note:
                print(f"    note: {f.note}")
            if len(f.chain) > 1:
                print(f"    path: {' -> '.join(f.chain)}")


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="aru_analyze.py",
        description="stampede call-graph static analyzer (see "
                    "docs/ARCHITECTURE.md, 'Static analysis')")
    ap.add_argument("--compile-db", default="build/compile_commands.json",
                    help="compile database (default: %(default)s)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--src-prefix", action="append", default=None,
                    help="source prefix under root to analyze "
                         "(repeatable; default: src)")
    ap.add_argument("--sources", action="append", default=None,
                    help="analyze all sources under this directory instead "
                         "of reading a compile database (fixtures, lint-only)")
    ap.add_argument("--define", "-D", action="append", default=[],
                    metavar="NAME[=VAL]", help="extra preprocessor define")
    ap.add_argument("--rules", default="hot,ranks,nothrow,lint",
                    help="comma list of rules to run (default: %(default)s)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file of reviewed findings "
                         "(default: scripts/analyze/baseline.txt under root; "
                         "'none' disables)")
    ap.add_argument("--allowlist", default=None,
                    help="lint allowlist (default: scripts/lint_allowlist.txt)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current findings")
    ap.add_argument("--verbose", "-v", action="store_true")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    args.src_prefix = args.src_prefix or ["src"]
    if not os.path.isabs(args.compile_db):
        args.compile_db = os.path.join(root, args.compile_db)
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    bad = rules - {"hot", "ranks", "nothrow", "lint"}
    if bad:
        print(f"aru-analyze: unknown rule(s): {', '.join(sorted(bad))}",
              file=sys.stderr)
        return 2

    if args.sources is None and rules == {"lint"}:
        # lint rules are purely lexical: no compile database needed
        args.sources = [os.path.join(root, p) for p in args.src_prefix]
    files, defines = collect_sources(args, root)
    if not files:
        print("aru-analyze: no source files found", file=sys.stderr)
        return 2

    def rel_of(path):
        return os.path.relpath(path, root).replace(os.sep, "/")

    # util/ first so LockRank values and Mutex are known early.
    files.sort(key=lambda p: (0 if f"{os.sep}util{os.sep}" in p else 1, p))
    model = Model()
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"aru-analyze: cannot read {path}: {e}", file=sys.stderr)
            return 2
        toks = tokenize(preprocess(text, defines))
        FILE_TOKS[path] = toks
        Parser(model, path, toks).run()
    build_locals(model)
    resolve_acquire_ranks(model)
    for fn in model.funcs.values():
        fn.file = rel_of(fn.file)

    findings = []
    sanctioned = []
    if "hot" in rules:
        rule_hot(model, findings, sanctioned)
    if "ranks" in rules:
        rule_ranks(model, findings)
    if "nothrow" in rules:
        rule_nothrow(model, findings)
    if "lint" in rules:
        allow = load_allowlist(args.allowlist or
                               os.path.join(root, "scripts",
                                            "lint_allowlist.txt"))
        findings.extend(lint_rules(model, rel_of, allow))

    # de-duplicate by key + line (one guard can yield N identical sites)
    uniq = {}
    for f in findings:
        uniq.setdefault((f.key, f.line), f)
    findings = sorted(uniq.values(), key=lambda f: (f.rule, f.file, f.line))

    baseline_path = args.baseline
    if baseline_path != "none":
        baseline_path = baseline_path or os.path.join(root, "scripts",
                                                      "analyze",
                                                      "baseline.txt")
    else:
        baseline_path = None

    if args.update_baseline:
        if not baseline_path:
            print("aru-analyze: --update-baseline needs a baseline path",
                  file=sys.stderr)
            return 2
        with open(baseline_path, "w", encoding="utf-8") as f:
            f.write("# aru-analyze baseline: reviewed residual findings.\n"
                    "# One per line: <rule> <function> <callee>.\n"
                    "# Regenerate with --update-baseline; every entry must\n"
                    "# be justified in the PR that adds it.\n")
            for k in sorted({x.key for x in findings}):
                f.write(k + "\n")
        print(f"aru-analyze: wrote {len({x.key for x in findings})} "
              f"entries to {rel_of(baseline_path)}")
        return 0

    baseline = load_baseline(baseline_path)
    base_set = set(baseline)
    new = [f for f in findings if f.key not in base_set]
    suppressed = [f for f in findings if f.key in base_set]
    matched = {f.key for f in suppressed}
    ran_rules = {"hot": ("hot-alloc", "hot-block"), "ranks": ("rank-order",),
                 "nothrow": ("nothrow-throw",),
                 "lint": ("raw-payload", "raw-sleep", "telemetry-http",
                          "send-vec")}
    active = {r for rule in rules for r in ran_rules[rule]}
    stale = [k for k in baseline
             if k.split(" ", 1)[0] in active and k not in matched]

    report(new, args.verbose)
    if args.verbose and sanctioned:
        print(f"-- {len(sanctioned)} sanctioned escape edge(s):")
        for caller, callee, reason in sorted(set(sanctioned)):
            print(f"   {caller} -> {callee}: {reason or '(no reason)'}")
    for k in stale:
        print(f"aru-analyze [stale-baseline]: '{k}' no longer fires; "
              f"remove it from the baseline", file=sys.stderr)

    n_esc = len(set(sanctioned))
    print(f"aru-analyze: {len(files)} files, {len(model.funcs)} functions; "
          f"{len(new)} finding(s), {len(suppressed)} baselined, "
          f"{n_esc} sanctioned escape edge(s), {len(stale)} stale "
          f"baseline entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if (new or stale) else 0


if __name__ == "__main__":
    sys.exit(main())

