#!/usr/bin/env bash
# Concurrency-hygiene lint for the stampede runtime. Runs in CI and via the
# `lint` CMake target; exits non-zero on any violation.
#
# Grep-level rules (allowlist: scripts/lint_allowlist.txt, "<rule> <path>"):
#   raw-mutex    no `std::mutex` outside util/mutex.hpp — every lock must be
#                a util::Mutex so it carries thread-safety annotations and a
#                LockRank for the debug validator.
#   detach       no `std::thread::detach` — every thread must be joined (the
#                runtime owns its threads via std::jthread).
#   endl         no `std::endl` in src/ — it flushes; hot paths must use '\n'.
#   raw-socket   no raw `::socket`/`::connect` outside src/net/socket.cpp —
#                all network I/O goes through net::TcpStream/TcpListener so
#                it is nonblocking, deadline-bounded and SIGPIPE-safe.
#
# The raw-sleep and raw-payload rules moved to token/AST level in
# scripts/analyze/aru_analyze.py (--rules lint): the analyzer resolves
# namespace aliases and using/typedef chains, so `namespace t =
# std::this_thread; t::sleep_for(...)` and `using Buf =
# std::vector<std::byte>` are caught where the greps were blind. The
# analyzer also enforces telemetry-http: the exporter's HTTP request
# parsing (parse_http_request / HttpRequest) stays inside
# src/telemetry/ — other subsystems talk to a metrics endpoint only
# through telemetry::http_get — and send-vec: TcpStream::send_vec stays
# inside src/net/socket.{hpp,cpp}, so every frame leaves through the
# net::SendBuffer buffered writer and can never interleave mid-stream.
# This script stays the single driver: it invokes the analyzer's lint
# rules with the same allowlist.
#
# Also runs clang-tidy over src/ when available and a compile database
# exists (pass --build-dir, or configure with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON). Passing --build-dir promises a
# database: a missing one is then an error, not a silent skip.
set -u

cd "$(dirname "$0")/.." || exit 2
ALLOWLIST="scripts/lint_allowlist.txt"
BUILD_DIR=""
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    *) echo "usage: $0 [--build-dir <dir>]" >&2; exit 2 ;;
  esac
done

# The caller explicitly pointed at a build dir: a missing compile database
# there means the static checks would silently check nothing. Fail loudly,
# whether or not clang-tidy happens to be installed.
if [ -n "$BUILD_DIR" ] && [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "lint: --build-dir $BUILD_DIR has no compile_commands.json" >&2
  echo "  configure it with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (all presets do)" >&2
  exit 2
fi

failures=0

# allowed <rule> <path> -> 0 if the path is allowlisted for the rule.
allowed() {
  [ -f "$ALLOWLIST" ] && grep -v '^#' "$ALLOWLIST" | grep -qx "$1 $2"
}

# check <rule> <pattern> <description> <path...>
check() {
  local rule="$1" pattern="$2" what="$3"
  shift 3
  local out
  out=$(grep -rn --include='*.hpp' --include='*.cpp' -E "$pattern" "$@" 2>/dev/null) || true
  local hit=0
  while IFS= read -r line; do
    [ -z "$line" ] && continue
    local file="${line%%:*}"
    if ! allowed "$rule" "$file"; then
      [ "$hit" -eq 0 ] && echo "lint [$rule]: $what" >&2
      echo "  $line" >&2
      hit=1
    fi
  done <<< "$out"
  [ "$hit" -ne 0 ] && failures=$((failures + 1))
  return 0
}

check raw-mutex 'std::mutex[^_[:alnum:]]|std::mutex$' \
  "raw std::mutex — use util::Mutex (annotated, rank-checked)" src tests
check detach '\.detach\(' \
  "std::thread::detach — threads must be joined" src tests
check endl 'std::endl' \
  "std::endl flushes — use '\\n' in runtime code" src

check raw-socket '(^|[^[:alnum:]_:])::(socket|connect)[[:space:]]*\(' \
  "raw ::socket/::connect — go through net::TcpStream / net::TcpListener" \
  src tests bench examples

# -- raw-sleep / raw-payload: token-level, alias-aware (aru-analyze) ----------
if ! python3 scripts/analyze/aru_analyze.py --rules lint --baseline none; then
  failures=$((failures + 1))
fi

# -- clang-tidy (best-effort when no --build-dir; strict when given) ----------
if command -v clang-tidy >/dev/null 2>&1; then
  db=""
  if [ -n "$BUILD_DIR" ]; then
    db="$BUILD_DIR"  # validated above
  elif [ -f "build/compile_commands.json" ]; then
    db="build"
  fi
  if [ -n "$db" ]; then
    echo "lint: running clang-tidy (compile database: $db)"
    # WarningsAsErrors lives in .clang-tidy: bugprone-* and concurrency-*
    # are errors; performance-* stays advisory.
    if ! find src -name '*.cpp' -print0 |
        xargs -0 clang-tidy -p "$db" --quiet; then
      failures=$((failures + 1))
    fi
  else
    echo "lint: clang-tidy present but no compile_commands.json found; skipping" >&2
  fi
else
  echo "lint: clang-tidy not installed; skipping static checks"
fi

if [ "$failures" -ne 0 ]; then
  echo "lint: FAILED ($failures rule(s) violated)" >&2
  exit 1
fi
echo "lint: OK"
