# Empty compiler generated dependencies file for test_channel_modes.
# This may be replaced when dependencies are built.
