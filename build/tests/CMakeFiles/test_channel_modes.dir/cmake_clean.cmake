file(REMOVE_RECURSE
  "CMakeFiles/test_channel_modes.dir/test_channel_modes.cpp.o"
  "CMakeFiles/test_channel_modes.dir/test_channel_modes.cpp.o.d"
  "test_channel_modes"
  "test_channel_modes.pdb"
  "test_channel_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
