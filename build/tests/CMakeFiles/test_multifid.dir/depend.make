# Empty dependencies file for test_multifid.
# This may be replaced when dependencies are built.
