file(REMOVE_RECURSE
  "CMakeFiles/test_multifid.dir/test_multifid.cpp.o"
  "CMakeFiles/test_multifid.dir/test_multifid.cpp.o.d"
  "test_multifid"
  "test_multifid.pdb"
  "test_multifid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multifid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
