# Empty dependencies file for test_task_api.
# This may be replaced when dependencies are built.
