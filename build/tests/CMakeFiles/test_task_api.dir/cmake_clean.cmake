file(REMOVE_RECURSE
  "CMakeFiles/test_task_api.dir/test_task_api.cpp.o"
  "CMakeFiles/test_task_api.dir/test_task_api.cpp.o.d"
  "test_task_api"
  "test_task_api.pdb"
  "test_task_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
