# Empty dependencies file for test_stereo.
# This may be replaced when dependencies are built.
