file(REMOVE_RECURSE
  "CMakeFiles/test_stereo.dir/test_stereo.cpp.o"
  "CMakeFiles/test_stereo.dir/test_stereo.cpp.o.d"
  "test_stereo"
  "test_stereo.pdb"
  "test_stereo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stereo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
