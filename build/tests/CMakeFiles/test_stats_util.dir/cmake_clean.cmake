file(REMOVE_RECURSE
  "CMakeFiles/test_stats_util.dir/test_stats_util.cpp.o"
  "CMakeFiles/test_stats_util.dir/test_stats_util.cpp.o.d"
  "test_stats_util"
  "test_stats_util.pdb"
  "test_stats_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
