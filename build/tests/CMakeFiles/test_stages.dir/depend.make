# Empty dependencies file for test_stages.
# This may be replaced when dependencies are built.
