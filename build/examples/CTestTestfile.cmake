# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "aru=min" "seconds=1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_off "/root/repo/build/examples/quickstart" "aru=off" "seconds=1")
set_tests_properties(example_quickstart_off PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tracker_dot "/root/repo/build/examples/tracker_demo" "dot=true")
set_tests_properties(example_tracker_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tracker_demo "/root/repo/build/examples/tracker_demo" "aru=max" "seconds=2")
set_tests_properties(example_tracker_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_load "/root/repo/build/examples/adaptive_load" "aru=min" "seconds=2")
set_tests_properties(example_adaptive_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_operator "/root/repo/build/examples/custom_operator" "op=custom" "seconds=1")
set_tests_properties(example_custom_operator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gesture_window "/root/repo/build/examples/gesture_window" "aru=min" "seconds=1" "window=3")
set_tests_properties(example_gesture_window PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stereo_pipeline "/root/repo/build/examples/stereo_pipeline" "aru=min" "seconds=1")
set_tests_properties(example_stereo_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multifidelity "/root/repo/build/examples/multifidelity" "aru=min" "seconds=1")
set_tests_properties(example_multifidelity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dump_frames "/root/repo/build/examples/dump_frames" "frames=1" "dir=.")
set_tests_properties(example_dump_frames PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_record "/root/repo/build/examples/trace_inspect" "record" "out=smoke.trace" "seconds=1" "monitor_ms=50")
set_tests_properties(example_trace_record PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;39;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_analyze "/root/repo/build/examples/trace_inspect" "analyze" "in=smoke.trace")
set_tests_properties(example_trace_analyze PROPERTIES  DEPENDS "example_trace_record" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;40;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_breakdown "/root/repo/build/examples/trace_inspect" "breakdown" "in=smoke.trace")
set_tests_properties(example_trace_breakdown PROPERTIES  DEPENDS "example_trace_record" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;41;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_timeline "/root/repo/build/examples/trace_inspect" "timeline" "in=smoke.trace")
set_tests_properties(example_trace_timeline PROPERTIES  DEPENDS "example_trace_record" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;42;add_test;/root/repo/examples/CMakeLists.txt;0;")
