file(REMOVE_RECURSE
  "CMakeFiles/dump_frames.dir/dump_frames.cpp.o"
  "CMakeFiles/dump_frames.dir/dump_frames.cpp.o.d"
  "dump_frames"
  "dump_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
