# Empty dependencies file for dump_frames.
# This may be replaced when dependencies are built.
