file(REMOVE_RECURSE
  "CMakeFiles/multifidelity.dir/multifidelity.cpp.o"
  "CMakeFiles/multifidelity.dir/multifidelity.cpp.o.d"
  "multifidelity"
  "multifidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multifidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
