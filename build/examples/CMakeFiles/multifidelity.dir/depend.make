# Empty dependencies file for multifidelity.
# This may be replaced when dependencies are built.
