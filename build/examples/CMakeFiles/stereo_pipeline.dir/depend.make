# Empty dependencies file for stereo_pipeline.
# This may be replaced when dependencies are built.
