file(REMOVE_RECURSE
  "CMakeFiles/stereo_pipeline.dir/stereo_pipeline.cpp.o"
  "CMakeFiles/stereo_pipeline.dir/stereo_pipeline.cpp.o.d"
  "stereo_pipeline"
  "stereo_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stereo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
