file(REMOVE_RECURSE
  "CMakeFiles/tracker_demo.dir/tracker_demo.cpp.o"
  "CMakeFiles/tracker_demo.dir/tracker_demo.cpp.o.d"
  "tracker_demo"
  "tracker_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracker_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
