# Empty compiler generated dependencies file for tracker_demo.
# This may be replaced when dependencies are built.
