# Empty compiler generated dependencies file for adaptive_load.
# This may be replaced when dependencies are built.
