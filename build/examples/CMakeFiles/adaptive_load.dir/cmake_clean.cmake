file(REMOVE_RECURSE
  "CMakeFiles/adaptive_load.dir/adaptive_load.cpp.o"
  "CMakeFiles/adaptive_load.dir/adaptive_load.cpp.o.d"
  "adaptive_load"
  "adaptive_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
