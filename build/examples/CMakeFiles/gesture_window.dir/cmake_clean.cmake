file(REMOVE_RECURSE
  "CMakeFiles/gesture_window.dir/gesture_window.cpp.o"
  "CMakeFiles/gesture_window.dir/gesture_window.cpp.o.d"
  "gesture_window"
  "gesture_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
