# Empty compiler generated dependencies file for gesture_window.
# This may be replaced when dependencies are built.
