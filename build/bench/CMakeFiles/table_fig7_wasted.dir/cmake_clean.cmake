file(REMOVE_RECURSE
  "CMakeFiles/table_fig7_wasted.dir/table_fig7_wasted.cpp.o"
  "CMakeFiles/table_fig7_wasted.dir/table_fig7_wasted.cpp.o.d"
  "table_fig7_wasted"
  "table_fig7_wasted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_fig7_wasted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
