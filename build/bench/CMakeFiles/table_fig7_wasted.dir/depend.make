# Empty dependencies file for table_fig7_wasted.
# This may be replaced when dependencies are built.
