# Empty dependencies file for table_fig6_memory.
# This may be replaced when dependencies are built.
