file(REMOVE_RECURSE
  "CMakeFiles/table_fig6_memory.dir/table_fig6_memory.cpp.o"
  "CMakeFiles/table_fig6_memory.dir/table_fig6_memory.cpp.o.d"
  "table_fig6_memory"
  "table_fig6_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_fig6_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
