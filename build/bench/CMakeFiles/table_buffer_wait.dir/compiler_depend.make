# Empty compiler generated dependencies file for table_buffer_wait.
# This may be replaced when dependencies are built.
