file(REMOVE_RECURSE
  "CMakeFiles/table_buffer_wait.dir/table_buffer_wait.cpp.o"
  "CMakeFiles/table_buffer_wait.dir/table_buffer_wait.cpp.o.d"
  "table_buffer_wait"
  "table_buffer_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_buffer_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
