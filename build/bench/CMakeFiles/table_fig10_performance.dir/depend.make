# Empty dependencies file for table_fig10_performance.
# This may be replaced when dependencies are built.
