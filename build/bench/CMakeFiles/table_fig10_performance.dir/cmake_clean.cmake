file(REMOVE_RECURSE
  "CMakeFiles/table_fig10_performance.dir/table_fig10_performance.cpp.o"
  "CMakeFiles/table_fig10_performance.dir/table_fig10_performance.cpp.o.d"
  "table_fig10_performance"
  "table_fig10_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_fig10_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
