file(REMOVE_RECURSE
  "CMakeFiles/micro_channel.dir/micro_channel.cpp.o"
  "CMakeFiles/micro_channel.dir/micro_channel.cpp.o.d"
  "micro_channel"
  "micro_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
