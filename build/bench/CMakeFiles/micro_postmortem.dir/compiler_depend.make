# Empty compiler generated dependencies file for micro_postmortem.
# This may be replaced when dependencies are built.
