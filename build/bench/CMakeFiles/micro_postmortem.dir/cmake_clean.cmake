file(REMOVE_RECURSE
  "CMakeFiles/micro_postmortem.dir/micro_postmortem.cpp.o"
  "CMakeFiles/micro_postmortem.dir/micro_postmortem.cpp.o.d"
  "micro_postmortem"
  "micro_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
