# Empty dependencies file for ablation_gc.
# This may be replaced when dependencies are built.
