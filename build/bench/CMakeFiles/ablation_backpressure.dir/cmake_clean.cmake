file(REMOVE_RECURSE
  "CMakeFiles/ablation_backpressure.dir/ablation_backpressure.cpp.o"
  "CMakeFiles/ablation_backpressure.dir/ablation_backpressure.cpp.o.d"
  "ablation_backpressure"
  "ablation_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
