# Empty compiler generated dependencies file for micro_aru_overhead.
# This may be replaced when dependencies are built.
