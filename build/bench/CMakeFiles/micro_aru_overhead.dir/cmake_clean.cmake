file(REMOVE_RECURSE
  "CMakeFiles/micro_aru_overhead.dir/micro_aru_overhead.cpp.o"
  "CMakeFiles/micro_aru_overhead.dir/micro_aru_overhead.cpp.o.d"
  "micro_aru_overhead"
  "micro_aru_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aru_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
