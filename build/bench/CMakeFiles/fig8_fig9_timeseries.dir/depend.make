# Empty dependencies file for fig8_fig9_timeseries.
# This may be replaced when dependencies are built.
