file(REMOVE_RECURSE
  "CMakeFiles/fig8_fig9_timeseries.dir/fig8_fig9_timeseries.cpp.o"
  "CMakeFiles/fig8_fig9_timeseries.dir/fig8_fig9_timeseries.cpp.o.d"
  "fig8_fig9_timeseries"
  "fig8_fig9_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fig9_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
