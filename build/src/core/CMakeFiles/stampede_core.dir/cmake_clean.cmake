file(REMOVE_RECURSE
  "CMakeFiles/stampede_core.dir/compress.cpp.o"
  "CMakeFiles/stampede_core.dir/compress.cpp.o.d"
  "CMakeFiles/stampede_core.dir/feedback.cpp.o"
  "CMakeFiles/stampede_core.dir/feedback.cpp.o.d"
  "CMakeFiles/stampede_core.dir/pacing.cpp.o"
  "CMakeFiles/stampede_core.dir/pacing.cpp.o.d"
  "CMakeFiles/stampede_core.dir/policy.cpp.o"
  "CMakeFiles/stampede_core.dir/policy.cpp.o.d"
  "CMakeFiles/stampede_core.dir/simulator.cpp.o"
  "CMakeFiles/stampede_core.dir/simulator.cpp.o.d"
  "CMakeFiles/stampede_core.dir/stp.cpp.o"
  "CMakeFiles/stampede_core.dir/stp.cpp.o.d"
  "libstampede_core.a"
  "libstampede_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
