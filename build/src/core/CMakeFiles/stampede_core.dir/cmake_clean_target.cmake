file(REMOVE_RECURSE
  "libstampede_core.a"
)
