
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compress.cpp" "src/core/CMakeFiles/stampede_core.dir/compress.cpp.o" "gcc" "src/core/CMakeFiles/stampede_core.dir/compress.cpp.o.d"
  "/root/repo/src/core/feedback.cpp" "src/core/CMakeFiles/stampede_core.dir/feedback.cpp.o" "gcc" "src/core/CMakeFiles/stampede_core.dir/feedback.cpp.o.d"
  "/root/repo/src/core/pacing.cpp" "src/core/CMakeFiles/stampede_core.dir/pacing.cpp.o" "gcc" "src/core/CMakeFiles/stampede_core.dir/pacing.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/stampede_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/stampede_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/stampede_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/stampede_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/stp.cpp" "src/core/CMakeFiles/stampede_core.dir/stp.cpp.o" "gcc" "src/core/CMakeFiles/stampede_core.dir/stp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stampede_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
