# Empty dependencies file for stampede_core.
# This may be replaced when dependencies are built.
