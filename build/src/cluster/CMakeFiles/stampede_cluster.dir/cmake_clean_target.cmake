file(REMOVE_RECURSE
  "libstampede_cluster.a"
)
