# Empty compiler generated dependencies file for stampede_cluster.
# This may be replaced when dependencies are built.
