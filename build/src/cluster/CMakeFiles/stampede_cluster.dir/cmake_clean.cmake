file(REMOVE_RECURSE
  "CMakeFiles/stampede_cluster.dir/topology.cpp.o"
  "CMakeFiles/stampede_cluster.dir/topology.cpp.o.d"
  "libstampede_cluster.a"
  "libstampede_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
