# Empty compiler generated dependencies file for stampede_vision.
# This may be replaced when dependencies are built.
