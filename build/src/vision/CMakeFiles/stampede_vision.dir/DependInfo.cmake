
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/frame.cpp" "src/vision/CMakeFiles/stampede_vision.dir/frame.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/frame.cpp.o.d"
  "/root/repo/src/vision/image_io.cpp" "src/vision/CMakeFiles/stampede_vision.dir/image_io.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/image_io.cpp.o.d"
  "/root/repo/src/vision/kernels.cpp" "src/vision/CMakeFiles/stampede_vision.dir/kernels.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/kernels.cpp.o.d"
  "/root/repo/src/vision/multifid.cpp" "src/vision/CMakeFiles/stampede_vision.dir/multifid.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/multifid.cpp.o.d"
  "/root/repo/src/vision/stages.cpp" "src/vision/CMakeFiles/stampede_vision.dir/stages.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/stages.cpp.o.d"
  "/root/repo/src/vision/stereo.cpp" "src/vision/CMakeFiles/stampede_vision.dir/stereo.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/stereo.cpp.o.d"
  "/root/repo/src/vision/tracker.cpp" "src/vision/CMakeFiles/stampede_vision.dir/tracker.cpp.o" "gcc" "src/vision/CMakeFiles/stampede_vision.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/stampede_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stampede_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/stampede_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/stampede_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stampede_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stampede_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
