file(REMOVE_RECURSE
  "libstampede_vision.a"
)
