file(REMOVE_RECURSE
  "CMakeFiles/stampede_vision.dir/frame.cpp.o"
  "CMakeFiles/stampede_vision.dir/frame.cpp.o.d"
  "CMakeFiles/stampede_vision.dir/image_io.cpp.o"
  "CMakeFiles/stampede_vision.dir/image_io.cpp.o.d"
  "CMakeFiles/stampede_vision.dir/kernels.cpp.o"
  "CMakeFiles/stampede_vision.dir/kernels.cpp.o.d"
  "CMakeFiles/stampede_vision.dir/multifid.cpp.o"
  "CMakeFiles/stampede_vision.dir/multifid.cpp.o.d"
  "CMakeFiles/stampede_vision.dir/stages.cpp.o"
  "CMakeFiles/stampede_vision.dir/stages.cpp.o.d"
  "CMakeFiles/stampede_vision.dir/stereo.cpp.o"
  "CMakeFiles/stampede_vision.dir/stereo.cpp.o.d"
  "CMakeFiles/stampede_vision.dir/tracker.cpp.o"
  "CMakeFiles/stampede_vision.dir/tracker.cpp.o.d"
  "libstampede_vision.a"
  "libstampede_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
