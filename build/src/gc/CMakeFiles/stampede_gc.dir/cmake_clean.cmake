file(REMOVE_RECURSE
  "CMakeFiles/stampede_gc.dir/frontier.cpp.o"
  "CMakeFiles/stampede_gc.dir/frontier.cpp.o.d"
  "libstampede_gc.a"
  "libstampede_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
