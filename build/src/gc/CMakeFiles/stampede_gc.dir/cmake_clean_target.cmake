file(REMOVE_RECURSE
  "libstampede_gc.a"
)
