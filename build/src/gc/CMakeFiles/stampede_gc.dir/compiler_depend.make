# Empty compiler generated dependencies file for stampede_gc.
# This may be replaced when dependencies are built.
