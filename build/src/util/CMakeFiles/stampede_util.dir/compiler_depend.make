# Empty compiler generated dependencies file for stampede_util.
# This may be replaced when dependencies are built.
