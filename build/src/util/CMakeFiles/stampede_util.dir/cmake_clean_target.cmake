file(REMOVE_RECURSE
  "libstampede_util.a"
)
