file(REMOVE_RECURSE
  "CMakeFiles/stampede_util.dir/clock.cpp.o"
  "CMakeFiles/stampede_util.dir/clock.cpp.o.d"
  "CMakeFiles/stampede_util.dir/filters.cpp.o"
  "CMakeFiles/stampede_util.dir/filters.cpp.o.d"
  "CMakeFiles/stampede_util.dir/log.cpp.o"
  "CMakeFiles/stampede_util.dir/log.cpp.o.d"
  "CMakeFiles/stampede_util.dir/options.cpp.o"
  "CMakeFiles/stampede_util.dir/options.cpp.o.d"
  "CMakeFiles/stampede_util.dir/spin.cpp.o"
  "CMakeFiles/stampede_util.dir/spin.cpp.o.d"
  "CMakeFiles/stampede_util.dir/stats.cpp.o"
  "CMakeFiles/stampede_util.dir/stats.cpp.o.d"
  "CMakeFiles/stampede_util.dir/table.cpp.o"
  "CMakeFiles/stampede_util.dir/table.cpp.o.d"
  "libstampede_util.a"
  "libstampede_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
