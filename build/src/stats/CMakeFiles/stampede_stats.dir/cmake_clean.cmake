file(REMOVE_RECURSE
  "CMakeFiles/stampede_stats.dir/breakdown.cpp.o"
  "CMakeFiles/stampede_stats.dir/breakdown.cpp.o.d"
  "CMakeFiles/stampede_stats.dir/postmortem.cpp.o"
  "CMakeFiles/stampede_stats.dir/postmortem.cpp.o.d"
  "CMakeFiles/stampede_stats.dir/recorder.cpp.o"
  "CMakeFiles/stampede_stats.dir/recorder.cpp.o.d"
  "CMakeFiles/stampede_stats.dir/timeseries.cpp.o"
  "CMakeFiles/stampede_stats.dir/timeseries.cpp.o.d"
  "CMakeFiles/stampede_stats.dir/trace_io.cpp.o"
  "CMakeFiles/stampede_stats.dir/trace_io.cpp.o.d"
  "libstampede_stats.a"
  "libstampede_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
