# Empty compiler generated dependencies file for stampede_stats.
# This may be replaced when dependencies are built.
