
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/breakdown.cpp" "src/stats/CMakeFiles/stampede_stats.dir/breakdown.cpp.o" "gcc" "src/stats/CMakeFiles/stampede_stats.dir/breakdown.cpp.o.d"
  "/root/repo/src/stats/postmortem.cpp" "src/stats/CMakeFiles/stampede_stats.dir/postmortem.cpp.o" "gcc" "src/stats/CMakeFiles/stampede_stats.dir/postmortem.cpp.o.d"
  "/root/repo/src/stats/recorder.cpp" "src/stats/CMakeFiles/stampede_stats.dir/recorder.cpp.o" "gcc" "src/stats/CMakeFiles/stampede_stats.dir/recorder.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/stampede_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/stampede_stats.dir/timeseries.cpp.o.d"
  "/root/repo/src/stats/trace_io.cpp" "src/stats/CMakeFiles/stampede_stats.dir/trace_io.cpp.o" "gcc" "src/stats/CMakeFiles/stampede_stats.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stampede_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
