file(REMOVE_RECURSE
  "libstampede_stats.a"
)
