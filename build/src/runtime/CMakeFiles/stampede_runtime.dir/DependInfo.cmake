
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/channel.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/channel.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/channel.cpp.o.d"
  "/root/repo/src/runtime/graph.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/graph.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/graph.cpp.o.d"
  "/root/repo/src/runtime/item.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/item.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/item.cpp.o.d"
  "/root/repo/src/runtime/memory.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/memory.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/memory.cpp.o.d"
  "/root/repo/src/runtime/queue.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/queue.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/queue.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/spd.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/spd.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/spd.cpp.o.d"
  "/root/repo/src/runtime/task.cpp" "src/runtime/CMakeFiles/stampede_runtime.dir/task.cpp.o" "gcc" "src/runtime/CMakeFiles/stampede_runtime.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stampede_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/stampede_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/stampede_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stampede_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stampede_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
