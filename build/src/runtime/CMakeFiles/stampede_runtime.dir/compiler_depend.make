# Empty compiler generated dependencies file for stampede_runtime.
# This may be replaced when dependencies are built.
