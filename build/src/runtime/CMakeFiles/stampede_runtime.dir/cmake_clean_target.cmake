file(REMOVE_RECURSE
  "libstampede_runtime.a"
)
