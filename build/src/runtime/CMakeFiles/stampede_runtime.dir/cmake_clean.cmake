file(REMOVE_RECURSE
  "CMakeFiles/stampede_runtime.dir/channel.cpp.o"
  "CMakeFiles/stampede_runtime.dir/channel.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/graph.cpp.o"
  "CMakeFiles/stampede_runtime.dir/graph.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/item.cpp.o"
  "CMakeFiles/stampede_runtime.dir/item.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/memory.cpp.o"
  "CMakeFiles/stampede_runtime.dir/memory.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/queue.cpp.o"
  "CMakeFiles/stampede_runtime.dir/queue.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/runtime.cpp.o"
  "CMakeFiles/stampede_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/spd.cpp.o"
  "CMakeFiles/stampede_runtime.dir/spd.cpp.o.d"
  "CMakeFiles/stampede_runtime.dir/task.cpp.o"
  "CMakeFiles/stampede_runtime.dir/task.cpp.o.d"
  "libstampede_runtime.a"
  "libstampede_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stampede_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
