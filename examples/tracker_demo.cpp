/// \file tracker_demo.cpp
/// \brief Runs the full color-based people tracker (paper Fig. 5) in any
///        ARU mode / cluster configuration and prints the paper's metrics
///        plus a footprint-over-time chart.
///
/// Run:   tracker_demo [aru=off|min|max] [config=1|2] [seconds=8]
///                     [gc=dgc|tgc|none] [seed=42] [dot=true]
#include <cstdio>

#include "util/options.hpp"
#include "util/table.hpp"
#include "vision/tracker.hpp"

using namespace stampede;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);

  vision::TrackerOptions opts;
  opts.aru = aru::parse_mode(cli.get_string("aru", "max"));
  opts.cluster_config = static_cast<int>(cli.get_int("config", 1));
  opts.duration = seconds(cli.get_int("seconds", 8));
  opts.gc = gc::parse_kind(cli.get_string("gc", "dgc"));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  opts.aru_filter = cli.get_string("filter", "passthrough");

  if (cli.get_bool("dot", false)) {
    Runtime rt(vision::runtime_config(opts));
    vision::build_tracker(rt, opts);
    std::printf("%s", rt.graph().to_dot().c_str());
    return 0;
  }

  std::printf("running %s (gc=%s, %.0fs)...\n", vision::label(opts).c_str(),
              gc::to_string(opts.gc).c_str(), to_seconds(opts.duration));

  const vision::TrackerResult result = vision::run_tracker(opts);
  const auto& a = result.analysis;

  std::printf("\nperformance (paper Fig. 10):\n");
  std::printf("  throughput : %.2f fps (std %.2f)\n", a.perf.throughput_fps,
              a.perf.throughput_fps_std);
  std::printf("  latency    : %.0f ms (std %.0f)\n", a.perf.latency_ms_mean,
              a.perf.latency_ms_std);
  std::printf("  jitter     : %.0f ms\n", a.perf.jitter_ms);

  std::printf("\nresources (paper Figs. 6-7):\n");
  std::printf("  mean footprint : %.2f MB (std %.2f, peak %.2f)\n", a.res.footprint_mb_mean,
              a.res.footprint_mb_std, a.res.footprint_mb_peak);
  std::printf("  IGC bound      : %.2f MB  (this run is %.0f%% of ideal)\n",
              a.res.igc_mb_mean,
              a.res.igc_mb_mean > 0 ? 100.0 * a.res.footprint_mb_mean / a.res.igc_mb_mean
                                    : 0.0);
  std::printf("  wasted memory  : %.1f%%   wasted computation: %.1f%%\n",
              a.res.wasted_mem_pct, a.res.wasted_comp_pct);
  std::printf("  items          : %lld total, %lld wasted, %lld dropped unused\n",
              static_cast<long long>(a.res.items_total),
              static_cast<long long>(a.res.items_wasted),
              static_cast<long long>(a.res.drops));

  std::printf("\nmemory footprint over time (paper Fig. %d):\n",
              opts.cluster_config == 1 ? 8 : 9);
  const auto series = a.footprint.resample(72);
  std::printf("%s", ascii_chart(series, 72, 10).c_str());
  return 0;
}
