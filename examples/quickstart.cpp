/// \file quickstart.cpp
/// \brief Smallest complete ARU example: a three-stage pipeline where the
///        producer is intrinsically 4x faster than the consumer.
///
/// Without ARU the producer creates items that the consumer skips over —
/// wasted memory and computation. With ARU the consumer's summary-STP is
/// piggy-backed upstream on every put/get and the producer paces itself,
/// so almost nothing is wasted.
///
/// Run:   quickstart [aru=off|min|max] [seconds=3]
#include <cstdio>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "util/options.hpp"

using namespace stampede;

namespace {

/// Producer: makes a 64 KiB item every ~2 ms (unthrottled).
TaskStatus producer_body(TaskContext& ctx) {
  static thread_local Timestamp next_ts = 0;
  ctx.compute(millis(2));
  auto item = ctx.make_item(next_ts++, 64 * 1024, {});
  ctx.put(0, item);
  return TaskStatus::kContinue;
}

/// Worker: consumes the latest item, works ~8 ms, forwards a summary.
TaskStatus worker_body(TaskContext& ctx) {
  auto in = ctx.get(0);
  if (!in) return TaskStatus::kDone;
  ctx.compute(millis(8));
  auto out = ctx.make_item(in->ts(), 1024, {in->id()});
  ctx.put(0, out);
  return TaskStatus::kContinue;
}

/// Sink: displays results; every consumed item counts as an emission.
TaskStatus sink_body(TaskContext& ctx) {
  auto in = ctx.get(0);
  if (!in) return TaskStatus::kDone;
  ctx.compute(millis(1));
  ctx.emit(*in);
  return TaskStatus::kContinue;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const aru::Mode mode = aru::parse_mode(opts.get_string("aru", "min"));
  const auto run_seconds = opts.get_int("seconds", 3);

  Runtime rt({.aru = {.mode = mode}});
  Channel& raw = rt.add_channel({.name = "raw"});
  Channel& refined = rt.add_channel({.name = "refined"});
  TaskContext& prod = rt.add_task({.name = "producer", .body = producer_body});
  TaskContext& work = rt.add_task({.name = "worker", .body = worker_body});
  TaskContext& sink = rt.add_task({.name = "sink", .body = sink_body});
  rt.connect(prod, raw);
  rt.connect(raw, work);
  rt.connect(work, refined);
  rt.connect(refined, sink);

  std::printf("pipeline: producer(2ms) -> raw -> worker(8ms) -> refined -> sink\n");
  std::printf("ARU mode: %s, running %llds...\n\n", aru::to_string(mode).c_str(),
              static_cast<long long>(run_seconds));

  rt.start();
  rt.clock().sleep_for(seconds(run_seconds));
  rt.stop();

  const stats::Trace trace = rt.take_trace();
  const stats::Analyzer analyzer(trace);
  const stats::Analysis a = analyzer.run();

  std::printf("results:\n");
  std::printf("  emitted results     : %lld\n",
              static_cast<long long>(a.perf.frames_emitted));
  std::printf("  throughput          : %.1f items/s\n", a.perf.throughput_fps);
  std::printf("  latency             : %.1f ms (std %.1f)\n", a.perf.latency_ms_mean,
              a.perf.latency_ms_std);
  std::printf("  mean footprint      : %.2f MB (ideal-GC bound %.2f MB)\n",
              a.res.footprint_mb_mean, a.res.igc_mb_mean);
  std::printf("  items wasted        : %lld of %lld (%.1f%% of memory use)\n",
              static_cast<long long>(a.res.items_wasted),
              static_cast<long long>(a.res.items_total), a.res.wasted_mem_pct);
  std::printf("  computation wasted  : %.1f%%\n", a.res.wasted_comp_pct);
  std::printf("\nTry:  quickstart aru=off   — watch waste appear.\n");
  return 0;
}
