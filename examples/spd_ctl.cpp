/// \file spd_ctl.cpp
/// \brief Control plane entry point: deploy a pipeline manifest across
///        spd_node worker processes, supervise them, and serve the
///        aggregated fleet telemetry.
///
///   spd_ctl manifest=examples/tracker.manifest [seconds=10]
///           [metrics_port=0] [worker=/path/to/spd_node]
///           [kill=NODE@SEC] [check_task_stp=NODE:TASK]
///           [check_channel_stp=NODE:CHANNEL] [probe_ms=250]
///           [quiet=false] [key=value ...]
///
/// spd_ctl parses and validates the manifest, spawns one spd_node per
/// manifest node through control::Supervisor, and exposes its own
/// telemetry endpoint whose /metrics merges every worker's series
/// (relabeled with node="<name>") and whose /status carries the fleet
/// table (pid, state, restarts, probe latency). Any option not consumed
/// here is forwarded verbatim to every worker, so deployment overrides
/// like `scale=0.25` need only be said once.
///
/// Fault-injection and verification hooks (used by the ctest smoke):
///
///   kill=mid@2              SIGKILL node "mid"'s worker 2 s into the
///                           run; the supervisor must restart it.
///   check_task_stp=front:digitizer
///   check_channel_stp=mid:frames
///                           after the run (and any restart), scrape
///                           spd_ctl's OWN aggregated /metrics and
///                           require the summary-STP gauge of that task /
///                           channel to be non-zero — proof the feedback
///                           path re-converged across the new process.
///
/// Exit status: 0 only if the fleet came up, every requested check
/// passed, a requested kill was answered by a restart, and every worker
/// exited cleanly (exit 0) on the final SIGTERM.
#include <signal.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "control/manifest.hpp"
#include "control/pipelines.hpp"
#include "control/supervisor.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/registry.hpp"
#include "util/clock.hpp"
#include "util/options.hpp"

using namespace stampede;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// The spd_node sitting next to this binary (workers ship together).
std::string default_worker_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  const std::string self = n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                                 : std::string(argv0);
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/spd_node";
}

/// Value of the first series whose line starts with `prefix`, or -1.
double scrape_metric(const std::string& body, const std::string& prefix) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    if (line.rfind(prefix, 0) == 0) {
      const std::size_t space = line.rfind(' ');
      if (space != std::string::npos) {
        return std::strtod(line.c_str() + space + 1, nullptr);
      }
    }
    pos = end + 1;
  }
  return -1.0;
}

/// Splits "a:b" / "a@b"; throws on a missing separator.
std::pair<std::string, std::string> split2(const std::string& text, char sep,
                                           const std::string& what) {
  const std::size_t at = text.find(sep);
  if (at == std::string::npos || at == 0 || at + 1 >= text.size()) {
    throw std::invalid_argument("spd_ctl: bad " + what + " '" + text +
                                "' (want <x>" + std::string(1, sep) + "<y>)");
  }
  return {text.substr(0, at), text.substr(at + 1)};
}

struct StpCheck {
  std::string series;  ///< full relabeled series prefix to scrape
  std::string label;   ///< human description for the report line
};

int run(const Options& cli, const char* argv0) {
  const std::string manifest_path = cli.get_string("manifest", "");
  if (manifest_path.empty()) {
    std::fprintf(stderr,
                 "usage: spd_ctl manifest=<file> [seconds=10] [metrics_port=0]\n"
                 "              [worker=<spd_node>] [kill=NODE@SEC]\n"
                 "              [check_task_stp=NODE:TASK] "
                 "[check_channel_stp=NODE:CHANNEL]\n");
    return 2;
  }
  control::Manifest manifest = control::Manifest::load(manifest_path);
  const control::PipelineSpec* spec = control::find_pipeline(manifest.pipeline);
  if (spec == nullptr) {
    std::fprintf(stderr, "spd_ctl: unknown pipeline '%s'\n", manifest.pipeline.c_str());
    return 2;
  }
  control::validate(manifest, *spec);

  const auto run_seconds = cli.get_int("seconds", 10);
  const bool quiet = cli.get_bool("quiet", false);

  // Fault injection / verification hooks.
  std::string kill_node;
  std::int64_t kill_at_s = -1;
  if (cli.has("kill")) {
    const auto [node, at] = split2(cli.get_string("kill", ""), '@', "kill=");
    if (manifest.find(node) == nullptr) {
      std::fprintf(stderr, "spd_ctl: kill= names unknown node '%s'\n", node.c_str());
      return 2;
    }
    kill_node = node;
    kill_at_s = std::strtoll(at.c_str(), nullptr, 10);
  }
  std::vector<StpCheck> checks;
  if (cli.has("check_task_stp")) {
    const auto [node, task] =
        split2(cli.get_string("check_task_stp", ""), ':', "check_task_stp=");
    checks.push_back({"aru_task_summary_stp_ns{node=\"" + node + "\",task=\"" + task +
                          "\"}",
                      "task '" + task + "' on node '" + node + "'"});
  }
  if (cli.has("check_channel_stp")) {
    const auto [node, channel] =
        split2(cli.get_string("check_channel_stp", ""), ':', "check_channel_stp=");
    checks.push_back({"aru_channel_summary_stp_ns{node=\"" + node + "\",channel=\"" +
                          channel + "\"}",
                      "channel '" + channel + "' on node '" + node + "'"});
  }

  // Own telemetry plane: fleet series + merged worker exposition.
  telemetry::Registry registry;
  telemetry::Exporter exporter(
      registry, {.port = static_cast<std::uint16_t>(cli.get_int("metrics_port", 0))});
  exporter.start();
  std::printf("spd_ctl: metrics on %u\n", static_cast<unsigned>(exporter.port()));
  std::fflush(stdout);

  control::SupervisorConfig cfg;
  cfg.worker_path = cli.get_string("worker", default_worker_path(argv0));
  cfg.manifest_path = manifest_path;
  cfg.probe_interval = from_millis(cli.get_double("probe_ms", 250.0));
  cfg.registry = &registry;
  cfg.forward_output = !quiet;
  // Everything we did not consume is a deployment override for the fleet.
  for (const std::string& key : cli.keys()) {
    static const char* kOwn[] = {"manifest", "seconds",        "metrics_port",
                                 "worker",   "kill",           "check_task_stp",
                                 "check_channel_stp", "probe_ms", "quiet"};
    bool own = false;
    for (const char* k : kOwn) own = own || key == k;
    if (!own) cfg.extra_args.push_back(key + "=" + cli.get_string(key, ""));
  }

  control::Supervisor sup(manifest, std::move(cfg));
  sup.start();
  Clock& clock = RealClock::instance();
  if (!sup.wait_all_up(seconds(20))) {
    std::fprintf(stderr, "spd_ctl: fleet failed to come up:\n%s\n",
                 sup.fleet_status_json().c_str());
    sup.stop();
    return 1;
  }
  std::printf("spd_ctl: fleet up (%zu workers)\n", manifest.nodes.size());
  std::fflush(stdout);

  // Main run: sleep in slices; fire the kill when its time arrives.
  const Nanos t0 = clock.now();
  const Nanos deadline = t0 + seconds(run_seconds);
  bool killed = false;
  while (g_stop == 0 && (run_seconds <= 0 || clock.now() < deadline)) {
    if (!killed && kill_at_s >= 0 && clock.now() - t0 >= seconds(kill_at_s)) {
      const pid_t victim = sup.pid(kill_node);
      if (victim > 0) {
        std::printf("spd_ctl: SIGKILL node '%s' (pid %d)\n", kill_node.c_str(),
                    static_cast<int>(victim));
        std::fflush(stdout);
        ::kill(victim, SIGKILL);
      }
      killed = true;
    }
    clock.sleep_for(millis(50));
  }

  bool ok = true;

  // A requested kill must have been answered: restart counted and the
  // replacement probing healthy again.
  if (killed) {
    const Nanos recover_by = clock.now() + seconds(15);
    while (clock.now() < recover_by) {
      const control::WorkerStatus st = sup.status(kill_node);
      if (st.restarts >= 1 && st.state == control::WorkerState::kUp) break;
      clock.sleep_for(millis(100));
    }
    const control::WorkerStatus st = sup.status(kill_node);
    const bool recovered =
        st.restarts >= 1 && st.state == control::WorkerState::kUp;
    std::printf("spd_ctl: node '%s' restarts=%lld state=%s -> %s\n",
                kill_node.c_str(), static_cast<long long>(st.restarts),
                control::to_string(st.state), recovered ? "recovered" : "NOT RECOVERED");
    ok = ok && recovered;
  }

  // Convergence checks against our OWN aggregated /metrics — the value
  // must flow worker -> probe -> exposition block -> exporter.
  if (!checks.empty()) {
    const Nanos check_by = clock.now() + seconds(15);
    std::vector<double> values(checks.size(), -1.0);
    while (clock.now() < check_by) {
      const auto body =
          telemetry::http_get("127.0.0.1", exporter.port(), "/metrics", seconds(5));
      bool all = static_cast<bool>(body);
      if (body) {
        for (std::size_t i = 0; i < checks.size(); ++i) {
          values[i] = scrape_metric(*body, checks[i].series);
          all = all && values[i] > 0.0;
        }
      }
      if (all) break;
      clock.sleep_for(millis(200));
    }
    for (std::size_t i = 0; i < checks.size(); ++i) {
      const bool pass = values[i] > 0.0;
      std::printf("spd_ctl: summary-STP of %s = %.0f ns -> %s\n",
                  checks[i].label.c_str(), values[i], pass ? "ok" : "FAILED");
      ok = ok && pass;
    }
  }

  sup.stop();

  // Final fleet report; the last exit of every worker must be the clean
  // SIGTERM path (spd_node exits 0 on signal).
  for (const control::WorkerStatus& st : sup.fleet()) {
    std::printf("spd_ctl: node %-8s state=%-8s restarts=%lld probe_ms=%.2f exit=%d\n",
                st.node.c_str(), control::to_string(st.state),
                static_cast<long long>(st.restarts), st.probe_ms, st.last_exit);
    if (st.last_exit != 0) {
      std::fprintf(stderr, "spd_ctl: node '%s' did not exit cleanly (exit=%d)\n",
                   st.node.c_str(), st.last_exit);
      ok = false;
    }
  }
  std::printf("spd_ctl: %s\n", ok ? "deployment ok" : "deployment FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  try {
    return run(Options::parse(argc, argv), argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spd_ctl: %s\n", e.what());
    return 1;
  }
}
