/// \file spd_node.cpp
/// \brief Standalone channel-server node: hosts Stampede channels and
///        exports them over TCP so pipelines in other processes can attach
///        RemoteChannel proxies (ISSUE 3 tentpole launcher).
///
/// The node owns a Runtime with only channels (no tasks); remote peers
/// drive the channels through net::ChannelServer connection threads, so
/// the summary-STP fold, DGC guarantees and trace events happen here
/// exactly as for local peers.
///
/// Run:   spd_node channels=frames:1:1,loc:1:2 [host=127.0.0.1] [port=0]
///                 [seconds=30] [capacity=0] [aru=min] [quiet=false]
///                 [metrics_port=-1]
///
/// `host` is the bind address: loopback-only by default, a concrete
/// interface address (or 0.0.0.0) to serve off-host peers.
///
/// `metrics_port` enables the live telemetry endpoint (negative =
/// disabled, 0 = ephemeral): `curl localhost:<port>/metrics` for
/// Prometheus text, `/status` for a JSON snapshot. The bound port is
/// announced as `spd_node: metrics on <port>`.
///
/// The channel spec is `name:remote_producers:remote_consumers`,
/// comma-separated. Port 0 binds an ephemeral port; the bound port is
/// announced on stdout as `spd_node: listening on <port>` (and flushed)
/// so parent processes / tests can scrape it.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/remote_channel.hpp"
#include "runtime/runtime.hpp"
#include "util/options.hpp"

using namespace stampede;

namespace {

struct ChannelSpec {
  std::string name;
  int producers = 1;
  int consumers = 1;
};

/// Parses `name:P:C,name:P:C,...`; P and C default to 1 when omitted.
std::vector<ChannelSpec> parse_channels(const std::string& spec) {
  std::vector<ChannelSpec> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, end - pos);
    if (!entry.empty()) {
      ChannelSpec cs;
      const std::size_t c1 = entry.find(':');
      cs.name = entry.substr(0, c1);
      if (c1 != std::string::npos) {
        const std::size_t c2 = entry.find(':', c1 + 1);
        cs.producers = std::stoi(entry.substr(c1 + 1, c2 - c1 - 1));
        if (c2 != std::string::npos) cs.consumers = std::stoi(entry.substr(c2 + 1));
      }
      if (cs.name.empty() || cs.producers < 0 || cs.consumers < 0) {
        throw std::invalid_argument("bad channel spec entry: '" + entry + "'");
      }
      out.push_back(std::move(cs));
    }
    pos = end + 1;
  }
  if (out.empty()) throw std::invalid_argument("channels= spec is empty");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const auto specs = parse_channels(cli.get_string("channels", "frames:1:1"));
  const auto host = cli.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto run_seconds = cli.get_int("seconds", 30);
  const auto capacity = static_cast<std::size_t>(cli.get_int("capacity", 0));
  const aru::Mode mode = aru::parse_mode(cli.get_string("aru", "min"));
  const bool quiet = cli.get_bool("quiet", false);
  const auto metrics_port = static_cast<std::int32_t>(cli.get_int("metrics_port", -1));

  Runtime rt({.aru = {.mode = mode}, .metrics_port = metrics_port, .metrics_host = host});
  std::vector<net::ServedChannel> served;
  served.reserve(specs.size());
  for (const auto& s : specs) {
    Channel& ch = rt.add_channel({.name = s.name, .capacity = capacity});
    served.push_back({.channel = &ch,
                      .remote_producers = s.producers,
                      .remote_consumers = s.consumers});
  }
  net::ChannelServer server(rt, served, {.host = host, .port = port});

  rt.start();
  server.start();

  // Parseable announcement: tests and parent processes scrape the port.
  std::printf("spd_node: listening on %u\n", static_cast<unsigned>(server.port()));
  if (rt.metrics_port() != 0) {
    std::printf("spd_node: metrics on %u\n", static_cast<unsigned>(rt.metrics_port()));
  }
  std::fflush(stdout);
  if (!quiet) {
    for (const auto& s : specs) {
      std::printf("spd_node:   channel '%s' (remote producers=%d consumers=%d)\n",
                  s.name.c_str(), s.producers, s.consumers);
    }
    std::fflush(stdout);
  }

  rt.clock().sleep_for(seconds(run_seconds));

  server.stop();
  rt.stop();
  if (!quiet) {
    std::printf("spd_node: served %lld connection(s), exiting\n",
                static_cast<long long>(server.accepted()));
  }
  return 0;
}
