/// \file spd_node.cpp
/// \brief Worker node: hosts channels and/or tasks of a distributed
///        pipeline, either from an explicit channel list or as one node
///        of a pipeline manifest.
///
/// Modes:
///
///   spd_node channels=frames:1:1,loc:1:2 [host=127.0.0.1] [port=0]
///            [capacity=0]
///       Channel-server only (ISSUE 3 launcher): hosts the listed
///       channels (`name:remote_producers:remote_consumers`) and serves
///       them over TCP. Remote peers drive the channels through
///       net::ChannelServer connection threads, so summary-STP folds,
///       DGC guarantees and trace events happen here as for local peers.
///
///   spd_node manifest=tracker.manifest node=front [key=value ...]
///       One worker of a manifest deployment (control plane, ISSUE 9):
///       parses the full manifest, validates it, and builds this node's
///       fragment — local channels + server on the node's fixed
///       endpoint, RemoteChannel proxies to every remote channel, local
///       task bodies from the pipeline registry. Extra key=value
///       arguments override manifest values (scale=0.25, aru=off, ...).
///
/// Common options: [seconds=30|0] [aru=min] [quiet=false]
/// [metrics_port=-1]. `seconds=0` runs until SIGTERM/SIGINT; both
/// signals stop the node gracefully (server stopped, Runtime stopped,
/// exit 0), so a supervisor can do clean rolling stops.
///
/// `metrics_port` enables the live telemetry endpoint (negative =
/// disabled, 0 = ephemeral). Bound ports are announced on stdout —
/// `spd_node: listening on <port>` / `spd_node: metrics on <port>` — and
/// flushed so parent processes can scrape them.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/fragment.hpp"
#include "control/manifest.hpp"
#include "control/pipelines.hpp"
#include "net/remote_channel.hpp"
#include "runtime/runtime.hpp"
#include "util/options.hpp"

using namespace stampede;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// Sleeps in short slices until `run_seconds` elapsed (<= 0: forever) or
/// a termination signal arrived.
void run_until(Runtime& rt, std::int64_t run_seconds) {
  const Nanos deadline = rt.clock().now() + seconds(run_seconds);
  while (g_stop == 0 && (run_seconds <= 0 || rt.clock().now() < deadline)) {
    rt.clock().sleep_for(millis(50));
  }
}

struct ChannelSpec {
  std::string name;
  int producers = 1;
  int consumers = 1;
};

/// Parses `name:P:C,name:P:C,...`; P and C default to 1 when omitted.
std::vector<ChannelSpec> parse_channels(const std::string& spec) {
  std::vector<ChannelSpec> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, end - pos);
    if (!entry.empty()) {
      ChannelSpec cs;
      const std::size_t c1 = entry.find(':');
      cs.name = entry.substr(0, c1);
      if (c1 != std::string::npos) {
        const std::size_t c2 = entry.find(':', c1 + 1);
        cs.producers = std::stoi(entry.substr(c1 + 1, c2 - c1 - 1));
        if (c2 != std::string::npos) cs.consumers = std::stoi(entry.substr(c2 + 1));
      }
      if (cs.name.empty() || cs.producers < 0 || cs.consumers < 0) {
        throw std::invalid_argument("bad channel spec entry: '" + entry + "'");
      }
      out.push_back(std::move(cs));
    }
    pos = end + 1;
  }
  if (out.empty()) throw std::invalid_argument("channels= spec is empty");
  return out;
}

// ---------------------------------------------------------------------------
// channels= mode: standalone channel server
// ---------------------------------------------------------------------------

int run_channel_server(const Options& cli) {
  const auto specs = parse_channels(cli.get_string("channels", "frames:1:1"));
  const auto host = cli.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto run_seconds = cli.get_int("seconds", 30);
  const auto capacity = static_cast<std::size_t>(cli.get_int("capacity", 0));
  const aru::Mode mode = aru::parse_mode(cli.get_string("aru", "min"));
  const bool quiet = cli.get_bool("quiet", false);
  const auto metrics_port = static_cast<std::int32_t>(cli.get_int("metrics_port", -1));

  Runtime rt({.aru = {.mode = mode}, .metrics_port = metrics_port, .metrics_host = host});
  std::vector<net::ServedChannel> served;
  served.reserve(specs.size());
  for (const auto& s : specs) {
    Channel& ch = rt.add_channel({.name = s.name, .capacity = capacity});
    served.push_back({.channel = &ch,
                      .remote_producers = s.producers,
                      .remote_consumers = s.consumers});
  }
  net::ChannelServer server(rt, served, {.host = host, .port = port});

  rt.start();
  server.start();

  // Parseable announcement: tests and parent processes scrape the port.
  std::printf("spd_node: listening on %u\n", static_cast<unsigned>(server.port()));
  if (rt.metrics_port() != 0) {
    std::printf("spd_node: metrics on %u\n", static_cast<unsigned>(rt.metrics_port()));
  }
  std::fflush(stdout);
  if (!quiet) {
    for (const auto& s : specs) {
      std::printf("spd_node:   channel '%s' (remote producers=%d consumers=%d)\n",
                  s.name.c_str(), s.producers, s.consumers);
    }
    std::fflush(stdout);
  }

  run_until(rt, run_seconds);

  server.stop();
  rt.stop();
  if (!quiet) {
    std::printf("spd_node: served %lld connection(s), exiting%s\n",
                static_cast<long long>(server.accepted()),
                g_stop != 0 ? " on signal" : "");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// manifest= mode: one node of a deployment
// ---------------------------------------------------------------------------

int run_manifest_node(const Options& cli) {
  const std::string path = cli.get_string("manifest", "");
  const std::string node = cli.get_string("node", "");
  if (node.empty()) {
    std::fprintf(stderr, "spd_node: manifest mode requires node=<name>\n");
    return 2;
  }
  Options opts = Options::parse_file(path);
  opts.merge(cli);  // command line (supervisor overrides) wins
  control::Manifest manifest = control::Manifest::parse(opts);
  const control::PipelineSpec* spec = control::find_pipeline(manifest.pipeline);
  if (spec == nullptr) {
    std::fprintf(stderr, "spd_node: unknown pipeline '%s'\n",
                 manifest.pipeline.c_str());
    return 2;
  }
  control::validate(manifest, *spec);
  const control::ManifestNode* self = manifest.find(node);
  if (self == nullptr) {
    std::fprintf(stderr, "spd_node: manifest has no node '%s'\n", node.c_str());
    return 2;
  }

  const auto run_seconds = opts.get_int("seconds", 0);
  const bool quiet = opts.get_bool("quiet", false);
  const auto metrics_port = static_cast<std::int32_t>(opts.get_int("metrics_port", -1));

  // Distinct per-node runtime seed (task RNG streams must not collide),
  // derived deterministically so reruns reproduce.
  Runtime rt({.aru = {.mode = manifest.params.aru},
              .seed = manifest.params.seed + static_cast<std::uint64_t>(self->index),
              .metrics_port = metrics_port});
  control::Fragment frag = control::build_fragment(rt, manifest, *spec, node);

  rt.start();
  if (frag.server) {
    frag.server->start();
    std::printf("spd_node: listening on %u\n",
                static_cast<unsigned>(frag.server->port()));
  }
  if (rt.metrics_port() != 0) {
    std::printf("spd_node: metrics on %u\n", static_cast<unsigned>(rt.metrics_port()));
  }
  std::fflush(stdout);
  if (!quiet) {
    std::printf("spd_node: node '%s' of pipeline '%s': %zu task(s), %zu channel(s), "
                "%zu remote link(s)\n",
                node.c_str(), manifest.pipeline.c_str(), frag.tasks.size(),
                frag.channels.size(), frag.proxies.size());
    std::fflush(stdout);
  }

  run_until(rt, run_seconds);

  if (frag.server) frag.server->stop();
  rt.stop();
  if (!quiet) {
    std::printf("spd_node: node '%s' exiting%s\n", node.c_str(),
                g_stop != 0 ? " on signal" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  // Workers write through supervisor pipes; a reader that dies first must
  // not take the worker down with SIGPIPE mid-shutdown.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    const Options cli = Options::parse(argc, argv);
    if (cli.has("manifest")) return run_manifest_node(cli);
    return run_channel_server(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spd_node: %s\n", e.what());
    return 1;
  }
}
