/// \file distributed_tracker.cpp
/// \brief The Fig. 5 people tracker split across two OS processes over
///        loopback TCP (ISSUE 3 tentpole demo).
///
/// Process layout:
///
///   front process                      back process (this binary, role=back)
///   ─────────────                      ───────────────────────────────────
///   digitizer ──put──▶ RemoteChannel ══TCP══▶ ChannelServer ──▶ frames
///               ◀── PutAck{summary-STP} ──┘                      ├─▶ background ─▶ masks ─┐
///                                                                ├─▶ histogram ─▶ hists ─┼─▶ detect×2 ─▶ gui
///                                                                └──────────(frames)─────┘
///
/// The back process hosts the real `frames` channel plus the four heavy
/// stages and serves the channel on an ephemeral loopback port; it then
/// re-execs itself (role=front) as a child. The front process runs only
/// the digitizer, wired to a RemoteChannel proxy, so every frame and every
/// backward summary-STP crosses a real socket. The front prints the
/// digitizer's paced period second by second (the same chart as
/// adaptive_load) and fails unless the period converged onto the
/// downstream summary-STP received over the wire.
///
/// Run:   distributed_tracker [seconds=6] [scale=1.0] [seed=42] [aru=min]
///                            [stride=8] [conv=1.5]
#include <spawn.h>
#include <sys/wait.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/remote_channel.hpp"
#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "telemetry/exporter.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "vision/stages.hpp"

extern char** environ;

using namespace stampede;

namespace {

struct Shared {
  std::int64_t run_seconds = 6;
  double scale = 1.0;
  std::uint64_t seed = 42;
  aru::Mode aru = aru::Mode::kMin;
  int stride = vision::kDefaultStride;
  double conv = 1.5;  ///< convergence threshold, × digitizer base cost
};

/// Scrapes this process's own /metrics endpoint and returns the value of
/// the series line starting with `series_prefix` (e.g.
/// `aru_task_summary_stp_ns{task="digitizer"}`), or a negative value if
/// the scrape failed or the series is absent. Exercises the same path an
/// external collector would use.
double scrape_metric(std::uint16_t port, const std::string& series_prefix) {
  const auto body = telemetry::http_get("127.0.0.1", port, "/metrics", seconds(5));
  if (!body) return -1.0;
  std::size_t pos = 0;
  while ((pos = body->find(series_prefix, pos)) != std::string::npos) {
    // Must be the start of a line, and followed by the value separator.
    if ((pos == 0 || (*body)[pos - 1] == '\n') &&
        pos + series_prefix.size() < body->size() &&
        (*body)[pos + series_prefix.size()] == ' ') {
      return std::strtod(body->c_str() + pos + series_prefix.size(), nullptr);
    }
    pos += series_prefix.size();
  }
  return -2.0;
}

Shared parse_shared(const Options& cli) {
  Shared s;
  s.run_seconds = cli.get_int("seconds", s.run_seconds);
  s.scale = cli.get_double("scale", s.scale);
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  s.aru = aru::parse_mode(cli.get_string("aru", "min"));
  s.stride = static_cast<int>(cli.get_int("stride", s.stride));
  s.conv = cli.get_double("conv", s.conv);
  return s;
}

// ---------------------------------------------------------------------------
// front: digitizer + RemoteChannel proxy
// ---------------------------------------------------------------------------

int run_front(const Shared& sh, std::uint16_t port) {
  const vision::StageCosts costs = vision::StageCosts{}.scaled(sh.scale);
  auto gen = std::make_shared<vision::SceneGenerator>(sh.seed);

  Runtime rt({.aru = {.mode = sh.aru}, .seed = sh.seed, .metrics_port = 0});
  net::RemoteChannel frames(rt, {.name = "frames",
                                 .transport = {.port = port},
                                 .producer_key = 0});
  TaskContext& dig = rt.add_task(
      {.name = "digitizer",
       .body = vision::make_digitizer(gen, costs, INT64_MAX, sh.stride)});
  rt.connect(dig, frames);

  rt.start();
  std::printf("front: metrics on 127.0.0.1:%u\n",
              static_cast<unsigned>(rt.metrics_port()));
  rt.clock().sleep_for(seconds(sh.run_seconds));

  // Live-plane check while the node still serves traffic: the summary-STP
  // the digitizer paces against must be visible — and non-zero once
  // feedback crossed the wire — on this process's own /metrics endpoint.
  const double live_stp_ns = scrape_metric(
      rt.metrics_port(), "aru_task_summary_stp_ns{task=\"digitizer\"}");
  rt.stop();

  const stats::Trace trace = rt.take_trace();
  const stats::Analyzer post(trace);

  // The digitizer's paced period over time, bucketed per second — the
  // period should climb from the digitizer's own cost onto the downstream
  // summary-STP arriving over the wire (same chart as adaptive_load).
  std::printf("front: digitizer summary-STP (its paced period), second by second:\n");
  const auto series = post.stp_series(dig.id());
  std::vector<double> per_second;
  {
    StreamingStats bucket;
    std::int64_t bucket_end = trace.t_begin + 1'000'000'000;
    for (const auto& s : series) {
      while (s.t >= bucket_end) {
        per_second.push_back(bucket.count() ? bucket.mean() / 1e6 : 0.0);
        bucket = StreamingStats{};
        bucket_end += 1'000'000'000;
      }
      if (s.summary_ns > 0) bucket.add(static_cast<double>(s.summary_ns));
    }
    if (bucket.count()) per_second.push_back(bucket.mean() / 1e6);
  }
  for (std::size_t i = 0; i < per_second.size(); ++i) {
    std::printf("front:   t=%2zus  %6.2f ms  |%s\n", i, per_second[i],
                std::string(static_cast<std::size_t>(per_second[i] * 2), '#').c_str());
  }
  std::printf("front: %lld drops, %lld put-link reconnects, last summary %.2f ms\n",
              static_cast<long long>(frames.drops()),
              static_cast<long long>(frames.reconnects()),
              static_cast<double>(frames.summary().count()) / 1e6);
  std::printf("front: live /metrics digitizer summary-STP %.2f ms\n",
              live_stp_ns / 1e6);

  // Convergence check: feedback must have crossed the wire (summary known)
  // and the source must have settled onto a period meaningfully above its
  // own cost — i.e. it is pacing against the downstream stages, not
  // free-running.
  double last = 0.0;
  for (const double v : per_second) {
    if (v > 0.0) last = v;
  }
  const double threshold_ms =
      sh.conv * static_cast<double>(costs.digitizer.count()) / 1e6;
  const bool known = aru::known(frames.summary());
  const bool converged = sh.aru == aru::Mode::kOff ||
                         (known && last >= threshold_ms);
  if (sh.aru == aru::Mode::kOff) {
    std::printf("front: ARU off — no convergence expected, skipping check\n");
  } else if (converged) {
    std::printf("front: converged (last-second period %.2f ms >= %.2f ms)\n", last,
                threshold_ms);
  } else {
    std::printf("front: FAILED to converge (summary %s, last-second period "
                "%.2f ms < %.2f ms)\n",
                known ? "known" : "unknown", last, threshold_ms);
  }

  // With ARU active the live exposition must have carried the same signal:
  // a missing series or a still-zero gauge means the telemetry plane lost
  // the feedback the controller demonstrably acted on.
  const bool live_ok = sh.aru == aru::Mode::kOff || live_stp_ns > 0.0;
  if (!live_ok) {
    std::printf("front: FAILED live-metrics check (digitizer summary-STP "
                "gauge %s)\n",
                live_stp_ns == -1.0   ? "scrape failed"
                : live_stp_ns == -2.0 ? "series missing"
                                      : "zero");
  }
  return converged && live_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// back: frames channel + heavy stages + ChannelServer, spawns the front
// ---------------------------------------------------------------------------

int spawn_front(const char* self, const Shared& sh, std::uint16_t port, pid_t* pid) {
  std::vector<std::string> args = {
      self,
      "role=front",
      "port=" + std::to_string(port),
      "seconds=" + std::to_string(sh.run_seconds),
      "scale=" + std::to_string(sh.scale),
      "seed=" + std::to_string(sh.seed),
      "aru=" + aru::to_string(sh.aru),
      "stride=" + std::to_string(sh.stride),
      "conv=" + std::to_string(sh.conv),
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  return ::posix_spawn(pid, self, nullptr, nullptr, argv.data(), environ);
}

int run_back(const char* self, const Shared& sh) {
  const vision::StageCosts costs = vision::StageCosts{}.scaled(sh.scale);
  auto gen = std::make_shared<vision::SceneGenerator>(sh.seed);
  auto stats0 = std::make_shared<vision::DetectionStats>();
  auto stats1 = std::make_shared<vision::DetectionStats>();

  Runtime rt({.aru = {.mode = sh.aru}, .seed = sh.seed + 1, .metrics_port = 0});
  Channel& frames = rt.add_channel({.name = "frames"});
  Channel& masks = rt.add_channel({.name = "masks"});
  Channel& hists = rt.add_channel({.name = "hists"});
  Channel& loc1 = rt.add_channel({.name = "loc1"});
  Channel& loc2 = rt.add_channel({.name = "loc2"});

  TaskContext& bg = rt.add_task(
      {.name = "background", .body = vision::make_background(costs, sh.stride)});
  TaskContext& hist = rt.add_task(
      {.name = "histogram", .body = vision::make_histogram(costs, sh.stride)});
  TaskContext& det1 = rt.add_task(
      {.name = "detect1",
       .body = vision::make_target_detection(gen, costs, 0, sh.stride, stats0)});
  TaskContext& det2 = rt.add_task(
      {.name = "detect2",
       .body = vision::make_target_detection(gen, costs, 1, sh.stride, stats1)});
  TaskContext& gui = rt.add_task({.name = "gui", .body = vision::make_gui(costs)});

  rt.connect(bg, masks);
  rt.connect(hist, hists);
  rt.connect(det1, loc1);
  rt.connect(det2, loc2);
  rt.connect(frames, bg);
  rt.connect(frames, hist);
  rt.connect(masks, det1);
  rt.connect(hists, det1);
  rt.connect(frames, det1);
  rt.connect(masks, det2);
  rt.connect(hists, det2);
  rt.connect(frames, det2);
  rt.connect(loc1, gui);
  rt.connect(loc2, gui);

  // The digitizer lives in the front process: export `frames` with one
  // remote producer slot.
  net::ChannelServer server(rt, {{.channel = &frames, .remote_producers = 1}});

  rt.start();
  server.start();
  std::printf("back: serving 'frames' on 127.0.0.1:%u, metrics on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(rt.metrics_port()));
  std::fflush(stdout);

  pid_t child = -1;
  if (const int rc = spawn_front(self, sh, server.port(), &child); rc != 0) {
    std::fprintf(stderr, "back: posix_spawn failed: %d\n", rc);
    server.stop();
    rt.stop();
    return 1;
  }

  int status = 0;
  while (::waitpid(child, &status, 0) < 0 && errno == EINTR) {
  }

  // The front has exited but this runtime is still live: the channel that
  // absorbed its frames must expose the summary-STP it propagated back.
  const double live_stp_ns = scrape_metric(
      rt.metrics_port(), "aru_channel_summary_stp_ns{channel=\"frames\"}");
  std::printf("back: live /metrics 'frames' summary-STP %.2f ms\n",
              live_stp_ns / 1e6);
  server.stop();
  rt.stop();

  const stats::Trace trace = rt.take_trace();
  const stats::Analyzer post(trace);
  const auto a = post.run();
  std::printf("back: throughput %.1f/s, footprint %.2f MB, wasted memory %.1f%%\n",
              a.perf.throughput_fps, a.res.footprint_mb_mean, a.res.wasted_mem_pct);
  std::printf("back: detections model0 %lld found / %lld missed (err %.1f px), "
              "model1 %lld / %lld (err %.1f px)\n",
              static_cast<long long>(stats0->found.load()),
              static_cast<long long>(stats0->missed.load()), stats0->mean_error_px(),
              static_cast<long long>(stats1->found.load()),
              static_cast<long long>(stats1->missed.load()), stats1->mean_error_px());

  if (!WIFEXITED(status)) {
    std::fprintf(stderr, "back: front terminated abnormally\n");
    return 1;
  }
  if (sh.aru != aru::Mode::kOff && live_stp_ns <= 0.0) {
    std::fprintf(stderr, "back: FAILED live-metrics check ('frames' "
                         "summary-STP gauge absent or zero)\n");
    return 1;
  }
  return WEXITSTATUS(status);
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const Shared sh = parse_shared(cli);
  if (cli.get_string("role", "back") == "front") {
    return run_front(sh, static_cast<std::uint16_t>(cli.get_int("port", 0)));
  }
  return run_back(argv[0], sh);
}
