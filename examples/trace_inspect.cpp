/// \file trace_inspect.cpp
/// \brief The postmortem analysis program as a standalone tool: record a
///        tracker run to a trace file, then inspect/re-analyze it offline.
///
/// Run:   trace_inspect record out=run.trace [aru=max] [seconds=4]
///        trace_inspect analyze in=run.trace [warmup=0.1]
///        trace_inspect dump in=run.trace [head=40] [type=emit]
#include <cstdio>
#include <cstring>

#include "stats/breakdown.hpp"
#include "stats/postmortem.hpp"
#include "stats/trace_io.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "vision/tracker.hpp"

using namespace stampede;

namespace {

int cmd_record(const Options& cli) {
  const std::string out = cli.get_string("out", "run.trace");
  vision::TrackerOptions opts;
  opts.aru = aru::parse_mode(cli.get_string("aru", "max"));
  opts.cluster_config = static_cast<int>(cli.get_int("config", 1));
  opts.duration = seconds(cli.get_int("seconds", 4));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("recording %s for %.0fs...\n", vision::label(opts).c_str(),
              to_seconds(opts.duration));
  // Build manually (rather than run_tracker) so monitoring can be enabled.
  RuntimeConfig cfg = vision::runtime_config(opts);
  const auto monitor_ms = cli.get_int("monitor_ms", 0);
  if (monitor_ms > 0) cfg.monitor_period = millis(monitor_ms);
  Runtime rt(cfg);
  vision::build_tracker(rt, opts);
  rt.start();
  rt.clock().sleep_for(opts.duration);
  rt.stop();
  const stats::Trace trace = rt.take_trace();
  stats::save_trace_file(trace, out);
  std::printf("wrote %s: %zu events, %zu items, %zu nodes\n", out.c_str(),
              trace.events.size(), trace.items.size(), trace.node_names.size());
  return 0;
}

int cmd_analyze(const Options& cli) {
  const std::string in = cli.get_string("in", "run.trace");
  const stats::Trace trace = stats::load_trace_file(in);
  const stats::Analyzer analyzer(trace,
                                 {.warmup_fraction = cli.get_double("warmup", 0.1)});
  const stats::Analysis a = analyzer.run();
  std::printf("trace %s: %zu events over %.1f ms\n", in.c_str(), trace.events.size(),
              static_cast<double>(trace.t_end - trace.t_begin) / 1e6);
  std::printf("  throughput %.2f fps (std %.2f), latency %.0f ms (std %.0f), jitter %.0f ms\n",
              a.perf.throughput_fps, a.perf.throughput_fps_std, a.perf.latency_ms_mean,
              a.perf.latency_ms_std, a.perf.jitter_ms);
  std::printf("  footprint %.2f MB (std %.2f), IGC bound %.2f MB\n",
              a.res.footprint_mb_mean, a.res.footprint_mb_std, a.res.igc_mb_mean);
  if (a.res.pool_cached_mb_peak > 0) {
    std::printf("  pool cache %.2f MB mean, %.2f MB peak (parked for reuse)\n",
                a.res.pool_cached_mb_mean, a.res.pool_cached_mb_peak);
  }
  std::printf("  wasted: %.1f%% memory, %.1f%% computation (%lld of %lld items)\n",
              a.res.wasted_mem_pct, a.res.wasted_comp_pct,
              static_cast<long long>(a.res.items_wasted),
              static_cast<long long>(a.res.items_total));
  return 0;
}

int cmd_dump(const Options& cli) {
  const std::string in = cli.get_string("in", "run.trace");
  const auto head = cli.get_int("head", 40);
  const std::string type_filter = cli.get_string("type", "");
  const stats::Trace trace = stats::load_trace_file(in);

  std::int64_t shown = 0;
  for (const auto& e : trace.events) {
    if (!type_filter.empty() && type_filter != stats::to_string(e.type)) continue;
    std::printf("%s\n", stats::format_event(trace, e).c_str());
    if (++shown >= head) break;
  }
  std::printf("(%lld of %zu events shown)\n", static_cast<long long>(shown),
              trace.events.size());
  return 0;
}

int cmd_timeline(const Options& cli) {
  const std::string in = cli.get_string("in", "run.trace");
  const stats::Trace trace = stats::load_trace_file(in);
  const stats::Analyzer analyzer(trace);

  // One occupancy sparkline per buffer node that has gauge samples.
  bool any = false;
  for (std::size_t node = 0; node < trace.node_names.size(); ++node) {
    const auto series = analyzer.gauge_series(static_cast<stats::NodeRef>(node));
    if (series.empty()) continue;
    any = true;
    std::vector<double> occupancy;
    occupancy.reserve(series.size());
    for (const auto& g : series) occupancy.push_back(static_cast<double>(g.value));
    std::printf("--- %s occupancy (items stored over time) ---\n",
                trace.node_names[node].c_str());
    std::printf("%s", ascii_chart(occupancy, 72, 6).c_str());
  }
  if (!any) {
    std::printf(
        "no gauge samples in this trace; record with monitoring enabled\n"
        "(trace_inspect record monitor_ms=20 ...)\n");
  }
  return 0;
}

int cmd_breakdown(const Options& cli) {
  const std::string in = cli.get_string("in", "run.trace");
  const stats::Trace trace = stats::load_trace_file(in);
  const stats::Analyzer analyzer(trace);
  std::printf("%s", stats::render_breakdown(stats::compute_breakdown(trace, analyzer)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf(
        "usage: trace_inspect record|analyze|dump|breakdown|timeline [key=value...]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  const Options cli = Options::parse(argc - 1, argv + 1);
  try {
    if (cmd == "record") return cmd_record(cli);
    if (cmd == "analyze") return cmd_analyze(cli);
    if (cmd == "dump") return cmd_dump(cli);
    if (cmd == "breakdown") return cmd_breakdown(cli);
    if (cmd == "timeline") return cmd_timeline(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
