/// \file custom_operator.cpp
/// \brief The paper's §3.3.2 extension point: a user-defined compress
///        operator encoding application data-dependency knowledge.
///
/// Pipeline (the paper's Fig. 4 shape): one source fans out to several
/// analysis branches whose results all feed one fusion stage. Because the
/// fusion stage dictates pipeline throughput, matching the *slowest*
/// branch (max) wastes nothing — but suppose the application knows branch
/// "preview" is best-effort and must never be starved. A custom operator
/// can encode exactly that: max over the mandatory branches, but never
/// slower than the preview branch needs.
///
/// Run:   custom_operator [op=min|max|custom] [seconds=5]
#include <cstdio>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "util/options.hpp"

using namespace stampede;

namespace {

TaskBody make_source() {
  auto next_ts = std::make_shared<Timestamp>(0);
  return [next_ts](TaskContext& ctx) {
    ctx.compute(millis(1));
    ctx.put(0, ctx.make_item((*next_ts)++, 16 * 1024, {}));
    return TaskStatus::kContinue;
  };
}

TaskBody make_branch(Nanos cost) {
  return [cost](TaskContext& ctx) {
    auto in = ctx.get(0);
    if (!in) return TaskStatus::kDone;
    ctx.compute(cost);
    ctx.put(0, ctx.make_item(in->ts(), 256, {in->id()}));
    return TaskStatus::kContinue;
  };
}

TaskStatus fusion_body(TaskContext& ctx) {
  auto a = ctx.get(0);
  if (!a) return TaskStatus::kDone;
  auto b = ctx.get(1);
  if (!b) return TaskStatus::kDone;
  ctx.compute(millis(2));
  ctx.emit(*a);
  ctx.emit(*b);
  ctx.display(std::max(a->ts(), b->ts()));
  return TaskStatus::kContinue;
}

/// Preview sink: consumes the source directly, best-effort.
TaskStatus preview_body(TaskContext& ctx) {
  auto in = ctx.get(0);
  if (!in) return TaskStatus::kDone;
  ctx.compute(millis(4));
  return TaskStatus::kContinue;
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const std::string op = cli.get_string("op", "custom");
  const auto run_seconds = cli.get_int("seconds", 5);

  // Custom operator: max over the analysis branches (they all feed the
  // fusion stage — Fig. 4 reasoning), clamped so the best-effort preview
  // (which needs ~4 ms items) is still fed at a reasonable rate.
  const aru::CompressFn preview_aware = [](std::span<const Nanos> backward) {
    const Nanos aggressive = aru::compress_max(backward);
    if (!aru::known(aggressive)) return aggressive;
    return std::min(aggressive, millis(8));  // never slower than 8 ms items
  };

  aru::Config aru_cfg;
  if (op == "custom") {
    aru_cfg.mode = aru::Mode::kCustom;
  } else {
    aru_cfg.mode = aru::parse_mode(op);
  }

  RuntimeConfig cfg{.aru = aru_cfg};
  Runtime rt(cfg);
  const aru::CompressFn chan_op = op == "custom" ? preview_aware : aru::CompressFn{};

  Channel& feed = rt.add_channel({.name = "feed", .custom_compress = chan_op});
  Channel& ra = rt.add_channel({.name = "branchA", .custom_compress = chan_op});
  Channel& rb = rt.add_channel({.name = "branchB", .custom_compress = chan_op});

  TaskContext& src = rt.add_task(
      {.name = "source", .body = make_source(), .custom_compress = chan_op});
  TaskContext& ba = rt.add_task(
      {.name = "analysisA", .body = make_branch(millis(12)), .custom_compress = chan_op});
  TaskContext& bb = rt.add_task(
      {.name = "analysisB", .body = make_branch(millis(20)), .custom_compress = chan_op});
  TaskContext& fuse =
      rt.add_task({.name = "fusion", .body = fusion_body, .custom_compress = chan_op});
  TaskContext& preview =
      rt.add_task({.name = "preview", .body = preview_body, .custom_compress = chan_op});

  rt.connect(src, feed);
  rt.connect(feed, ba);
  rt.connect(feed, bb);
  rt.connect(feed, preview);
  rt.connect(ba, ra);
  rt.connect(bb, rb);
  rt.connect(ra, fuse);
  rt.connect(rb, fuse);

  std::printf("fan-out: source -> {analysisA 12ms, analysisB 20ms, preview 4ms};\n");
  std::printf("A+B fuse; operator = %s\n\n", op.c_str());

  rt.start();
  rt.clock().sleep_for(seconds(run_seconds));
  rt.stop();

  std::printf("source paced period: %.2f ms\n",
              static_cast<double>(src.feedback().summary().count()) / 1e6);
  std::printf("iterations: source %lld, analysisA %lld, analysisB %lld, preview %lld\n",
              static_cast<long long>(src.iterations()), static_cast<long long>(ba.iterations()),
              static_cast<long long>(bb.iterations()),
              static_cast<long long>(preview.iterations()));

  const auto trace = rt.take_trace();
  const auto a = stats::Analyzer(trace).run();
  std::printf("fusion output: %.1f/s; wasted memory %.1f%%\n", a.perf.throughput_fps,
              a.res.wasted_mem_pct);
  std::printf(
      "\nreading: min paces to preview (4ms, wasteful for A/B); max paces to B\n"
      "(20ms, starves preview); the custom operator holds 8ms — the app's balance.\n");
  return 0;
}
