/// \file gesture_window.cpp
/// \brief Sliding-window analysis — the paper's §1 motivating example of
///        a "gesture recognition module [that] may need to analyze a
///        sliding window over a video stream".
///
/// Pipeline: Digitizer -> frames -> MotionMask -> masks -> GestureSpotter.
/// The spotter uses the space-time-memory window access mode
/// (get_window) to fetch the newest W motion masks each iteration and
/// classifies the window by its motion-energy profile. ARU feedback works
/// unchanged through windowed consumers: the digitizer paces itself to
/// the spotter's sustainable period.
///
/// Run:   gesture_window [aru=min|off] [seconds=6] [window=5]
#include <cstdio>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "util/options.hpp"
#include "vision/kernels.hpp"
#include "vision/stages.hpp"

using namespace stampede;
using namespace stampede::vision;

namespace {

/// Gesture spotter: motion energy across a window of masks.
TaskBody make_spotter(std::size_t window, std::shared_ptr<std::int64_t> gestures) {
  return [window, gestures](TaskContext& ctx) {
    const auto masks = ctx.get_window(0, window);
    if (masks.empty()) return TaskStatus::kDone;

    // Motion energy per mask: fraction of set pixels (strided scan).
    double energy = 0.0;
    for (const auto& mask : masks) {
      const auto data = mask->data();
      int set = 0, scanned = 0;
      for (std::size_t i = 0; i < data.size(); i += 64) {
        set += static_cast<unsigned char>(data[i]) != 0 ? 1 : 0;
        ++scanned;
      }
      energy += scanned ? static_cast<double>(set) / scanned : 0.0;
    }
    energy /= static_cast<double>(masks.size());

    ctx.compute(millis(20));  // classification cost
    if (masks.size() == window && energy > 0.0005) {
      ++*gestures;
      ctx.emit(*masks.back());
    }
    return TaskStatus::kContinue;
  };
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const aru::Mode mode = aru::parse_mode(cli.get_string("aru", "min"));
  const auto run_seconds = cli.get_int("seconds", 6);
  const auto window = static_cast<std::size_t>(cli.get_int("window", 5));

  Runtime rt({.aru = {.mode = mode}});
  auto gen = std::make_shared<SceneGenerator>(11);
  auto gestures = std::make_shared<std::int64_t>(0);
  StageCosts costs;  // digitizer 5 ms, background 12 ms

  Channel& frames = rt.add_channel({.name = "frames"});
  Channel& masks = rt.add_channel({.name = "masks"});
  TaskContext& dig = rt.add_task(
      {.name = "digitizer", .body = make_digitizer(gen, costs, INT64_MAX)});
  TaskContext& motion = rt.add_task({.name = "motion", .body = make_background(costs)});
  TaskContext& spotter =
      rt.add_task({.name = "spotter", .body = make_spotter(window, gestures)});
  rt.connect(dig, frames);
  rt.connect(frames, motion);
  rt.connect(motion, masks);
  rt.connect(masks, spotter);

  std::printf("gesture spotter over a %zu-mask sliding window, ARU=%s, %llds\n\n", window,
              aru::to_string(mode).c_str(), static_cast<long long>(run_seconds));
  rt.start();
  rt.clock().sleep_for(seconds(run_seconds));
  rt.stop();

  const auto trace = rt.take_trace();
  const auto a = stats::Analyzer(trace).run();
  std::printf("windows classified as gesture : %lld\n", static_cast<long long>(*gestures));
  std::printf("digitizer paced period        : %.2f ms (spotter needs ~20 ms)\n",
              static_cast<double>(dig.feedback().summary().count()) / 1e6);
  std::printf("frames produced / wasted      : %lld / %lld (%.1f%% mem wasted)\n",
              static_cast<long long>(a.res.items_total),
              static_cast<long long>(a.res.items_wasted), a.res.wasted_mem_pct);
  std::printf("\nnote: windowed consumers hold the DGC frontier back by the window size,\n"
              "so the last %zu masks always stay resident — visible in the footprint.\n",
              window);
  (void)motion;
  (void)spotter;
  return 0;
}
