/// \file adaptive_load.cpp
/// \brief Demonstrates ARU adapting to *time-varying* load — the dynamic
///        phenomenon static tools cannot handle (paper §1).
///
/// A producer feeds an analyzer whose per-item cost triples in the middle
/// third of the run (e.g. the tracked scene gets crowded). Watch the
/// producer's paced period follow the analyzer's summary-STP up and back
/// down, keeping waste near zero throughout; with ARU off, the producer
/// floods harder exactly when the consumer can least afford it.
///
/// Run:   adaptive_load [aru=min|off] [seconds=9]
#include <cstdio>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace stampede;

namespace {

struct Phase {
  Nanos start;
  Nanos analyzer_cost;
};

TaskStatus producer_body(TaskContext& ctx) {
  static thread_local Timestamp next_ts = 0;
  ctx.compute(millis(2));
  ctx.put(0, ctx.make_item(next_ts++, 32 * 1024, {}));
  return TaskStatus::kContinue;
}

/// Analyzer whose cost follows a low-high-low profile.
TaskBody make_analyzer(Nanos t0) {
  return [t0](TaskContext& ctx) {
    auto in = ctx.get(0);
    if (!in) return TaskStatus::kDone;
    const Nanos elapsed = ctx.now() - t0;
    const bool crowded = elapsed > seconds(3) && elapsed < seconds(6);
    ctx.compute(crowded ? millis(18) : millis(6));
    auto out = ctx.make_item(in->ts(), 512, {in->id()});
    ctx.put(0, out);
    return TaskStatus::kContinue;
  };
}

TaskStatus sink_body(TaskContext& ctx) {
  auto in = ctx.get(0);
  if (!in) return TaskStatus::kDone;
  ctx.emit(*in);
  return TaskStatus::kContinue;
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const aru::Mode mode = aru::parse_mode(cli.get_string("aru", "min"));
  const auto run_seconds = cli.get_int("seconds", 9);

  Runtime rt({.aru = {.mode = mode}});
  Channel& raw = rt.add_channel({.name = "raw"});
  Channel& results = rt.add_channel({.name = "results"});
  TaskContext& prod = rt.add_task({.name = "producer", .body = producer_body});
  TaskContext& analyzer =
      rt.add_task({.name = "analyzer", .body = make_analyzer(rt.clock().now())});
  TaskContext& sink = rt.add_task({.name = "sink", .body = sink_body});
  rt.connect(prod, raw);
  rt.connect(raw, analyzer);
  rt.connect(analyzer, results);
  rt.connect(results, sink);

  std::printf("analyzer cost profile: 6ms -> 18ms (t in [3s,6s)) -> 6ms; ARU=%s\n\n",
              aru::to_string(mode).c_str());
  rt.start();
  rt.clock().sleep_for(seconds(run_seconds));
  rt.stop();

  const stats::Trace trace = rt.take_trace();
  const stats::Analyzer post(trace);

  // Producer's paced period over time, bucketed per second.
  std::printf("producer summary-STP (its paced period), second by second:\n");
  const auto series = post.stp_series(prod.id());
  const std::int64_t t0 = trace.t_begin;
  std::vector<double> per_second;
  {
    StreamingStats bucket;
    std::int64_t bucket_end = t0 + 1'000'000'000;
    for (const auto& s : series) {
      while (s.t >= bucket_end) {
        per_second.push_back(bucket.count() ? bucket.mean() / 1e6 : 0.0);
        bucket = StreamingStats{};
        bucket_end += 1'000'000'000;
      }
      bucket.add(static_cast<double>(s.summary_ns));
    }
    if (bucket.count()) per_second.push_back(bucket.mean() / 1e6);
  }
  for (std::size_t i = 0; i < per_second.size(); ++i) {
    std::printf("  t=%2zus  %6.2f ms  |%s\n", i, per_second[i],
                std::string(static_cast<std::size_t>(per_second[i] * 2), '#').c_str());
  }

  const auto a = post.run();
  std::printf("\noverall: throughput %.1f/s, wasted memory %.1f%%, footprint %.2f MB\n",
              a.perf.throughput_fps, a.res.wasted_mem_pct, a.res.footprint_mb_mean);
  std::printf("compare:  adaptive_load aru=off  — waste spikes during the crowded phase.\n");
  return 0;
}
