/// \file stereo_pipeline.cpp
/// \brief Stereo pipeline with timestamp correspondence — the paper's §1
///        stereo scenario, exercising the channel's random-access mode.
///
/// Two camera tasks (left/right) digitize the same scene from a baseline;
/// the stereo matcher takes the latest left frame and fetches the right
/// frame with the *corresponding timestamp* via get_at. Depth estimates
/// flow through a Queue (exactly-once) to a sink. ARU paces both cameras
/// to the matcher's rate.
///
/// Run:   stereo_pipeline [aru=min|off] [seconds=5]
#include <cstdio>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"
#include "util/options.hpp"
#include "vision/stereo.hpp"

using namespace stampede;
using namespace stampede::vision;

namespace {

TaskBody make_camera(std::shared_ptr<StereoRig> rig, bool left) {
  auto next_ts = std::make_shared<Timestamp>(0);
  return [rig, left, next_ts](TaskContext& ctx) {
    const Timestamp ts = (*next_ts)++;
    auto frame = ctx.make_item(ts, kFrameBytes, {});
    const Nanos t0 = ctx.now();
    if (left) {
      rig->render_left(ts, frame->mutable_data());
    } else {
      rig->render_right(ts, frame->mutable_data());
    }
    ctx.account_compute(ctx.now() - t0);
    ctx.compute(millis(4));
    ctx.put(0, frame);
    return TaskStatus::kContinue;
  };
}

struct MatchStats {
  std::int64_t matched = 0;
  std::int64_t missing_right = 0;
  double disparity_err_sum = 0.0;
};

TaskBody make_matcher(std::shared_ptr<StereoRig> rig, std::shared_ptr<MatchStats> stats) {
  return [rig, stats](TaskContext& ctx) {
    auto left = ctx.get(0);  // latest left frame
    if (!left) return TaskStatus::kDone;

    // Correspondence: the right frame with the SAME timestamp (§1:
    // "images with corresponding timestamps from multiple cameras"),
    // falling back to a neighbour within the paper's footnote-1 tolerance
    // ("values close enough within a pre-defined threshold").
    auto right = ctx.get_at(1, left->ts());
    if (!right) right = ctx.get_nearest(1, left->ts(), /*tolerance=*/1);
    if (!right) {
      // Not digitized/still in flight or already collected: skip this ts.
      ++stats->missing_right;
      return TaskStatus::kContinue;
    }

    const Nanos t0 = ctx.now();
    const DisparityEstimate est =
        estimate_disparity(ConstFrameView(left->data()), ConstFrameView(right->data()),
                           rig->scene().model_color(0));
    ctx.account_compute(ctx.now() - t0);
    ctx.compute(millis(16));

    if (est.found) {
      ++stats->matched;
      stats->disparity_err_sum +=
          std::abs(est.disparity_px - static_cast<double>(rig->baseline_px()));
    }
    auto depth = ctx.make_item(left->ts(), 64, {left->id(), right->id()});
    ctx.put(0, depth);
    return TaskStatus::kContinue;
  };
}

TaskStatus sink_body(TaskContext& ctx) {
  auto in = ctx.get(0);
  if (!in) return TaskStatus::kDone;
  ctx.emit(*in);
  return TaskStatus::kContinue;
}

}  // namespace

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const aru::Mode mode = aru::parse_mode(cli.get_string("aru", "min"));
  const auto run_seconds = cli.get_int("seconds", 5);

  Runtime rt({.aru = {.mode = mode}});
  auto rig = std::make_shared<StereoRig>(21);
  auto stats = std::make_shared<MatchStats>();

  Channel& left_frames = rt.add_channel({.name = "left"});
  Channel& right_frames = rt.add_channel({.name = "right"});
  Queue& depths = rt.add_queue({.name = "depths"});

  TaskContext& cam_l =
      rt.add_task({.name = "camera-left", .body = make_camera(rig, true)});
  TaskContext& cam_r =
      rt.add_task({.name = "camera-right", .body = make_camera(rig, false)});
  TaskContext& matcher =
      rt.add_task({.name = "stereo-matcher", .body = make_matcher(rig, stats)});
  TaskContext& sink = rt.add_task({.name = "depth-sink", .body = sink_body});

  rt.connect(cam_l, left_frames);
  rt.connect(cam_r, right_frames);
  rt.connect(left_frames, matcher);   // input 0: latest left
  rt.connect(right_frames, matcher);  // input 1: get_at correspondence
  rt.connect(matcher, depths);
  rt.connect(depths, sink);

  std::printf("stereo rig baseline %d px; cameras 4ms, matcher 16ms; ARU=%s\n\n",
              rig->baseline_px(), aru::to_string(mode).c_str());
  rt.start();
  rt.clock().sleep_for(seconds(run_seconds));
  rt.stop();

  const auto trace = rt.take_trace();
  const auto a = stats::Analyzer(trace).run();
  const double mean_err =
      stats->matched > 0 ? stats->disparity_err_sum / static_cast<double>(stats->matched)
                         : 0.0;
  std::printf("matched pairs        : %lld (right frame missing for %lld left frames)\n",
              static_cast<long long>(stats->matched),
              static_cast<long long>(stats->missing_right));
  std::printf("mean |disparity err| : %.1f px (ground truth %d px)\n", mean_err,
              rig->baseline_px());
  std::printf("camera paced periods : left %.1f ms, right %.1f ms (matcher ~16 ms)\n",
              static_cast<double>(cam_l.feedback().summary().count()) / 1e6,
              static_cast<double>(cam_r.feedback().summary().count()) / 1e6);
  std::printf("depth records emitted: %lld; wasted memory %.1f%%\n",
              static_cast<long long>(a.perf.frames_emitted), a.res.wasted_mem_pct);
  (void)matcher;
  (void)sink;
  return 0;
}
