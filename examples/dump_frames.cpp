/// \file dump_frames.cpp
/// \brief Visual inspection of the synthetic tracker workload: renders a
///        few frames, their motion masks, and detection overlays to
///        NetPBM files.
///
/// Run:   dump_frames [dir=/tmp] [seed=42] [frames=4] [stride=2]
#include <cstdio>
#include <vector>

#include "util/options.hpp"
#include "vision/image_io.hpp"
#include "vision/kernels.hpp"

using namespace stampede;
using namespace stampede::vision;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const std::string dir = cli.get_string("dir", "/tmp");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto n = cli.get_int("frames", 4);
  const int stride = static_cast<int>(cli.get_int("stride", 2));

  SceneGenerator gen(seed);
  std::vector<std::byte> prev(kFrameBytes), cur(kFrameBytes), mask(kMaskBytes);
  std::vector<std::byte> hist_payload(kHistogramBytes);

  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t ts = i * 10;  // spread out so motion is visible
    gen.render(ts - 1, prev, stride);
    gen.render(ts, cur, stride);

    frame_difference(ConstFrameView(cur), ConstFrameView(prev), mask, 24, stride);
    color_histogram(ConstFrameView(cur), hist_payload, stride);

    // Detect both models and overlay results.
    std::vector<std::byte> annotated = cur;
    for (int model = 0; model < 2; ++model) {
      LocationRecord rec =
          detect_target(ConstFrameView(cur), mask, ConstHistogramView(hist_payload),
                        gen.model_color(model), model, stride);
      const Scene truth = gen.scene_at(ts);
      rec.truth_x = truth.blobs[model].cx;
      rec.truth_y = truth.blobs[model].cy;
      overlay_detection(FrameView(annotated), rec);
      std::printf("frame %lld model %d: %s at (%.0f, %.0f), truth (%.0f, %.0f)\n",
                  static_cast<long long>(ts), model, rec.found ? "found" : "missed",
                  rec.x, rec.y, rec.truth_x, rec.truth_y);
    }

    const std::string base = dir + "/tracker_" + std::to_string(ts);
    write_ppm(base + "_frame.ppm", ConstFrameView(cur));
    write_pgm(base + "_mask.pgm", mask);
    write_ppm(base + "_detect.ppm", ConstFrameView(annotated));
    std::printf("wrote %s_{frame.ppm, mask.pgm, detect.ppm}\n", base.c_str());
  }
  return 0;
}
