/// \file multifidelity.cpp
/// \brief Runs the paper's Figure-1 application: Digitizer → Low-fi
///        tracker → Decision → High-fi tracker → GUI, with decision
///        records in a Queue.
///
/// Queues deliver exactly-once and cannot skip, so without ARU the
/// decision queue grows as fast as the low-fi stage outruns the high-fi
/// stage; with ARU the high-fi stage's summary-STP propagates back
/// through the queue and the decision/low-fi/digitizer stages, pacing the
/// whole pipeline — no queue growth, no wasted frames.
///
/// Run:   multifidelity [aru=min|off] [seconds=6]
#include <cstdio>

#include "stats/postmortem.hpp"
#include "util/options.hpp"
#include "vision/multifid.hpp"

using namespace stampede;
using namespace stampede::vision;

int main(int argc, char** argv) {
  const Options cli = Options::parse(argc, argv);
  const aru::Mode mode = aru::parse_mode(cli.get_string("aru", "min"));
  const auto run_seconds = cli.get_int("seconds", 6);

  Runtime rt({.aru = {.mode = mode}});
  MultiFidOptions opts;
  opts.aru = mode;
  const MultiFidHandles h = build_multifid(rt, opts);

  std::printf("Fig.-1 pipeline: digitizer(4ms) -> lowfi(10ms) -> decision(2ms)\n");
  std::printf("                 -> [queue] -> highfi(30ms) -> gui(3ms); ARU=%s\n\n",
              aru::to_string(mode).c_str());

  rt.start();
  // Sample the decision-queue depth over the run.
  std::size_t peak_queue = 0;
  for (std::int64_t i = 0; i < run_seconds * 10; ++i) {
    rt.clock().sleep_for(millis(100));
    peak_queue = std::max(peak_queue, h.decisions->size());
  }
  rt.stop();

  const auto trace = rt.take_trace();
  const auto a = stats::Analyzer(trace).run();
  const auto& c = *h.counters;
  std::printf("low-fi scans        : %lld\n", static_cast<long long>(c.lowfi_scans.load()));
  std::printf("decisions issued    : %lld\n",
              static_cast<long long>(c.decisions_issued.load()));
  std::printf("high-fi analyses    : %lld (frame already collected: %lld)\n",
              static_cast<long long>(c.highfi_runs.load()),
              static_cast<long long>(c.highfi_frame_missing.load()));
  std::printf("peak decision queue : %zu records\n", peak_queue);
  std::printf("displayed results   : %lld (%.1f/s)\n",
              static_cast<long long>(a.perf.frames_emitted), a.perf.throughput_fps);
  std::printf("footprint           : %.2f MB mean; wasted memory %.1f%%\n",
              a.res.footprint_mb_mean, a.res.wasted_mem_pct);
  std::printf("\ncompare: multifidelity aru=off — the decision queue grows unboundedly\n"
              "because queues cannot skip; ARU is the only thing pacing this pipeline.\n");
  return 0;
}
