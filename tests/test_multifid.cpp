/// \file test_multifid.cpp
/// \brief The Figure-1 multi-fidelity pipeline.
#include "vision/multifid.hpp"

#include <gtest/gtest.h>

#include "stats/postmortem.hpp"

namespace stampede::vision {
namespace {

MultiFidOptions quick(aru::Mode mode) {
  MultiFidOptions opts;
  opts.aru = mode;
  opts.digitizer_cost = millis(2);
  opts.lowfi_cost = millis(5);
  opts.decision_cost = millis(1);
  opts.highfi_cost = millis(15);
  opts.gui_cost = millis(1);
  return opts;
}

TEST(MultiFid, GraphShape) {
  Runtime rt({.aru = {.mode = aru::Mode::kMin}});
  const MultiFidHandles h = build_multifid(rt, quick(aru::Mode::kMin));
  EXPECT_EQ(rt.tasks(), 5u);
  EXPECT_EQ(rt.channels(), 3u);
  EXPECT_EQ(rt.queues(), 1u);
  EXPECT_NO_THROW(rt.graph().validate());
  EXPECT_TRUE(rt.graph().is_source(h.digitizer));
  EXPECT_TRUE(rt.graph().is_sink(h.gui));
  // High-fi reads both the decision queue and the frames channel.
  EXPECT_EQ(rt.graph().predecessors(h.highfi).size(), 2u);
}

TEST(MultiFid, EndToEndProducesHighFiResults) {
  Runtime rt({.aru = {.mode = aru::Mode::kMin}});
  const MultiFidHandles h = build_multifid(rt, quick(aru::Mode::kMin));
  rt.start();
  rt.clock().sleep_for(millis(1500));
  rt.stop();

  EXPECT_GT(h.counters->lowfi_scans.load(), 10);
  EXPECT_GT(h.counters->decisions_issued.load(), 5);
  EXPECT_GT(h.counters->highfi_runs.load(), 5);
  EXPECT_GT(rt.recorder().emits(), 5);
}

TEST(MultiFid, AruBoundsTheDecisionQueue) {
  auto peak_queue_for = [](aru::Mode mode) {
    Runtime rt({.aru = {.mode = mode}});
    const MultiFidHandles h = build_multifid(rt, quick(mode));
    rt.start();
    std::size_t peak = 0;
    for (int i = 0; i < 15; ++i) {
      rt.clock().sleep_for(millis(100));
      peak = std::max(peak, h.decisions->size());
    }
    rt.stop();
    return peak;
  };
  const std::size_t peak_off = peak_queue_for(aru::Mode::kOff);
  const std::size_t peak_min = peak_queue_for(aru::Mode::kMin);
  // Queues cannot skip: without ARU the backlog grows with the lowfi/highfi
  // rate gap (~3x); with ARU the pipeline is paced and the queue stays small.
  EXPECT_GT(peak_off, 20u);
  EXPECT_LT(peak_min, peak_off / 2);
}

TEST(MultiFid, FramesChannelIsCollectedDespiteRandomAccessConsumer) {
  // The high-fi stage reads frames only via get_at; release_until must
  // keep the frames channel bounded.
  Runtime rt({.aru = {.mode = aru::Mode::kMin}});
  const MultiFidHandles h = build_multifid(rt, quick(aru::Mode::kMin));
  rt.start();
  rt.clock().sleep_for(millis(1200));
  const std::size_t stored = h.frames->size();
  rt.stop();
  EXPECT_LT(stored, 25u);
}

TEST(MultiFid, HighFiResultsTrackGroundTruth) {
  Runtime rt({.aru = {.mode = aru::Mode::kMin}});
  MultiFidOptions opts = quick(aru::Mode::kMin);
  opts.highfi_stride = 2;  // fine analysis
  build_multifid(rt, opts);
  rt.start();
  rt.wait_emits(5, seconds(20));
  rt.stop();
  const auto trace = rt.take_trace();

  // Emitted high-fi records must have been produced by the highfi stage
  // and be marked successful.
  const stats::Analyzer analyzer(trace);
  int emitted = 0;
  for (const auto& e : trace.events) {
    if (e.type != stats::EventType::kEmit) continue;
    ++emitted;
    EXPECT_TRUE(analyzer.successful(e.item));
  }
  EXPECT_GE(emitted, 5);
}

}  // namespace
}  // namespace stampede::vision
