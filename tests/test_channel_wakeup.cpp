/// \file test_channel_wakeup.cpp
/// \brief Pins the channel's blocked-wakeup semantics around the counted
///        waiter notify (notify_one when one waiter, notify_all otherwise).
///
/// The waiter-count optimization must never change observable behavior:
/// a put wakes blocked getters, a get that reclaims space on a bounded
/// channel wakes blocked putters (all of them when several are parked),
/// and close() releases everyone. These tests use the real clock (cv
/// waits need real time) but assert only semantics, never timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/channel.hpp"
#include "test_support.hpp"

namespace stampede {
namespace {

using test::Env;
using test::never_stop;

// Give a peer thread time to park in a cv wait. Timing here only makes
// the blocked path likely — correctness never depends on it.
void let_peer_block() { std::this_thread::sleep_for(std::chrono::milliseconds(25)); }

TEST(ChannelWakeup, PutWakesBlockedGetter) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel();
  ch->register_producer(100);
  const int c = ch->register_consumer(200, 0);

  std::shared_ptr<const Item> got;
  std::thread consumer([&] {
    got = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).item;
  });
  let_peer_block();
  ASSERT_TRUE(ch->put(env.make_item(7), never_stop()).stored);
  consumer.join();

  ASSERT_TRUE(got);
  EXPECT_EQ(7, got->ts());
}

TEST(ChannelWakeup, GetReclaimFreesBlockedPutter) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel({.name = "b1", .capacity = 1});
  ch->register_producer(100);
  const int c = ch->register_consumer(200, 0);

  ASSERT_TRUE(ch->put(env.make_item(0), never_stop()).stored);
  Channel::PutResult second;
  std::thread producer(
      [&] { second = ch->put(env.make_item(1), never_stop()); });
  let_peer_block();

  // get_latest consumes ts=0 and raises this consumer's guarantee to 1,
  // so the entry is reclaimed in the same call — which must notify the
  // parked producer.
  const auto first = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  ASSERT_TRUE(first.item);
  EXPECT_EQ(0, first.item->ts());

  producer.join();
  EXPECT_TRUE(second.stored);
  const auto after = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  ASSERT_TRUE(after.item);
  EXPECT_EQ(1, after.item->ts());
}

TEST(ChannelWakeup, ReclaimWakesEveryBlockedPutter) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel({.name = "b2", .capacity = 2});
  ch->register_producer(100);
  ch->register_producer(101);
  const int c = ch->register_consumer(200, 0);

  ASSERT_TRUE(ch->put(env.make_item(0), never_stop()).stored);
  ASSERT_TRUE(ch->put(env.make_item(1), never_stop()).stored);

  // Two producers park on the full channel — the notify path must use
  // notify_all here (waiters_ == 2), or one of them would hang.
  Channel::PutResult r2, r3;
  std::thread p2([&] { r2 = ch->put(env.make_item(2), never_stop()); });
  std::thread p3([&] { r3 = ch->put(env.make_item(3), never_stop()); });
  let_peer_block();

  // One get: skips ts=0, consumes ts=1, guarantee -> 2; DGC reclaims both
  // stored entries at once, freeing two slots for the two waiters.
  const auto got = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  ASSERT_TRUE(got.item);
  EXPECT_EQ(1, got.item->ts());
  EXPECT_EQ(1, got.skipped);

  p2.join();
  p3.join();
  EXPECT_TRUE(r2.stored);
  EXPECT_TRUE(r3.stored);
  EXPECT_EQ(2u, ch->size());
  EXPECT_EQ(3, ch->latest_ts());
}

TEST(ChannelWakeup, CloseWakesAllBlockedGetters) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel();
  ch->register_producer(100);
  const int c0 = ch->register_consumer(200, 0);
  const int c1 = ch->register_consumer(201, 0);
  const int c2 = ch->register_consumer(202, 0);

  std::atomic<int> null_results{0};
  std::thread t0([&] {
    if (!ch->get_latest(c0, aru::kUnknownStp, kNoTimestamp, never_stop()).item) {
      null_results.fetch_add(1);
    }
  });
  std::thread t1([&] {
    if (!ch->get_next(c1, aru::kUnknownStp, kNoTimestamp, never_stop()).item) {
      null_results.fetch_add(1);
    }
  });
  std::thread t2([&] {
    if (!ch->get_latest(c2, aru::kUnknownStp, kNoTimestamp, never_stop()).item) {
      null_results.fetch_add(1);
    }
  });
  let_peer_block();
  ch->close();
  t0.join();
  t1.join();
  t2.join();
  EXPECT_EQ(3, null_results.load());
}

TEST(ChannelWakeup, CloseWakesBlockedPutter) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel({.name = "b3", .capacity = 1});
  ch->register_producer(100);
  ch->register_consumer(200, 0);

  ASSERT_TRUE(ch->put(env.make_item(0), never_stop()).stored);
  Channel::PutResult blocked;
  std::thread producer(
      [&] { blocked = ch->put(env.make_item(1), never_stop()); });
  let_peer_block();
  ch->close();
  producer.join();
  EXPECT_FALSE(blocked.stored) << "a put released by close() must not store";
  EXPECT_EQ(1u, ch->size()) << "the pre-close item stays for draining";
}

}  // namespace
}  // namespace stampede
