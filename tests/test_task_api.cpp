/// \file test_task_api.cpp
/// \brief TaskContext surface: access modes from tasks, release_until,
///        compute accounting/dilation, monitor gauges, error paths.
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "stats/postmortem.hpp"

namespace stampede {
namespace {

TaskBody counting_source(std::shared_ptr<std::atomic<Timestamp>> produced,
                         Nanos cost = millis(1), std::size_t bytes = 1024) {
  return [=](TaskContext& ctx) {
    ctx.compute(cost);
    const Timestamp ts = produced->fetch_add(1);
    ctx.put(0, ctx.make_item(ts, bytes, {}));
    return TaskStatus::kContinue;
  };
}

TEST(TaskApi, GetNextSeesEveryItemInOrder) {
  Runtime rt;
  Channel& ch = rt.add_channel({.name = "ch"});
  auto produced = std::make_shared<std::atomic<Timestamp>>(0);
  auto seen = std::make_shared<std::vector<Timestamp>>();
  TaskContext& src = rt.add_task({.name = "src", .body = counting_source(produced)});
  TaskContext& snk = rt.add_task({.name = "snk", .body = [seen](TaskContext& ctx) {
                                    auto in = ctx.get_next(0);
                                    if (!in) return TaskStatus::kDone;
                                    seen->push_back(in->ts());
                                    return TaskStatus::kContinue;
                                  }});
  rt.connect(src, ch);
  rt.connect(ch, snk);
  rt.start();
  rt.clock().sleep_for(millis(250));
  rt.stop();

  ASSERT_GT(seen->size(), 20u);
  for (std::size_t i = 0; i < seen->size(); ++i) {
    EXPECT_EQ((*seen)[i], static_cast<Timestamp>(i));  // no skips, in order
  }
}

TEST(TaskApi, GetWindowFromTask) {
  Runtime rt;
  Channel& ch = rt.add_channel({.name = "ch"});
  auto produced = std::make_shared<std::atomic<Timestamp>>(0);
  auto max_window = std::make_shared<std::atomic<std::size_t>>(0);
  TaskContext& src = rt.add_task({.name = "src", .body = counting_source(produced)});
  TaskContext& snk = rt.add_task({.name = "snk", .body = [max_window](TaskContext& ctx) {
                                    const auto window = ctx.get_window(0, 3);
                                    if (window.empty()) return TaskStatus::kDone;
                                    // Ascending timestamps inside the window.
                                    for (std::size_t i = 1; i < window.size(); ++i) {
                                      EXPECT_LT(window[i - 1]->ts(), window[i]->ts());
                                    }
                                    std::size_t cur = max_window->load();
                                    while (window.size() > cur &&
                                           !max_window->compare_exchange_weak(cur, window.size())) {
                                    }
                                    ctx.compute(millis(4));
                                    return TaskStatus::kContinue;
                                  }});
  rt.connect(src, ch);
  rt.connect(ch, snk);
  rt.start();
  rt.clock().sleep_for(millis(300));
  rt.stop();
  EXPECT_EQ(max_window->load(), 3u);
}

TEST(TaskApi, GetAtAndReleaseUntil) {
  Runtime rt;
  Channel& frames = rt.add_channel({.name = "frames"});
  Channel& hints = rt.add_channel({.name = "hints"});
  auto produced = std::make_shared<std::atomic<Timestamp>>(0);
  auto refetched = std::make_shared<std::atomic<int>>(0);

  // Source publishes frames AND hint records referencing them.
  TaskContext& src = rt.add_task({.name = "src", .body = [produced](TaskContext& ctx) {
                                    ctx.compute(millis(1));
                                    const Timestamp ts = produced->fetch_add(1);
                                    ctx.put(0, ctx.make_item(ts, 2048, {}));
                                    ctx.put(1, ctx.make_item(ts, 16, {}));
                                    return TaskStatus::kContinue;
                                  }});
  // Consumer follows hints, random-accesses the matching frame, and
  // releases older frames.
  TaskContext& snk = rt.add_task({.name = "snk", .body = [refetched](TaskContext& ctx) {
                                    auto hint = ctx.get(0);
                                    if (!hint) return TaskStatus::kDone;
                                    auto frame = ctx.get_at(1, hint->ts());
                                    ctx.release_until(1, hint->ts());
                                    if (frame) {
                                      EXPECT_EQ(frame->ts(), hint->ts());
                                      refetched->fetch_add(1);
                                    }
                                    ctx.compute(millis(3));
                                    return TaskStatus::kContinue;
                                  }});
  rt.connect(src, frames);
  rt.connect(src, hints);
  rt.connect(hints, snk);   // input 0
  rt.connect(frames, snk);  // input 1 (random access)
  rt.start();
  rt.clock().sleep_for(millis(300));
  const std::size_t frames_stored = frames.size();
  rt.stop();

  EXPECT_GT(refetched->load(), 10);
  // release_until keeps the random-access channel bounded.
  EXPECT_LT(frames_stored, 30u);
}

TEST(TaskApi, ComputeDilationInflatesCost) {
  RuntimeConfig cfg;
  cfg.pressure.compute_dilation_per_mb = 1.0;  // +100% per resident MB
  Runtime rt(cfg);
  Channel& ch = rt.add_channel({.name = "ch"});
  auto elapsed = std::make_shared<std::atomic<std::int64_t>>(0);
  // One task allocates 4 MB then computes 20 ms: dilation ~5x.
  TaskContext& t = rt.add_task({.name = "t", .body = [elapsed](TaskContext& ctx) {
                                  auto big = ctx.make_item(0, 4 * 1024 * 1024, {});
                                  const Nanos t0 = ctx.now();
                                  ctx.compute(millis(20));
                                  elapsed->store((ctx.now() - t0).count());
                                  ctx.put(0, big);
                                  return TaskStatus::kDone;
                                }});
  rt.connect(t, ch);
  rt.start();
  rt.clock().sleep_for(millis(250));
  rt.stop();
  EXPECT_GE(elapsed->load(), millis(90).count());  // ~5x 20ms
}

TEST(TaskApi, MonitorRecordsGauges) {
  RuntimeConfig cfg;
  cfg.monitor_period = millis(10);
  Runtime rt(cfg);
  Channel& ch = rt.add_channel({.name = "ch"});
  auto produced = std::make_shared<std::atomic<Timestamp>>(0);
  TaskContext& src = rt.add_task({.name = "src", .body = counting_source(produced)});
  TaskContext& snk = rt.add_task({.name = "snk", .body = [](TaskContext& ctx) {
                                    auto in = ctx.get(0);
                                    return in ? TaskStatus::kContinue : TaskStatus::kDone;
                                  }});
  rt.connect(src, ch);
  rt.connect(ch, snk);
  rt.start();
  rt.clock().sleep_for(millis(200));
  rt.stop();
  const NodeId ch_id = ch.id();  // channels are destroyed by take_trace()
  const auto trace = rt.take_trace();
  const stats::Analyzer analyzer(trace);

  const auto channel_gauges = analyzer.gauge_series(ch_id);
  const auto global_gauges = analyzer.gauge_series(kNoNode);
  EXPECT_GE(channel_gauges.size(), 5u);
  EXPECT_GE(global_gauges.size(), 5u);
  // Peak gauge must never be below the concurrent total.
  for (const auto& g : global_gauges) EXPECT_GE(g.aux, g.value);
}

TEST(TaskApi, ErrorPathsThrow) {
  Runtime rt;
  Channel& ch = rt.add_channel({.name = "ch"});
  Queue& q = rt.add_queue({.name = "q"});
  auto body = [](TaskContext& ctx) {
    EXPECT_THROW(ctx.get(5), std::out_of_range);
    EXPECT_THROW(ctx.get_next(9), std::out_of_range);
    EXPECT_THROW(ctx.put(7, ctx.make_item(0, 8, {})), std::out_of_range);
    EXPECT_THROW(ctx.put(0, nullptr), std::invalid_argument);
    EXPECT_THROW(ctx.release_until(5, 0), std::out_of_range);
    // Queue input: channel-only modes must be rejected.
    EXPECT_THROW(ctx.get_next(1), std::logic_error);
    EXPECT_THROW(ctx.get_at(1, 0), std::logic_error);
    EXPECT_THROW(ctx.get_window(1, 2), std::logic_error);
    EXPECT_THROW(ctx.release_until(1, 0), std::logic_error);
    return TaskStatus::kDone;
  };
  TaskContext& t = rt.add_task({.name = "t", .body = body});
  TaskContext& filler = rt.add_task({.name = "filler", .body = [](TaskContext& ctx) {
                                       ctx.put(0, ctx.make_item(0, 8, {}));
                                       ctx.put(1, ctx.make_item(0, 8, {}));
                                       return TaskStatus::kDone;
                                     }});
  rt.connect(filler, ch);
  rt.connect(filler, q);
  rt.connect(ch, t);  // input 0: channel
  rt.connect(q, t);   // input 1: queue
  rt.start();
  rt.clock().sleep_for(millis(80));
  rt.stop();
}

TEST(TaskApi, SchedulerNoiseStretchesSomeIterations) {
  // Counts iterations whose measured STP spiked above 10 ms (base cost is
  // 2 ms) — robust against background load on the host, unlike comparing
  // maxima.
  auto spikes_under = [](SchedulerNoise noise) {
    RuntimeConfig cfg;
    cfg.aru.mode = aru::Mode::kMin;
    cfg.sched_noise = noise;
    cfg.seed = 11;
    Runtime rt(cfg);
    Channel& ch = rt.add_channel({.name = "ch"});
    TaskContext& src = rt.add_task({.name = "src", .body = [](TaskContext& ctx) {
                                      static thread_local Timestamp ts = 0;
                                      ctx.compute(millis(2));
                                      ctx.put(0, ctx.make_item(ts++, 64, {}));
                                      return TaskStatus::kContinue;
                                    }});
    TaskContext& snk = rt.add_task({.name = "snk", .body = [](TaskContext& ctx) {
                                      auto in = ctx.get(0);
                                      return in ? TaskStatus::kContinue : TaskStatus::kDone;
                                    }});
    rt.connect(src, ch);
    rt.connect(ch, snk);
    rt.start();
    rt.clock().sleep_for(millis(400));
    rt.stop();
    const auto trace = rt.take_trace();
    std::int64_t spikes = 0;
    for (const auto& e : trace.events) {
      if (e.type == stats::EventType::kStp && e.node == src.id() &&
          e.a > millis(10).count()) {
        ++spikes;
      }
    }
    return spikes;
  };
  const std::int64_t clean = spikes_under({});
  const std::int64_t noisy = spikes_under({.preempt_prob = 0.3, .slice_mean = millis(15)});
  // Preemption bursts must produce the paper's "intermittent large
  // summary-STP values" on a meaningful fraction of iterations; the clean
  // run may spike occasionally from real host jitter, but far less often.
  EXPECT_GE(noisy, 10);
  EXPECT_GT(noisy, clean * 3);
}

TEST(TaskApi, AccountComputeCountsWithoutSleeping) {
  Runtime rt;
  Channel& ch = rt.add_channel({.name = "ch"});
  TaskContext& t = rt.add_task({.name = "t", .body = [](TaskContext& ctx) {
                                  ctx.account_compute(millis(500));  // no wall time
                                  ctx.put(0, ctx.make_item(0, 8, {}));
                                  return TaskStatus::kDone;
                                }});
  rt.connect(t, ch);
  rt.start();
  rt.clock().sleep_for(millis(60));
  rt.stop();
  const auto trace = rt.take_trace();
  // The item's produce_cost carries the accounted 500 ms.
  ASSERT_FALSE(trace.items.empty());
  EXPECT_EQ(trace.items[0].produce_cost, millis(500).count());
}

}  // namespace
}  // namespace stampede
