#include "core/stp.hpp"

#include <gtest/gtest.h>

namespace stampede::aru {
namespace {

TEST(StpMeter, MeasuresPlainIterationTime) {
  StpMeter m;
  m.begin_iteration(millis(100));
  const Nanos stp = m.end_iteration(millis(112));
  EXPECT_EQ(stp, millis(12));
  EXPECT_EQ(m.current_stp(), millis(12));
  EXPECT_EQ(m.last_period(), millis(12));
  EXPECT_EQ(m.iterations(), 1);
}

// Paper Fig. 2: blocking time waiting on upstream data is NOT part of the
// sustainable thread period.
TEST(StpMeter, BlockingIsExcluded) {
  StpMeter m;
  m.begin_iteration(Nanos{0});
  m.add_blocked(millis(30));
  const Nanos stp = m.end_iteration(millis(40));
  EXPECT_EQ(stp, millis(10));
  EXPECT_EQ(m.last_period(), millis(40));
}

TEST(StpMeter, PacedSleepIsExcluded) {
  StpMeter m;
  m.begin_iteration(Nanos{0});
  m.add_paced_sleep(millis(5));
  EXPECT_EQ(m.end_iteration(millis(12)), millis(7));
}

TEST(StpMeter, NegativeResultClampsToZero) {
  StpMeter m;
  m.begin_iteration(Nanos{0});
  m.add_blocked(millis(20));
  EXPECT_EQ(m.end_iteration(millis(10)), Nanos{0});
}

TEST(StpMeter, NonPositiveAccumulationsIgnored) {
  StpMeter m;
  m.begin_iteration(Nanos{0});
  m.add_blocked(Nanos{-5});
  m.add_paced_sleep(Nanos{0});
  EXPECT_EQ(m.end_iteration(millis(3)), millis(3));
}

TEST(StpMeter, EndWithoutBeginThrows) {
  StpMeter m;
  EXPECT_THROW(m.end_iteration(millis(1)), std::logic_error);
}

TEST(StpMeter, BlockedResetsBetweenIterations) {
  StpMeter m;
  m.begin_iteration(Nanos{0});
  m.add_blocked(millis(8));
  m.end_iteration(millis(10));
  m.begin_iteration(millis(10));
  EXPECT_EQ(m.end_iteration(millis(15)), millis(5));
  EXPECT_EQ(m.iterations(), 2);
}

TEST(StpMeter, TracksIterationStart) {
  StpMeter m;
  m.begin_iteration(millis(42));
  EXPECT_EQ(m.iteration_start(), millis(42));
}

}  // namespace
}  // namespace stampede::aru
