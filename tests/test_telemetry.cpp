#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "telemetry/exporter.hpp"
#include "util/time.hpp"

namespace stampede::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(Counter, SumsAcrossStripes) {
  Registry reg;
  Counter& c = reg.counter("t_total", "test counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriterWins) {
  Registry reg;
  Gauge& g = reg.gauge("t_gauge", "test gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, CumulativeBucketsAndOverflow) {
  Registry reg;
  const std::int64_t bounds[] = {10, 100, 1000};
  Histogram& h = reg.histogram("t_hist", "test histogram", bounds);
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (bound is inclusive)
  h.observe(11);    // <= 100
  h.observe(5000);  // +Inf overflow bucket
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.cumulative[0], 2u);  // le=10
  EXPECT_EQ(snap.cumulative[1], 3u);  // le=100
  EXPECT_EQ(snap.cumulative[2], 3u);  // le=1000
  EXPECT_EQ(snap.cumulative[3], 4u);  // +Inf == count
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5 + 10 + 11 + 5000);
}

TEST(Registry, RegistrationIsIdempotent) {
  Registry reg;
  Counter& a = reg.counter("dup_total", "same series");
  Counter& b = reg.counter("dup_total", "same series");
  EXPECT_EQ(&a, &b);
  // Distinct labels are a distinct series.
  Counter& c = reg.counter("dup_total", "same series", {{"ch", "frames"}});
  EXPECT_NE(&a, &c);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("kind_clash", "registered as counter");
  EXPECT_THROW(reg.gauge("kind_clash", "now as gauge"), std::logic_error);
}

TEST(Registry, PrometheusRenderCoversAllKinds) {
  Registry reg;
  reg.counter("t_evts_total", "events", {{"ch", "frames"}}).add(3);
  reg.gauge("t_occ", "occupancy").set(12);
  const std::int64_t bounds[] = {10, 100};
  Histogram& h = reg.histogram("t_lat_ns", "latency", bounds);
  h.observe(7);
  h.observe(70);
  reg.polled_counter("t_polled_total", "polled counter", {}, [] { return 5.0; });
  reg.polled_gauge("t_ratio", "polled gauge", {}, [] { return 0.25; });

  const std::string out = reg.render_prometheus();
  EXPECT_NE(out.find("# HELP t_evts_total events"), std::string::npos);
  EXPECT_NE(out.find("# TYPE t_evts_total counter"), std::string::npos);
  EXPECT_NE(out.find("t_evts_total{ch=\"frames\"} 3"), std::string::npos);
  EXPECT_NE(out.find("t_occ 12"), std::string::npos);
  EXPECT_NE(out.find("# TYPE t_lat_ns histogram"), std::string::npos);
  EXPECT_NE(out.find("t_lat_ns_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(out.find("t_lat_ns_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(out.find("t_lat_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(out.find("t_lat_ns_sum 77"), std::string::npos);
  EXPECT_NE(out.find("t_lat_ns_count 2"), std::string::npos);
  EXPECT_NE(out.find("t_polled_total 5"), std::string::npos);
  EXPECT_NE(out.find("t_ratio 0.25"), std::string::npos);
}

TEST(Registry, StatusSectionsRenderAndUnregister) {
  Registry reg;
  const std::uint64_t h = reg.add_status("pipeline", [] { return std::string("{\"n\":3}"); });
  std::string out = reg.render_status();
  EXPECT_NE(out.find("\"pipeline\":{\"n\":3}"), std::string::npos);
  reg.remove_status(h);
  out = reg.render_status();
  EXPECT_EQ(out.find("pipeline"), std::string::npos);
}

TEST(Registry, ExpositionBlocksAppendAndUnregister) {
  Registry reg;
  reg.counter("own_total", "local series").add(1);
  const std::uint64_t h = reg.add_exposition(
      [] { return std::string("fleet_up{node=\"mid\"} 1"); });
  std::string out = reg.render_prometheus();
  // Appended after the registry's own series, newline-terminated even
  // though the callback did not end with one.
  const std::size_t own = out.find("own_total 1\n");
  const std::size_t block = out.find("fleet_up{node=\"mid\"} 1\n");
  EXPECT_NE(own, std::string::npos) << out;
  EXPECT_NE(block, std::string::npos) << out;
  EXPECT_LT(own, block);
  EXPECT_EQ(out.back(), '\n');
  reg.remove_exposition(h);
  out = reg.render_prometheus();
  EXPECT_EQ(out.find("fleet_up"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

// ---------------------------------------------------------------------------
// Concurrency: hammer writers while a reader snapshots (run under TSan in CI)
// ---------------------------------------------------------------------------

TEST(RegistryStress, CountersExactAndMonotoneUnderContention) {
  Registry reg;
  Counter& c = reg.counter("mt_total", "contended counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::uint64_t last = 0;
  bool monotone = true;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t v = c.value();
      if (v < last) monotone = false;
      last = v;
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(monotone);
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(RegistryStress, HistogramSnapshotsStayCoherent) {
  Registry reg;
  const std::int64_t bounds[] = {8, 64, 512};
  Histogram& h = reg.histogram("mt_hist", "contended histogram", bounds);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const Histogram::Snapshot snap = h.snapshot();
      // The +Inf bucket is the total count, and cumulative counts never
      // decrease across buckets — even mid-write.
      EXPECT_EQ(snap.cumulative[3], snap.count);
      for (int b = 1; b <= 3; ++b) EXPECT_GE(snap.cumulative[b], snap.cumulative[b - 1]);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe((i * 7 + t) % 1024);
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryStress, RenderWhileWritersRun) {
  Registry reg;
  Counter& c = reg.counter("rw_total", "counter", {{"ch", "a"}});
  Gauge& g = reg.gauge("rw_gauge", "gauge");
  std::atomic<bool> done{false};
  std::thread writer([&] {
    std::int64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      c.add();
      g.set(++i);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const std::string out = reg.render_prometheus();
    EXPECT_NE(out.find("rw_total"), std::string::npos);
  }
  done.store(true, std::memory_order_release);
  writer.join();
}

// ---------------------------------------------------------------------------
// Exporter loopback
// ---------------------------------------------------------------------------

TEST(Exporter, ServesMetricsStatusAndHealth) {
  Registry reg;
  reg.counter("exp_total", "exported counter", {{"ch", "frames"}}).add(9);
  reg.add_status("answer", [] { return std::string("42"); });

  Exporter exp(reg, {});
  exp.start();
  ASSERT_GT(exp.port(), 0);

  const auto metrics = http_get("127.0.0.1", exp.port(), "/metrics", seconds(5));
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("exp_total{ch=\"frames\"} 9"), std::string::npos);

  const auto status = http_get("127.0.0.1", exp.port(), "/status", seconds(5));
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("\"answer\":42"), std::string::npos);

  const auto health = http_get("127.0.0.1", exp.port(), "/healthz", seconds(5));
  ASSERT_TRUE(health.has_value());
  EXPECT_NE(health->find("ok"), std::string::npos);

  // Unknown paths are a 404, surfaced as an empty optional by http_get.
  EXPECT_FALSE(http_get("127.0.0.1", exp.port(), "/nope", seconds(5)).has_value());

  exp.stop();
  exp.stop();  // idempotent
}

TEST(Exporter, SerialScrapesOnOneEndpoint) {
  Registry reg;
  Counter& c = reg.counter("scrape_total", "scrapes observed");
  Exporter exp(reg, {});
  exp.start();
  for (int i = 1; i <= 5; ++i) {
    c.add();
    const auto body = http_get("127.0.0.1", exp.port(), "/metrics", seconds(5));
    ASSERT_TRUE(body.has_value());
    EXPECT_NE(body->find("scrape_total " + std::to_string(i)), std::string::npos);
  }
  exp.stop();
}

// ---------------------------------------------------------------------------
// Runtime integration: a live pipeline served over metrics_port=0
// ---------------------------------------------------------------------------

TEST(RuntimeTelemetry, LivePipelineExposesBuiltinSeries) {
  RuntimeConfig cfg;
  cfg.aru.mode = aru::Mode::kMin;
  cfg.metrics_port = 0;
  Runtime rt(cfg);
  Channel& ch = rt.add_channel({.name = "frames"});
  TaskContext& src = rt.add_task({.name = "src", .body = [](TaskContext& ctx) {
                                    ctx.compute(millis(1));
                                    auto item = ctx.make_item(ctx.now().count(), 1024, {});
                                    ctx.put(0, item);
                                    return TaskStatus::kContinue;
                                  }});
  TaskContext& snk = rt.add_task({.name = "snk", .body = [](TaskContext& ctx) {
                                    auto in = ctx.get(0);
                                    if (!in) return TaskStatus::kDone;
                                    ctx.compute(millis(2));
                                    ctx.emit(*in);
                                    return TaskStatus::kContinue;
                                  }});
  rt.connect(src, ch);
  rt.connect(ch, snk);
  rt.start();
  const std::uint16_t port = rt.metrics_port();
  ASSERT_GT(port, 0);
  ASSERT_TRUE(rt.wait_emits(20, seconds(30)));

  const auto body = http_get("127.0.0.1", port, "/metrics", seconds(5));
  ASSERT_TRUE(body.has_value());
  for (const char* series :
       {"aru_channel_puts_total", "aru_channel_occupancy", "aru_channel_summary_stp_ns",
        "aru_task_summary_stp_ns", "aru_pool_hit_ratio", "aru_memory_total_bytes"}) {
    EXPECT_NE(body->find(series), std::string::npos) << "missing series: " << series;
  }
  // The pipeline has flowed, so the channel counted puts.
  EXPECT_NE(body->find("aru_channel_puts_total{channel=\"frames\"}"), std::string::npos);

  const auto status = http_get("127.0.0.1", port, "/status", seconds(5));
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("\"channels\""), std::string::npos);
  EXPECT_NE(status->find("\"frames\""), std::string::npos);

  rt.stop();
  // Stopped runtime no longer serves (the listener is closed).
  EXPECT_EQ(rt.metrics_port(), 0);
  EXPECT_FALSE(http_get("127.0.0.1", port, "/healthz", millis(500)).has_value());
}

TEST(RuntimeTelemetry, DisabledByDefault) {
  Runtime rt;
  Channel& ch = rt.add_channel({.name = "ch"});
  TaskContext& src = rt.add_task({.name = "src", .body = [](TaskContext& ctx) {
                                    auto item = ctx.make_item(0, 64, {});
                                    ctx.put(0, item);
                                    return TaskStatus::kDone;
                                  }});
  rt.connect(src, ch);
  rt.start();
  EXPECT_EQ(rt.metrics_port(), 0);
  rt.stop();
  // The registry still collected even with no endpoint.
  EXPECT_NE(rt.metrics().render_prometheus().find("aru_channel_puts_total"),
            std::string::npos);
}

}  // namespace
}  // namespace stampede::telemetry
