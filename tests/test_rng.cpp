#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace stampede {
namespace {

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(7);
  EXPECT_NE(a2.next(), c.next());
}

TEST(SplitMix64, ProducesDistinctValues) {
  SplitMix64 rng(1);
  const auto x = rng.next();
  const auto y = rng.next();
  EXPECT_NE(x, y);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, GaussianMomentsApproximatelyStandard) {
  Xoshiro256 rng(6);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace stampede
