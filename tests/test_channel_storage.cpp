/// \file test_channel_storage.cpp
/// \brief Randomized property test for the flat channel storage.
///
/// The channel replaced its std::map storage with a sorted deque plus an
/// incremental collector (frontier memoization + a dirty flag). Those are
/// pure representation changes: observable behavior must be identical to
/// the obvious map-based implementation. This test drives a channel and a
/// straightforward reference model with the same randomized interleaving
/// of put / get_latest / get_next / get_window / get_at / get_nearest /
/// raise_guarantee and checks, after every operation, that the returned
/// timestamps, occupancy, newest timestamp, and frontier all agree —
/// under both Transparent and Dead-Timestamp GC, with in-order,
/// out-of-order, and duplicate-timestamp puts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "test_support.hpp"

namespace stampede {
namespace {

using test::Env;
using test::never_stop;

/// Eager map-based model of the channel's storage semantics. Collects on
/// exactly the operations the channel collects on; the channel's
/// incremental bookkeeping must never be distinguishable from this.
class RefModel {
 public:
  RefModel(gc::Kind kind, int consumers)
      : gc_(kind), cursor_(consumers, kNoTimestamp), guarantee_(consumers, 0) {}

  Timestamp frontier() const {
    if (guarantee_.empty()) return std::numeric_limits<Timestamp>::max();
    return *std::min_element(guarantee_.begin(), guarantee_.end());
  }

  /// Returns true when the item is stored (not dead on arrival).
  bool put(Timestamp ts) {
    const bool dead =
        gc_ == gc::Kind::kDeadTimestamp && !cursor_.empty() && ts < frontier();
    if (!dead) entries_[ts] = RefEntry{};  // overwrite resets masks
    collect();
    return !dead;
  }

  bool has_newer(int c) const {
    return !entries_.empty() && entries_.rbegin()->first > cursor_[static_cast<std::size_t>(c)];
  }

  Timestamp get_latest(int c) {
    const std::uint64_t bit = 1ULL << c;
    const Timestamp target = entries_.rbegin()->first;
    for (auto it = entries_.upper_bound(cursor_[static_cast<std::size_t>(c)]);
         it != entries_.end() && it->first < target; ++it) {
      if ((it->second.consumed & bit) == 0) it->second.skipped |= bit;
    }
    entries_.rbegin()->second.consumed |= bit;
    cursor_[static_cast<std::size_t>(c)] = target;
    raise(c, target + 1);
    collect();
    return target;
  }

  Timestamp get_next(int c) {
    const std::uint64_t bit = 1ULL << c;
    auto it = entries_.upper_bound(cursor_[static_cast<std::size_t>(c)]);
    const Timestamp target = it->first;
    it->second.consumed |= bit;
    cursor_[static_cast<std::size_t>(c)] = target;
    raise(c, target + 1);
    collect();
    return target;
  }

  /// Returns the window's timestamps, ascending (what get_window delivers).
  std::vector<Timestamp> get_window(int c, std::size_t window) {
    const std::uint64_t bit = 1ULL << c;
    const Timestamp target = entries_.rbegin()->first;
    const std::size_t count = std::min(window, entries_.size());
    auto first = entries_.end();
    for (std::size_t i = 0; i < count; ++i) --first;
    const Timestamp window_tail = first->first;

    // Entries strictly before the window tail are the ones the real
    // channel's `i < first` loop visits (the cursor may already be inside
    // the window, in which case nothing is marked).
    for (auto it = entries_.upper_bound(cursor_[static_cast<std::size_t>(c)]);
         it != entries_.end() && it->first < window_tail; ++it) {
      if ((it->second.consumed & bit) == 0) it->second.skipped |= bit;
    }
    entries_.rbegin()->second.consumed |= bit;
    cursor_[static_cast<std::size_t>(c)] = target;
    raise(c, window_tail);

    std::vector<Timestamp> out;
    for (auto it = first; it != entries_.end(); ++it) out.push_back(it->first);
    collect();
    return out;
  }

  /// kNoTimestamp when absent (get_at does not collect).
  Timestamp get_at(int c, Timestamp ts) {
    auto it = entries_.find(ts);
    if (it == entries_.end()) return kNoTimestamp;
    it->second.consumed |= 1ULL << c;
    return ts;
  }

  /// kNoTimestamp when nothing is within tolerance (does not collect).
  Timestamp get_nearest(int c, Timestamp ts, Timestamp tolerance) {
    auto best = entries_.end();
    Timestamp best_dist = 0;
    auto consider = [&](std::map<Timestamp, RefEntry>::iterator it) {
      if (it == entries_.end()) return;
      const Timestamp dist = it->first >= ts ? it->first - ts : ts - it->first;
      if (dist > tolerance) return;
      if (best == entries_.end() || dist < best_dist ||
          (dist == best_dist && it->first > best->first)) {
        best = it;
        best_dist = dist;
      }
    };
    auto after = entries_.lower_bound(ts);
    consider(after);
    if (after != entries_.begin()) consider(std::prev(after));
    if (best == entries_.end()) return kNoTimestamp;
    best->second.consumed |= 1ULL << c;
    return best->first;
  }

  void raise_guarantee(int c, Timestamp g) {
    raise(c, g);
    const std::uint64_t bit = 1ULL << c;
    for (auto it = entries_.begin(); it != entries_.end() && it->first < g; ++it) {
      if ((it->second.consumed & bit) == 0) it->second.skipped |= bit;
    }
    collect();
  }

  std::size_t size() const { return entries_.size(); }
  Timestamp latest() const {
    return entries_.empty() ? kNoTimestamp : entries_.rbegin()->first;
  }

 private:
  struct RefEntry {
    std::uint64_t consumed = 0;
    std::uint64_t skipped = 0;
  };

  void raise(int c, Timestamp g) {
    Timestamp& cur = guarantee_[static_cast<std::size_t>(c)];
    cur = std::max(cur, g);
  }

  void collect() {
    const Timestamp f = frontier();
    const std::uint64_t all = (1ULL << cursor_.size()) - 1;
    for (auto it = entries_.begin(); it != entries_.end() && it->first < f;) {
      const std::uint64_t passed = it->second.consumed | it->second.skipped;
      const bool collectible =
          gc_ == gc::Kind::kDeadTimestamp || (passed & all) == all;
      it = collectible ? entries_.erase(it) : std::next(it);
    }
  }

  gc::Kind gc_;
  std::map<Timestamp, RefEntry> entries_;
  std::vector<Timestamp> cursor_;
  std::vector<Timestamp> guarantee_;
};

constexpr int kConsumers = 3;
constexpr int kOps = 4000;

void run_interleaving(gc::Kind kind, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "gc=" << gc::to_string(kind) << " seed=" << seed);
  Env env;
  env.ctx.gc = kind;
  auto ch = env.make_channel();
  ch->register_producer(2000);
  for (int c = 0; c < kConsumers; ++c) {
    ASSERT_EQ(c, ch->register_consumer(3000 + c, 0));
  }
  RefModel model(kind, kConsumers);

  std::mt19937_64 rng(seed);
  Timestamp next_ts = 0;

  const auto put = [&] {
    // Mostly monotonic timestamps with occasional gaps, out-of-order
    // inserts, and duplicates — all three storage paths.
    Timestamp ts;
    const int kind_roll = static_cast<int>(rng() % 10);
    if (kind_roll < 7 || next_ts == 0) {
      ts = next_ts;
      next_ts += 1 + static_cast<Timestamp>(rng() % 3);
    } else if (kind_roll < 9) {
      ts = std::max<Timestamp>(0, next_ts - 1 - static_cast<Timestamp>(rng() % 12));
    } else {
      ts = std::max<Timestamp>(0, next_ts - 1);  // likely duplicate
    }
    const bool want_stored = model.put(ts);
    const auto result = ch->put(env.make_item(ts), never_stop());
    ASSERT_EQ(want_stored, result.stored) << "put ts=" << ts;
  };

  for (int op = 0; op < kOps; ++op) {
    const int c = static_cast<int>(rng() % kConsumers);
    switch (rng() % 8) {
      case 0:
      case 1:
        put();
        break;
      case 2: {
        if (!model.has_newer(c)) break;  // would block
        const Timestamp want = model.get_latest(c);
        const auto result = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
        ASSERT_TRUE(result.item);
        ASSERT_EQ(want, result.item->ts());
        break;
      }
      case 3: {
        if (!model.has_newer(c)) break;
        const Timestamp want = model.get_next(c);
        const auto result = ch->get_next(c, aru::kUnknownStp, kNoTimestamp, never_stop());
        ASSERT_TRUE(result.item);
        ASSERT_EQ(want, result.item->ts());
        break;
      }
      case 4: {
        if (!model.has_newer(c)) break;
        const std::size_t window = 1 + rng() % 5;
        const std::vector<Timestamp> want = model.get_window(c, window);
        const auto result = ch->get_window(c, window, aru::kUnknownStp, never_stop());
        ASSERT_EQ(want.size(), result.items.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(want[i], result.items[i]->ts()) << "window position " << i;
        }
        break;
      }
      case 5: {
        const Timestamp probe = static_cast<Timestamp>(rng() % (next_ts + 1));
        const Timestamp want = model.get_at(c, probe);
        const auto result = ch->get_at(c, probe, aru::kUnknownStp);
        ASSERT_EQ(want != kNoTimestamp, result.item != nullptr) << "probe ts=" << probe;
        if (result.item) {
          ASSERT_EQ(want, result.item->ts());
        }
        break;
      }
      case 6: {
        const Timestamp probe = static_cast<Timestamp>(rng() % (next_ts + 1));
        const Timestamp tolerance = static_cast<Timestamp>(rng() % 6);
        const Timestamp want = model.get_nearest(c, probe, tolerance);
        const auto result = ch->get_nearest(c, probe, tolerance, aru::kUnknownStp);
        ASSERT_EQ(want != kNoTimestamp, result.item != nullptr)
            << "probe ts=" << probe << " tol=" << tolerance;
        if (result.item) {
          ASSERT_EQ(want, result.item->ts());
        }
        break;
      }
      case 7: {
        const Timestamp g = static_cast<Timestamp>(rng() % (next_ts + 2));
        model.raise_guarantee(c, g);
        ch->raise_guarantee(c, g);
        break;
      }
    }
    // After every operation the channel must be indistinguishable from the
    // eager model: same occupancy, same newest timestamp, same frontier.
    ASSERT_EQ(model.size(), ch->size()) << "after op " << op;
    ASSERT_EQ(model.latest(), ch->latest_ts()) << "after op " << op;
    ASSERT_EQ(model.frontier(), ch->frontier()) << "after op " << op;
  }
}

TEST(ChannelStorageProperty, MatchesReferenceModelUnderTransparentGc) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    run_interleaving(gc::Kind::kTransparent, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ChannelStorageProperty, MatchesReferenceModelUnderDeadTimestampGc) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    run_interleaving(gc::Kind::kDeadTimestamp, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace stampede
