#include "util/filters.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.hpp"

namespace stampede {
namespace {

TEST(Passthrough, ReturnsInput) {
  PassthroughFilter f;
  EXPECT_EQ(f.push(3.5), 3.5);
  EXPECT_EQ(f.value(), 3.5);
  f.reset();
  EXPECT_EQ(f.value(), 0.0);
}

TEST(Ema, FirstSamplePrimes) {
  EmaFilter f(0.5);
  EXPECT_EQ(f.push(10.0), 10.0);
  EXPECT_EQ(f.push(20.0), 15.0);
  EXPECT_EQ(f.push(20.0), 17.5);
}

TEST(Ema, AlphaOneIsPassthrough) {
  EmaFilter f(1.0);
  EXPECT_EQ(f.push(1.0), 1.0);
  EXPECT_EQ(f.push(9.0), 9.0);
}

TEST(Ema, InvalidAlphaThrows) {
  EXPECT_THROW(EmaFilter(0.0), std::invalid_argument);
  EXPECT_THROW(EmaFilter(-0.1), std::invalid_argument);
  EXPECT_THROW(EmaFilter(1.5), std::invalid_argument);
}

TEST(Ema, SmoothsNoiseTowardMean) {
  EmaFilter f(0.1);
  Xoshiro256 rng(9);
  double last = 0;
  for (int i = 0; i < 5000; ++i) last = f.push(50.0 + rng.uniform(-10, 10));
  EXPECT_NEAR(last, 50.0, 3.0);
}

TEST(Median, RejectsSingleSpike) {
  MedianFilter f(5);
  for (const double x : {10.0, 10.0, 10.0, 10.0}) f.push(x);
  // A single outlier must not move the median.
  EXPECT_EQ(f.push(1000.0), 10.0);
}

TEST(Median, EvenWindowAveragesMiddlePair) {
  MedianFilter f(4);
  f.push(1);
  f.push(2);
  EXPECT_DOUBLE_EQ(f.value(), 1.5);
}

TEST(Median, WindowSlides) {
  MedianFilter f(3);
  f.push(1);
  f.push(2);
  f.push(3);
  f.push(100);
  f.push(101);
  // window = {3, 100, 101}
  EXPECT_DOUBLE_EQ(f.value(), 100.0);
}

TEST(Median, ZeroWindowThrows) { EXPECT_THROW(MedianFilter(0), std::invalid_argument); }

TEST(SlidingMean, AveragesWindow) {
  SlidingMeanFilter f(3);
  f.push(3);
  f.push(6);
  EXPECT_DOUBLE_EQ(f.value(), 4.5);
  f.push(9);
  EXPECT_DOUBLE_EQ(f.value(), 6.0);
  f.push(12);  // window = {6, 9, 12}
  EXPECT_DOUBLE_EQ(f.value(), 9.0);
}

TEST(MakeFilter, ParsesAllSpecs) {
  EXPECT_EQ(make_filter("")->name(), "passthrough");
  EXPECT_EQ(make_filter("none")->name(), "passthrough");
  EXPECT_EQ(make_filter("median:7")->name(), "median:7");
  EXPECT_EQ(make_filter("mean:4")->name(), "mean:4");
  EXPECT_NE(make_filter("ema:0.5")->name().find("ema:0.5"), std::string::npos);
}

TEST(MakeFilter, DefaultsWhenArgOmitted) {
  EXPECT_EQ(make_filter("median")->name(), "median:5");
}

TEST(MakeFilter, UnknownSpecThrows) {
  EXPECT_THROW(make_filter("kalman:3"), std::invalid_argument);
}

// Property: every filter maps a constant signal to that constant.
class ConstantSignal : public ::testing::TestWithParam<const char*> {};

TEST_P(ConstantSignal, IsFixedPoint) {
  auto f = make_filter(GetParam());
  double last = 0;
  for (int i = 0; i < 50; ++i) last = f->push(42.0);
  EXPECT_DOUBLE_EQ(last, 42.0);
  f->reset();
  EXPECT_EQ(f->value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConstantSignal,
                         ::testing::Values("passthrough", "ema:0.3", "median:5", "mean:4"));

// Property: filter output stays within the input's observed range.
class RangePreserving : public ::testing::TestWithParam<const char*> {};

TEST_P(RangePreserving, OutputWithinInputRange) {
  auto f = make_filter(GetParam());
  Xoshiro256 rng(1234);
  for (int i = 0; i < 300; ++i) {
    const double out = f->push(rng.uniform(5.0, 15.0));
    ASSERT_GE(out, 5.0);
    ASSERT_LE(out, 15.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RangePreserving,
                         ::testing::Values("passthrough", "ema:0.25", "median:9", "mean:6"));

}  // namespace
}  // namespace stampede
