/// \file test_stereo.cpp
/// \brief Stereo rig rendering and disparity estimation.
#include "vision/stereo.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stampede::vision {
namespace {

TEST(StereoRig, LeftViewMatchesPlainScene) {
  StereoRig rig(5, 24);
  std::vector<std::byte> left(kFrameBytes), plain(kFrameBytes);
  rig.render_left(10, left, 4);
  rig.scene().render(10, plain, 4);
  EXPECT_EQ(left, plain);
}

TEST(StereoRig, RightViewShiftsBlobs) {
  StereoRig rig(5, 24);
  std::vector<std::byte> left(kFrameBytes), right(kFrameBytes);
  rig.render_left(10, left, 2);
  rig.render_right(10, right, 2);
  EXPECT_NE(left, right);

  // The blob center in the right view is displaced by ~baseline.
  const Scene s = rig.scene().scene_at(10);
  const ConstFrameView rv(right);
  // Snap to the stride-2 render grid (untouched pixels stay zero).
  const int shifted_x = ((static_cast<int>(s.blobs[0].cx) - rig.baseline_px()) / 2) * 2;
  const int cy = (static_cast<int>(s.blobs[0].cy) / 2) * 2;
  if (shifted_x >= 0 && shifted_x < kWidth) {
    const Rgb px = rv.get(shifted_x, cy);
    const Rgb model = rig.scene().model_color(0);
    EXPECT_EQ(px.r, model.r);
    EXPECT_EQ(px.g, model.g);
  }
}

TEST(EstimateDisparity, RecoversBaselineOnCorrespondingFrames) {
  StereoRig rig(7, 24);
  std::vector<std::byte> left(kFrameBytes), right(kFrameBytes);
  rig.render_left(20, left, 2);
  rig.render_right(20, right, 2);

  const DisparityEstimate est = estimate_disparity(
      ConstFrameView(left), ConstFrameView(right), rig.scene().model_color(0), 2);
  ASSERT_TRUE(est.found);
  EXPECT_NEAR(est.disparity_px, 24.0, 8.0);
}

TEST(EstimateDisparity, MismatchedTimestampsGiveWrongDisparity) {
  // The §1 point: stereo needs *corresponding* timestamps. Frames far
  // apart in time place the blob elsewhere, corrupting the estimate.
  StereoRig rig(7, 24);
  std::vector<std::byte> left(kFrameBytes), right(kFrameBytes);
  rig.render_left(20, left, 2);
  rig.render_right(90, right, 2);  // wrong timestamp

  const DisparityEstimate est = estimate_disparity(
      ConstFrameView(left), ConstFrameView(right), rig.scene().model_color(0), 2);
  if (est.found) {
    EXPECT_GT(std::abs(est.disparity_px - 24.0), 10.0);
  }
}

TEST(EstimateDisparity, NotFoundOnBlankFrames) {
  std::vector<std::byte> blank_l(kFrameBytes), blank_r(kFrameBytes);
  const DisparityEstimate est = estimate_disparity(
      ConstFrameView(blank_l), ConstFrameView(blank_r), Rgb{220, 40, 40}, 4);
  EXPECT_FALSE(est.found);
}

TEST(StereoRig, DeterministicAcrossInstances) {
  StereoRig a(3, 16), b(3, 16);
  std::vector<std::byte> fa(kFrameBytes), fb(kFrameBytes);
  a.render_right(4, fa, 4);
  b.render_right(4, fb, 4);
  EXPECT_EQ(fa, fb);
}

}  // namespace
}  // namespace stampede::vision
