#include "runtime/memory.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace stampede {
namespace {

TEST(MemoryTracker, TracksPerNodeAndTotal) {
  MemoryTracker m(3);
  m.on_alloc(0, 100);
  m.on_alloc(2, 50);
  EXPECT_EQ(m.node_bytes(0), 100);
  EXPECT_EQ(m.node_bytes(1), 0);
  EXPECT_EQ(m.node_bytes(2), 50);
  EXPECT_EQ(m.total_bytes(), 150);
}

TEST(MemoryTracker, FreeReducesCounts) {
  MemoryTracker m(1);
  m.on_alloc(0, 100);
  m.on_free(0, 40);
  EXPECT_EQ(m.total_bytes(), 60);
  EXPECT_EQ(m.node_bytes(0), 60);
}

TEST(MemoryTracker, PeakIsHighWaterMark) {
  MemoryTracker m(1);
  m.on_alloc(0, 100);
  m.on_free(0, 100);
  m.on_alloc(0, 30);
  EXPECT_EQ(m.peak_bytes(), 100);
}

TEST(MemoryTracker, InvalidConstructionThrows) {
  EXPECT_THROW(MemoryTracker(0), std::invalid_argument);
}

TEST(MemoryTracker, BadNodeThrows) {
  MemoryTracker m(2);
  EXPECT_THROW(m.on_alloc(2, 1), std::out_of_range);
  EXPECT_THROW(m.on_free(-1, 1), std::out_of_range);
  EXPECT_THROW(m.node_bytes(5), std::out_of_range);
}

TEST(MemoryTracker, ConcurrentAccountingIsExact) {
  MemoryTracker m(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < 2000; ++i) {
        m.on_alloc(t % 2, 8);
        m.on_free(t % 2, 4);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.total_bytes(), 4 * 2000 * 4);
  EXPECT_EQ(m.node_bytes(0) + m.node_bytes(1), m.total_bytes());
}

}  // namespace
}  // namespace stampede
