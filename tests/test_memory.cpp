#include "runtime/memory.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace stampede {
namespace {

TEST(MemoryTracker, TracksPerNodeAndTotal) {
  MemoryTracker m(3);
  m.on_alloc(0, 100);
  m.on_alloc(2, 50);
  EXPECT_EQ(m.node_bytes(0), 100);
  EXPECT_EQ(m.node_bytes(1), 0);
  EXPECT_EQ(m.node_bytes(2), 50);
  EXPECT_EQ(m.total_bytes(), 150);
}

TEST(MemoryTracker, FreeReducesCounts) {
  MemoryTracker m(1);
  m.on_alloc(0, 100);
  m.on_free(0, 40);
  EXPECT_EQ(m.total_bytes(), 60);
  EXPECT_EQ(m.node_bytes(0), 60);
}

TEST(MemoryTracker, PeakIsHighWaterMark) {
  MemoryTracker m(1);
  m.on_alloc(0, 100);
  m.on_free(0, 100);
  m.on_alloc(0, 30);
  EXPECT_EQ(m.peak_bytes(), 100);
}

TEST(MemoryTracker, InvalidConstructionThrows) {
  EXPECT_THROW(MemoryTracker(0), std::invalid_argument);
}

TEST(MemoryTracker, BadNodeThrows) {
  MemoryTracker m(2);
  EXPECT_THROW(m.on_alloc(2, 1), std::out_of_range);
  EXPECT_THROW(m.on_free(-1, 1), std::out_of_range);
  EXPECT_THROW(m.node_bytes(5), std::out_of_range);
}

TEST(MemoryTracker, PeakCasSurvivesContention) {
  // N threads hammer alloc/free: whatever the interleaving, the high-water
  // mark is at least one thread's live allocation and at most the sum of
  // all of them, and the peak CAS loop must never publish a stale lower
  // value or lose an update under contention.
  MemoryTracker m(1);
  constexpr int kThreads = 8;
  constexpr std::int64_t kBytes = 1 << 16;
  constexpr int kRounds = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < kRounds; ++i) {
        m.on_alloc(0, kBytes);
        m.on_free(0, kBytes);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.total_bytes(), 0);
  EXPECT_GE(m.peak_bytes(), kBytes);                 // someone's alloc was live
  EXPECT_LE(m.peak_bytes(), kThreads * kBytes);      // never above the sum
}

TEST(MemoryTracker, PoolCachedGaugeIsSeparate) {
  MemoryTracker m(1);
  m.on_alloc(0, 100);
  m.on_pool_cached(768 << 10);
  EXPECT_EQ(m.pool_cached_bytes(), 768 << 10);
  // Parked pool slabs are reuse inventory, not pressure: totals and peak
  // ignore them.
  EXPECT_EQ(m.total_bytes(), 100);
  EXPECT_EQ(m.peak_bytes(), 100);
  m.on_pool_cached(-(768 << 10));
  EXPECT_EQ(m.pool_cached_bytes(), 0);
}

TEST(MemoryTracker, ConcurrentAccountingIsExact) {
  MemoryTracker m(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < 2000; ++i) {
        m.on_alloc(t % 2, 8);
        m.on_free(t % 2, 4);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(m.total_bytes(), 4 * 2000 * 4);
  EXPECT_EQ(m.node_bytes(0) + m.node_bytes(1), m.total_bytes());
}

}  // namespace
}  // namespace stampede
