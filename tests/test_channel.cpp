#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "test_support.hpp"

namespace stampede {
namespace {

using test::Env;
using test::never_stop;

TEST(Channel, GetLatestReturnsNewestAndSkipsStale) {
  Env env;
  auto ch = env.make_channel();
  ch->register_producer(100);
  const int c = ch->register_consumer(200, 0);

  for (Timestamp ts = 0; ts < 4; ++ts) {
    ch->put(env.make_item(ts), never_stop());
  }
  const auto res = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  ASSERT_TRUE(res.item);
  EXPECT_EQ(res.item->ts(), 3);
  EXPECT_EQ(res.skipped, 3);
}

TEST(Channel, SecondGetSeesOnlyNewerItems) {
  Env env;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(0), never_stop());
  EXPECT_EQ(ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).item->ts(), 0);
  ch->put(env.make_item(1), never_stop());
  ch->put(env.make_item(2), never_stop());
  const auto res = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  EXPECT_EQ(res.item->ts(), 2);
  EXPECT_EQ(res.skipped, 1);
}

TEST(Channel, DgcFreesItemsAllConsumersPassed) {
  Env env;
  auto ch = env.make_channel();
  const int c0 = ch->register_consumer(200, 0);
  const int c1 = ch->register_consumer(201, 0);
  for (Timestamp ts = 0; ts < 3; ++ts) ch->put(env.make_item(ts), never_stop());
  EXPECT_EQ(ch->size(), 3u);

  ch->get_latest(c0, aru::kUnknownStp, kNoTimestamp, never_stop());
  EXPECT_EQ(ch->size(), 3u);  // consumer 1 has not passed yet
  ch->get_latest(c1, aru::kUnknownStp, kNoTimestamp, never_stop());
  // Both consumers passed ts 0..2; only the latest (consumed) entry may
  // remain below the frontier... all items with ts < 3 are dead.
  EXPECT_EQ(ch->size(), 0u);
}

TEST(Channel, TransparentGcNeedsAllConsumersToTouch) {
  Env env;
  env.ctx.gc = gc::Kind::kTransparent;
  auto ch = env.make_channel();
  const int c0 = ch->register_consumer(200, 0);
  ch->register_consumer(201, 0);  // never reads
  for (Timestamp ts = 0; ts < 3; ++ts) ch->put(env.make_item(ts), never_stop());
  ch->get_latest(c0, aru::kUnknownStp, kNoTimestamp, never_stop());
  EXPECT_EQ(ch->size(), 3u);  // second consumer still reachable
}

TEST(Channel, GcNoneNeverFrees) {
  Env env;
  env.ctx.gc = gc::Kind::kNone;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  for (Timestamp ts = 0; ts < 5; ++ts) ch->put(env.make_item(ts), never_stop());
  ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  EXPECT_EQ(ch->size(), 5u);
}

TEST(Channel, DeadOnArrivalWhenBelowFrontier) {
  Env env;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(10), never_stop());
  ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());  // guarantee -> 11
  const auto res = ch->put(env.make_item(5), never_stop());
  EXPECT_FALSE(res.stored);
  EXPECT_EQ(ch->size(), 0u);
}

TEST(Channel, ExtraGuaranteeRaisesFrontier) {
  Env env;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  for (Timestamp ts = 0; ts < 6; ++ts) ch->put(env.make_item(ts), never_stop());
  // Downstream knowledge says nothing below 100 is wanted.
  ch->get_latest(c, aru::kUnknownStp, /*extra_guarantee=*/100, never_stop());
  EXPECT_EQ(ch->frontier(), 100);
  EXPECT_EQ(ch->size(), 0u);
}

TEST(Channel, FeedbackSummaryReachesProducerOnPut) {
  Env env;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(0), never_stop());
  ch->get_latest(c, /*consumer_summary=*/millis(25), kNoTimestamp, never_stop());
  const auto res = ch->put(env.make_item(1), never_stop());
  EXPECT_EQ(res.channel_summary, millis(25));
  EXPECT_EQ(ch->summary(), millis(25));
}

TEST(Channel, MinCompressPicksFastestConsumer) {
  Env env;  // aru mode = min
  auto ch = env.make_channel();
  const int c0 = ch->register_consumer(200, 0);
  const int c1 = ch->register_consumer(201, 0);
  ch->put(env.make_item(0), never_stop());
  ch->get_latest(c0, millis(40), kNoTimestamp, never_stop());
  ch->get_latest(c1, millis(15), kNoTimestamp, never_stop());
  EXPECT_EQ(ch->summary(), millis(15));
}

TEST(Channel, MaxCompressPicksSlowestConsumer) {
  Env env;
  env.ctx.aru.mode = aru::Mode::kMax;
  auto ch = std::make_unique<Channel>(env.ctx, env.next_node++, ChannelConfig{.name = "ch"},
                                      aru::Mode::kMax, make_filter(""),
                                      env.recorder.new_shard());
  const int c0 = ch->register_consumer(200, 0);
  const int c1 = ch->register_consumer(201, 0);
  ch->put(env.make_item(0), never_stop());
  ch->get_latest(c0, millis(40), kNoTimestamp, never_stop());
  ch->get_latest(c1, millis(15), kNoTimestamp, never_stop());
  EXPECT_EQ(ch->summary(), millis(40));
}

TEST(Channel, AruOffIgnoresFeedback) {
  Env env;
  env.ctx.aru.mode = aru::Mode::kOff;
  auto ch = std::make_unique<Channel>(env.ctx, env.next_node++, ChannelConfig{.name = "ch"},
                                      aru::Mode::kOff, make_filter(""),
                                      env.recorder.new_shard());
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(0), never_stop());
  ch->get_latest(c, millis(25), kNoTimestamp, never_stop());
  EXPECT_EQ(ch->summary(), aru::kUnknownStp);
}

TEST(Channel, BlockingGetWakesOnPut) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);

  std::shared_ptr<const Item> got;
  std::thread consumer([&] {
    got = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).item;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch->put(env.make_item(7), never_stop());
  consumer.join();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->ts(), 7);
}

TEST(Channel, BlockedTimeIsReported) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  Nanos blocked{0};
  std::thread consumer([&] {
    blocked = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).blocked;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ch->put(env.make_item(0), never_stop());
  consumer.join();
  EXPECT_GE(blocked.count(), millis(20).count());
}

TEST(Channel, CloseWakesBlockedConsumerWithNull) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  std::shared_ptr<const Item> got = env.make_item(99);
  std::thread consumer([&] {
    got = ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).item;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch->close();
  consumer.join();
  EXPECT_FALSE(got);
}

TEST(Channel, ClosedChannelStillDrains) {
  Env env;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(0), never_stop());
  ch->close();
  EXPECT_TRUE(ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).item);
  EXPECT_FALSE(ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop()).item);
}

TEST(Channel, PutAfterCloseIsRejected) {
  Env env;
  auto ch = env.make_channel();
  ch->register_consumer(200, 0);
  ch->close();
  EXPECT_FALSE(ch->put(env.make_item(0), never_stop()).stored);
  EXPECT_EQ(ch->size(), 0u);
}

TEST(Channel, BoundedChannelExertsBackpressure) {
  Env env;
  env.ctx.clock = &RealClock::instance();
  auto ch = env.make_channel({.name = "bounded", .capacity = 2});
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(0), never_stop());
  ch->put(env.make_item(1), never_stop());

  Nanos blocked{0};
  std::thread producer([&] {
    blocked = ch->put(env.make_item(2), never_stop()).blocked;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  // Consuming frees space (entries below frontier are collected).
  ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  producer.join();
  EXPECT_GE(blocked.count(), millis(10).count());
}

TEST(Channel, TryPutNeverBlocksOnFullChannel) {
  Env env;
  auto ch = env.make_channel({.name = "bounded", .capacity = 2});
  const int c = ch->register_consumer(200, 0);
  ASSERT_TRUE(ch->try_put(env.make_item(0)).has_value());
  ASSERT_TRUE(ch->try_put(env.make_item(1)).has_value());

  // Full: try_put reports "would block" without storing (or blocking —
  // this test runs on a manual clock, so an actual block would hang).
  auto item2 = env.make_item(2);
  EXPECT_FALSE(ch->try_put(item2).has_value());
  EXPECT_EQ(ch->size(), 2u);

  // Consuming frees space (entries below the frontier are collected);
  // retrying with the same item then stores.
  ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
  const auto res = ch->try_put(item2);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->stored);

  // A closed channel is not "would block": like put(), try_put returns a
  // result with stored=false.
  ch->close();
  const auto closed = ch->try_put(env.make_item(3));
  ASSERT_TRUE(closed.has_value());
  EXPECT_FALSE(closed->stored);
}

TEST(Channel, TransferDelayForRemoteConsumer) {
  Env env(3);  // 3-node cluster with gigabit links
  auto ch = env.make_channel({.name = "remote", .cluster_node = 0});
  const int local = ch->register_consumer(200, 0);
  const int remote = ch->register_consumer(201, 2);
  ch->put(env.make_item(0, 1'000'000), never_stop());
  EXPECT_EQ(ch->get_latest(local, aru::kUnknownStp, kNoTimestamp, never_stop()).transfer,
            Nanos{0});
  const Nanos t =
      ch->get_latest(remote, aru::kUnknownStp, kNoTimestamp, never_stop()).transfer;
  EXPECT_GT(t.count(), millis(7).count());  // ~8ms for 1MB over gigabit
}

TEST(Channel, ScanOverheadGrowsWithOccupancy) {
  Env env;
  env.ctx.pressure.per_item_scan = micros(100);
  auto ch = env.make_channel();
  ch->register_consumer(200, 0);
  const Nanos o1 = ch->put(env.make_item(0), never_stop()).overhead;
  const Nanos o2 = ch->put(env.make_item(1), never_stop()).overhead;
  EXPECT_EQ(o1, micros(100));
  EXPECT_EQ(o2, micros(200));
}

TEST(Channel, DropEventRecordedForUnconsumedItems) {
  Env env;
  auto ch = env.make_channel();
  const int c = ch->register_consumer(200, 0);
  ch->put(env.make_item(0), never_stop());
  ch->put(env.make_item(1), never_stop());
  ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());  // skips ts 0

  const auto trace = env.recorder.merge(0, env.clock.now().count() + 1);
  int drops = 0, skips = 0;
  for (const auto& e : trace.events) {
    drops += e.type == stats::EventType::kDrop ? 1 : 0;
    skips += e.type == stats::EventType::kSkip ? 1 : 0;
  }
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(skips, 1);
}

TEST(Channel, BadConsumerIndexThrows) {
  Env env;
  auto ch = env.make_channel();
  ch->register_consumer(200, 0);
  EXPECT_THROW(ch->get_latest(5, aru::kUnknownStp, kNoTimestamp, never_stop()),
               std::out_of_range);
}

TEST(Channel, NullItemThrows) {
  Env env;
  auto ch = env.make_channel();
  EXPECT_THROW(ch->put(nullptr, never_stop()), std::invalid_argument);
}

// Property: with N consumers all reading everything, DGC reclaims all but
// the most recent entry.
class ConsumerCount : public ::testing::TestWithParam<int> {};

TEST_P(ConsumerCount, SteadyStateOccupancyIsBounded) {
  Env env;
  auto ch = env.make_channel();
  std::vector<int> consumers;
  for (int i = 0; i < GetParam(); ++i) consumers.push_back(ch->register_consumer(200 + i, 0));

  for (Timestamp ts = 0; ts < 20; ++ts) {
    ch->put(env.make_item(ts), never_stop());
    for (const int c : consumers) {
      ch->get_latest(c, aru::kUnknownStp, kNoTimestamp, never_stop());
    }
    EXPECT_LE(ch->size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(OneToEight, ConsumerCount, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace stampede
